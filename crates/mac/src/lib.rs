//! Link layer: the protocols that consume SoftPHY estimates.
//!
//! The paper motivates SoftPHY with two cross-layer consumers (§4):
//!
//! * [`SoftRate`] — bit-rate adaptation from per-packet BER estimates
//!   (Vutukuru et al., the paper's reference \[31\]); evaluated in Figure 7.
//! * [`ppr`] — Partial Packet Recovery from per-bit BER estimates
//!   (Jamieson & Balakrishnan, reference \[17\]): retransmit only the chunks
//!   whose bits carry low confidence.
//! * [`arq`] — the conventional whole-packet ARQ baseline both improve on.
//! * [`link`] — the three policies behind one [`link::LinkPolicy`] trait,
//!   so the scenario engine can sweep MAC behavior by registry name.
//! * [`cell`] — multi-node contention on a shared medium: slotted ALOHA,
//!   CSMA with binary exponential backoff, and a TDMA oracle behind one
//!   [`cell::ContentionPolicy`] trait, plus the cell-level metrics
//!   (aggregate goodput, Jain fairness, collision/idle fractions).
//! * [`harq`] — hybrid ARQ with soft-combining: Chase combining and
//!   incremental redundancy over retained mother-code LLR planes, the
//!   stateful-retry upgrade of [`arq`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arq;
pub mod cell;
pub mod harq;
pub mod link;
pub mod ppr;
mod softrate;

pub use cell::{
    BackoffState, CellMetrics, ContentionPolicy, CsmaBackoff, NodeCellMetrics, SlotView,
    SlottedAloha, TdmaOracle, TxDecision,
};
pub use harq::{HarqConfig, HarqCore, HarqLink, HarqMode};
pub use link::{ArqLink, LinkMetrics, LinkPolicy, LinkVerdict, PprLink, SoftRateLink};
pub use softrate::{RateDecision, Selection, SelectionStats, SoftRate};

#[cfg(test)]
mod prop_tests;
