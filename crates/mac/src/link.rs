//! Registry-addressed link policies — the MAC layer as a scenario-engine
//! dimension.
//!
//! The paper's headline results above the PHY (Figure 6's partial-packet
//! recovery, Figure 7's SoftRate selection) all share one shape: a policy
//! observes each received packet — its decisions, its SoftPHY hints, the
//! feedback an acknowledgement would carry — and reacts (retransmit, give
//! up, change rate). [`LinkPolicy`] is that shape as a trait, so the
//! `wilis::scenario` engine can sweep MAC behavior the same way it sweeps
//! decoders and channels: resolved by name, one instance per grid point,
//! metrics accumulated per point.
//!
//! Three stock policies mirror the paper's §4 consumers:
//!
//! * [`ArqLink`] — whole-packet stop-and-wait ARQ (the baseline),
//! * [`PprLink`] — partial packet recovery from per-bit hints,
//! * [`SoftRateLink`] — PBER-threshold rate adaptation, optionally judged
//!   against the replayed-channel oracle of Figure 7.
//!
//! Policies keep their own reusable scratch (error masks, chunk plans), so
//! the engine's steady state stays allocation-free.

use wilis_phy::{PhyRate, RxResult};

use crate::arq::ArqSession;
use crate::ppr::{evaluate, PprConfig};
use crate::{SelectionStats, SoftRate};

/// What the simulator knows about one packet alongside the receive result
/// — the feedback a real link layer would read off the acknowledgement,
/// plus the ground truth that stands in for a CRC.
#[derive(Debug, Clone, Copy)]
pub struct LinkContext<'a> {
    /// The transmitted payload bits (ground truth).
    pub sent: &'a [u8],
    /// Payload bit errors in the receive result (the simulator's CRC).
    pub bit_errors: u64,
    /// SoftPHY per-packet BER estimate (0 for hard decoders).
    pub predicted_pber: f64,
    /// The PHY rate this packet was actually sent at.
    pub rate: PhyRate,
    /// The oracle replay's verdict, when the engine ran one.
    pub oracle: Oracle,
}

/// The outcome of replaying a packet at every rate against the identical
/// channel realization — the paper's "pseudo-random noise model" applied
/// per packet (§4.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// The engine did not run the oracle (the policy did not ask for it).
    Unavailable,
    /// No rate delivered the packet error-free.
    NoRate,
    /// The fastest rate that delivered the packet error-free.
    Best(PhyRate),
}

impl Oracle {
    /// The oracle-optimal rate in [`SoftRate::classify`] form: `None` when
    /// the oracle did not run, `Some(None)` when no rate succeeded,
    /// `Some(Some(rate))` otherwise.
    pub fn optimal(self) -> Option<Option<PhyRate>> {
        match self {
            Oracle::Unavailable => None,
            Oracle::NoRate => Some(None),
            Oracle::Best(r) => Some(Some(r)),
        }
    }
}

/// How the link layer closed (or kept open) one observed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkStatus {
    /// The packet was delivered clean (possibly after the policy's repair
    /// action, e.g. a PPR chunk retransmission).
    Delivered,
    /// The policy requested a retransmission; the packet is still open.
    Retransmit,
    /// The policy abandoned the packet.
    GaveUp,
}

/// A link policy's verdict on one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkVerdict {
    /// Whether the packet closed, and how.
    pub status: LinkStatus,
    /// The rate the policy wants the *next* packet sent at (rate-adapting
    /// policies); `None` leaves the current rate alone.
    pub next_rate: Option<PhyRate>,
}

impl LinkVerdict {
    /// A verdict that closes or continues the packet without touching the
    /// rate.
    pub fn status(status: LinkStatus) -> Self {
        Self {
            status,
            next_rate: None,
        }
    }
}

/// Link-layer counters accumulated across one scenario (grid point).
///
/// All f64-valued summaries are derived from the integer counters (plus
/// one exact sum of integral Mbps values), so two runs of the same
/// scenario compare bit-identically — the property the sweep engine's
/// determinism contract extends to the link dimension.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkMetrics {
    /// Packets observed. For ARQ each observation is one transmission
    /// attempt of the stop-and-wait session.
    pub packets: u64,
    /// Packets delivered clean (after any repair the policy models).
    pub delivered: u64,
    /// Packets abandoned.
    pub gave_up: u64,
    /// Useful payload bits delivered.
    pub bits_delivered: u64,
    /// Payload bits put on the air, including retransmissions.
    pub bits_transmitted: u64,
    /// The subset of [`LinkMetrics::bits_transmitted`] that were
    /// retransmissions.
    pub bits_retransmitted: u64,
    /// Packets sent below the oracle-optimal rate (SoftRate only).
    pub under: u64,
    /// Packets sent at the oracle-optimal rate (SoftRate only).
    pub accurate: u64,
    /// Packets sent above the oracle-optimal rate (SoftRate only).
    pub over: u64,
    /// Sum of selected-rate Mbps across packets (integral per packet), for
    /// the mean selected rate.
    pub selected_mbps_sum: f64,
    /// Packets delivered only thanks to soft-combining — clean on attempt
    /// ≥ 2 of a combining HARQ session (HARQ only).
    pub recovered: u64,
    /// Histogram of attempts used per closed packet: bin `i` counts
    /// packets that closed after `i + 1` attempts, last bin saturating
    /// (HARQ only).
    pub attempts_hist: [u64; crate::harq::ATTEMPTS_HIST_BINS],
    /// Sum of the post-IR effective code rate over closed packets (HARQ
    /// only; see [`crate::harq::HarqConfig::effective_rate`]).
    pub effective_rate_sum: f64,
}

impl LinkMetrics {
    /// Useful bits delivered per bit transmitted — the figure-of-merit PPR
    /// improves over ARQ.
    pub fn goodput(&self) -> f64 {
        if self.bits_transmitted == 0 {
            0.0
        } else {
            self.bits_delivered as f64 / self.bits_transmitted as f64
        }
    }

    /// Fraction of transmitted bits that were retransmissions
    /// (conventional ARQ pays whole packets here; PPR pays chunks).
    pub fn retransmit_fraction(&self) -> f64 {
        if self.bits_transmitted == 0 {
            0.0
        } else {
            self.bits_retransmitted as f64 / self.bits_transmitted as f64
        }
    }

    /// Fraction of closed packets that were delivered.
    pub fn delivery_rate(&self) -> f64 {
        let closed = self.delivered + self.gave_up;
        if closed == 0 {
            0.0
        } else {
            self.delivered as f64 / closed as f64
        }
    }

    /// Mean selected rate in Mbps across observed packets.
    pub fn mean_selected_mbps(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.selected_mbps_sum / self.packets as f64
        }
    }

    /// Fraction of deliveries that needed the combiner (clean only on
    /// attempt ≥ 2) — the combining gain in delivery terms.
    pub fn recovered_fraction(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.recovered as f64 / self.delivered as f64
        }
    }

    /// Mean attempts per closed packet from the attempts histogram (the
    /// saturating last bin makes this a lower bound for pathological
    /// budgets beyond the bin count).
    pub fn mean_attempts(&self) -> f64 {
        let closed: u64 = self.attempts_hist.iter().sum();
        if closed == 0 {
            0.0
        } else {
            let weighted: u64 = self
                .attempts_hist
                .iter()
                .enumerate()
                .map(|(i, &c)| (i as u64 + 1) * c)
                .sum();
            weighted as f64 / closed as f64
        }
    }

    /// Mean post-IR effective code rate per closed packet.
    pub fn mean_effective_rate(&self) -> f64 {
        let closed = self.delivered + self.gave_up;
        if closed == 0 {
            0.0
        } else {
            self.effective_rate_sum / closed as f64
        }
    }

    /// Folds another metrics block into this one (cross-seed aggregation).
    pub fn merge(&mut self, other: &LinkMetrics) {
        self.packets += other.packets;
        self.delivered += other.delivered;
        self.gave_up += other.gave_up;
        self.bits_delivered += other.bits_delivered;
        self.bits_transmitted += other.bits_transmitted;
        self.bits_retransmitted += other.bits_retransmitted;
        self.under += other.under;
        self.accurate += other.accurate;
        self.over += other.over;
        self.selected_mbps_sum += other.selected_mbps_sum;
        self.recovered += other.recovered;
        for (a, b) in self.attempts_hist.iter_mut().zip(&other.attempts_hist) {
            *a += b;
        }
        self.effective_rate_sum += other.effective_rate_sum;
    }
}

/// A per-packet link-layer policy the scenario engine can sweep by name.
///
/// One instance observes one grid point's packets *in order* (the engine
/// never shares a policy across scenarios or threads), so implementations
/// are free to carry protocol state — ARQ retry counters, a SoftRate
/// controller — and reusable scratch buffers.
pub trait LinkPolicy {
    /// The registry name of this policy (`"arq"`, `"ppr"`, `"softrate"`).
    fn name(&self) -> &'static str;

    /// Whether the engine should replay every rate against the identical
    /// channel realization and report the oracle-optimal rate in
    /// [`LinkContext::oracle`]. Costs one extra receive per rate per
    /// packet; only [`SoftRateLink`] asks for it by default.
    fn needs_oracle(&self) -> bool {
        false
    }

    /// Whether the policy is driven by [`LinkContext::predicted_pber`].
    /// Hosts must reject pairing such a policy with a decoder that has no
    /// SoftPHY BER estimator (e.g. hard Viterbi): the estimate would be a
    /// constant 0.0 and the policy's output plausible-looking garbage.
    fn needs_pber(&self) -> bool {
        false
    }

    /// Whether this policy may ever steer the transmit rate through
    /// [`LinkVerdict::next_rate`]. Policies answering `false` here are
    /// pure observers of the PHY stream, which lets the scenario engine
    /// share one transmit+channel realization across every grid point
    /// that differs only in decoder or link policy. A policy that
    /// declares `false` and then returns a `next_rate` is a contract
    /// violation (the engine asserts against it).
    ///
    /// Defaults to `true` — the fail-safe answer: a policy that does not
    /// opt in merely runs solo and loses the sharing optimization,
    /// instead of tripping the engine's contract assert if it does steer
    /// the rate. Pure observers ([`ArqLink`], [`PprLink`]) override this
    /// to `false`.
    fn adapts_rate(&self) -> bool {
        true
    }

    /// The policy's HARQ combiner core, when it has one *and* combining
    /// is armed. A `Some` answer changes the engine's contract with the
    /// policy: each logical packet becomes an attempt loop — the engine
    /// transmits at [`crate::harq::HarqCore::tx_phase`], folds every
    /// attempt's mother-LLR plane through
    /// [`crate::harq::HarqCore::absorb`], and decodes the combined
    /// [`crate::harq::HarqCore::plane`] — so such policies are never
    /// fused into shared-channel groups (a retransmission reshapes the
    /// transmit stream). Defaults to `None`: ordinary policies observe
    /// independent single transmissions.
    fn harq(&mut self) -> Option<&mut crate::harq::HarqCore> {
        None
    }

    /// A configuration problem detected at construction. Registry
    /// factories are infallible, so a policy built from contradictory
    /// parameters carries the complaint here and hosts surface it as an
    /// `InvalidConfig` error before running anything. Defaults to `None`.
    fn config_error(&self) -> Option<String> {
        None
    }

    /// Observes one received packet and returns the link-layer verdict.
    fn observe(&mut self, rx: &RxResult, hints: &[u16], ctx: &LinkContext<'_>) -> LinkVerdict;

    /// The metrics accumulated so far.
    fn metrics(&self) -> LinkMetrics;

    /// Clears all protocol state and metrics for a fresh trial.
    fn reset(&mut self);
}

/// Conventional whole-packet stop-and-wait ARQ as a sweep policy: the
/// baseline both PPR and SoftRate improve on.
///
/// Successive packets of a grid point stand in for the attempts of a
/// stop-and-wait session (the channel is independent per packet, which is
/// exactly the ARQ model's assumption): a corrupted packet keeps the
/// logical packet open and the next trial counts as its retransmission.
#[derive(Debug, Clone)]
pub struct ArqLink {
    session: ArqSession,
    retx_attempts: u64,
    retrying: bool,
    bits_per_packet: u64,
    max_retries: u32,
}

impl ArqLink {
    /// An ARQ policy for `bits_per_packet`-bit packets abandoning after
    /// `max_retries` failed retransmissions.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_packet` is zero (see [`ArqSession::new`]).
    pub fn new(bits_per_packet: u64, max_retries: u32) -> Self {
        Self {
            session: ArqSession::new(bits_per_packet, max_retries),
            retx_attempts: 0,
            retrying: false,
            bits_per_packet,
            max_retries,
        }
    }

    /// The underlying accounting session.
    pub fn session(&self) -> &ArqSession {
        &self.session
    }
}

impl LinkPolicy for ArqLink {
    fn name(&self) -> &'static str {
        "arq"
    }

    fn adapts_rate(&self) -> bool {
        false
    }

    fn observe(&mut self, _rx: &RxResult, _hints: &[u16], ctx: &LinkContext<'_>) -> LinkVerdict {
        if self.retrying {
            self.retx_attempts += 1;
        }
        let clean = ctx.bit_errors == 0;
        let closed = self.session.attempt(clean);
        self.retrying = !closed;
        LinkVerdict::status(if !closed {
            LinkStatus::Retransmit
        } else if clean {
            LinkStatus::Delivered
        } else {
            LinkStatus::GaveUp
        })
    }

    fn metrics(&self) -> LinkMetrics {
        LinkMetrics {
            packets: self.session.attempts(),
            delivered: self.session.delivered(),
            gave_up: self.session.gave_up(),
            bits_delivered: self.session.bits_delivered(),
            bits_transmitted: self.session.bits_attempted(),
            bits_retransmitted: self.retx_attempts * self.session.bits_per_packet(),
            ..LinkMetrics::default()
        }
    }

    fn reset(&mut self) {
        *self = Self::new(self.bits_per_packet, self.max_retries);
    }
}

/// Partial packet recovery as a sweep policy: on a corrupted packet,
/// retransmit only the chunks whose hints look suspect, and count the
/// packet delivered when every true error fell in a retransmitted chunk.
#[derive(Debug, Clone)]
pub struct PprLink {
    config: PprConfig,
    metrics: LinkMetrics,
    // Reusable per-packet scratch: the true-error mask and the chunk plan.
    errors: Vec<bool>,
    plan: Vec<bool>,
}

impl PprLink {
    /// A PPR policy with the given chunk geometry and hint threshold.
    pub fn new(config: PprConfig) -> Self {
        Self {
            config,
            metrics: LinkMetrics::default(),
            errors: Vec::new(),
            plan: Vec::new(),
        }
    }

    /// The chunk geometry and threshold in force.
    pub fn config(&self) -> PprConfig {
        self.config
    }
}

impl LinkPolicy for PprLink {
    fn name(&self) -> &'static str {
        "ppr"
    }

    fn adapts_rate(&self) -> bool {
        false
    }

    fn observe(&mut self, rx: &RxResult, hints: &[u16], ctx: &LinkContext<'_>) -> LinkVerdict {
        let bits = ctx.sent.len() as u64;
        self.metrics.packets += 1;
        self.metrics.bits_transmitted += bits;
        if ctx.bit_errors == 0 {
            self.metrics.delivered += 1;
            self.metrics.bits_delivered += bits;
            return LinkVerdict::status(LinkStatus::Delivered);
        }
        self.errors.clear();
        self.errors
            .extend(ctx.sent.iter().zip(&rx.payload).map(|(a, b)| a != b));
        self.config.plan_into(hints, &mut self.plan);
        let outcome = evaluate(&self.config, &self.plan, &self.errors);
        self.metrics.bits_transmitted += outcome.retransmitted_bits as u64;
        self.metrics.bits_retransmitted += outcome.retransmitted_bits as u64;
        LinkVerdict::status(if outcome.recovered() {
            self.metrics.delivered += 1;
            self.metrics.bits_delivered += bits;
            LinkStatus::Delivered
        } else {
            self.metrics.gave_up += 1;
            LinkStatus::GaveUp
        })
    }

    fn metrics(&self) -> LinkMetrics {
        self.metrics
    }

    fn reset(&mut self) {
        self.metrics = LinkMetrics::default();
    }
}

/// SoftRate rate adaptation as a sweep policy: observes each packet's
/// predicted PBER, steers the engine's transmit rate through
/// [`LinkVerdict::next_rate`], and (when the oracle runs) tallies the
/// Figure 7 under/accurate/over selection statistics.
#[derive(Debug, Clone)]
pub struct SoftRateLink {
    controller: SoftRate,
    initial: SoftRate,
    stats: SelectionStats,
    metrics: LinkMetrics,
    oracle: bool,
}

impl SoftRateLink {
    /// A rate-adaptation policy driven by `controller`; `oracle` asks the
    /// engine for the per-packet all-rates replay that grounds the
    /// selection-accuracy tallies.
    pub fn new(controller: SoftRate, oracle: bool) -> Self {
        Self {
            controller,
            initial: controller,
            stats: SelectionStats::new(),
            metrics: LinkMetrics::default(),
            oracle,
        }
    }

    /// The under/accurate/over tallies collected so far.
    pub fn stats(&self) -> SelectionStats {
        self.stats
    }
}

impl LinkPolicy for SoftRateLink {
    fn name(&self) -> &'static str {
        "softrate"
    }

    fn needs_oracle(&self) -> bool {
        self.oracle
    }

    fn needs_pber(&self) -> bool {
        true
    }

    fn adapts_rate(&self) -> bool {
        true
    }

    fn observe(&mut self, _rx: &RxResult, _hints: &[u16], ctx: &LinkContext<'_>) -> LinkVerdict {
        let bits = ctx.sent.len() as u64;
        self.metrics.packets += 1;
        self.metrics.bits_transmitted += bits;
        self.metrics.selected_mbps_sum += ctx.rate.mbps();
        let clean = ctx.bit_errors == 0;
        if clean {
            self.metrics.delivered += 1;
            self.metrics.bits_delivered += bits;
        } else {
            self.metrics.gave_up += 1;
        }
        if let Some(optimal) = ctx.oracle.optimal() {
            self.stats.record(SoftRate::classify(ctx.rate, optimal));
        }
        self.controller.observe(ctx.predicted_pber);
        LinkVerdict {
            status: if clean {
                LinkStatus::Delivered
            } else {
                LinkStatus::GaveUp
            },
            next_rate: Some(self.controller.current()),
        }
    }

    fn metrics(&self) -> LinkMetrics {
        let mut m = self.metrics;
        m.under = self.stats.under;
        m.accurate = self.stats.accurate;
        m.over = self.stats.over;
        m
    }

    fn reset(&mut self) {
        self.controller = self.initial;
        self.stats = SelectionStats::new();
        self.metrics = LinkMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx_for(sent: &[u8], flips: &[usize]) -> RxResult {
        let mut payload = sent.to_vec();
        for &i in flips {
            payload[i] ^= 1;
        }
        RxResult {
            hints: vec![60; sent.len()],
            soft_magnitudes: vec![0; sent.len()],
            decoder_id: "test",
            payload,
        }
    }

    fn ctx<'a>(sent: &'a [u8], bit_errors: u64, pber: f64) -> LinkContext<'a> {
        LinkContext {
            sent,
            bit_errors,
            predicted_pber: pber,
            rate: PhyRate::Qam16Half,
            oracle: Oracle::Unavailable,
        }
    }

    #[test]
    fn arq_link_counts_attempts_and_retransmissions() {
        let sent = vec![0u8; 100];
        let clean = rx_for(&sent, &[]);
        let dirty = rx_for(&sent, &[3]);
        let mut arq = ArqLink::new(100, 3);
        assert_eq!(
            arq.observe(&dirty, &dirty.hints, &ctx(&sent, 1, 0.0))
                .status,
            LinkStatus::Retransmit
        );
        assert_eq!(
            arq.observe(&clean, &clean.hints, &ctx(&sent, 0, 0.0))
                .status,
            LinkStatus::Delivered
        );
        let m = arq.metrics();
        assert_eq!(m.packets, 2);
        assert_eq!(m.delivered, 1);
        assert_eq!(m.bits_transmitted, 200);
        assert_eq!(m.bits_retransmitted, 100);
        assert!((m.goodput() - 0.5).abs() < 1e-12);
        assert!((m.retransmit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arq_link_gives_up_after_retries() {
        let sent = vec![0u8; 10];
        let dirty = rx_for(&sent, &[0]);
        let mut arq = ArqLink::new(10, 1);
        assert_eq!(
            arq.observe(&dirty, &dirty.hints, &ctx(&sent, 1, 0.0))
                .status,
            LinkStatus::Retransmit
        );
        assert_eq!(
            arq.observe(&dirty, &dirty.hints, &ctx(&sent, 1, 0.0))
                .status,
            LinkStatus::GaveUp
        );
        assert_eq!(arq.metrics().gave_up, 1);
        assert_eq!(arq.metrics().goodput(), 0.0);
    }

    #[test]
    fn ppr_link_repairs_flagged_errors_cheaply() {
        let sent = vec![0u8; 32];
        let mut rx = rx_for(&sent, &[5]);
        rx.hints[5] = 1; // the error is flagged suspect
        let mut ppr = PprLink::new(PprConfig::new(8, 10));
        let v = ppr.observe(&rx, &rx.hints.clone(), &ctx(&sent, 1, 0.0));
        assert_eq!(v.status, LinkStatus::Delivered);
        let m = ppr.metrics();
        assert_eq!(m.bits_retransmitted, 8, "one chunk of eight");
        assert_eq!(m.bits_transmitted, 40);
        assert!((m.goodput() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn ppr_link_gives_up_on_unflagged_errors() {
        let sent = vec![0u8; 32];
        let rx = rx_for(&sent, &[5]); // high-confidence hints everywhere
        let mut ppr = PprLink::new(PprConfig::new(8, 10));
        let v = ppr.observe(&rx, &rx.hints.clone(), &ctx(&sent, 1, 0.0));
        assert_eq!(v.status, LinkStatus::GaveUp);
        assert_eq!(ppr.metrics().bits_retransmitted, 0);
        assert_eq!(ppr.metrics().delivery_rate(), 0.0);
    }

    #[test]
    fn softrate_link_steers_the_rate_and_tallies_with_oracle() {
        let sent = vec![0u8; 50];
        let clean = rx_for(&sent, &[]);
        let mut sr = SoftRateLink::new(SoftRate::new(PhyRate::Qam16Half), true);
        assert!(sr.needs_oracle());
        let mut c = ctx(&sent, 0, 1e-9); // very clean: step up
        c.oracle = Oracle::Best(PhyRate::Qam16Half);
        let v = sr.observe(&clean, &clean.hints, &c);
        assert_eq!(v.next_rate, Some(PhyRate::Qam16ThreeQuarters));
        let m = sr.metrics();
        assert_eq!(m.accurate, 1, "sent at the oracle's rate");
        assert_eq!(m.delivered, 1);
        assert!((m.mean_selected_mbps() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn only_pure_observers_opt_out_of_rate_adaptation() {
        assert!(!ArqLink::new(100, 3).adapts_rate());
        assert!(!PprLink::new(PprConfig::new(8, 10)).adapts_rate());
        assert!(SoftRateLink::new(SoftRate::new(PhyRate::Qam16Half), false).adapts_rate());
        // The default is the fail-safe answer: a policy that does not opt
        // in is treated as rate-adapting and runs solo.
        struct Opaque;
        impl LinkPolicy for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn observe(
                &mut self,
                _rx: &RxResult,
                _hints: &[u16],
                _ctx: &LinkContext<'_>,
            ) -> LinkVerdict {
                LinkVerdict::status(LinkStatus::Delivered)
            }
            fn metrics(&self) -> LinkMetrics {
                LinkMetrics::default()
            }
            fn reset(&mut self) {}
        }
        assert!(Opaque.adapts_rate());
    }

    #[test]
    fn reset_clears_state_and_metrics() {
        let sent = vec![0u8; 10];
        let dirty = rx_for(&sent, &[0]);
        let mut arq = ArqLink::new(10, 2);
        let _ = arq.observe(&dirty, &dirty.hints, &ctx(&sent, 1, 0.0));
        arq.reset();
        assert_eq!(arq.metrics(), LinkMetrics::default());
        let mut sr = SoftRateLink::new(SoftRate::new(PhyRate::Qam16Half), false);
        let _ = sr.observe(&dirty, &dirty.hints, &ctx(&sent, 1, 0.5));
        sr.reset();
        assert_eq!(sr.metrics().packets, 0);
    }

    #[test]
    fn metrics_merge_adds_counters() {
        let mut a = LinkMetrics {
            packets: 2,
            delivered: 1,
            bits_delivered: 100,
            bits_transmitted: 200,
            ..LinkMetrics::default()
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.packets, 4);
        assert!((a.goodput() - 0.5).abs() < 1e-12);
    }
}
