//! SoftRate: PBER-threshold bit-rate adaptation (§4.4.2, Figure 7).
//!
//! "If the calculated PBER at the current rate is outside of a
//! pre-computed range (for the ARQ link layer protocol, the range is
//! between 10⁻⁷ and 10⁻⁵), then SoftRate will immediately adjust the
//! future transmission rate up or down accordingly."

use std::fmt;

use wilis_phy::PhyRate;

/// The decision SoftRate makes after observing one packet's PBER.
///
/// Decisions report *rate transitions*: when the PBER asks for a faster
/// (or slower) rate but the controller is already pinned at the ceiling
/// (or floor), the decision is [`RateDecision::Hold`] — no transition
/// occurred, and Figure-7-style decision tallies must not count one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDecision {
    /// PBER below the low threshold and a faster rate existed: stepped up.
    StepUp,
    /// PBER above the high threshold and a slower rate existed: backed off.
    StepDown,
    /// No rate transition: PBER inside the target band, or the controller
    /// is saturated at the rate floor/ceiling.
    Hold,
}

/// How a selected rate compares with the oracle-optimal rate — the
/// categories of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Selection {
    /// Slower than the optimal rate (wasted capacity).
    Under,
    /// Exactly the optimal rate.
    Accurate,
    /// Faster than the optimal rate (packet likely lost).
    Over,
}

/// The SoftRate controller.
///
/// # Example
///
/// ```
/// use wilis_mac::{RateDecision, SoftRate};
/// use wilis_phy::PhyRate;
///
/// let mut sr = SoftRate::new(PhyRate::Qam16Half);
/// // A very clean packet: step up.
/// assert_eq!(sr.observe(1e-9), RateDecision::StepUp);
/// assert_eq!(sr.current(), PhyRate::Qam16ThreeQuarters);
/// // A noisy packet: step back down.
/// assert_eq!(sr.observe(1e-3), RateDecision::StepDown);
/// assert_eq!(sr.current(), PhyRate::Qam16Half);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftRate {
    current: PhyRate,
    lo: f64,
    hi: f64,
}

impl SoftRate {
    /// A controller starting at `initial` with the paper's ARQ thresholds
    /// (10⁻⁷, 10⁻⁵).
    pub fn new(initial: PhyRate) -> Self {
        Self::with_thresholds(initial, 1e-7, 1e-5)
    }

    /// A controller whose PBER band is derived for a packet size.
    ///
    /// The paper's (10⁻⁷, 10⁻⁵) range encodes two delivery targets for
    /// packets "in the order of 10⁴ bits": step down when delivery falls
    /// under ~90% (`PBER > 10⁻⁵` at 10⁴ bits) and step up when it exceeds
    /// ~99.9% (`PBER < 10⁻⁷`). This constructor translates those same
    /// targets to any packet size: `hi = 1 − 0.9^(1/bits)`,
    /// `lo = 1 − 0.999^(1/bits)` — which reproduces the paper's numbers
    /// exactly at 10⁴ bits.
    ///
    /// # Panics
    ///
    /// Panics if `packet_bits` is zero.
    pub fn for_packet_bits(initial: PhyRate, packet_bits: usize) -> Self {
        assert!(packet_bits > 0, "packets must carry bits");
        let bits = packet_bits as f64;
        let hi = 1.0 - 0.9f64.powf(1.0 / bits);
        let lo = 1.0 - 0.999f64.powf(1.0 / bits);
        Self::with_thresholds(initial, lo, hi)
    }

    /// A controller with explicit PBER thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi < 1`.
    pub fn with_thresholds(initial: PhyRate, lo: f64, hi: f64) -> Self {
        assert!(0.0 < lo && lo < hi && hi < 1.0, "need 0 < lo < hi < 1");
        Self {
            current: initial,
            lo,
            hi,
        }
    }

    /// The rate the next packet will be sent at.
    pub fn current(&self) -> PhyRate {
        self.current
    }

    /// Feeds one packet's predicted PBER (as fed back on the ARQ ack) and
    /// adjusts the rate. The returned decision reports the transition that
    /// actually happened: [`RateDecision::Hold`] when the band is satisfied
    /// *or* when the controller is saturated at the rate floor/ceiling.
    pub fn observe(&mut self, pber: f64) -> RateDecision {
        if pber > self.hi {
            match self.current.slower() {
                Some(slower) => {
                    self.current = slower;
                    RateDecision::StepDown
                }
                None => RateDecision::Hold,
            }
        } else if pber < self.lo {
            match self.current.faster() {
                Some(faster) => {
                    self.current = faster;
                    RateDecision::StepUp
                }
                None => RateDecision::Hold,
            }
        } else {
            RateDecision::Hold
        }
    }

    /// Classifies a selected rate against the oracle-optimal rate: the
    /// highest rate at which the packet would have been received with no
    /// errors (`None` when no rate succeeds, in which case only the lowest
    /// rate counts as accurate).
    pub fn classify(selected: PhyRate, optimal: Option<PhyRate>) -> Selection {
        let reference = optimal.unwrap_or(PhyRate::BpskHalf);
        if selected.mbps() < reference.mbps() {
            Selection::Under
        } else if selected.mbps() > reference.mbps() {
            Selection::Over
        } else {
            Selection::Accurate
        }
    }
}

/// Accumulated Figure 7 statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Packets sent below the optimal rate.
    pub under: u64,
    /// Packets sent at the optimal rate.
    pub accurate: u64,
    /// Packets sent above the optimal rate.
    pub over: u64,
}

impl SelectionStats {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified packet.
    pub fn record(&mut self, sel: Selection) {
        match sel {
            Selection::Under => self.under += 1,
            Selection::Accurate => self.accurate += 1,
            Selection::Over => self.over += 1,
        }
    }

    /// Total packets recorded.
    pub fn total(&self) -> u64 {
        self.under + self.accurate + self.over
    }

    /// `(under %, accurate %, over %)` — the Figure 7 bars.
    ///
    /// # Panics
    ///
    /// Panics if no packets were recorded.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total() as f64;
        assert!(t > 0.0, "no packets recorded");
        (
            100.0 * self.under as f64 / t,
            100.0 * self.accurate as f64 / t,
            100.0 * self.over as f64 / t,
        )
    }
}

impl fmt::Display for SelectionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.total() == 0 {
            return write!(f, "no packets");
        }
        let (u, a, o) = self.percentages();
        write!(
            f,
            "under {u:.1}% / accurate {a:.1}% / over {o:.1}% ({} packets)",
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_drive_decisions() {
        let mut sr = SoftRate::new(PhyRate::Qam16Half);
        assert_eq!(sr.observe(5e-6), RateDecision::Hold);
        assert_eq!(sr.current(), PhyRate::Qam16Half);
        assert_eq!(sr.observe(1e-4), RateDecision::StepDown);
        assert_eq!(sr.current(), PhyRate::QpskThreeQuarters);
        assert_eq!(sr.observe(1e-8), RateDecision::StepUp);
        assert_eq!(sr.current(), PhyRate::Qam16Half);
    }

    #[test]
    fn saturates_at_rate_extremes() {
        // Regression: a saturated controller used to report StepDown/StepUp
        // even though no transition occurred, inflating decision tallies.
        let mut sr = SoftRate::new(PhyRate::BpskHalf);
        assert_eq!(sr.observe(0.1), RateDecision::Hold, "pinned at the floor");
        assert_eq!(sr.current(), PhyRate::BpskHalf, "cannot go below 6 Mbps");
        let mut sr = SoftRate::new(PhyRate::Qam64ThreeQuarters);
        assert_eq!(
            sr.observe(1e-9),
            RateDecision::Hold,
            "pinned at the ceiling"
        );
        assert_eq!(sr.current(), PhyRate::Qam64ThreeQuarters);
    }

    #[test]
    fn decisions_report_actual_transitions_only() {
        let mut sr = SoftRate::new(PhyRate::BpskThreeQuarters);
        // One real step down reaches the floor; the next noisy packet holds.
        assert_eq!(sr.observe(1e-2), RateDecision::StepDown);
        assert_eq!(sr.current(), PhyRate::BpskHalf);
        assert_eq!(sr.observe(1e-2), RateDecision::Hold);
        assert_eq!(sr.current(), PhyRate::BpskHalf);
    }

    #[test]
    fn classification_against_oracle() {
        use Selection::*;
        assert_eq!(
            SoftRate::classify(PhyRate::QpskHalf, Some(PhyRate::Qam16Half)),
            Under
        );
        assert_eq!(
            SoftRate::classify(PhyRate::Qam16Half, Some(PhyRate::Qam16Half)),
            Accurate
        );
        assert_eq!(
            SoftRate::classify(PhyRate::Qam64TwoThirds, Some(PhyRate::Qam16Half)),
            Over
        );
        // Nothing succeeds: only the floor rate is "accurate".
        assert_eq!(SoftRate::classify(PhyRate::BpskHalf, None), Accurate);
        assert_eq!(SoftRate::classify(PhyRate::QpskHalf, None), Over);
    }

    #[test]
    fn stats_accumulate_and_percentages() {
        let mut s = SelectionStats::new();
        for _ in 0..8 {
            s.record(Selection::Accurate);
        }
        s.record(Selection::Under);
        s.record(Selection::Over);
        let (u, a, o) = s.percentages();
        assert_eq!(s.total(), 10);
        assert!((a - 80.0).abs() < 1e-12);
        assert!((u - 10.0).abs() < 1e-12);
        assert!((o - 10.0).abs() < 1e-12);
        assert!(s.to_string().contains("accurate 80.0%"));
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn bad_thresholds_rejected() {
        let _ = SoftRate::with_thresholds(PhyRate::BpskHalf, 1e-5, 1e-7);
    }

    #[test]
    fn packet_size_thresholds_match_paper_at_1e4_bits() {
        let sr = SoftRate::for_packet_bits(PhyRate::Qam16Half, 10_000);
        // 1 - 0.9^(1e-4) ~ 1.05e-5 and 1 - 0.999^(1e-4) ~ 1.0e-7: the
        // paper's (1e-7, 1e-5) band.
        assert!((sr.hi / 1.05e-5 - 1.0).abs() < 0.05, "hi {}", sr.hi);
        assert!((sr.lo / 1.0e-7 - 1.0).abs() < 0.05, "lo {}", sr.lo);
    }

    #[test]
    fn smaller_packets_relax_the_band() {
        let small = SoftRate::for_packet_bits(PhyRate::Qam16Half, 800);
        let big = SoftRate::for_packet_bits(PhyRate::Qam16Half, 10_000);
        assert!(small.hi > big.hi);
        assert!(small.lo > big.lo);
    }
}
