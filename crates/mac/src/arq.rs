//! Conventional Automatic Repeat-reQuest — the baseline link layer.
//!
//! "Conventional ARQ requires the retransmission of the entire packet in
//! the event of any bit error" (§4). This module models that policy and
//! derives the PBER thresholds SoftRate uses: for packets around 10⁴ bits,
//! a per-packet BER of 10⁻⁵ still delivers ~90% of packets while 10⁻⁷
//! delivers ~99.9%, which is why the paper's target band is (10⁻⁷, 10⁻⁵).

/// Expected probability that a packet of `bits` decodes error-free at a
/// uniform per-bit error rate `ber`.
///
/// Uses `powf` rather than `powi`: the exponent is a `u64`, and a cast to
/// `i32` would wrap negative for `bits >= 2^31`, yielding garbage
/// "probabilities" above 1. `powf` handles the whole range (jumbo frames,
/// aggregate airtime budgets) with ample precision.
///
/// # Example
///
/// ```
/// use wilis_mac::arq::packet_success_probability;
/// let p = packet_success_probability(10_000, 1e-5);
/// assert!((p - 0.905).abs() < 0.01);
/// ```
pub fn packet_success_probability(bits: u64, ber: f64) -> f64 {
    (1.0 - ber).powf(bits as f64)
}

/// Stop-and-wait ARQ accounting over a sequence of transmission attempts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArqSession {
    delivered: u64,
    attempts: u64,
    gave_up: u64,
    bits_per_packet: u64,
    max_retries: u32,
    /// Retries used for the packet currently in flight.
    current_tries: u32,
}

impl ArqSession {
    /// A session delivering packets of `bits_per_packet` bits, abandoning
    /// a packet after `max_retries` failed retransmissions.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_packet` is zero — a zero-bit packet makes every
    /// bit-denominated ratio meaningless.
    pub fn new(bits_per_packet: u64, max_retries: u32) -> Self {
        assert!(bits_per_packet > 0, "packets must carry bits");
        Self {
            bits_per_packet,
            max_retries,
            ..Self::default()
        }
    }

    /// Feeds the outcome of one transmission attempt; returns whether the
    /// link layer considers the packet closed (delivered or abandoned).
    pub fn attempt(&mut self, error_free: bool) -> bool {
        self.attempts += 1;
        if error_free {
            self.delivered += 1;
            self.current_tries = 0;
            true
        } else if self.current_tries >= self.max_retries {
            self.gave_up += 1;
            self.current_tries = 0;
            true
        } else {
            self.current_tries += 1;
            false
        }
    }

    /// Packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Transmission attempts made (including retransmissions).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Packets abandoned after exhausting retries.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// The packet size this session was configured with, in bits.
    pub fn bits_per_packet(&self) -> u64 {
        self.bits_per_packet
    }

    /// Useful payload bits delivered so far.
    pub fn bits_delivered(&self) -> u64 {
        self.delivered * self.bits_per_packet
    }

    /// Total bits put on the air, including every retransmission.
    pub fn bits_attempted(&self) -> u64 {
        self.attempts * self.bits_per_packet
    }

    /// Useful bits delivered per bit transmitted — the goodput ratio ARQ
    /// loses to whole-packet retransmission and PPR recovers.
    pub fn efficiency(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.bits_delivered() as f64 / self.bits_attempted() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_band_is_sensible() {
        // The (1e-7, 1e-5) band on ~1e4-bit packets spans roughly
        // 90%..99.9% delivery - the "extra margin" §4.2 describes.
        let hi = packet_success_probability(10_000, 1e-5);
        let lo = packet_success_probability(10_000, 1e-7);
        assert!(hi > 0.88 && hi < 0.92, "at 1e-5: {hi}");
        assert!(lo > 0.998, "at 1e-7: {lo}");
    }

    #[test]
    fn success_probability_edges() {
        assert_eq!(packet_success_probability(100, 0.0), 1.0);
        assert!(packet_success_probability(100, 1.0) < 1e-30);
    }

    #[test]
    fn success_probability_survives_giant_packets() {
        // Regression: `powi(bits as i32)` wrapped negative past 2^31 and
        // produced "probabilities" above 1.
        let bits = u32::MAX as u64 + 1;
        let p = packet_success_probability(bits, 1e-10);
        assert!(p > 0.0 && p <= 1.0, "p = {p}");
        // 2^32 bits at 1e-10 BER: ~0.65 expected delivery.
        assert!((p - (-(bits as f64 * 1e-10)).exp()).abs() < 1e-3);
        // More bits can only hurt.
        assert!(p < packet_success_probability(10_000, 1e-10));
    }

    #[test]
    fn session_counts_retransmissions() {
        let mut s = ArqSession::new(1000, 3);
        assert!(!s.attempt(false));
        assert!(!s.attempt(false));
        assert!(s.attempt(true));
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.attempts(), 3);
        assert!((s.efficiency() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn session_gives_up_after_max_retries() {
        let mut s = ArqSession::new(1000, 2);
        assert!(!s.attempt(false)); // try 1 fails
        assert!(!s.attempt(false)); // retry 1 fails
        assert!(s.attempt(false)); // retry 2 fails -> abandoned
        assert_eq!(s.gave_up(), 1);
        assert_eq!(s.delivered(), 0);
        // Next packet starts fresh.
        assert!(s.attempt(true));
        assert_eq!(s.delivered(), 1);
    }

    #[test]
    fn empty_session_efficiency_zero() {
        assert_eq!(ArqSession::new(100, 1).efficiency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "carry bits")]
    fn zero_bit_packets_rejected() {
        let _ = ArqSession::new(0, 3);
    }

    #[test]
    fn bit_accounting_tracks_attempts() {
        let mut s = ArqSession::new(500, 3);
        assert!(!s.attempt(false));
        assert!(s.attempt(true));
        assert_eq!(s.bits_per_packet(), 500);
        assert_eq!(s.bits_delivered(), 500);
        assert_eq!(s.bits_attempted(), 1000);
        assert!((s.efficiency() - 0.5).abs() < 1e-12);
    }
}
