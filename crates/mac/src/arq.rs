//! Conventional Automatic Repeat-reQuest — the baseline link layer.
//!
//! "Conventional ARQ requires the retransmission of the entire packet in
//! the event of any bit error" (§4). This module models that policy and
//! derives the PBER thresholds SoftRate uses: for packets around 10⁴ bits,
//! a per-packet BER of 10⁻⁵ still delivers ~90% of packets while 10⁻⁷
//! delivers ~99.9%, which is why the paper's target band is (10⁻⁷, 10⁻⁵).

/// Expected probability that a packet of `bits` decodes error-free at a
/// uniform per-bit error rate `ber`.
///
/// # Example
///
/// ```
/// use wilis_mac::arq::packet_success_probability;
/// let p = packet_success_probability(10_000, 1e-5);
/// assert!((p - 0.905).abs() < 0.01);
/// ```
pub fn packet_success_probability(bits: u64, ber: f64) -> f64 {
    (1.0 - ber).powi(bits as i32)
}

/// Stop-and-wait ARQ accounting over a sequence of transmission attempts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArqSession {
    delivered: u64,
    attempts: u64,
    gave_up: u64,
    bits_per_packet: u64,
    max_retries: u32,
    /// Retries used for the packet currently in flight.
    current_tries: u32,
}

impl ArqSession {
    /// A session delivering packets of `bits_per_packet` bits, abandoning
    /// a packet after `max_retries` failed retransmissions.
    pub fn new(bits_per_packet: u64, max_retries: u32) -> Self {
        Self {
            bits_per_packet,
            max_retries,
            ..Self::default()
        }
    }

    /// Feeds the outcome of one transmission attempt; returns whether the
    /// link layer considers the packet closed (delivered or abandoned).
    pub fn attempt(&mut self, error_free: bool) -> bool {
        self.attempts += 1;
        if error_free {
            self.delivered += 1;
            self.current_tries = 0;
            true
        } else if self.current_tries >= self.max_retries {
            self.gave_up += 1;
            self.current_tries = 0;
            true
        } else {
            self.current_tries += 1;
            false
        }
    }

    /// Packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Transmission attempts made (including retransmissions).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Packets abandoned after exhausting retries.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Useful bits delivered per bit transmitted — the efficiency ARQ
    /// loses to whole-packet retransmission and PPR recovers.
    pub fn efficiency(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        (self.delivered * self.bits_per_packet) as f64
            / (self.attempts * self.bits_per_packet) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_band_is_sensible() {
        // The (1e-7, 1e-5) band on ~1e4-bit packets spans roughly
        // 90%..99.9% delivery - the "extra margin" §4.2 describes.
        let hi = packet_success_probability(10_000, 1e-5);
        let lo = packet_success_probability(10_000, 1e-7);
        assert!(hi > 0.88 && hi < 0.92, "at 1e-5: {hi}");
        assert!(lo > 0.998, "at 1e-7: {lo}");
    }

    #[test]
    fn success_probability_edges() {
        assert_eq!(packet_success_probability(100, 0.0), 1.0);
        assert!(packet_success_probability(100, 1.0) < 1e-30);
    }

    #[test]
    fn session_counts_retransmissions() {
        let mut s = ArqSession::new(1000, 3);
        assert!(!s.attempt(false));
        assert!(!s.attempt(false));
        assert!(s.attempt(true));
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.attempts(), 3);
        assert!((s.efficiency() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn session_gives_up_after_max_retries() {
        let mut s = ArqSession::new(1000, 2);
        assert!(!s.attempt(false)); // try 1 fails
        assert!(!s.attempt(false)); // retry 1 fails
        assert!(s.attempt(false)); // retry 2 fails -> abandoned
        assert_eq!(s.gave_up(), 1);
        assert_eq!(s.delivered(), 0);
        // Next packet starts fresh.
        assert!(s.attempt(true));
        assert_eq!(s.delivered(), 1);
    }

    #[test]
    fn empty_session_efficiency_zero() {
        assert_eq!(ArqSession::new(100, 1).efficiency(), 0.0);
    }
}
