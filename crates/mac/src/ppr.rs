//! Partial Packet Recovery: retransmit only low-confidence chunks.
//!
//! PPR (the paper's reference \[17\]) "uses per-bit BER estimates … to
//! determine the bits to be retransmitted, improving the efficiency of the
//! conventional Link Layer's ARQ mechanism". Given the per-bit SoftPHY
//! hints of a corrupted packet, the receiver requests retransmission of
//! just the chunks containing suspect bits instead of the whole packet.

/// PPR policy: chunk geometry and the hint level below which a bit is
/// suspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PprConfig {
    /// Bits per retransmission chunk.
    pub chunk_bits: usize,
    /// Bits with hints strictly below this are suspect.
    pub hint_threshold: u16,
}

impl PprConfig {
    /// A policy with the given chunk size and threshold.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bits` is zero.
    pub fn new(chunk_bits: usize, hint_threshold: u16) -> Self {
        assert!(chunk_bits > 0, "chunks must contain bits");
        Self {
            chunk_bits,
            hint_threshold,
        }
    }

    /// Marks the chunks to retransmit: `true` for every chunk containing
    /// at least one suspect bit.
    pub fn plan(&self, hints: &[u16]) -> Vec<bool> {
        let mut out = Vec::new();
        self.plan_into(hints, &mut out);
        out
    }

    /// Builds the retransmission plan into `out`, reusing its capacity —
    /// the allocation-free form [`crate::link::PprLink`] runs per packet.
    pub fn plan_into(&self, hints: &[u16], out: &mut Vec<bool>) {
        out.clear();
        out.extend(
            hints
                .chunks(self.chunk_bits)
                .map(|c| c.iter().any(|&h| h < self.hint_threshold)),
        );
    }
}

/// The outcome of applying a PPR plan against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PprOutcome {
    /// Total payload bits.
    pub total_bits: usize,
    /// Bits requested for retransmission.
    pub retransmitted_bits: usize,
    /// Actual bit errors covered by retransmitted chunks (repaired).
    pub repaired_errors: usize,
    /// Actual bit errors in chunks PPR decided to keep (missed).
    pub missed_errors: usize,
}

impl PprOutcome {
    /// Fraction of the packet retransmitted (conventional ARQ = 1.0
    /// whenever any error exists).
    pub fn retransmit_fraction(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.retransmitted_bits as f64 / self.total_bits as f64
        }
    }

    /// Whether the recovered packet is clean (all true errors repaired).
    pub fn recovered(&self) -> bool {
        self.missed_errors == 0
    }
}

/// Evaluates a plan against the true error positions.
///
/// # Panics
///
/// Panics if `errors.len()` is inconsistent with the plan/chunk geometry.
pub fn evaluate(config: &PprConfig, plan: &[bool], errors: &[bool]) -> PprOutcome {
    let chunks = errors.len().div_ceil(config.chunk_bits);
    assert_eq!(plan.len(), chunks, "plan does not match packet geometry");
    let mut outcome = PprOutcome {
        total_bits: errors.len(),
        ..PprOutcome::default()
    };
    for (i, chunk_errors) in errors.chunks(config.chunk_bits).enumerate() {
        let errs = chunk_errors.iter().filter(|&&e| e).count();
        if plan[i] {
            outcome.retransmitted_bits += chunk_errors.len();
            outcome.repaired_errors += errs;
        } else {
            outcome.missed_errors += errs;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_marks_only_suspect_chunks() {
        let cfg = PprConfig::new(4, 10);
        let hints = [60, 60, 60, 60, 60, 3, 60, 60, 60, 60, 60, 60];
        assert_eq!(cfg.plan(&hints), vec![false, true, false]);
    }

    #[test]
    fn evaluate_counts_repairs_and_misses() {
        let cfg = PprConfig::new(4, 10);
        let hints = [60, 60, 60, 60, 5, 60, 60, 60];
        let plan = cfg.plan(&hints);
        // True errors: one in the flagged chunk, one in the clean chunk.
        let mut errors = vec![false; 8];
        errors[4] = true; // flagged chunk - repaired
        errors[1] = true; // unflagged chunk - missed
        let out = evaluate(&cfg, &plan, &errors);
        assert_eq!(out.repaired_errors, 1);
        assert_eq!(out.missed_errors, 1);
        assert_eq!(out.retransmitted_bits, 4);
        assert!(!out.recovered());
        assert!((out.retransmit_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_hints_give_cheap_recovery() {
        // When hints perfectly identify errors, PPR retransmits only the
        // erroneous chunks and always recovers.
        let cfg = PprConfig::new(8, 10);
        let n = 64;
        let mut hints = vec![60u16; n];
        let mut errors = vec![false; n];
        for &e in &[5usize, 40] {
            hints[e] = 1;
            errors[e] = true;
        }
        let plan = cfg.plan(&hints);
        let out = evaluate(&cfg, &plan, &errors);
        assert!(out.recovered());
        assert_eq!(out.retransmitted_bits, 16, "two chunks of eight");
        assert!(out.retransmit_fraction() < 0.3, "far cheaper than full ARQ");
    }

    #[test]
    fn threshold_zero_never_retransmits() {
        let cfg = PprConfig::new(4, 0);
        let plan = cfg.plan(&[0, 0, 0, 0]);
        assert_eq!(plan, vec![false], "no hint is below zero");
    }

    #[test]
    fn ragged_tail_chunk_handled() {
        let cfg = PprConfig::new(4, 10);
        let hints = [60, 60, 60, 60, 2]; // 5 bits: one full chunk + tail
        let plan = cfg.plan(&hints);
        assert_eq!(plan.len(), 2);
        let mut errors = vec![false; 5];
        errors[4] = true;
        let out = evaluate(&cfg, &plan, &errors);
        assert_eq!(out.retransmitted_bits, 1, "tail chunk has one bit");
        assert!(out.recovered());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_plan_panics() {
        let cfg = PprConfig::new(4, 10);
        let _ = evaluate(&cfg, &[true], &[false; 12]);
    }
}
