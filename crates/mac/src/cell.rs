//! Multi-node contention cells: MAC policies for a shared medium.
//!
//! PR 2 put *one* link session on the scenario grid; this module models
//! the step the ROADMAP left open — several sessions sharing one channel,
//! in the modeling lineage of *Modelling MAC-Layer Communications in
//! Wireless Systems* (Cerone/Hennessy/Merro): the unit of evaluation is
//! the **cell**, a slotted shared medium where N nodes contend, collide,
//! and capture.
//!
//! The protocol surface is one trait, [`ContentionPolicy`]: per slot, a
//! node with a pending packet decides [`TxDecision::Transmit`] or
//! [`TxDecision::Defer`] from what it can sense (the carrier) and its own
//! [`BackoffState`]; after transmitting it learns whether the attempt was
//! acknowledged and adapts. Three stock policies span the classic design
//! space:
//!
//! * [`SlottedAloha`] — transmit with probability `p`, sense nothing: the
//!   lower anchor every textbook starts from.
//! * [`CsmaBackoff`] — carrier sense with binary exponential backoff, the
//!   DCF-shaped middle ground.
//! * [`TdmaOracle`] — a genie scheduler that hands each node its own slot:
//!   zero collisions by construction, the upper bound contending policies
//!   are judged against.
//!
//! Policies are engine-agnostic: the cell engine in `wilis::scenario`
//! owns the slot loop, the capture model, and the per-node
//! [`LinkPolicy`](crate::LinkPolicy) sessions; this module owns the
//! decisions and the cell-level accounting ([`CellMetrics`]: aggregate
//! goodput, Jain fairness, collision and idle fractions).

use wilis_fxp::rng::SmallRng;

/// A node's decision for one slot of the shared medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxDecision {
    /// Put the head-of-queue packet on the air this slot.
    Transmit,
    /// Stay silent this slot.
    Defer,
}

/// Per-node backoff machinery, owned by the cell engine and threaded
/// through every [`ContentionPolicy`] call.
///
/// Keeping the counter, stage, and RNG outside the policy keeps policies
/// trivially resettable and makes the randomness audit easy: a node's
/// entire decision stream is a pure function of the seed its state was
/// built from.
#[derive(Debug, Clone)]
pub struct BackoffState {
    /// Slots this node must still defer before it may transmit (CSMA).
    pub counter: u32,
    /// Current backoff stage (doubles the contention window per
    /// collision).
    pub stage: u32,
    /// The node's private decision RNG — a pure function of the cell seed
    /// and node index.
    pub rng: SmallRng,
}

impl BackoffState {
    /// Fresh backoff state seeded for one node.
    pub fn new(seed: u64) -> Self {
        Self {
            counter: 0,
            stage: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

/// What a node can see at the start of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotView {
    /// The slot index within the cell run.
    pub slot: u64,
    /// This node's index within the cell.
    pub node: usize,
    /// Number of nodes in the cell.
    pub nodes: usize,
    /// Whether carrier sense reads the medium busy: some *other* node
    /// transmitted in the previous slot (a node never defers to its own
    /// transmission).
    pub carrier_busy: bool,
}

/// A slot-level medium-access policy for one node of a contention cell.
///
/// One instance drives one node (the engine never shares instances across
/// nodes or threads). [`ContentionPolicy::decide`] is called only when
/// the node has a packet pending; [`ContentionPolicy::acked`] is called
/// after each of the node's own transmissions with the link-layer truth —
/// `true` iff the packet survived the medium *and* decoded clean (the
/// acknowledgement a real MAC would wait for).
pub trait ContentionPolicy {
    /// The registry name of this policy (`"aloha"`, `"csma"`, `"tdma"`).
    fn name(&self) -> &'static str;

    /// Decides this slot's action for a node with a pending packet.
    fn decide(&mut self, view: &SlotView, backoff: &mut BackoffState) -> TxDecision;

    /// Feedback after this node transmitted: `true` iff the attempt was
    /// acknowledged (survived the medium and decoded error-free).
    fn acked(&mut self, _acked: bool, _backoff: &mut BackoffState) {}

    /// Clears policy and backoff state for a fresh cell run.
    fn reset(&mut self, backoff: &mut BackoffState) {
        backoff.counter = 0;
        backoff.stage = 0;
    }
}

/// Slotted ALOHA: transmit each slot with probability `p`, never sense
/// the carrier. Peak channel utilization is the textbook `1/e` at
/// `p ≈ 1/N` under saturation — the baseline CSMA improves on.
#[derive(Debug, Clone)]
pub struct SlottedAloha {
    p: f64,
}

impl SlottedAloha {
    /// An ALOHA policy transmitting with per-slot probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < p <= 1.0` — a node that can never transmit is
    /// a configuration bug, not a policy.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "transmit probability must be in (0, 1]"
        );
        Self { p }
    }

    /// The configured per-slot transmit probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl ContentionPolicy for SlottedAloha {
    fn name(&self) -> &'static str {
        "aloha"
    }

    fn decide(&mut self, _view: &SlotView, backoff: &mut BackoffState) -> TxDecision {
        if backoff.rng.gen_bool(self.p) {
            TxDecision::Transmit
        } else {
            TxDecision::Defer
        }
    }
}

/// Carrier-sense multiple access with binary exponential backoff, DCF
/// style: defer while the medium is busy (the counter freezes), count the
/// backoff down over idle slots, transmit at zero. A missing
/// acknowledgement doubles the contention window up to `cw_max` and draws
/// a fresh uniform backoff; an acknowledgement resets both.
///
/// A solo node (nothing to collide with, no busy carrier) transmits every
/// slot while its packets keep decoding — which is exactly what makes a
/// 1-node CSMA cell a strict generalization of the point-to-point link
/// path, attempt for attempt.
///
/// Like plain BEB (and unlike full DCF, which draws a post-success
/// backoff), this policy exhibits the textbook **channel capture
/// effect** under saturation: the node that wins a round resets its
/// window to zero and occupies every following slot, while the losers'
/// frozen counters never drain. Aggregate goodput approaches the TDMA
/// bound but Jain's fairness index collapses toward `1/N` — visible
/// directly in [`CellMetrics::jain_index`], which is exactly the kind of
/// pathology the cell metrics exist to expose.
#[derive(Debug, Clone)]
pub struct CsmaBackoff {
    cw_min: u32,
    cw_max: u32,
}

impl CsmaBackoff {
    /// A CSMA policy with contention windows growing from `cw_min` to
    /// `cw_max` slots.
    ///
    /// # Panics
    ///
    /// Panics if `cw_min` is zero or the windows are reversed.
    pub fn new(cw_min: u32, cw_max: u32) -> Self {
        assert!(cw_min > 0, "contention window needs at least one slot");
        assert!(cw_min <= cw_max, "reversed contention windows");
        Self { cw_min, cw_max }
    }

    /// The contention window at a given backoff stage (computed in u64 so
    /// deep stages saturate at `cw_max` instead of wrapping).
    fn window(&self, stage: u32) -> u32 {
        (u64::from(self.cw_min) << stage.min(32)).min(u64::from(self.cw_max)) as u32
    }
}

impl ContentionPolicy for CsmaBackoff {
    fn name(&self) -> &'static str {
        "csma"
    }

    fn decide(&mut self, view: &SlotView, backoff: &mut BackoffState) -> TxDecision {
        if view.carrier_busy {
            // Freeze: the counter does not advance while the medium is
            // occupied.
            return TxDecision::Defer;
        }
        if backoff.counter > 0 {
            backoff.counter -= 1;
            return TxDecision::Defer;
        }
        TxDecision::Transmit
    }

    fn acked(&mut self, acked: bool, backoff: &mut BackoffState) {
        if acked {
            backoff.stage = 0;
            backoff.counter = 0;
        } else {
            backoff.stage = backoff.stage.saturating_add(1);
            let cw = self.window(backoff.stage);
            backoff.counter = (backoff.rng.next_u64() % u64::from(cw)) as u32;
        }
    }
}

/// The TDMA genie: slot `t` belongs to node `t mod N`, nobody else
/// speaks. Collision-free by construction, so its goodput at a given SNR
/// upper-bounds every *contending* policy on the same cell — the oracle
/// the scenario tests pin.
#[derive(Debug, Clone, Default)]
pub struct TdmaOracle;

impl ContentionPolicy for TdmaOracle {
    fn name(&self) -> &'static str {
        "tdma"
    }

    fn decide(&mut self, view: &SlotView, _backoff: &mut BackoffState) -> TxDecision {
        if view.slot % view.nodes as u64 == view.node as u64 {
            TxDecision::Transmit
        } else {
            TxDecision::Defer
        }
    }
}

/// Per-node counters of one cell run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeCellMetrics {
    /// Transmissions this node put on the air.
    pub attempts: u64,
    /// Attempts destroyed by the medium (collision, or losing a capture).
    pub collisions: u64,
    /// Packets this node's link layer closed as delivered.
    pub delivered: u64,
    /// Useful payload bits delivered.
    pub bits_delivered: u64,
    /// Payload bits put on the air (including collided attempts).
    pub bits_transmitted: u64,
}

/// Cell-level metrics of one contention scenario — the shared-medium
/// counters the point-to-point [`LinkMetrics`](crate::LinkMetrics) has no
/// vocabulary for.
///
/// All derived figures are pure functions of integer counters, so cell
/// sweeps inherit the engine's bit-identical determinism contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellMetrics {
    /// Contending nodes in the cell.
    pub nodes: u32,
    /// Slots simulated.
    pub slots: u64,
    /// Payload bits per packet (one packet fits one slot).
    pub payload_bits: u64,
    /// Slots in which nobody transmitted.
    pub idle_slots: u64,
    /// Slots with exactly one transmitter.
    pub clean_slots: u64,
    /// Contended slots resolved by capture (strongest arrival survived).
    pub capture_slots: u64,
    /// Contended slots in which every transmission was destroyed.
    pub collision_slots: u64,
    /// Per-node counters, indexed by node.
    pub per_node: Vec<NodeCellMetrics>,
}

impl CellMetrics {
    /// Fresh metrics for a cell of `nodes` nodes running `slots` slots.
    pub fn new(nodes: u32, slots: u64, payload_bits: u64) -> Self {
        Self {
            nodes,
            slots,
            payload_bits,
            per_node: vec![NodeCellMetrics::default(); nodes as usize],
            ..Self::default()
        }
    }

    /// Total transmissions across nodes.
    pub fn attempts(&self) -> u64 {
        self.per_node.iter().map(|n| n.attempts).sum()
    }

    /// Total useful payload bits delivered across nodes.
    pub fn bits_delivered(&self) -> u64 {
        self.per_node.iter().map(|n| n.bits_delivered).sum()
    }

    /// Total payload bits put on the air across nodes.
    pub fn bits_transmitted(&self) -> u64 {
        self.per_node.iter().map(|n| n.bits_transmitted).sum()
    }

    /// Aggregate goodput: useful bits delivered per bit of channel
    /// capacity (`slots × payload_bits`) — the utilization figure slotted
    /// MAC analysis normalizes everything to (ALOHA peaks at `1/e`, the
    /// TDMA genie approaches its clean delivery rate).
    pub fn aggregate_goodput(&self) -> f64 {
        let capacity = self.slots * self.payload_bits;
        if capacity == 0 {
            0.0
        } else {
            self.bits_delivered() as f64 / capacity as f64
        }
    }

    /// Jain's fairness index over per-node delivered bits:
    /// `(Σx)² / (N·Σx²)`, 1.0 for a perfectly even split, `1/N` when one
    /// node starves all others. An idle cell (nothing delivered anywhere)
    /// is vacuously fair: 1.0.
    pub fn jain_index(&self) -> f64 {
        let n = self.per_node.len();
        if n == 0 {
            return 1.0;
        }
        let sum: f64 = self.per_node.iter().map(|m| m.bits_delivered as f64).sum();
        if sum == 0.0 {
            return 1.0;
        }
        let sum_sq: f64 = self
            .per_node
            .iter()
            .map(|m| {
                let x = m.bits_delivered as f64;
                x * x
            })
            .sum();
        (sum * sum) / (n as f64 * sum_sq)
    }

    /// Fraction of slots lost to full collisions.
    pub fn collision_fraction(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.collision_slots as f64 / self.slots as f64
        }
    }

    /// Fraction of slots the channel sat idle.
    pub fn idle_fraction(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.idle_slots as f64 / self.slots as f64
        }
    }

    /// Fraction of slots carrying a transmission that reached the
    /// receiver (clean or captured).
    pub fn busy_fraction(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            (self.clean_slots + self.capture_slots) as f64 / self.slots as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(slot: u64, node: usize, nodes: usize, busy: bool) -> SlotView {
        SlotView {
            slot,
            node,
            nodes,
            carrier_busy: busy,
        }
    }

    #[test]
    fn aloha_is_a_coin_flip_at_the_configured_rate() {
        let mut aloha = SlottedAloha::new(0.3);
        let mut backoff = BackoffState::new(7);
        let n = 10_000;
        let tx = (0..n)
            .filter(|&s| aloha.decide(&view(s, 0, 4, false), &mut backoff) == TxDecision::Transmit)
            .count();
        let rate = tx as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn aloha_ignores_the_carrier() {
        let mut aloha = SlottedAloha::new(1.0);
        let mut backoff = BackoffState::new(1);
        assert_eq!(
            aloha.decide(&view(0, 0, 2, true), &mut backoff),
            TxDecision::Transmit,
            "p=1 ALOHA transmits even into a busy medium"
        );
    }

    #[test]
    #[should_panic(expected = "transmit probability")]
    fn aloha_rejects_zero_probability() {
        let _ = SlottedAloha::new(0.0);
    }

    #[test]
    fn csma_defers_while_busy_and_counts_down_when_idle() {
        let mut csma = CsmaBackoff::new(2, 8);
        let mut backoff = BackoffState::new(3);
        backoff.counter = 2;
        // Busy: freeze (counter untouched).
        assert_eq!(
            csma.decide(&view(0, 0, 2, true), &mut backoff),
            TxDecision::Defer
        );
        assert_eq!(backoff.counter, 2);
        // Idle: count down, still deferring.
        assert_eq!(
            csma.decide(&view(1, 0, 2, false), &mut backoff),
            TxDecision::Defer
        );
        assert_eq!(
            csma.decide(&view(2, 0, 2, false), &mut backoff),
            TxDecision::Defer
        );
        assert_eq!(backoff.counter, 0);
        // Counter exhausted: transmit.
        assert_eq!(
            csma.decide(&view(3, 0, 2, false), &mut backoff),
            TxDecision::Transmit
        );
    }

    #[test]
    fn csma_backoff_doubles_on_loss_and_resets_on_ack() {
        let mut csma = CsmaBackoff::new(4, 64);
        let mut backoff = BackoffState::new(9);
        for expected_cap in [8, 16, 32, 64, 64] {
            csma.acked(false, &mut backoff);
            assert!(
                backoff.counter < expected_cap,
                "counter {} outside stage window {}",
                backoff.counter,
                expected_cap
            );
        }
        assert_eq!(backoff.stage, 5);
        csma.acked(true, &mut backoff);
        assert_eq!(backoff.stage, 0);
        assert_eq!(backoff.counter, 0);
    }

    #[test]
    fn solo_csma_transmits_every_slot_while_acked() {
        // The strict-generalization precondition: an unopposed CSMA node
        // whose packets keep decoding behaves exactly like the
        // point-to-point loop — one transmission per slot.
        let mut csma = CsmaBackoff::new(2, 64);
        let mut backoff = BackoffState::new(11);
        for slot in 0..100 {
            assert_eq!(
                csma.decide(&view(slot, 0, 1, false), &mut backoff),
                TxDecision::Transmit
            );
            csma.acked(true, &mut backoff);
        }
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn csma_rejects_reversed_windows() {
        let _ = CsmaBackoff::new(16, 4);
    }

    #[test]
    fn tdma_owns_every_nth_slot_and_never_overlaps() {
        let nodes = 3usize;
        let mut policies: Vec<TdmaOracle> = (0..nodes).map(|_| TdmaOracle).collect();
        let mut backoffs: Vec<BackoffState> =
            (0..nodes).map(|n| BackoffState::new(n as u64)).collect();
        for slot in 0..30u64 {
            let txs: Vec<usize> = (0..nodes)
                .filter(|&n| {
                    policies[n].decide(&view(slot, n, nodes, false), &mut backoffs[n])
                        == TxDecision::Transmit
                })
                .collect();
            assert_eq!(txs, vec![(slot % nodes as u64) as usize]);
        }
    }

    #[test]
    fn backoff_state_is_seed_pure() {
        let mut a = BackoffState::new(42);
        let mut b = BackoffState::new(42);
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
    }

    #[test]
    fn reset_clears_backoff() {
        let mut csma = CsmaBackoff::new(4, 64);
        let mut backoff = BackoffState::new(1);
        csma.acked(false, &mut backoff);
        csma.reset(&mut backoff);
        assert_eq!((backoff.counter, backoff.stage), (0, 0));
    }

    #[test]
    fn cell_metrics_goodput_and_fractions() {
        let mut m = CellMetrics::new(2, 10, 100);
        m.idle_slots = 2;
        m.clean_slots = 5;
        m.capture_slots = 1;
        m.collision_slots = 2;
        m.per_node[0].bits_delivered = 400;
        m.per_node[1].bits_delivered = 200;
        m.per_node[0].attempts = 6;
        m.per_node[1].attempts = 4;
        assert!((m.aggregate_goodput() - 0.6).abs() < 1e-12);
        assert!((m.collision_fraction() - 0.2).abs() < 1e-12);
        assert!((m.idle_fraction() - 0.2).abs() < 1e-12);
        assert!((m.busy_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(m.attempts(), 10);
        assert_eq!(m.bits_delivered(), 600);
    }

    #[test]
    fn jain_index_bounds() {
        let mut m = CellMetrics::new(4, 10, 100);
        // Idle cell: vacuously fair.
        assert_eq!(m.jain_index(), 1.0);
        // Perfectly even split.
        for node in &mut m.per_node {
            node.bits_delivered = 250;
        }
        assert!((m.jain_index() - 1.0).abs() < 1e-12);
        // One node hogs everything: 1/N.
        for (i, node) in m.per_node.iter_mut().enumerate() {
            node.bits_delivered = if i == 0 { 1000 } else { 0 };
        }
        assert!((m.jain_index() - 0.25).abs() < 1e-12);
    }
}
