//! Randomized property tests on the link layer (deterministic,
//! self-seeded — the offline analog of a proptest suite, following
//! `wilis_channel`'s style).

use wilis_fxp::rng::SmallRng;

use crate::arq::{packet_success_probability, ArqSession};
use crate::ppr::{evaluate, PprConfig};

/// ARQ efficiency stays a ratio in [0, 1] for any attempt sequence.
#[test]
fn arq_efficiency_is_a_ratio() {
    let mut rng = SmallRng::seed_from_u64(0x3AC1);
    for _ in 0..64 {
        let bits = rng.gen_i64(1, 10_000) as u64;
        let retries = rng.gen_i64(0, 6) as u32;
        let mut s = ArqSession::new(bits, retries);
        for _ in 0..rng.gen_i64(1, 200) {
            let _ = s.attempt(rng.gen_bit() == 1);
        }
        let e = s.efficiency();
        assert!((0.0..=1.0).contains(&e), "efficiency {e}");
        assert_eq!(s.bits_attempted(), s.attempts() * bits);
        assert!(s.bits_delivered() <= s.bits_attempted());
    }
}

/// Packet success probability is monotone decreasing in both the packet
/// size and the bit error rate, and always a probability — including for
/// packet sizes past the `i32` range that used to wrap `powi`.
#[test]
fn success_probability_monotone_and_bounded() {
    let mut rng = SmallRng::seed_from_u64(0x3AC2);
    for _ in 0..64 {
        let bits_a = rng.gen_i64(1, 1 << 20) as u64;
        let bits_b = bits_a + rng.gen_i64(1, 1 << 34) as u64; // may exceed 2^31
        let ber_a = 10f64.powf(rng.gen_range(-9.0..-1.0));
        let ber_b = (ber_a * rng.gen_range(1.5..100.0)).min(1.0);
        let p = packet_success_probability(bits_a, ber_a);
        assert!((0.0..=1.0).contains(&p), "p {p}");
        assert!(
            packet_success_probability(bits_b, ber_a) <= p,
            "more bits cannot help ({bits_a} vs {bits_b} at {ber_a})"
        );
        assert!(
            packet_success_probability(bits_a, ber_b) <= p,
            "worse BER cannot help ({ber_a} vs {ber_b} at {bits_a})"
        );
    }
}

/// PPR's retransmit fraction is a ratio in [0, 1], and `recovered()` holds
/// exactly when every true error lies in a retransmitted chunk.
#[test]
fn ppr_outcome_consistent_with_plan() {
    let mut rng = SmallRng::seed_from_u64(0x3AC3);
    for _ in 0..64 {
        let n = rng.gen_i64(1, 600) as usize;
        let chunk = rng.gen_i64(1, 80) as usize;
        let threshold = rng.gen_i64(0, 64) as u16;
        let cfg = PprConfig::new(chunk, threshold);
        // Random hints; errors correlate with low hints only sometimes, so
        // both recovery and miss cases are exercised.
        let hints: Vec<u16> = (0..n).map(|_| rng.gen_i64(0, 63) as u16).collect();
        let errors: Vec<bool> = hints
            .iter()
            .map(|&h| {
                let p = if h < 16 { 0.4 } else { 0.02 };
                rng.gen_range(0.0..1.0) < p
            })
            .collect();
        let plan = cfg.plan(&hints);
        let out = evaluate(&cfg, &plan, &errors);
        let f = out.retransmit_fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {f}");
        assert_eq!(out.total_bits, n);
        let every_error_covered = errors
            .chunks(chunk)
            .zip(&plan)
            .all(|(errs, &sent)| sent || errs.iter().all(|&e| !e));
        assert_eq!(
            out.recovered(),
            every_error_covered,
            "recovered() must mean every true error fell in a retransmitted chunk"
        );
        assert_eq!(
            out.repaired_errors + out.missed_errors,
            errors.iter().filter(|&&e| e).count()
        );
    }
}
