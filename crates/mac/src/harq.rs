//! Hybrid ARQ with soft-combining: stateful retry that keeps what a
//! failed decode learned.
//!
//! Plain ARQ ([`crate::ArqLink`]) throws away the soft information of a
//! failed attempt and starts over. HARQ retains the attempt's
//! post-depuncture mother-code LLR plane and **combines** it with each
//! retransmission before re-entering the decoder:
//!
//! * **Chase combining** ([`HarqMode::Chase`]) — every retransmission is
//!   the identical punctured block; planes add coherently
//!   ([`wilis_fec::combine_llrs_into`], saturating), so the combined
//!   block decodes as if received at a higher SNR.
//! * **Incremental redundancy** ([`HarqMode::IncrementalRedundancy`]) —
//!   each retransmission cycles a different puncture-mask *phase*
//!   ([`wilis_fec::Puncturer::with_phase`]) through an explicit schedule,
//!   so successive attempts reveal previously-stolen mother bits and the
//!   combined block sees a monotonically lower effective code rate.
//!
//! The policy splits in two so the scenario engine can drive the PHY:
//! [`HarqCore`] is the per-policy scratch (the retained plane, the
//! attempt counter, the phase schedule) the engine reaches through
//! [`crate::LinkPolicy::harq`]; [`HarqLink`] wraps it in the
//! attempt-budget state machine and the metrics — delivered on the first
//! attempt, *recovered* by combining, or exhausted are distinct
//! outcomes, with an attempts histogram and the post-IR effective code
//! rate accumulated per closed packet.
//!
//! Configuration mistakes (zero attempt budget, a phase outside the
//! rate's mask period, a schedule that does not start at phase 0) are
//! *stored*, not panicked: registry factories are infallible, so
//! [`HarqLink`] carries the error string and the engine's preflight
//! surfaces it as `InvalidConfig` through
//! [`crate::LinkPolicy::config_error`].

use wilis_fec::{combine_llrs_into, CodeRate, Llr};
use wilis_phy::RxResult;

use crate::arq::ArqSession;
use crate::link::{LinkContext, LinkMetrics, LinkPolicy, LinkStatus, LinkVerdict};

/// How retransmissions relate to the first attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarqMode {
    /// Every attempt repeats the identical phase-0 punctured block.
    Chase,
    /// Each attempt cycles the next puncture phase from the schedule.
    IncrementalRedundancy,
}

/// The HARQ knobs: mode, total attempt budget, whether the combiner is
/// armed, and the IR phase schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarqConfig {
    mode: HarqMode,
    attempts: u32,
    combining: bool,
    schedule: Vec<usize>,
}

impl HarqConfig {
    /// Chase combining with a total budget of `attempts` transmissions
    /// (first attempt included).
    pub fn chase(attempts: u32) -> Self {
        Self {
            mode: HarqMode::Chase,
            attempts,
            combining: true,
            schedule: vec![0],
        }
    }

    /// Incremental redundancy cycling `schedule` (attempt `i` transmits
    /// puncture phase `schedule[i % schedule.len()]`).
    pub fn incremental(attempts: u32, schedule: Vec<usize>) -> Self {
        Self {
            mode: HarqMode::IncrementalRedundancy,
            attempts,
            combining: true,
            schedule,
        }
    }

    /// Arms or disarms the combiner. Disarmed, the policy degenerates to
    /// exactly [`crate::ArqLink`] with `attempts - 1` retries — the
    /// strict-generalization diagnostic the test suite pins down.
    pub fn with_combining(mut self, combining: bool) -> Self {
        self.combining = combining;
        self
    }

    /// The default IR phase schedule for `rate`: phases whose union
    /// covers the whole mask period in as few attempts as possible, so
    /// the effective rate reaches the 1/2 mother code fastest.
    pub fn default_ir_schedule(rate: CodeRate) -> Vec<usize> {
        match rate {
            // Rate 1/2 transmits every mother bit already; retransmission
            // can only repeat it (IR degenerates to Chase).
            CodeRate::Half => vec![0],
            // Mask 1110 rotated by 3 is 0111: union covers all four.
            CodeRate::TwoThirds => vec![0, 3],
            // Mask 110001... (110 001) rotated by 3 is 001111: union
            // covers all six.
            CodeRate::ThreeQuarters => vec![0, 3],
        }
    }

    /// The mode.
    pub fn mode(&self) -> HarqMode {
        self.mode
    }

    /// Total attempt budget (first transmission included).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Whether the combiner is armed.
    pub fn combining(&self) -> bool {
        self.combining
    }

    /// The IR phase schedule.
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// Checks the configuration against the code rate it will run at.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found:
    /// a zero attempt budget, an empty schedule, a schedule that does
    /// not start with phase 0 (the receiver of the *first* attempt must
    /// see the standard mask), or a phase outside the rate's mask
    /// period.
    pub fn validate(&self, rate: CodeRate) -> Result<(), String> {
        if self.attempts == 0 {
            return Err("HARQ attempt budget is zero: no packet could ever be sent".into());
        }
        if self.schedule.is_empty() {
            return Err("HARQ phase schedule is empty".into());
        }
        if self.schedule[0] != 0 {
            return Err(format!(
                "HARQ phase schedule must start at phase 0 (got {})",
                self.schedule[0]
            ));
        }
        let period = rate.mask().len();
        for &ph in &self.schedule {
            if ph >= period {
                return Err(format!(
                    "HARQ phase {ph} is outside the rate-{rate} mask period ({period})"
                ));
            }
        }
        Ok(())
    }

    /// The puncture phase attempt `attempt` (0-based) transmits.
    fn phase_for(&self, attempt: u32) -> usize {
        if self.combining && self.mode == HarqMode::IncrementalRedundancy {
            self.schedule[attempt as usize % self.schedule.len()]
        } else {
            0
        }
    }

    /// The effective code rate after `attempts_used` combined attempts:
    /// data bits per *distinct* mother-code position transmitted. Chase
    /// repeats one phase so this stays at `rate.value()`; IR unions the
    /// scheduled phases and drives it toward the 1/2 mother code.
    // lint: no_alloc
    pub fn effective_rate(&self, rate: CodeRate, attempts_used: u32) -> f64 {
        let mask = rate.mask();
        let period = mask.len();
        let mut cover: u32 = 0;
        for a in 0..attempts_used {
            let ph = self.phase_for(a);
            for (i, _) in mask.iter().enumerate() {
                if mask[(i + ph) % period] == 1 {
                    cover |= 1 << i;
                }
            }
        }
        let distinct = cover.count_ones();
        if distinct == 0 {
            rate.value()
        } else {
            (period as f64 / 2.0) / f64::from(distinct)
        }
    }
}

/// The per-policy scratch the scenario engine drives: the retained
/// mother-code LLR plane, the attempt counter of the open packet, and
/// the phase schedule. Reached through [`crate::LinkPolicy::harq`].
#[derive(Debug, Clone)]
pub struct HarqCore {
    config: HarqConfig,
    retained: Vec<Llr>,
    attempt: u32,
}

impl HarqCore {
    fn new(config: HarqConfig) -> Self {
        Self {
            config,
            retained: Vec::new(),
            attempt: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HarqConfig {
        &self.config
    }

    /// 0-based index of the attempt currently in flight.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The puncture phase the in-flight attempt must be transmitted (and
    /// front-end-received) at.
    pub fn tx_phase(&self) -> usize {
        self.config.phase_for(self.attempt)
    }

    /// Folds the in-flight attempt's fresh mother-code LLR plane into the
    /// retained one: the first attempt replaces, every retransmission
    /// saturating-adds ([`wilis_fec::combine_llrs_into`]). The combined
    /// plane is then read back through [`HarqCore::plane`] and re-entered
    /// into the decoder.
    ///
    /// # Panics
    ///
    /// Panics if a retransmission's plane length disagrees with the
    /// retained one (the packet geometry changed mid-session).
    // lint: no_alloc
    pub fn absorb(&mut self, fresh: &[Llr]) {
        if self.attempt == 0 {
            self.retained.clear();
            self.retained.extend_from_slice(fresh);
        } else {
            combine_llrs_into(&mut self.retained, fresh);
        }
    }

    /// The combined mother-code LLR plane of the open packet.
    pub fn plane(&self) -> &[Llr] {
        &self.retained
    }

    fn advance(&mut self) {
        self.attempt += 1;
    }

    fn close(&mut self) {
        self.attempt = 0;
    }
}

/// Number of attempts-histogram bins in [`LinkMetrics::attempts_hist`];
/// the last bin saturates.
pub const ATTEMPTS_HIST_BINS: usize = 8;

/// HARQ soft-combining as a sweep policy: stop-and-wait with an attempt
/// budget like [`crate::ArqLink`], but a failed attempt's LLR plane is
/// retained in the embedded [`HarqCore`] and combined with each
/// retransmission before re-decoding.
#[derive(Debug, Clone)]
pub struct HarqLink {
    core: HarqCore,
    session: ArqSession,
    rate: CodeRate,
    bits_per_packet: u64,
    retx_attempts: u64,
    retrying: bool,
    recovered: u64,
    attempts_hist: [u64; ATTEMPTS_HIST_BINS],
    effective_rate_sum: f64,
    config_error: Option<String>,
}

impl HarqLink {
    /// A HARQ policy for `bits_per_packet`-bit packets running `config`
    /// at code rate `rate`.
    ///
    /// Never panics on a bad configuration: the error is stored and
    /// surfaced through [`crate::LinkPolicy::config_error`] so the
    /// scenario engine's preflight can reject it as `InvalidConfig`.
    pub fn new(bits_per_packet: u64, config: HarqConfig, rate: CodeRate) -> Self {
        let mut config_error = config.validate(rate).err();
        if bits_per_packet == 0 && config_error.is_none() {
            config_error = Some("HARQ packets must carry bits".into());
        }
        // Budget `attempts` = 1 first transmission + (attempts - 1)
        // retries; clamp so a rejected zero-budget config still builds.
        let retries = config.attempts.max(1) - 1;
        Self {
            session: ArqSession::new(bits_per_packet.max(1), retries),
            rate,
            bits_per_packet,
            retx_attempts: 0,
            retrying: false,
            recovered: 0,
            attempts_hist: [0; ATTEMPTS_HIST_BINS],
            effective_rate_sum: 0.0,
            core: HarqCore::new(config),
            config_error,
        }
    }

    /// The underlying accounting session.
    pub fn session(&self) -> &ArqSession {
        &self.session
    }

    /// The combiner core (also reachable via [`crate::LinkPolicy::harq`],
    /// which additionally gates on combining being armed).
    pub fn core(&self) -> &HarqCore {
        &self.core
    }
}

impl LinkPolicy for HarqLink {
    fn name(&self) -> &'static str {
        match self.core.config.mode {
            HarqMode::Chase => "harq-cc",
            HarqMode::IncrementalRedundancy => "harq-ir",
        }
    }

    fn adapts_rate(&self) -> bool {
        false
    }

    fn harq(&mut self) -> Option<&mut HarqCore> {
        if self.core.config.combining && self.config_error.is_none() {
            Some(&mut self.core)
        } else {
            None
        }
    }

    fn config_error(&self) -> Option<String> {
        self.config_error.clone()
    }

    fn observe(&mut self, _rx: &RxResult, _hints: &[u16], ctx: &LinkContext<'_>) -> LinkVerdict {
        if self.retrying {
            self.retx_attempts += 1;
        }
        let clean = ctx.bit_errors == 0;
        let closed = self.session.attempt(clean);
        self.retrying = !closed;
        if !closed {
            self.core.advance();
            return LinkVerdict::status(LinkStatus::Retransmit);
        }
        let used = self.core.attempt + 1;
        if self.core.config.combining {
            self.attempts_hist[(used as usize - 1).min(ATTEMPTS_HIST_BINS - 1)] += 1;
            self.effective_rate_sum += self.core.config.effective_rate(self.rate, used);
            if clean && used > 1 {
                self.recovered += 1;
            }
        }
        self.core.close();
        LinkVerdict::status(if clean {
            LinkStatus::Delivered
        } else {
            LinkStatus::GaveUp
        })
    }

    fn metrics(&self) -> LinkMetrics {
        LinkMetrics {
            packets: self.session.attempts(),
            delivered: self.session.delivered(),
            gave_up: self.session.gave_up(),
            bits_delivered: self.session.bits_delivered(),
            bits_transmitted: self.session.bits_attempted(),
            bits_retransmitted: self.retx_attempts * self.session.bits_per_packet(),
            recovered: self.recovered,
            attempts_hist: self.attempts_hist,
            effective_rate_sum: self.effective_rate_sum,
            ..LinkMetrics::default()
        }
    }

    fn reset(&mut self) {
        *self = Self::new(self.bits_per_packet, self.core.config.clone(), self.rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::ArqLink;
    use wilis_phy::{PhyRate, PhyScratch, Receiver, Transmitter};

    fn rx_for(sent: &[u8], flips: &[usize]) -> RxResult {
        let mut payload = sent.to_vec();
        for &i in flips {
            payload[i] ^= 1;
        }
        RxResult {
            hints: vec![60; sent.len()],
            soft_magnitudes: vec![0; sent.len()],
            decoder_id: "test",
            payload,
        }
    }

    fn ctx<'a>(sent: &'a [u8], bit_errors: u64) -> LinkContext<'a> {
        LinkContext {
            sent,
            bit_errors,
            predicted_pber: 0.0,
            rate: PhyRate::Qam16Half,
            oracle: crate::link::Oracle::Unavailable,
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let rate = CodeRate::ThreeQuarters;
        assert!(HarqConfig::chase(0).validate(rate).is_err(), "zero budget");
        assert!(
            HarqConfig::incremental(4, vec![]).validate(rate).is_err(),
            "empty schedule"
        );
        assert!(
            HarqConfig::incremental(4, vec![3, 0])
                .validate(rate)
                .is_err(),
            "first attempt must be phase 0"
        );
        assert!(
            HarqConfig::incremental(4, vec![0, 6])
                .validate(rate)
                .is_err(),
            "phase 6 outside the 6-long 3/4 mask"
        );
        assert!(HarqConfig::incremental(4, vec![0, 3])
            .validate(rate)
            .is_ok());
        // The same schedule is invalid at rate 1/2 (period 2).
        assert!(HarqConfig::incremental(4, vec![0, 3])
            .validate(CodeRate::Half)
            .is_err());
        // Bad configs build a policy that reports, not panics.
        let link = HarqLink::new(600, HarqConfig::chase(0), rate);
        assert!(link.config_error().is_some());
    }

    #[test]
    fn chase_combining_k_identical_attempts_scales_llrs_by_k() {
        // The Chase property, on real PHY planes: absorbing K identical
        // clean retransmissions leaves exactly the single-attempt plane
        // scaled by K (saturating).
        let rate = PhyRate::QpskThreeQuarters;
        let payload: Vec<u8> = (0..600).map(|i| ((i * 13 + 1) % 2) as u8).collect();
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        let mut rx = Receiver::sova(rate);
        let mut scratch = PhyScratch::new();
        let mut plane = Vec::new();
        rx.rx_front_end_into(&tx.samples, payload.len(), &mut scratch, &mut plane);

        for k in [1u32, 2, 3, 7] {
            let mut core = HarqCore::new(HarqConfig::chase(8));
            for _ in 0..k {
                core.absorb(&plane);
                core.advance();
            }
            let expect: Vec<Llr> = plane.iter().map(|&l| l.saturating_mul(k as Llr)).collect();
            assert_eq!(core.plane(), &expect[..], "K = {k}");
        }
    }

    #[test]
    fn ir_schedule_cycles_phases_and_lowers_effective_rate() {
        let rate = CodeRate::ThreeQuarters;
        let cfg = HarqConfig::incremental(4, vec![0, 3]);
        let mut core = HarqCore::new(cfg.clone());
        assert_eq!(core.tx_phase(), 0);
        core.advance();
        assert_eq!(core.tx_phase(), 3);
        core.advance();
        assert_eq!(core.tx_phase(), 0, "schedule cycles");
        assert!((cfg.effective_rate(rate, 1) - 0.75).abs() < 1e-12);
        assert!(
            (cfg.effective_rate(rate, 2) - 0.5).abs() < 1e-12,
            "phases 0+3 cover the mask"
        );
        assert!(
            (cfg.effective_rate(rate, 4) - 0.5).abs() < 1e-12,
            "mother code is the floor"
        );
        // Chase never lowers the effective rate.
        let cc = HarqConfig::chase(4);
        assert!((cc.effective_rate(rate, 3) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn combining_disabled_reproduces_arq_verdicts_and_metrics() {
        let sent = vec![0u8; 100];
        let clean = rx_for(&sent, &[]);
        let dirty = rx_for(&sent, &[3]);
        let cfg = HarqConfig::chase(4).with_combining(false);
        let mut harq = HarqLink::new(100, cfg, CodeRate::Half);
        let mut arq = ArqLink::new(100, 3);
        assert!(harq.harq().is_none(), "disarmed combiner is invisible");
        // fail, fail, deliver; then fail x4 -> give up.
        let pattern = [1u64, 1, 0, 1, 1, 1, 1];
        for &errs in &pattern {
            let rx = if errs == 0 { &clean } else { &dirty };
            let vh = harq.observe(rx, &rx.hints, &ctx(&sent, errs));
            let va = arq.observe(rx, &rx.hints, &ctx(&sent, errs));
            assert_eq!(vh.status, va.status);
            assert_eq!(vh.next_rate, va.next_rate);
        }
        assert_eq!(harq.metrics(), arq.metrics(), "bit-identical accounting");
    }

    #[test]
    fn delivered_recovered_exhausted_are_distinct_outcomes() {
        let sent = vec![0u8; 50];
        let clean = rx_for(&sent, &[]);
        let dirty = rx_for(&sent, &[1]);
        let mut harq = HarqLink::new(50, HarqConfig::chase(3), CodeRate::Half);
        // Packet 1: first-attempt delivery.
        assert_eq!(
            harq.observe(&clean, &clean.hints, &ctx(&sent, 0)).status,
            LinkStatus::Delivered
        );
        // Packet 2: recovered on attempt 2.
        assert_eq!(
            harq.observe(&dirty, &dirty.hints, &ctx(&sent, 1)).status,
            LinkStatus::Retransmit
        );
        assert_eq!(
            harq.observe(&clean, &clean.hints, &ctx(&sent, 0)).status,
            LinkStatus::Delivered
        );
        // Packet 3: budget exhausted.
        for _ in 0..2 {
            assert_eq!(
                harq.observe(&dirty, &dirty.hints, &ctx(&sent, 1)).status,
                LinkStatus::Retransmit
            );
        }
        assert_eq!(
            harq.observe(&dirty, &dirty.hints, &ctx(&sent, 1)).status,
            LinkStatus::GaveUp
        );
        let m = harq.metrics();
        assert_eq!(m.delivered, 2);
        assert_eq!(m.recovered, 1, "one delivery needed the combiner");
        assert_eq!(m.gave_up, 1);
        assert_eq!(m.attempts_hist[0], 1, "one packet closed in 1 attempt");
        assert_eq!(m.attempts_hist[1], 1, "one packet closed in 2 attempts");
        assert_eq!(m.attempts_hist[2], 1, "one packet exhausted 3 attempts");
        assert!((m.recovered_fraction() - 0.5).abs() < 1e-12);
        assert!((m.mean_attempts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_combiner_and_metrics() {
        let sent = vec![0u8; 50];
        let dirty = rx_for(&sent, &[1]);
        let mut harq = HarqLink::new(50, HarqConfig::chase(3), CodeRate::Half);
        harq.harq().expect("armed").absorb(&[1, 2, 3]);
        let _ = harq.observe(&dirty, &dirty.hints, &ctx(&sent, 1));
        harq.reset();
        assert_eq!(harq.metrics(), LinkMetrics::default());
        assert_eq!(harq.core().attempt(), 0);
    }
}
