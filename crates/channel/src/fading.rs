//! Flat Rayleigh fading (Jakes sum-of-sinusoids) and the composite
//! fading + AWGN channel of the paper's Figure 7.

use std::f64::consts::PI;

use wilis_fxp::Cplx;

use crate::gaussian::GaussianSource;
use crate::{AwgnChannel, Channel, SnrDb};

/// Number of sinusoids in the Jakes model. Eight is the textbook minimum
/// for Rayleigh-like first- and second-order statistics; we use more for a
/// smoother Doppler spectrum.
const JAKES_PATHS: usize = 16;

/// A flat (frequency-nonselective) Rayleigh fading process.
///
/// The complex channel gain is a sum of `JAKES_PATHS` Doppler-shifted
/// phasors with random angles of arrival and phases; its envelope is
/// Rayleigh distributed with unit mean-square, and its autocorrelation
/// follows the classic Clarke/Jakes `J0(2 pi fd tau)` shape. The paper's
/// Figure 7 uses a 20 Hz Doppler — slow fading relative to a packet but
/// fast relative to a rate-adaptation window.
///
/// # Example
///
/// ```
/// use wilis_channel::RayleighFading;
///
/// let fading = RayleighFading::new(20.0, 42);
/// let g0 = fading.gain_at(0.0);
/// let g1 = fading.gain_at(0.001); // 1 ms later: nearly unchanged at 20 Hz
/// assert!((g0 - g1).norm() < 0.1);
/// let far = fading.gain_at(10.0); // many coherence times later
/// assert!((g0 - far).norm() > 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct RayleighFading {
    doppler_hz: f64,
    /// Per-path (cos(angle of arrival), phase) pairs.
    paths: Vec<(f64, f64)>,
}

impl RayleighFading {
    /// A fading process with maximum Doppler shift `doppler_hz`, seeded
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `doppler_hz` is not strictly positive.
    pub fn new(doppler_hz: f64, seed: u64) -> Self {
        assert!(doppler_hz > 0.0, "Doppler must be positive");
        let mut g = GaussianSource::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let rng = g.rng_mut();
        let paths = (0..JAKES_PATHS)
            .map(|_| {
                let aoa: f64 = rng.gen_range(0.0..2.0 * PI);
                let phase: f64 = rng.gen_range(0.0..2.0 * PI);
                (aoa.cos(), phase)
            })
            .collect();
        Self { doppler_hz, paths }
    }

    /// The configured maximum Doppler shift in hertz.
    pub fn doppler_hz(&self) -> f64 {
        self.doppler_hz
    }

    /// The complex channel gain at absolute time `t` seconds.
    ///
    /// Gains are a pure function of time (given the seed), which is what
    /// lets [`crate::ReplayChannel`] expose identical fading to packets
    /// sent at different bit rates.
    pub fn gain_at(&self, t: f64) -> Cplx {
        let w = 2.0 * PI * self.doppler_hz;
        let scale = (1.0 / self.paths.len() as f64).sqrt();
        self.paths
            .iter()
            .map(|&(cos_aoa, phase)| Cplx::from_polar(1.0, w * t * cos_aoa + phase))
            .sum::<Cplx>()
            .scale(scale)
    }

    /// Mean-square gain over `n` evenly spaced samples of a window — used
    /// by tests and the calibration harness to confirm unit average power.
    pub fn mean_square_gain(&self, window_secs: f64, n: usize) -> f64 {
        (0..n)
            .map(|i| self.gain_at(i as f64 * window_secs / n as f64).norm_sq())
            .sum::<f64>()
            / n as f64
    }
}

/// Rayleigh fading followed by AWGN: the paper's "20 Hz fading channel with
/// 10 dB AWGN" (Figure 7).
///
/// Samples are multiplied by the fading gain at their absolute time, then
/// perturbed by AWGN at the configured SNR. The receiver model is assumed
/// to have perfect automatic gain control per OFDM symbol (the paper's
/// pipeline omits channel estimation; §4.4.4), so the *effective* SNR seen
/// by the demapper varies as `|h(t)|^2 * snr`.
#[derive(Debug, Clone)]
pub struct FadingAwgnChannel {
    fading: RayleighFading,
    awgn: AwgnChannel,
    sample_rate_hz: f64,
    /// Samples already consumed; defines the absolute time of the next one.
    consumed: u64,
}

impl FadingAwgnChannel {
    /// A composite channel at `snr` with the given Doppler, advancing
    /// `sample_rate_hz` samples per second of channel time.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not strictly positive.
    pub fn new(snr: SnrDb, doppler_hz: f64, sample_rate_hz: f64, seed: u64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        Self {
            fading: RayleighFading::new(doppler_hz, seed),
            awgn: AwgnChannel::new(snr, seed.wrapping_add(1)),
            sample_rate_hz,
            consumed: 0,
        }
    }

    /// The fading gain that will apply to the next sample.
    pub fn current_gain(&self) -> Cplx {
        self.fading
            .gain_at(self.consumed as f64 / self.sample_rate_hz)
    }

    /// Absolute channel time of the next sample, in seconds.
    pub fn now_secs(&self) -> f64 {
        self.consumed as f64 / self.sample_rate_hz
    }

    /// Skips channel time forward without transmitting (inter-packet gap).
    pub fn advance(&mut self, samples: u64) {
        self.consumed += samples;
    }
}

impl Channel for FadingAwgnChannel {
    fn apply(&mut self, samples: &mut [Cplx]) {
        for s in samples.iter_mut() {
            let t = self.consumed as f64 / self.sample_rate_hz;
            *s *= self.fading.gain_at(t);
            self.consumed += 1;
        }
        self.awgn.apply(samples);
    }

    fn reset(&mut self, seed: u64) {
        self.fading = RayleighFading::new(self.fading.doppler_hz, seed);
        self.awgn.reset(seed.wrapping_add(1));
        self.consumed = 0;
    }

    fn snr(&self) -> Option<SnrDb> {
        self.awgn.snr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_unit_mean_square() {
        let fading = RayleighFading::new(20.0, 9);
        // Average over many coherence times.
        let ms = fading.mean_square_gain(1000.0, 50_000);
        assert!((ms - 1.0).abs() < 0.15, "mean-square gain {ms}");
    }

    #[test]
    fn coherence_time_scales_with_doppler() {
        // At 20 Hz Doppler the coherence time is ~1/(2*pi*20) ~ 8 ms; the
        // gain should decorrelate far more over 50 ms than over 0.5 ms.
        let fading = RayleighFading::new(20.0, 4);
        let mut near = 0.0;
        let mut far = 0.0;
        let n = 2000;
        for i in 0..n {
            let t = i as f64 * 0.037; // sample widely across realizations
            let g0 = fading.gain_at(t);
            near += (fading.gain_at(t + 0.0005) - g0).norm_sq();
            far += (fading.gain_at(t + 0.050) - g0).norm_sq();
        }
        assert!(
            far / near > 20.0,
            "decorrelation: near {near:.4}, far {far:.4}"
        );
    }

    #[test]
    fn gain_is_pure_function_of_time() {
        let fading = RayleighFading::new(20.0, 77);
        assert_eq!(fading.gain_at(1.25), fading.gain_at(1.25));
        let other = RayleighFading::new(20.0, 77);
        assert_eq!(fading.gain_at(0.5), other.gain_at(0.5));
    }

    #[test]
    fn composite_channel_advances_time() {
        let mut ch = FadingAwgnChannel::new(SnrDb::new(10.0), 20.0, 1e6, 13);
        assert_eq!(ch.now_secs(), 0.0);
        let mut buf = vec![Cplx::ONE; 1000];
        ch.apply(&mut buf);
        assert!((ch.now_secs() - 1e-3).abs() < 1e-12);
        ch.advance(9000);
        assert!((ch.now_secs() - 1e-2).abs() < 1e-12);
    }

    #[test]
    fn deep_fades_occur() {
        // Rayleigh envelopes dip below -10 dB (power < 0.1) about 10% of
        // the time; make sure the model actually fades.
        let fading = RayleighFading::new(20.0, 3);
        let n = 20_000;
        let deep = (0..n)
            .filter(|&i| fading.gain_at(i as f64 * 0.013).norm_sq() < 0.1)
            .count();
        let frac = deep as f64 / n as f64;
        assert!(frac > 0.03 && frac < 0.25, "deep-fade fraction {frac}");
    }

    #[test]
    fn reset_restarts_realization() {
        let mut ch = FadingAwgnChannel::new(SnrDb::new(10.0), 20.0, 1e6, 5);
        let mut a = vec![Cplx::ONE; 256];
        ch.apply(&mut a);
        ch.reset(5);
        let mut b = vec![Cplx::ONE; 256];
        ch.apply(&mut b);
        assert_eq!(a, b);
    }
}
