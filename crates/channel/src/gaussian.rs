//! Deterministic Gaussian sample source.
//!
//! The paper's profiling found that "computing noise values for the AWGN
//! channel dominates our software time" even multithreaded across four
//! cores (§3) — which is what justified co-simulation over full-FPGA
//! acceleration. This sampler is therefore deliberately written the way the
//! software channel would be: a tight, allocation-free Marsaglia polar
//! method over a seedable PRNG, so the `channel_throughput` bench measures
//! something representative.

use wilis_fxp::rng::SmallRng;

/// A seedable source of standard-normal (`N(0, 1)`) samples.
///
/// # Example
///
/// ```
/// use wilis_channel::GaussianSource;
///
/// let mut g = GaussianSource::new(7);
/// let xs: Vec<f64> = (0..10_000).map(|_| g.next_sample()).collect();
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!(mean.abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianSource {
    rng: SmallRng,
    /// Second sample of the most recent Marsaglia pair, if unconsumed.
    spare: Option<f64>,
}

impl GaussianSource {
    /// A source seeded with `seed`; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Draws one standard-normal sample.
    pub fn next_sample(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        let (a, b) = self.next_pair();
        self.spare = Some(b);
        a
    }

    /// Draws an independent standard-normal pair (one Marsaglia rejection
    /// loop produces exactly two samples).
    pub fn next_pair(&mut self) -> (f64, f64) {
        loop {
            let u: f64 = self.rng.gen_range(-1.0..1.0);
            let v: f64 = self.rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                return (u * k, v * k);
            }
        }
    }

    /// Fills `out` with standard-normal samples.
    pub fn fill(&mut self, out: &mut [f64]) {
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            let (a, b) = self.next_pair();
            pair[0] = a;
            pair[1] = b;
        }
        for x in chunks.into_remainder() {
            *x = self.next_sample();
        }
    }

    /// Access to the underlying uniform RNG, for callers that mix uniform
    /// and normal draws from one deterministic stream.
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = GaussianSource::new(123);
        let mut b = GaussianSource::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianSource::new(1);
        let mut b = GaussianSource::new(2);
        let same = (0..100)
            .filter(|_| a.next_sample() == b.next_sample())
            .count();
        assert!(same < 5);
    }

    #[test]
    fn moments_match_standard_normal() {
        let mut g = GaussianSource::new(99);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut sum_cube = 0.0;
        for _ in 0..n {
            let x = g.next_sample();
            sum += x;
            sum_sq += x * x;
            sum_cube += x * x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        let skew = sum_cube / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
        assert!(skew.abs() < 0.05, "third moment {skew}");
    }

    #[test]
    fn fill_matches_streaming() {
        let mut a = GaussianSource::new(5);
        let mut b = GaussianSource::new(5);
        let mut buf = [0.0; 101];
        a.fill(&mut buf);
        for (i, &x) in buf.iter().enumerate() {
            assert_eq!(x, b.next_sample(), "divergence at {i}");
        }
    }

    #[test]
    fn tail_probability_sane() {
        // P(|X| > 3) ~ 0.27%; check we are within a factor of two.
        let mut g = GaussianSource::new(17);
        let n = 100_000;
        let tails = (0..n).filter(|_| g.next_sample().abs() > 3.0).count();
        let frac = tails as f64 / n as f64;
        assert!(frac > 0.001 && frac < 0.006, "tail fraction {frac}");
    }
}
