//! Seed-addressed channel models — the uniform interface the scenario
//! engine sweeps over.
//!
//! The stateful [`Channel`](crate::Channel) trait models a *continuing*
//! realization: successive calls consume channel time, which is right for
//! protocol traces (Figure 7) but wrong for embarrassingly parallel
//! Monte-Carlo grids, where every packet must be reproducible in
//! isolation. [`ChannelModel`] is the grid-friendly contract: one call
//! distorts one packet buffer under a realization that is a pure function
//! of the `seed` argument, so results are bit-identical no matter which
//! worker, in which order, processes the packet.

use wilis_fxp::rng::mix_seed;
use wilis_fxp::Cplx;

use crate::{AwgnChannel, Channel, FadingAwgnChannel, ReplayChannel, SnrDb};

/// Baseband sample rate used by the fading models: 80 samples per 4 µs
/// OFDM symbol.
pub const MODEL_SAMPLE_RATE_HZ: f64 = 20e6;

/// A packet-granular, seed-addressed channel transformation.
///
/// Implementations should make the output a pure function of
/// `(model parameters, samples, seed)` — the determinism contract the
/// sweep runner's thread-count invariance rests on (the same contract
/// [`crate::parallel::apply_awgn_parallel`] proves at the sample level).
/// The one sanctioned exception is cursor-based traces ([`TraceModel`]):
/// their output is a deterministic function of the *call sequence*
/// instead, which preserves thread-count invariance as long as each
/// sweep scenario owns its model instance — but they must document their
/// sequencing rules precisely.
pub trait ChannelModel: Send {
    /// Distorts `samples` in place under the realization selected by
    /// `seed`.
    fn apply(&mut self, samples: &mut [Cplx], seed: u64);

    /// A short identifier (`"awgn"`, `"fading"`, `"replay"`), used by the
    /// plug-n-play registry and result labels.
    fn id(&self) -> &'static str;

    /// The configured mean SNR, when the model has one.
    fn snr(&self) -> Option<SnrDb> {
        None
    }

    /// The linear signal-power gain a packet sent under `seed` arrives
    /// with: `|h|²` at the packet start for fading models, `1.0` for AWGN.
    ///
    /// Cell-level capture resolution ([`crate::resolve_slot`]) compares
    /// these across simultaneous transmitters, so the contract is
    /// consistency with [`ChannelModel::apply`]: for the same seed,
    /// `packet_gain` must describe the same realization `apply` would
    /// draw, and probing it must not disturb any model state. Models
    /// without a seed-pure notion of gain (cursor-based traces) report
    /// `1.0`.
    fn packet_gain(&mut self, _seed: u64) -> f64 {
        1.0
    }
}

/// Genie equalization: divide the packet by the (known) fading gain at
/// its first sample — the receiver has no channel estimation (§4.4.4), so
/// every fading model applies this before handing samples on.
fn equalize(samples: &mut [Cplx], gain: Cplx) {
    let inv = Cplx::ONE / gain;
    for s in samples {
        *s *= inv;
    }
}

/// Pure AWGN at a fixed SNR — the Figure 5/6 channel.
#[derive(Debug, Clone)]
pub struct AwgnModel {
    snr: SnrDb,
}

impl AwgnModel {
    /// An AWGN model at `snr`.
    pub fn new(snr: SnrDb) -> Self {
        Self { snr }
    }
}

impl ChannelModel for AwgnModel {
    fn apply(&mut self, samples: &mut [Cplx], seed: u64) {
        let mut ch = AwgnChannel::new(self.snr, seed);
        ch.apply(samples);
    }

    fn id(&self) -> &'static str {
        "awgn"
    }

    fn snr(&self) -> Option<SnrDb> {
        Some(self.snr)
    }
}

/// Rayleigh fading plus AWGN with genie equalization — each seed draws an
/// independent fading realization, so a seed sweep Monte-Carlos over
/// channel states.
///
/// As everywhere in this reproduction, the receiver has no channel
/// estimation (§4.4.4), so the packet is genie-equalized by the gain at
/// its first sample; the residual impairment is the effective SNR
/// `|h|² × SNR` plus intra-packet gain drift.
#[derive(Debug, Clone)]
pub struct FadingModel {
    snr: SnrDb,
    doppler_hz: f64,
}

impl FadingModel {
    /// A fading model at mean `snr` with the given Doppler (the paper's
    /// Figure 7 channel is 10 dB / 20 Hz).
    pub fn new(snr: SnrDb, doppler_hz: f64) -> Self {
        Self { snr, doppler_hz }
    }
}

impl ChannelModel for FadingModel {
    fn apply(&mut self, samples: &mut [Cplx], seed: u64) {
        let mut ch = FadingAwgnChannel::new(self.snr, self.doppler_hz, MODEL_SAMPLE_RATE_HZ, seed);
        let gain = ch.current_gain();
        ch.apply(samples);
        equalize(samples, gain);
    }

    fn id(&self) -> &'static str {
        "fading"
    }

    fn snr(&self) -> Option<SnrDb> {
        Some(self.snr)
    }

    fn packet_gain(&mut self, seed: u64) -> f64 {
        // The same construction `apply` performs, probed for its gain at
        // the packet start — the quantity the genie equalizer divides by,
        // so the post-equalization effective SNR is `|h|² × SNR`.
        FadingAwgnChannel::new(self.snr, self.doppler_hz, MODEL_SAMPLE_RATE_HZ, seed)
            .current_gain()
            .norm_sq()
    }
}

/// The replay channel sampled at a seed-derived instant — fading plus
/// time-indexed noise with genie equalization.
///
/// Each seed lands the packet at a different absolute position of the
/// replayed realization (within [`ReplayModel::WINDOW_SECS`] of channel
/// time), so a seed sweep samples the same long realization the SoftRate
/// oracle replays, instead of drawing fresh Jakes angles per packet.
#[derive(Debug, Clone)]
pub struct ReplayModel {
    snr: SnrDb,
    doppler_hz: f64,
    base_seed: u64,
}

impl ReplayModel {
    /// Channel time window the seed-derived packet positions span.
    pub const WINDOW_SECS: f64 = 10.0;

    /// A replay model at mean `snr` and the given Doppler; `base_seed`
    /// fixes the long realization being sampled.
    pub fn new(snr: SnrDb, doppler_hz: f64, base_seed: u64) -> Self {
        Self {
            snr,
            doppler_hz,
            base_seed,
        }
    }
}

impl ChannelModel for ReplayModel {
    fn apply(&mut self, samples: &mut [Cplx], seed: u64) {
        let mut ch = ReplayChannel::fading(
            self.snr,
            self.doppler_hz,
            MODEL_SAMPLE_RATE_HZ,
            self.base_seed,
        );
        let span = (Self::WINDOW_SECS * MODEL_SAMPLE_RATE_HZ) as u64;
        ch.seek(mix_seed(self.base_seed, seed) % span);
        let gain = ch.current_gain();
        ch.apply(samples);
        equalize(samples, gain);
    }

    fn id(&self) -> &'static str {
        "replay"
    }

    fn snr(&self) -> Option<SnrDb> {
        Some(self.snr)
    }

    fn packet_gain(&mut self, seed: u64) -> f64 {
        let mut ch = ReplayChannel::fading(
            self.snr,
            self.doppler_hz,
            MODEL_SAMPLE_RATE_HZ,
            self.base_seed,
        );
        let span = (Self::WINDOW_SECS * MODEL_SAMPLE_RATE_HZ) as u64;
        ch.seek(mix_seed(self.base_seed, seed) % span);
        ch.current_gain().norm_sq()
    }
}

/// A *time-coherent* fading trace for protocol experiments on the sweep
/// engine: successive packets of a scenario walk forward through one long
/// replayed realization (fading plus time-indexed noise, genie-equalized),
/// exactly like the Figure 7 protocol loop.
///
/// Unlike the seed-pure models above, `TraceModel` keeps a cursor: channel
/// time advances by the packet's airtime plus a configurable gap whenever
/// the seed *changes from the previous call*. **Consecutive** applies with
/// the same seed — the SoftRate oracle replaying every rate against the
/// identical channel, immediately after the protocol transmission —
/// revisit the same span of the realization, which is the paper's
/// "pseudo-random noise model" contract (§4.4.2). Re-presenting an older
/// seed after an intervening packet starts a *new* slot (the cursor only
/// remembers the last seed), so interleave packets' applies and the
/// replay guarantee is gone — the scenario engine never does. The output
/// is a deterministic function of the *sequence* of calls; each grid
/// point owns its model instance and observes its packets in order, so
/// the sweep runner's thread-count invariance still holds.
#[derive(Debug, Clone)]
pub struct TraceModel {
    channel: ReplayChannel,
    gap_samples: u64,
    position: u64,
    next_position: u64,
    last_seed: Option<u64>,
}

impl TraceModel {
    /// A trace at mean `snr` with the given Doppler, walking `base_seed`'s
    /// realization with `gap_secs` of idle channel time between packets
    /// (the Figure 7 configuration is 10 dB, 20 Hz, 0.5 ms).
    pub fn new(snr: SnrDb, doppler_hz: f64, base_seed: u64, gap_secs: f64) -> Self {
        Self {
            channel: ReplayChannel::fading(snr, doppler_hz, MODEL_SAMPLE_RATE_HZ, base_seed),
            gap_samples: (gap_secs * MODEL_SAMPLE_RATE_HZ) as u64,
            position: 0,
            next_position: 0,
            last_seed: None,
        }
    }

    /// The absolute sample index the next new packet starts at.
    pub fn next_packet_position(&self) -> u64 {
        self.next_position
    }
}

impl ChannelModel for TraceModel {
    fn apply(&mut self, samples: &mut [Cplx], seed: u64) {
        if self.last_seed != Some(seed) {
            // A new packet: advance to the next slot of the trace. The
            // first apply per packet (the protocol-path transmission)
            // defines the airtime; same-seed replays revisit this slot.
            self.position = self.next_position;
            self.next_position = self.position + samples.len() as u64 + self.gap_samples;
            self.last_seed = Some(seed);
        }
        self.channel.seek(self.position);
        let gain = self.channel.current_gain();
        self.channel.apply(samples);
        equalize(samples, gain);
    }

    fn id(&self) -> &'static str {
        "trace"
    }

    fn snr(&self) -> Option<SnrDb> {
        self.channel.snr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> Vec<Box<dyn ChannelModel>> {
        vec![
            Box::new(AwgnModel::new(SnrDb::new(10.0))),
            Box::new(FadingModel::new(SnrDb::new(10.0), 20.0)),
            Box::new(ReplayModel::new(SnrDb::new(10.0), 20.0, 7)),
        ]
    }

    #[test]
    fn same_seed_same_realization() {
        for mut m in models() {
            let mut a = vec![Cplx::ONE; 400];
            let mut b = vec![Cplx::ONE; 400];
            m.apply(&mut a, 42);
            m.apply(&mut b, 42);
            assert_eq!(a, b, "{} not seed-pure", m.id());
        }
    }

    #[test]
    fn different_seeds_differ() {
        for mut m in models() {
            let mut a = vec![Cplx::ONE; 400];
            let mut b = vec![Cplx::ONE; 400];
            m.apply(&mut a, 1);
            m.apply(&mut b, 2);
            assert_ne!(a, b, "{} ignores its seed", m.id());
        }
    }

    #[test]
    fn awgn_model_matches_awgn_channel() {
        let mut model = AwgnModel::new(SnrDb::new(8.0));
        let mut via_model = vec![Cplx::ONE; 256];
        model.apply(&mut via_model, 99);
        let mut via_channel = vec![Cplx::ONE; 256];
        AwgnChannel::new(SnrDb::new(8.0), 99).apply(&mut via_channel);
        assert_eq!(via_model, via_channel);
    }

    #[test]
    fn genie_equalization_keeps_mean_power_sane() {
        // Post-equalization, the signal term has unit gain at the packet
        // start; average power should stay within an order of magnitude of
        // the AWGN case even across deep fades (the equalizer amplifies
        // noise in a fade, but over many seeds the mean stays bounded).
        let mut m = FadingModel::new(SnrDb::new(10.0), 20.0);
        let mut total = 0.0;
        let n_seeds = 50;
        for seed in 0..n_seeds {
            let mut buf = vec![Cplx::ONE; 200];
            m.apply(&mut buf, seed);
            total += buf.iter().map(|s| s.norm_sq()).sum::<f64>() / buf.len() as f64;
        }
        let mean = total / n_seeds as f64;
        assert!(mean > 0.5 && mean < 20.0, "mean packet power {mean}");
    }

    #[test]
    fn packet_gain_is_seed_pure_and_consistent() {
        for mut m in models() {
            let a = m.packet_gain(42);
            let b = m.packet_gain(42);
            assert_eq!(a.to_bits(), b.to_bits(), "{} gain not seed-pure", m.id());
            assert!(a >= 0.0, "{} negative gain", m.id());
        }
        // AWGN has no fading: unit gain for every seed.
        let mut awgn = AwgnModel::new(SnrDb::new(10.0));
        assert_eq!(awgn.packet_gain(1), 1.0);
        assert_eq!(awgn.packet_gain(2), 1.0);
        // Fading gains vary with the seed (that is what makes capture
        // possible), and probing the gain must not disturb `apply`.
        let mut fading = FadingModel::new(SnrDb::new(10.0), 20.0);
        assert_ne!(
            fading.packet_gain(1).to_bits(),
            fading.packet_gain(2).to_bits()
        );
        let mut before = vec![Cplx::ONE; 128];
        fading.apply(&mut before, 5);
        let _ = fading.packet_gain(7);
        let mut after = vec![Cplx::ONE; 128];
        fading.apply(&mut after, 5);
        assert_eq!(before, after, "packet_gain probe disturbed the model");
    }

    #[test]
    fn ids_are_distinct() {
        let ids: Vec<&str> = models().iter().map(|m| m.id()).collect();
        assert_eq!(ids, vec!["awgn", "fading", "replay"]);
    }

    #[test]
    fn trace_replays_same_seed_and_advances_on_new_seed() {
        let mut m = TraceModel::new(SnrDb::new(10.0), 20.0, 7, 0.5e-3);
        let mut a = vec![Cplx::ONE; 160];
        let mut b = vec![Cplx::ONE; 160];
        m.apply(&mut a, 1);
        m.apply(&mut b, 1); // oracle-style replay: identical channel span
        assert_eq!(a, b, "same seed must revisit the same trace slot");
        let mut c = vec![Cplx::ONE; 160];
        m.apply(&mut c, 2); // next packet: channel time moved on
        assert_ne!(a, c, "a new seed must advance the trace");
    }

    #[test]
    fn trace_oracle_replay_is_length_agnostic() {
        // A slower-rate oracle attempt (more samples) must share its prefix
        // with the protocol packet: same slot, same realization.
        let mut m = TraceModel::new(SnrDb::new(10.0), 20.0, 9, 0.5e-3);
        let mut short = vec![Cplx::ONE; 80];
        let mut long = vec![Cplx::ONE; 240];
        m.apply(&mut short, 5);
        m.apply(&mut long, 5);
        assert_eq!(&long[..80], &short[..]);
    }

    #[test]
    fn trace_cursor_counts_airtime_plus_gap() {
        let gap_secs = 0.5e-3;
        let mut m = TraceModel::new(SnrDb::new(10.0), 20.0, 3, gap_secs);
        let mut buf = vec![Cplx::ONE; 160];
        m.apply(&mut buf, 1);
        let gap = (gap_secs * MODEL_SAMPLE_RATE_HZ) as u64;
        assert_eq!(m.next_packet_position(), 160 + gap);
        // Oracle replays do not consume channel time.
        let mut replay = vec![Cplx::ONE; 400];
        m.apply(&mut replay, 1);
        assert_eq!(m.next_packet_position(), 160 + gap);
    }
}
