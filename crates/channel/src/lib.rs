//! Software wireless channel models.
//!
//! WiLIS is a *co-simulation*: the transceiver pipelines run in hardware
//! models while the channel stays in software, because channel synthesis is
//! floating-point heavy and, as the paper measures in §3, noise generation
//! alone saturates a quad-core host. This crate is that software half:
//!
//! * [`AwgnChannel`] — additive white Gaussian noise at a configurable
//!   [`SnrDb`], the channel used for the paper's Figure 5 and 6 experiments.
//! * [`RayleighFading`] — flat Rayleigh fading with configurable Doppler
//!   (the 20 Hz fading channel of Figure 7), via the Jakes sum-of-sinusoids
//!   model.
//! * [`FadingAwgnChannel`] — the composite fading + noise channel.
//! * [`ReplayChannel`] — the paper's "pseudo-random noise model": channel
//!   randomness is indexed by *absolute time*, so packets sent at different
//!   bit rates experience the identical channel realization — the mechanism
//!   that makes the SoftRate rate-selection comparison fair.
//! * [`parallel`] — a multithreaded noise generator mirroring the paper's
//!   multithreaded software channel implementation.
//! * [`resolve_slot`] — the shared-medium capture model: overlapping
//!   transmissions in a contention cell resolve into per-node SINR
//!   (strongest wins if above margin, else all collide).
//!
//! # Example
//!
//! ```
//! use wilis_channel::{AwgnChannel, Channel, SnrDb};
//! use wilis_fxp::Cplx;
//!
//! let mut ch = AwgnChannel::new(SnrDb::new(10.0), 42);
//! let mut symbols = vec![Cplx::ONE; 1000];
//! ch.apply(&mut symbols);
//! // Signal power 1.0, noise power 10^-1: samples perturbed but close.
//! let mean_err: f64 = symbols.iter().map(|s| (*s - Cplx::ONE).norm_sq()).sum::<f64>() / 1000.0;
//! assert!((mean_err - 0.1).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod awgn;
mod collision;
mod fading;
mod gaussian;
mod model;
pub mod parallel;
mod replay;
mod snr;

pub use awgn::AwgnChannel;
pub use collision::{resolve_slot, SlotOutcome, TxPower};
pub use fading::{FadingAwgnChannel, RayleighFading};
pub use gaussian::GaussianSource;
pub use model::{
    AwgnModel, ChannelModel, FadingModel, ReplayModel, TraceModel, MODEL_SAMPLE_RATE_HZ,
};
pub use replay::ReplayChannel;
pub use snr::SnrDb;

use wilis_fxp::Cplx;

/// A channel model: a stateful transformation of baseband samples.
///
/// Implementations consume an internal notion of time, so successive calls
/// to [`Channel::apply`] continue the same realization; [`Channel::reset`]
/// restarts it (optionally re-seeded) for a fresh trial.
pub trait Channel {
    /// Distorts `samples` in place and advances channel time by
    /// `samples.len()` sample periods.
    fn apply(&mut self, samples: &mut [Cplx]);

    /// Restarts the channel realization with a new seed.
    fn reset(&mut self, seed: u64);

    /// The linear ratio of signal power to noise power this channel is
    /// configured for, if it has a single well-defined value.
    fn snr(&self) -> Option<SnrDb> {
        None
    }
}

#[cfg(test)]
mod prop_tests;
