//! Signal-to-noise ratio newtype.

use std::fmt;

/// A signal-to-noise ratio in decibels.
///
/// Wireless literature flips between dB and linear scales constantly; this
/// newtype keeps the two from being confused (the classic units bug) and
/// centralizes the conversion.
///
/// # Example
///
/// ```
/// use wilis_channel::SnrDb;
///
/// let snr = SnrDb::new(10.0);
/// assert!((snr.linear() - 10.0).abs() < 1e-12);
/// assert!((SnrDb::from_linear(100.0).db() - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SnrDb(f64);

impl SnrDb {
    /// An SNR of `db` decibels.
    pub fn new(db: f64) -> Self {
        Self(db)
    }

    /// Converts a linear power ratio to dB.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is not strictly positive.
    pub fn from_linear(linear: f64) -> Self {
        assert!(linear > 0.0, "linear SNR must be positive");
        Self(10.0 * linear.log10())
    }

    /// The value in decibels.
    pub fn db(self) -> f64 {
        self.0
    }

    /// The linear power ratio `Es/N0`.
    pub fn linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Noise power for unit signal power at this SNR.
    pub fn noise_power(self) -> f64 {
        1.0 / self.linear()
    }
}

impl fmt::Display for SnrDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        for db in [-5.0, 0.0, 6.0, 8.0, 10.0, 30.0] {
            let s = SnrDb::new(db);
            let back = SnrDb::from_linear(s.linear());
            assert!((back.db() - db).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_db_is_unity() {
        assert!((SnrDb::new(0.0).linear() - 1.0).abs() < 1e-15);
        assert!((SnrDb::new(0.0).noise_power() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn noise_power_inverts_linear() {
        let s = SnrDb::new(10.0);
        assert!((s.noise_power() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_linear_panics() {
        let _ = SnrDb::from_linear(0.0);
    }

    #[test]
    fn display() {
        assert_eq!(SnrDb::new(6.0).to_string(), "6 dB");
    }
}
