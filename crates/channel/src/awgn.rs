//! Additive white Gaussian noise.

use wilis_fxp::Cplx;

use crate::gaussian::GaussianSource;
use crate::{Channel, SnrDb};

/// A flat AWGN channel with a configurable signal-to-noise ratio.
///
/// Complex Gaussian noise with per-dimension variance `N0/2` is added to
/// every sample, where `N0 = Es / snr` and the signal energy `Es` is taken
/// as 1.0 — the convention used by the paper's constellation normalization
/// (every modulation is scaled to unit average symbol energy, §4.1).
///
/// # Example
///
/// ```
/// use wilis_channel::{AwgnChannel, Channel, SnrDb};
/// use wilis_fxp::Cplx;
///
/// let mut ch = AwgnChannel::new(SnrDb::new(6.0), 1);
/// let mut s = [Cplx::ONE];
/// ch.apply(&mut s);
/// assert_ne!(s[0], Cplx::ONE);
/// assert_eq!(ch.snr(), Some(SnrDb::new(6.0)));
/// ```
#[derive(Debug, Clone)]
pub struct AwgnChannel {
    snr: SnrDb,
    /// Per-dimension noise standard deviation, `sqrt(N0/2)`.
    sigma: f64,
    noise: GaussianSource,
}

impl AwgnChannel {
    /// An AWGN channel at `snr`, with a deterministic noise stream seeded
    /// by `seed`.
    pub fn new(snr: SnrDb, seed: u64) -> Self {
        Self {
            snr,
            sigma: (snr.noise_power() / 2.0).sqrt(),
            noise: GaussianSource::new(seed),
        }
    }

    /// Changes the operating SNR without restarting the noise stream —
    /// the "mid-packet SNR step" failure-injection hook.
    pub fn set_snr(&mut self, snr: SnrDb) {
        self.snr = snr;
        self.sigma = (snr.noise_power() / 2.0).sqrt();
    }
}

impl Channel for AwgnChannel {
    fn apply(&mut self, samples: &mut [Cplx]) {
        for s in samples {
            let (nr, ni) = self.noise.next_pair();
            s.re += nr * self.sigma;
            s.im += ni * self.sigma;
        }
    }

    fn reset(&mut self, seed: u64) {
        self.noise = GaussianSource::new(seed);
    }

    fn snr(&self) -> Option<SnrDb> {
        Some(self.snr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_power_matches_snr() {
        let snr = SnrDb::new(10.0);
        let mut ch = AwgnChannel::new(snr, 3);
        let n = 100_000;
        let mut samples = vec![Cplx::ONE; n];
        ch.apply(&mut samples);
        let measured: f64 = samples
            .iter()
            .map(|s| (*s - Cplx::ONE).norm_sq())
            .sum::<f64>()
            / n as f64;
        let expected = snr.noise_power();
        assert!(
            (measured / expected - 1.0).abs() < 0.03,
            "noise power {measured:.4} vs expected {expected:.4}"
        );
    }

    #[test]
    fn reset_reproduces_realization() {
        let mut ch = AwgnChannel::new(SnrDb::new(5.0), 11);
        let mut a = vec![Cplx::ZERO; 64];
        ch.apply(&mut a);
        ch.reset(11);
        let mut b = vec![Cplx::ZERO; 64];
        ch.apply(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn set_snr_scales_noise() {
        let mut quiet = AwgnChannel::new(SnrDb::new(40.0), 7);
        let mut buf = vec![Cplx::ZERO; 10_000];
        quiet.apply(&mut buf);
        let p_quiet: f64 = buf.iter().map(|s| s.norm_sq()).sum::<f64>() / buf.len() as f64;
        quiet.set_snr(SnrDb::new(0.0));
        let mut buf2 = vec![Cplx::ZERO; 10_000];
        quiet.apply(&mut buf2);
        let p_loud: f64 = buf2.iter().map(|s| s.norm_sq()).sum::<f64>() / buf2.len() as f64;
        assert!(p_loud / p_quiet > 1000.0, "{p_loud} vs {p_quiet}");
    }

    #[test]
    fn noise_is_zero_mean_complex() {
        let mut ch = AwgnChannel::new(SnrDb::new(0.0), 23);
        let mut buf = vec![Cplx::ZERO; 100_000];
        ch.apply(&mut buf);
        let mean: Cplx = buf
            .iter()
            .copied()
            .sum::<Cplx>()
            .scale(1.0 / buf.len() as f64);
        assert!(mean.norm() < 0.02, "mean {mean}");
    }
}
