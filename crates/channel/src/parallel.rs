//! Multithreaded channel processing.
//!
//! The paper's software channel is multithreaded "to take advantage of the
//! four available cores", and even so, noise generation saturates the host
//! and bottlenecks the whole co-simulation at 32.8–41.3% of line rate (§3).
//! This module reproduces that software organization: a buffer of samples
//! is split across a worker pool, each worker running an independent,
//! deterministically seeded Gaussian stream.

use wilis_fxp::Cplx;

use crate::gaussian::GaussianSource;
use crate::SnrDb;

/// Adds AWGN to `samples` using `threads` workers.
///
/// Determinism: the buffer is split into fixed chunks of [`CHUNK`] samples
/// and chunk `i` always uses the stream seeded by `(seed, i)`, so the
/// result is identical for any thread count — parallelism changes wall
/// time, never the realization.
///
/// # Panics
///
/// Panics if `threads` is zero.
///
/// # Example
///
/// ```
/// use wilis_channel::parallel::apply_awgn_parallel;
/// use wilis_channel::SnrDb;
/// use wilis_fxp::Cplx;
///
/// let mut a = vec![Cplx::ONE; 4096];
/// let mut b = vec![Cplx::ONE; 4096];
/// apply_awgn_parallel(&mut a, SnrDb::new(10.0), 7, 1);
/// apply_awgn_parallel(&mut b, SnrDb::new(10.0), 7, 4);
/// assert_eq!(a, b, "thread count must not change the realization");
/// ```
pub fn apply_awgn_parallel(samples: &mut [Cplx], snr: SnrDb, seed: u64, threads: usize) {
    assert!(threads > 0, "need at least one worker");
    let sigma = (snr.noise_power() / 2.0).sqrt();
    let chunks: Vec<&mut [Cplx]> = samples.chunks_mut(CHUNK).collect();
    let n_chunks = chunks.len();
    if n_chunks == 0 {
        return;
    }
    // Interleave chunks across workers round-robin so all workers see
    // similar load; each chunk's seed depends only on its index.
    std::thread::scope(|scope| {
        let mut work: Vec<Vec<(usize, &mut [Cplx])>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, chunk) in chunks.into_iter().enumerate() {
            work[i % threads].push((i, chunk));
        }
        for bundle in work {
            scope.spawn(move || {
                for (index, chunk) in bundle {
                    let mut g =
                        GaussianSource::new(seed ^ (index as u64).wrapping_mul(0x9e37_79b9));
                    for s in chunk {
                        let (nr, ni) = g.next_pair();
                        s.re += nr * sigma;
                        s.im += ni * sigma;
                    }
                }
            });
        }
    });
}

/// Chunk granularity for parallel noise generation, in samples.
pub const CHUNK: usize = 1024;

/// Generates `n` standard-normal samples single-threaded and returns the
/// achieved rate in samples/second — the microbenchmark behind the paper's
/// claim that noise generation saturates the host CPU.
pub fn noise_generation_rate(n: usize, seed: u64) -> f64 {
    let mut g = GaussianSource::new(seed);
    let mut buf = vec![0.0f64; n];
    // lint: allow(wall-clock) — throughput self-report only; the measured rate never feeds back into any sample
    let start = std::time::Instant::now();
    g.fill(&mut buf);
    let dt = start.elapsed().as_secs_f64();
    // Fold the buffer into a checksum so the fill cannot be optimized out.
    let sum: f64 = buf.iter().sum();
    assert!(sum.is_finite());
    n as f64 / dt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_realization() {
        let mut serial = vec![Cplx::ZERO; CHUNK * 3 + 17];
        let mut parallel = serial.clone();
        apply_awgn_parallel(&mut serial, SnrDb::new(6.0), 99, 1);
        apply_awgn_parallel(&mut parallel, SnrDb::new(6.0), 99, 8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_buffer_is_fine() {
        let mut buf: Vec<Cplx> = Vec::new();
        apply_awgn_parallel(&mut buf, SnrDb::new(6.0), 1, 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let mut buf = vec![Cplx::ZERO; 8];
        apply_awgn_parallel(&mut buf, SnrDb::new(6.0), 1, 0);
    }

    #[test]
    fn noise_power_correct_across_chunks() {
        let n = CHUNK * 8;
        let mut buf = vec![Cplx::ZERO; n];
        apply_awgn_parallel(&mut buf, SnrDb::new(10.0), 5, 4);
        let p: f64 = buf.iter().map(|s| s.norm_sq()).sum::<f64>() / n as f64;
        let expect = SnrDb::new(10.0).noise_power();
        assert!((p / expect - 1.0).abs() < 0.05, "{p} vs {expect}");
    }

    #[test]
    fn rate_measurement_is_positive() {
        assert!(noise_generation_rate(100_000, 1) > 0.0);
    }
}
