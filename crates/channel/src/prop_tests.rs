//! Randomized property tests on channel models (deterministic,
//! self-seeded — the offline analog of a proptest suite).

use wilis_fxp::rng::SmallRng;
use wilis_fxp::Cplx;

use crate::parallel::apply_awgn_parallel;
use crate::{AwgnChannel, Channel, RayleighFading, ReplayChannel, SnrDb};

/// AWGN is exactly reproducible from its seed for any SNR.
#[test]
fn awgn_reproducible() {
    let mut rng = SmallRng::seed_from_u64(0xC4A1);
    for _ in 0..32 {
        let seed = rng.next_u64();
        let snr_db = rng.gen_range(-5.0..30.0);
        let n = rng.gen_i64(1, 500) as usize;
        let mut a = AwgnChannel::new(SnrDb::new(snr_db), seed);
        let mut b = AwgnChannel::new(SnrDb::new(snr_db), seed);
        let mut xa = vec![Cplx::ONE; n];
        let mut xb = vec![Cplx::ONE; n];
        a.apply(&mut xa);
        b.apply(&mut xb);
        assert_eq!(xa, xb);
    }
}

/// Replay channels agree for any split of the sample stream.
#[test]
fn replay_split_invariance() {
    let mut rng = SmallRng::seed_from_u64(0xC4A2);
    for _ in 0..32 {
        let seed = rng.next_u64();
        let split = rng.gen_i64(1, 199) as usize;
        let total = 200usize;
        let mut whole = ReplayChannel::awgn_only(SnrDb::new(8.0), 1e6, seed);
        let mut buf = vec![Cplx::ONE; total];
        whole.apply(&mut buf);

        let mut parts = ReplayChannel::awgn_only(SnrDb::new(8.0), 1e6, seed);
        let mut first = vec![Cplx::ONE; split];
        let mut second = vec![Cplx::ONE; total - split];
        parts.apply(&mut first);
        parts.apply(&mut second);
        first.extend(second);
        assert_eq!(buf, first);
    }
}

/// Fading gain magnitude is finite and non-degenerate everywhere.
#[test]
fn fading_gain_well_behaved() {
    let mut rng = SmallRng::seed_from_u64(0xC4A3);
    for _ in 0..32 {
        let fading = RayleighFading::new(20.0, rng.next_u64());
        let t = rng.gen_range(0.0..1000.0);
        let g = fading.gain_at(t);
        assert!(g.re.is_finite() && g.im.is_finite());
        assert!(g.norm() < 10.0, "gain too large: {}", g.norm());
    }
}

/// Thread count never changes the parallel-AWGN realization.
#[test]
fn parallel_thread_invariance() {
    let mut rng = SmallRng::seed_from_u64(0xC4A4);
    for _ in 0..16 {
        let seed = rng.next_u64();
        let threads = rng.gen_i64(1, 8) as usize;
        let n = rng.gen_i64(1, 5000) as usize;
        let mut reference = vec![Cplx::ONE; n];
        let mut other = vec![Cplx::ONE; n];
        apply_awgn_parallel(&mut reference, SnrDb::new(10.0), seed, 1);
        apply_awgn_parallel(&mut other, SnrDb::new(10.0), seed, threads);
        assert_eq!(reference, other);
    }
}

/// Higher SNR always means less measured distortion (on average).
#[test]
fn snr_ordering_holds() {
    let mut rng = SmallRng::seed_from_u64(0xC4A5);
    for _ in 0..8 {
        let seed = rng.next_u64();
        let n = 20_000;
        let measure = |db: f64| {
            let mut ch = AwgnChannel::new(SnrDb::new(db), seed);
            let mut buf = vec![Cplx::ONE; n];
            ch.apply(&mut buf);
            buf.iter().map(|s| (*s - Cplx::ONE).norm_sq()).sum::<f64>() / n as f64
        };
        let noisy = measure(0.0);
        let clean = measure(20.0);
        assert!(noisy > 5.0 * clean, "0 dB {noisy} vs 20 dB {clean}");
    }
}
