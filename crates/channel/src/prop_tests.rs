//! Property-based tests on channel models.

use proptest::prelude::*;
use wilis_fxp::Cplx;

use crate::parallel::apply_awgn_parallel;
use crate::{AwgnChannel, Channel, RayleighFading, ReplayChannel, SnrDb};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// AWGN is exactly reproducible from its seed for any SNR.
    #[test]
    fn awgn_reproducible(seed in any::<u64>(), snr_db in -5.0f64..30.0, n in 1usize..500) {
        let mut a = AwgnChannel::new(SnrDb::new(snr_db), seed);
        let mut b = AwgnChannel::new(SnrDb::new(snr_db), seed);
        let mut xa = vec![Cplx::ONE; n];
        let mut xb = vec![Cplx::ONE; n];
        a.apply(&mut xa);
        b.apply(&mut xb);
        prop_assert_eq!(xa, xb);
    }

    /// Replay channels agree for any split of the sample stream.
    #[test]
    fn replay_split_invariance(seed in any::<u64>(), split in 1usize..199) {
        let total = 200usize;
        let mut whole = ReplayChannel::awgn_only(SnrDb::new(8.0), 1e6, seed);
        let mut buf = vec![Cplx::ONE; total];
        whole.apply(&mut buf);

        let mut parts = ReplayChannel::awgn_only(SnrDb::new(8.0), 1e6, seed);
        let mut first = vec![Cplx::ONE; split];
        let mut second = vec![Cplx::ONE; total - split];
        parts.apply(&mut first);
        parts.apply(&mut second);
        first.extend(second);
        prop_assert_eq!(buf, first);
    }

    /// Fading gain magnitude is finite and non-degenerate everywhere.
    #[test]
    fn fading_gain_well_behaved(seed in any::<u64>(), t in 0.0f64..1000.0) {
        let fading = RayleighFading::new(20.0, seed);
        let g = fading.gain_at(t);
        prop_assert!(g.re.is_finite() && g.im.is_finite());
        prop_assert!(g.norm() < 10.0, "gain too large: {}", g.norm());
    }

    /// Thread count never changes the parallel-AWGN realization.
    #[test]
    fn parallel_thread_invariance(seed in any::<u64>(), threads in 1usize..9, n in 1usize..5000) {
        let mut reference = vec![Cplx::ONE; n];
        let mut other = vec![Cplx::ONE; n];
        apply_awgn_parallel(&mut reference, SnrDb::new(10.0), seed, 1);
        apply_awgn_parallel(&mut other, SnrDb::new(10.0), seed, threads);
        prop_assert_eq!(reference, other);
    }

    /// Higher SNR always means less measured distortion (on average).
    #[test]
    fn snr_ordering_holds(seed in any::<u64>()) {
        let n = 20_000;
        let measure = |db: f64| {
            let mut ch = AwgnChannel::new(SnrDb::new(db), seed);
            let mut buf = vec![Cplx::ONE; n];
            ch.apply(&mut buf);
            buf.iter().map(|s| (*s - Cplx::ONE).norm_sq()).sum::<f64>() / n as f64
        };
        let noisy = measure(0.0);
        let clean = measure(20.0);
        prop_assert!(noisy > 5.0 * clean, "0 dB {noisy} vs 20 dB {clean}");
    }
}
