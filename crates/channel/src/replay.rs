//! Time-indexed reproducible channel — the paper's "pseudo-random noise
//! model" (§4.4.2).
//!
//! To evaluate SoftRate fairly, the paper replays *the same noise and
//! fading across time* to packet transmissions at different bit rates: the
//! question "what was the highest rate that would have succeeded?" is only
//! meaningful when every candidate rate faces the identical channel.
//!
//! [`ReplayChannel`] achieves this by making channel randomness a pure
//! function of `(seed, absolute sample index)` instead of a stateful
//! stream: any trial that seeks to the same position observes the same
//! realization, regardless of how many samples other trials consumed.

use std::f64::consts::PI;

use wilis_fxp::Cplx;

use crate::{Channel, RayleighFading, SnrDb};

/// SplitMix64: a tiny, high-quality mixing function. Used to derive
/// per-sample noise from `(seed, index)` with no sequential state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in (0, 1], never exactly zero (safe for `ln`).
fn to_unit(bits: u64) -> f64 {
    ((bits >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// A standard complex-normal sample that is a pure function of
/// `(seed, index)`, via Box–Muller over hashed uniforms.
fn noise_at(seed: u64, index: u64) -> Cplx {
    let a = splitmix64(seed ^ index.wrapping_mul(0xd134_2543_de82_ef95));
    let b = splitmix64(a ^ 0x2545_f491_4f6c_dd1d);
    let u = to_unit(a);
    let v = to_unit(b);
    let r = (-2.0 * u.ln()).sqrt();
    Cplx::new(r * (2.0 * PI * v).cos(), r * (2.0 * PI * v).sin())
}

/// A reproducible, seekable channel: optional Rayleigh fading plus AWGN,
/// both indexed by absolute time.
///
/// # Example
///
/// ```
/// use wilis_channel::{Channel, ReplayChannel, SnrDb};
/// use wilis_fxp::Cplx;
///
/// let mut trial_a = ReplayChannel::awgn_only(SnrDb::new(10.0), 1e6, 7);
/// let mut trial_b = ReplayChannel::awgn_only(SnrDb::new(10.0), 1e6, 7);
///
/// // Trial A consumes 100 samples, then both trials observe index 100.
/// let mut skip = vec![Cplx::ZERO; 100];
/// trial_a.apply(&mut skip);
/// trial_b.seek(100);
///
/// let (mut xa, mut xb) = ([Cplx::ONE], [Cplx::ONE]);
/// trial_a.apply(&mut xa);
/// trial_b.apply(&mut xb);
/// assert_eq!(xa, xb, "same absolute position, same channel");
/// ```
#[derive(Debug, Clone)]
pub struct ReplayChannel {
    seed: u64,
    snr: SnrDb,
    sigma: f64,
    fading: Option<RayleighFading>,
    sample_rate_hz: f64,
    position: u64,
}

impl ReplayChannel {
    /// A reproducible AWGN-only channel.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not strictly positive.
    pub fn awgn_only(snr: SnrDb, sample_rate_hz: f64, seed: u64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        Self {
            seed,
            snr,
            sigma: (snr.noise_power() / 2.0).sqrt(),
            fading: None,
            sample_rate_hz,
            position: 0,
        }
    }

    /// A reproducible fading + AWGN channel (the Figure 7 configuration is
    /// `doppler_hz = 20.0`, `snr = 10 dB`).
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` or `doppler_hz` is not strictly positive.
    pub fn fading(snr: SnrDb, doppler_hz: f64, sample_rate_hz: f64, seed: u64) -> Self {
        let mut ch = Self::awgn_only(snr, sample_rate_hz, seed);
        ch.fading = Some(RayleighFading::new(doppler_hz, seed));
        ch
    }

    /// Moves the channel to an absolute sample index.
    pub fn seek(&mut self, sample_index: u64) {
        self.position = sample_index;
    }

    /// The absolute index of the next sample.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Absolute channel time of the next sample, in seconds.
    pub fn now_secs(&self) -> f64 {
        self.position as f64 / self.sample_rate_hz
    }

    /// The fading gain at the current position (unity when fading is off).
    pub fn current_gain(&self) -> Cplx {
        match &self.fading {
            Some(f) => f.gain_at(self.now_secs()),
            None => Cplx::ONE,
        }
    }

    /// The effective post-fading SNR at the current position: the quantity
    /// the SoftRate oracle needs to define the optimal rate.
    pub fn effective_snr(&self) -> SnrDb {
        let g = self.current_gain().norm_sq().max(1e-12);
        SnrDb::from_linear(g * self.snr.linear())
    }
}

impl Channel for ReplayChannel {
    fn apply(&mut self, samples: &mut [Cplx]) {
        for s in samples.iter_mut() {
            if let Some(f) = &self.fading {
                *s *= f.gain_at(self.position as f64 / self.sample_rate_hz);
            }
            *s += noise_at(self.seed, self.position).scale(self.sigma);
            self.position += 1;
        }
    }

    fn reset(&mut self, seed: u64) {
        self.seed = seed;
        if let Some(f) = &self.fading {
            self.fading = Some(RayleighFading::new(f.doppler_hz(), seed));
        }
        self.position = 0;
    }

    fn snr(&self) -> Option<SnrDb> {
        Some(self.snr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_pure_function_of_seed_and_index() {
        assert_eq!(noise_at(1, 99), noise_at(1, 99));
        assert_ne!(noise_at(1, 99), noise_at(1, 100));
        assert_ne!(noise_at(1, 99), noise_at(2, 99));
    }

    #[test]
    fn hashed_noise_is_standard_complex_normal() {
        let n = 100_000u64;
        let mut power = 0.0;
        let mut mean = Cplx::ZERO;
        for i in 0..n {
            let z = noise_at(42, i);
            power += z.norm_sq();
            mean += z;
        }
        power /= n as f64;
        mean = mean.scale(1.0 / n as f64);
        assert!((power - 2.0).abs() < 0.05, "complex power {power} (2 dims)");
        assert!(mean.norm() < 0.02, "mean {mean}");
    }

    #[test]
    fn different_consumption_patterns_see_same_channel() {
        let make = || ReplayChannel::fading(SnrDb::new(10.0), 20.0, 1e6, 3);
        // Trial A: one large block. Trial B: many small blocks.
        let mut a = make();
        let mut buf_a = vec![Cplx::ONE; 300];
        a.apply(&mut buf_a);
        let mut b = make();
        let mut buf_b = Vec::new();
        for chunk in 0..30 {
            let mut block = vec![Cplx::ONE; 10];
            b.seek(chunk * 10);
            b.apply(&mut block);
            buf_b.extend(block);
        }
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn effective_snr_tracks_fading() {
        let ch = ReplayChannel::fading(SnrDb::new(10.0), 20.0, 1e6, 8);
        let g = ch.current_gain().norm_sq();
        let eff = ch.effective_snr().linear();
        assert!((eff - g * 10.0).abs() < 1e-9 * eff.max(1.0));
    }

    #[test]
    fn awgn_only_has_unit_gain() {
        let ch = ReplayChannel::awgn_only(SnrDb::new(10.0), 1e6, 8);
        assert_eq!(ch.current_gain(), Cplx::ONE);
    }

    #[test]
    fn measured_noise_power_matches_snr() {
        let mut ch = ReplayChannel::awgn_only(SnrDb::new(6.0), 1e6, 19);
        let n = 50_000;
        let mut buf = vec![Cplx::ZERO; n];
        ch.apply(&mut buf);
        let p: f64 = buf.iter().map(|s| s.norm_sq()).sum::<f64>() / n as f64;
        let expect = SnrDb::new(6.0).noise_power();
        assert!((p / expect - 1.0).abs() < 0.05, "{p} vs {expect}");
    }
}
