//! Shared-medium collision resolution with physical-layer capture.
//!
//! A contention cell puts several transmitters on one channel; when two or
//! more overlap in a slot, the receiver does not necessarily lose
//! everything. The standard capture model (the dense-deployment analysis
//! of Michaloliakos et al. uses the same shape) says the *strongest*
//! arrival survives if its signal-to-interference-plus-noise ratio clears
//! a capture margin; otherwise every overlapping packet is destroyed.
//!
//! [`resolve_slot`] is that model as a pure function: given the linear
//! power gain each simultaneous transmission arrives with (the
//! [`ChannelModel::packet_gain`](crate::ChannelModel::packet_gain) of its
//! link realization) and the receiver noise power, it classifies the slot.
//! Determinism is inherited from the inputs — the gains are pure functions
//! of seed-addressed realizations, so cell sweeps stay bit-identical for
//! any thread count.

use crate::SnrDb;

/// One simultaneous transmission as the capture model sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxPower {
    /// The transmitting node's index within its cell.
    pub node: usize,
    /// Linear received power gain of this packet (transmit power is unit,
    /// so this is `|h|²` for fading links and `1.0` for AWGN links).
    pub gain: f64,
}

/// How one slot's overlapping transmissions resolved at the receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlotOutcome {
    /// Nobody transmitted: the channel sat idle.
    Idle,
    /// Exactly one transmission: it proceeds at its own link SNR.
    Clean {
        /// The lone transmitter.
        node: usize,
    },
    /// Several transmissions overlapped, but the strongest cleared the
    /// capture margin: it survives with the other arrivals degrading it as
    /// interference; the rest are destroyed.
    Captured {
        /// The winning transmitter.
        node: usize,
        /// The winner's received power gain.
        gain: f64,
        /// Summed linear power of the losing arrivals — the interference
        /// the survivor must still decode through.
        interference: f64,
    },
    /// Several transmissions overlapped and none dominated: all destroyed.
    Collision,
}

impl SlotOutcome {
    /// The node whose packet reaches the receiver, if any.
    pub fn survivor(&self) -> Option<usize> {
        match *self {
            SlotOutcome::Clean { node } | SlotOutcome::Captured { node, .. } => Some(node),
            SlotOutcome::Idle | SlotOutcome::Collision => None,
        }
    }

    /// Whether the slot carried overlapping transmissions (captured or
    /// not).
    pub fn contended(&self) -> bool {
        matches!(self, SlotOutcome::Captured { .. } | SlotOutcome::Collision)
    }
}

/// Resolves one slot of overlapping transmissions into a [`SlotOutcome`]
/// under the capture threshold model.
///
/// The strongest arrival (gain ties broken toward the *first-listed*
/// transmitter, so the outcome is a deterministic function of the input
/// slice — pass transmitters in node order for lowest-node-wins ties)
/// survives iff its SINR `gain / (noise_power + Σ other gains)` is at
/// least `capture_db`; otherwise the slot is a full collision. A single
/// transmission is always [`SlotOutcome::Clean`] — whether it *decodes*
/// is the PHY's business, not the medium's.
///
/// # Panics
///
/// Panics if `noise_power` is not strictly positive or any gain is
/// negative — both indicate a units bug upstream.
pub fn resolve_slot(txs: &[TxPower], noise_power: f64, capture_db: f64) -> SlotOutcome {
    assert!(noise_power > 0.0, "noise power must be positive");
    assert!(
        txs.iter().all(|t| t.gain >= 0.0),
        "negative link gain is a units bug"
    );
    match txs {
        [] => SlotOutcome::Idle,
        [only] => SlotOutcome::Clean { node: only.node },
        _ => {
            let strongest = txs
                .iter()
                .copied()
                .reduce(|best, t| if t.gain > best.gain { t } else { best })
                .expect("non-empty by match arm"); // lint: allow(panic-policy) — the `_` arm only matches slices of len >= 2
            let interference: f64 = txs
                .iter()
                .filter(|t| t.node != strongest.node)
                .map(|t| t.gain)
                .sum();
            let sinr = strongest.gain / (noise_power + interference);
            if sinr >= SnrDb::new(capture_db).linear() {
                SlotOutcome::Captured {
                    node: strongest.node,
                    gain: strongest.gain,
                    interference,
                }
            } else {
                SlotOutcome::Collision
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOISE: f64 = 0.1; // 10 dB SNR for a unit-gain arrival

    #[test]
    fn empty_slot_is_idle() {
        assert_eq!(resolve_slot(&[], NOISE, 10.0), SlotOutcome::Idle);
    }

    #[test]
    fn single_transmission_is_clean() {
        let txs = [TxPower {
            node: 3,
            gain: 0.01,
        }];
        // Even a deeply faded lone packet reaches the receiver; decoding
        // it is the PHY's problem.
        assert_eq!(
            resolve_slot(&txs, NOISE, 10.0),
            SlotOutcome::Clean { node: 3 }
        );
    }

    #[test]
    fn equal_power_overlap_collides() {
        let txs = [
            TxPower { node: 0, gain: 1.0 },
            TxPower { node: 1, gain: 1.0 },
        ];
        // SINR ~ 0 dB, far below any sensible capture margin.
        assert_eq!(resolve_slot(&txs, NOISE, 10.0), SlotOutcome::Collision);
    }

    #[test]
    fn dominant_arrival_captures() {
        let txs = [
            TxPower { node: 0, gain: 4.0 },
            TxPower {
                node: 1,
                gain: 0.01,
            },
        ];
        // SINR = 4.0 / (0.1 + 0.01) ≈ 15.6 dB > 10 dB margin.
        match resolve_slot(&txs, NOISE, 10.0) {
            SlotOutcome::Captured {
                node,
                gain,
                interference,
            } => {
                assert_eq!(node, 0);
                assert!((gain - 4.0).abs() < 1e-12);
                assert!((interference - 0.01).abs() < 1e-12);
            }
            other => panic!("expected capture, got {other:?}"),
        }
    }

    #[test]
    fn capture_threshold_is_respected() {
        let txs = [
            TxPower { node: 0, gain: 1.0 },
            TxPower { node: 1, gain: 0.2 },
        ];
        // SINR = 1.0 / 0.3 ≈ 5.2 dB: captures at a 3 dB margin, collides
        // at a 10 dB margin.
        assert!(matches!(
            resolve_slot(&txs, NOISE, 3.0),
            SlotOutcome::Captured { node: 0, .. }
        ));
        assert_eq!(resolve_slot(&txs, NOISE, 10.0), SlotOutcome::Collision);
    }

    #[test]
    fn ties_break_toward_lowest_node() {
        let txs = [
            TxPower { node: 2, gain: 5.0 },
            TxPower { node: 1, gain: 5.0 },
        ];
        // Equal gains cannot capture over each other at any positive
        // margin, but the *strongest* pick must still be deterministic:
        // first occurrence wins the reduce.
        assert_eq!(resolve_slot(&txs, NOISE, 10.0), SlotOutcome::Collision);
        // With a tiny interferer added, the first-listed strongest wins.
        let txs = [
            TxPower { node: 2, gain: 5.0 },
            TxPower {
                node: 1,
                gain: 0.001,
            },
        ];
        assert_eq!(resolve_slot(&txs, NOISE, 10.0).survivor(), Some(2));
    }

    #[test]
    fn survivor_and_contended_accessors() {
        assert_eq!(SlotOutcome::Idle.survivor(), None);
        assert_eq!(SlotOutcome::Collision.survivor(), None);
        assert_eq!(SlotOutcome::Clean { node: 7 }.survivor(), Some(7));
        assert!(!SlotOutcome::Clean { node: 7 }.contended());
        assert!(SlotOutcome::Collision.contended());
    }

    #[test]
    #[should_panic(expected = "noise power")]
    fn zero_noise_rejected() {
        let _ = resolve_slot(&[], 0.0, 10.0);
    }
}
