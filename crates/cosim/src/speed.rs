//! The Figure 2 throughput model.

use std::fmt;

use wilis_lis::platform::LinkModel;
use wilis_phy::{PhyRate, SYMBOL_LEN};

/// Which resource limits the co-simulation at a given rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The multithreaded software channel (noise generation) — the
    /// paper's measured bottleneck at every rate.
    SoftwareChannel,
    /// The FPGA baseband clock.
    FpgaPipeline,
    /// The host↔FPGA link.
    HostLink,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Bottleneck::SoftwareChannel => "software channel",
            Bottleneck::FpgaPipeline => "FPGA pipeline",
            Bottleneck::HostLink => "host link",
        })
    }
}

/// One row of the Figure 2 table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedRow {
    /// The 802.11g rate.
    pub rate: PhyRate,
    /// Modeled simulation speed in Mb/s.
    pub sim_mbps: f64,
    /// Simulation speed as a fraction of the rate's line speed.
    pub fraction_of_line_rate: f64,
    /// The limiting resource.
    pub bottleneck: Bottleneck,
    /// Host↔FPGA bandwidth this rate consumes, bytes/second.
    pub link_bytes_per_sec: f64,
}

/// Analytic model of the hybrid platform's simulation speed.
///
/// Calibration: the single free parameter is the host's aggregate noise
/// generation rate. The paper reports the simulation using ~55 MB/s of
/// link bandwidth while channel computation saturates four cores; at 8
/// bytes per complex sample that is ~6.9 Msamples/s, which [`Self::paper`]
/// adopts. Every row then follows from the sample cost of an OFDM symbol.
///
/// # Example
///
/// ```
/// use wilis_cosim::SpeedModel;
/// use wilis_phy::PhyRate;
///
/// let model = SpeedModel::paper();
/// let rows = model.table();
/// assert_eq!(rows.len(), 8);
/// // The paper's envelope: every rate lands between ~30% and ~45% of line rate.
/// for row in &rows {
///     assert!(row.fraction_of_line_rate > 0.25 && row.fraction_of_line_rate < 0.5);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedModel {
    /// Host noise-generation throughput, complex samples/second (all
    /// cores combined).
    channel_samples_per_sec: f64,
    /// FPGA baseband clock in Hz (processes one sample per cycle).
    fpga_sample_rate: f64,
    /// Host↔FPGA link.
    link: LinkModel,
    /// Bytes per complex baseband sample crossing the link (I/Q as two
    /// 32-bit fixed-point words).
    bytes_per_sample: f64,
}

impl SpeedModel {
    /// A model with an explicit channel throughput.
    ///
    /// # Panics
    ///
    /// Panics if the sample rates are not strictly positive.
    pub fn new(channel_samples_per_sec: f64, fpga_sample_rate: f64, link: LinkModel) -> Self {
        assert!(channel_samples_per_sec > 0.0 && fpga_sample_rate > 0.0);
        Self {
            channel_samples_per_sec,
            fpga_sample_rate,
            link,
            bytes_per_sample: 8.0,
        }
    }

    /// The paper's platform: quad-core Xeon channel (~6.9 Msamples/s
    /// aggregate, the rate that consumes ~55 MB/s of link bandwidth),
    /// 35 MHz baseband pipeline, FSB link.
    pub fn paper() -> Self {
        Self::new(6.9e6, 35.0e6, LinkModel::fsb())
    }

    /// Computes one row of Figure 2.
    pub fn row(&self, rate: PhyRate) -> SpeedRow {
        let bits_per_symbol = rate.data_bits_per_symbol() as f64;
        let samples_per_symbol = SYMBOL_LEN as f64;

        // Each candidate bottleneck, expressed as symbols/second.
        let chan = self.channel_samples_per_sec / samples_per_symbol;
        let fpga = self.fpga_sample_rate / samples_per_symbol;
        let link =
            self.link.bandwidth_bytes_per_sec() / (samples_per_symbol * self.bytes_per_sample);
        let (symbols_per_sec, bottleneck) = [
            (chan, Bottleneck::SoftwareChannel),
            (fpga, Bottleneck::FpgaPipeline),
            (link, Bottleneck::HostLink),
        ]
        .into_iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("rates are finite")) // lint: allow(panic-policy) — rates are ratios of positive constants, never NaN
        .expect("three candidates"); // lint: allow(panic-policy) — the candidate array is a three-element literal

        let sim_bps = symbols_per_sec * bits_per_symbol;
        SpeedRow {
            rate,
            sim_mbps: sim_bps / 1e6,
            fraction_of_line_rate: sim_bps / rate.bps(),
            bottleneck,
            link_bytes_per_sec: symbols_per_sec * samples_per_symbol * self.bytes_per_sample,
        }
    }

    /// All eight rows, slowest rate first — the Figure 2 table.
    pub fn table(&self) -> Vec<SpeedRow> {
        PhyRate::all().iter().map(|&r| self.row(r)).collect()
    }

    /// The link bandwidth fraction the simulation uses (the paper: ~55 of
    /// >700 MB/s, i.e. under 10%).
    pub fn link_utilization(&self, rate: PhyRate) -> f64 {
        self.row(rate).link_bytes_per_sec / self.link.bandwidth_bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_channel_is_the_bottleneck_everywhere() {
        // §3: "our software modules are the bottleneck of our system."
        let model = SpeedModel::paper();
        for row in model.table() {
            assert_eq!(row.bottleneck, Bottleneck::SoftwareChannel, "{}", row.rate);
        }
    }

    #[test]
    fn fractions_sit_in_the_paper_band() {
        // Paper: 32.8%..41.3% of line rate. The analytic model produces a
        // flat fraction (channel-bound, so speed scales exactly with bits
        // per symbol); assert it lands inside the band.
        let model = SpeedModel::paper();
        for row in model.table() {
            assert!(
                (0.30..0.45).contains(&row.fraction_of_line_rate),
                "{}: {:.3}",
                row.rate,
                row.fraction_of_line_rate
            );
        }
    }

    #[test]
    fn top_rate_speed_matches_paper_magnitude() {
        // Paper: 22.244 Mb/s at QAM-64 3/4 (41.3%); the flat-fraction model
        // gives ~18.6 Mb/s (34.5%) - same order, same ranking.
        let row = SpeedModel::paper().row(PhyRate::Qam64ThreeQuarters);
        assert!(
            row.sim_mbps > 15.0 && row.sim_mbps < 25.0,
            "{}",
            row.sim_mbps
        );
    }

    #[test]
    fn link_usage_matches_paper() {
        // ~55 MB/s of >700 MB/s.
        let model = SpeedModel::paper();
        let row = model.row(PhyRate::Qam64ThreeQuarters);
        assert!(
            (50e6..60e6).contains(&row.link_bytes_per_sec),
            "{:.1} MB/s",
            row.link_bytes_per_sec / 1e6
        );
        assert!(model.link_utilization(PhyRate::Qam64ThreeQuarters) < 0.1);
    }

    #[test]
    fn speed_scales_with_bits_per_symbol() {
        let model = SpeedModel::paper();
        let bpsk = model.row(PhyRate::BpskHalf);
        let qam64 = model.row(PhyRate::Qam64ThreeQuarters);
        let ratio = qam64.sim_mbps / bpsk.sim_mbps;
        assert!((ratio - 216.0 / 24.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn fpga_becomes_bottleneck_with_fast_channel() {
        // Sanity of the min(): a hypothetical 100 Msample/s channel makes
        // the 35 MHz pipeline the limit.
        let model = SpeedModel::new(100e6, 35e6, LinkModel::fsb());
        let row = model.row(PhyRate::Qam64ThreeQuarters);
        assert_eq!(row.bottleneck, Bottleneck::FpgaPipeline);
        // At 35 Msamples/s the pipeline exceeds line rate (35e6/80*216 = 94.5 Mb/s).
        assert!(row.fraction_of_line_rate > 1.0);
    }

    #[test]
    fn slow_link_becomes_bottleneck() {
        let model = SpeedModel::new(100e6, 200e6, LinkModel::usb2());
        let row = model.row(PhyRate::BpskHalf);
        assert_eq!(row.bottleneck, Bottleneck::HostLink);
    }
}
