//! Measured throughput of this repository's software pipeline.
//!
//! The paper contrasts its 20+ Mb/s co-simulation against software
//! simulators that manage "only a few kilobits per second" for detailed
//! models (§1), and against optimized software radios that need a full
//! core for Viterbi alone (§5). This module measures what *our* pure
//! software pipeline achieves, so the Figure 2 regeneration can report
//! model-vs-native side by side — and so the §5 comparison ("pure software
//! is orders of magnitude below line rate for soft-output decoders") can
//! be checked rather than asserted.

use std::time::Instant; // lint: allow(wall-clock) — this module *is* the native-speed measurement harness

use wilis_channel::{AwgnChannel, Channel, SnrDb};
use wilis_fxp::rng::SmallRng;
use wilis_fxp::Cplx;
use wilis_phy::{PhyRate, PhyScratch, Receiver, RxResult, Transmitter};

/// Which decoder the native measurement runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeDecoder {
    /// Hard-output Viterbi (the commodity baseline).
    Viterbi,
    /// SOVA with the paper's `l = k = 64`.
    Sova,
    /// Sliding-window BCJR with block 64.
    Bcjr,
}

/// A native throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeSpeed {
    /// The rate measured.
    pub rate: PhyRate,
    /// Payload bits pushed through TX → channel → RX.
    pub bits: u64,
    /// Wall-clock seconds consumed.
    pub wall_secs: f64,
    /// Achieved simulation speed in Mb/s.
    pub sim_mbps: f64,
    /// Fraction of the 802.11g line rate.
    pub fraction_of_line_rate: f64,
}

/// Runs `packets` packets of `packet_bits` payload bits end-to-end and
/// measures wall-clock throughput.
///
/// # Panics
///
/// Panics if `packets` or `packet_bits` is zero.
pub fn measure_native(
    rate: PhyRate,
    decoder: NativeDecoder,
    packets: u32,
    packet_bits: usize,
    seed: u64,
) -> NativeSpeed {
    assert!(packets > 0 && packet_bits > 0, "measure something");
    let tx = Transmitter::new(rate);
    let mut rx = match decoder {
        NativeDecoder::Viterbi => Receiver::viterbi(rate),
        NativeDecoder::Sova => Receiver::sova(rate),
        NativeDecoder::Bcjr => Receiver::bcjr(rate),
    };
    let mut channel = AwgnChannel::new(SnrDb::new(20.0), seed);
    let mut rng = SmallRng::seed_from_u64(seed);
    let payloads: Vec<Vec<u8>> = (0..packets)
        .map(|_| (0..packet_bits).map(|_| rng.gen_bit()).collect())
        .collect();

    // The steady-state scratch path: what the measurement times is
    // arithmetic, not the allocator.
    let mut scratch = PhyScratch::new();
    let mut samples: Vec<Cplx> = Vec::new();
    let mut got = RxResult::default();
    let start = Instant::now(); // lint: allow(wall-clock) — measuring host decode speed is this function's purpose
    let mut delivered = 0u64;
    for (i, payload) in payloads.iter().enumerate() {
        let scramble_seed = (i % 127 + 1) as u8;
        tx.tx_into(payload, scramble_seed, &mut scratch, &mut samples);
        channel.apply(&mut samples);
        rx.rx_from(
            &samples,
            payload.len(),
            scramble_seed,
            &mut scratch,
            &mut got,
        );
        delivered += (got.bit_errors(payload) == 0) as u64;
    }
    let wall = start.elapsed().as_secs_f64();
    assert!(delivered > 0, "high-SNR run should deliver packets");

    let bits = u64::from(packets) * packet_bits as u64;
    let sim_bps = bits as f64 / wall;
    NativeSpeed {
        rate,
        bits,
        wall_secs: wall,
        sim_mbps: sim_bps / 1e6,
        fraction_of_line_rate: sim_bps / rate.bps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_measurement_is_positive_and_consistent() {
        let m = measure_native(PhyRate::QpskHalf, NativeDecoder::Viterbi, 4, 400, 1);
        assert_eq!(m.bits, 1600);
        assert!(m.wall_secs > 0.0);
        assert!(m.sim_mbps > 0.0);
        let recomputed = m.bits as f64 / m.wall_secs / 1e6;
        assert!((m.sim_mbps - recomputed).abs() < 1e-9);
    }

    #[test]
    fn soft_decoders_cost_more_than_viterbi() {
        // §5: soft-output algorithms are 3-4x the complexity of Viterbi.
        // Wall-clock noise makes exact ratios flaky; just require SOVA and
        // BCJR not to be dramatically faster than the hard decoder.
        let packets = 6;
        let v = measure_native(PhyRate::QpskHalf, NativeDecoder::Viterbi, packets, 600, 2);
        let b = measure_native(PhyRate::QpskHalf, NativeDecoder::Bcjr, packets, 600, 2);
        assert!(b.sim_mbps < v.sim_mbps * 2.0);
    }
}
