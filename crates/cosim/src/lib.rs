//! The hybrid co-simulation performance model (Figure 2 and §3).
//!
//! The paper's platform splits the simulation between an FPGA (the
//! baseband pipeline, 35 MHz; the BER unit, 60 MHz) and a quad-core host
//! (the AWGN channel), joined by a front-side-bus FIFO measured above
//! 700 MB/s. Profiling showed the *software channel* is the bottleneck:
//! noise generation saturates all four cores while the link carries only
//! ~55 MB/s, which is both why co-simulation beats an all-FPGA testbench
//! (the channel is not hardware-friendly) and why simulation speed lands
//! at 32.8–41.3% of line rate across the eight 802.11g rates.
//!
//! [`SpeedModel`] reproduces that throughput table analytically, and
//! [`native`] measures the same quantity for *this repository's* pure
//! software pipeline, so the Figure 2 regeneration can print both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod native;
mod speed;

pub use speed::{Bottleneck, SpeedModel, SpeedRow};
