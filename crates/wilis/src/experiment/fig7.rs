//! Figure 7: SoftRate rate selection under a 20 Hz fading channel with
//! 10 dB AWGN.
//!
//! The transmitter MAC observes each packet's predicted PBER (as it would
//! arrive on an ARQ acknowledgement) and adjusts the rate of future
//! packets. A rate is *over-selected* when it exceeds the highest rate at
//! which the packet would have been received error-free, *under-selected*
//! when below it (§4.4.2). Establishing that oracle is exactly what the
//! paper's "pseudo-random noise model" exists for: every candidate rate is
//! replayed against the identical noise-and-fading-versus-time
//! realization ([`wilis_channel::ReplayChannel`]).
//!
//! Fading substitution (documented in DESIGN.md): the paper's receiver has
//! no channel estimation, so we give the fading experiments genie
//! equalization — received samples are divided by the known channel gain,
//! leaving the effective SNR `|h|² × SNR`, which is the quantity rate
//! adaptation responds to.

use wilis_channel::{Channel, ReplayChannel, SnrDb};
use wilis_fxp::rng::SmallRng;
use wilis_fxp::Cplx;
use wilis_mac::{SelectionStats, SoftRate};
use wilis_phy::{PhyRate, PhyScratch, Receiver, RxResult, Transmitter, SYMBOL_LEN};
use wilis_softphy::calibrate::receiver_for;
use wilis_softphy::{BerEstimator, DecoderKind, ScalingFactors};

use crate::scenario::SweepRunner;

/// Baseband sample rate: 80 samples per 4 µs OFDM symbol (shared with
/// the channel models so replay time and model time cannot diverge).
const SAMPLE_RATE_HZ: f64 = wilis_channel::MODEL_SAMPLE_RATE_HZ;

/// Configuration of the SoftRate trial.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Config {
    /// Mean channel SNR (paper: 10 dB).
    pub snr: SnrDb,
    /// Doppler of the Rayleigh fading process (paper: 20 Hz).
    pub doppler_hz: f64,
    /// Number of packet slots to simulate.
    pub packets: u32,
    /// Payload bits per packet.
    pub payload_bits: usize,
    /// Idle gap between packets in seconds (lets the channel evolve).
    pub gap_secs: f64,
    /// RNG seed for payloads and the channel realization.
    pub seed: u64,
}

impl Fig7Config {
    /// The paper's channel with a given packet budget.
    pub fn paper(packets: u32) -> Self {
        Self {
            snr: SnrDb::new(10.0),
            doppler_hz: 20.0,
            packets,
            payload_bits: 800,
            gap_secs: 0.5e-3,
            seed: 0xF17,
        }
    }
}

/// The outcome of one trial.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Which decoder drove the PBER estimates.
    pub decoder: DecoderKind,
    /// Under/accurate/over tallies — the Figure 7 bars.
    pub stats: SelectionStats,
    /// Mean selected rate across the trial, Mbps.
    pub mean_rate_mbps: f64,
    /// Fraction of packets delivered error-free at the selected rate.
    pub delivery_rate: f64,
}

fn equalize(samples: &mut [Cplx], gain: Cplx) {
    let inv = Cplx::ONE / gain;
    for s in samples {
        *s *= inv;
    }
}

/// Transmits `payload` at `rate` through the replayed channel starting at
/// `start`, with genie equalization, receiving into `got` and reusing
/// `scratch`/`samples` (the steady-state form). Returns the airtime in
/// samples.
#[allow(clippy::too_many_arguments)]
fn send_one(
    rate: PhyRate,
    rx: &mut Receiver,
    channel: &mut ReplayChannel,
    start: u64,
    payload: &[u8],
    scramble_seed: u8,
    scratch: &mut PhyScratch,
    samples: &mut Vec<Cplx>,
    got: &mut RxResult,
) -> u64 {
    let fields = Transmitter::new(rate).tx_into(payload, scramble_seed, scratch, samples);
    channel.seek(start);
    let gain = channel.current_gain();
    channel.apply(samples);
    equalize(samples, gain);
    rx.rx_from(samples, payload.len(), scramble_seed, scratch, got);
    (fields.n_symbols * SYMBOL_LEN) as u64
}

/// Runs the Figure 7 trial for one decoder.
pub fn run(cfg: &Fig7Config, decoder: DecoderKind) -> Fig7Result {
    let mut channel = ReplayChannel::fading(cfg.snr, cfg.doppler_hz, SAMPLE_RATE_HZ, cfg.seed);
    let mut softrate = SoftRate::for_packet_bits(PhyRate::Qam16Half, cfg.payload_bits);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut stats = SelectionStats::new();
    let gap_samples = (cfg.gap_secs * SAMPLE_RATE_HZ) as u64;

    // Receivers: one SoftPHY receiver per rate for the protocol path, one
    // Viterbi receiver per rate for the oracle.
    let mut soft_rx: Vec<Receiver> = PhyRate::all()
        .iter()
        .map(|&r| {
            receiver_for(
                r,
                decoder,
                ScalingFactors::hint_demapper_bits(r.modulation()),
            )
        })
        .collect();
    let mut oracle_rx: Vec<Receiver> = PhyRate::all()
        .iter()
        .map(|&r| Receiver::viterbi(r))
        .collect();
    let estimators: Vec<BerEstimator> = PhyRate::all()
        .iter()
        .map(|&r| BerEstimator::analytic_for_rate(r, decoder))
        .collect();

    let mut rate_sum_mbps = 0.0;
    let mut delivered = 0u64;
    let mut position = 0u64;

    // Per-trial working memory, reused across packets and rates.
    let mut scratch = PhyScratch::new();
    let mut samples: Vec<Cplx> = Vec::new();
    let mut got = RxResult::default();
    let mut payload: Vec<u8> = Vec::new();

    for p in 0..cfg.packets {
        payload.clear();
        payload.extend((0..cfg.payload_bits).map(|_| rng.gen_bit()));
        let scramble_seed = (p % 127 + 1) as u8;
        let selected = softrate.current();
        let idx = PhyRate::all()
            .iter()
            .position(|&r| r == selected)
            .expect("in table");

        // Protocol path: send at the selected rate, estimate PBER, adapt.
        let airtime = send_one(
            selected,
            &mut soft_rx[idx],
            &mut channel,
            position,
            &payload,
            scramble_seed,
            &mut scratch,
            &mut samples,
            &mut got,
        );
        let pber = estimators[idx].per_packet(&got.hints);
        softrate.observe(pber);
        let clean = got.bit_errors(&payload) == 0;
        delivered += u64::from(clean);
        rate_sum_mbps += selected.mbps();

        // Oracle: replay every rate against the identical channel.
        let mut optimal = None;
        for (ri, &rate) in PhyRate::all().iter().enumerate() {
            send_one(
                rate,
                &mut oracle_rx[ri],
                &mut channel,
                position,
                &payload,
                scramble_seed,
                &mut scratch,
                &mut samples,
                &mut got,
            );
            if got.bit_errors(&payload) == 0 {
                optimal = Some(rate); // rates iterate slowest->fastest
            }
        }
        stats.record(SoftRate::classify(selected, optimal));

        position += airtime + gap_samples;
    }

    Fig7Result {
        decoder,
        stats,
        mean_rate_mbps: rate_sum_mbps / f64::from(cfg.packets),
        delivery_rate: delivered as f64 / f64::from(cfg.packets),
    }
}

/// Runs both decoders' trials concurrently on the scenario engine's
/// deterministic worker pool (each trial is internally sequential — rate
/// adaptation carries state from packet to packet — but the two trials
/// are independent).
pub fn run_both(cfg: &Fig7Config) -> Vec<Fig7Result> {
    let decoders = [DecoderKind::Bcjr, DecoderKind::Sova];
    SweepRunner::auto().run_indexed(decoders.len(), |i| run(cfg, decoders[i]))
}

/// Renders both decoders' bars in the paper's format.
pub fn render(results: &[Fig7Result]) -> String {
    let mut out = String::from(
        "Figure 7: SoftRate under 20 Hz fading + 10 dB AWGN\n\
         (paper: both decoders >80% accurate; SOVA underselects ~4% more; both overselect ~2%)\n",
    );
    out.push_str(&format!(
        "{:<8} {:>9} {:>10} {:>8} {:>12} {:>10}\n",
        "Decoder", "Under %", "Accurate %", "Over %", "Mean Mbps", "Delivery"
    ));
    for r in results {
        let (u, a, o) = r.stats.percentages();
        out.push_str(&format!(
            "{:<8} {:>9.1} {:>10.1} {:>8.1} {:>12.2} {:>9.1}%\n",
            r.decoder.to_string(),
            u,
            a,
            o,
            r.mean_rate_mbps,
            100.0 * r.delivery_rate
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_runs_and_tallies() {
        let cfg = Fig7Config {
            packets: 12,
            payload_bits: 256,
            ..Fig7Config::paper(12)
        };
        let r = run(&cfg, DecoderKind::Sova);
        assert_eq!(r.stats.total(), 12);
        assert!(r.mean_rate_mbps >= 6.0 && r.mean_rate_mbps <= 54.0);
        let txt = render(&[r]);
        assert!(txt.contains("SOVA"));
    }

    #[test]
    fn identical_seeds_identical_outcomes() {
        let cfg = Fig7Config {
            packets: 8,
            payload_bits: 256,
            ..Fig7Config::paper(8)
        };
        let a = run(&cfg, DecoderKind::Bcjr);
        let b = run(&cfg, DecoderKind::Bcjr);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.mean_rate_mbps, b.mean_rate_mbps);
    }

    #[test]
    fn adaptation_beats_fixed_worst_choice() {
        // With a fading channel at 10 dB, always sending at 54 Mbps loses
        // most packets; SoftRate should deliver materially more.
        let cfg = Fig7Config {
            packets: 30,
            payload_bits: 256,
            ..Fig7Config::paper(30)
        };
        let adaptive = run(&cfg, DecoderKind::Bcjr);
        assert!(
            adaptive.delivery_rate > 0.4,
            "delivery {:.2}",
            adaptive.delivery_rate
        );
    }
}
