//! Figure 7: SoftRate rate selection under a 20 Hz fading channel with
//! 10 dB AWGN — run entirely on the scenario engine's link dimension.
//!
//! The transmitter MAC observes each packet's predicted PBER (as it would
//! arrive on an ARQ acknowledgement) and adjusts the rate of future
//! packets. A rate is *over-selected* when it exceeds the highest rate at
//! which the packet would have been received error-free, *under-selected*
//! when below it (§4.4.2). Establishing that oracle is exactly what the
//! paper's "pseudo-random noise model" exists for: every candidate rate is
//! replayed against the identical noise-and-fading-versus-time
//! realization.
//!
//! Since the link-layer sweep integration, all of that machinery lives in
//! the engine itself: the `"trace"` channel model walks one replayed
//! fading realization packet by packet (with genie equalization — the
//! receiver has no channel estimation, as documented in DESIGN.md), the
//! `"softrate"` link policy steers the transmit rate and asks the engine
//! for the per-packet all-rates oracle replay, and the under/accurate/over
//! tallies come back as [`wilis_mac::LinkMetrics`]. This driver is just a
//! [`Scenario`] description plus a result mapping.

use wilis_channel::SnrDb;
use wilis_lis::registry::Params;
use wilis_mac::SelectionStats;
use wilis_phy::PhyRate;
use wilis_softphy::DecoderKind;

use crate::scenario::{Scenario, ScenarioResult, SweepRunner};
use crate::service::SweepService;

/// Configuration of the SoftRate trial.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Config {
    /// Mean channel SNR (paper: 10 dB).
    pub snr: SnrDb,
    /// Doppler of the Rayleigh fading process (paper: 20 Hz).
    pub doppler_hz: f64,
    /// Number of packet slots to simulate.
    pub packets: u32,
    /// Payload bits per packet.
    pub payload_bits: usize,
    /// Idle gap between packets in seconds (lets the channel evolve).
    pub gap_secs: f64,
    /// RNG seed for payloads and the channel realization.
    pub seed: u64,
}

impl Fig7Config {
    /// The paper's channel with a given packet budget.
    pub fn paper(packets: u32) -> Self {
        Self {
            snr: SnrDb::new(10.0),
            doppler_hz: 20.0,
            packets,
            payload_bits: 800,
            gap_secs: 0.5e-3,
            seed: 0xF17,
        }
    }

    /// The grid point this trial is, in engine form: the Figure 7 channel
    /// as a `"trace"` walk and SoftRate as the `"softrate"` link policy
    /// starting from QAM-16 1/2.
    pub fn scenario(&self, decoder: DecoderKind) -> Scenario {
        let mut channel_params = Params::new();
        channel_params.set("doppler_hz", &format!("{}", self.doppler_hz));
        channel_params.set("base_seed", &format!("{}", self.seed));
        channel_params.set("gap_secs", &format!("{}", self.gap_secs));
        Scenario {
            rate: PhyRate::Qam16Half,
            decoder: decoder.registry_name().to_string(),
            channel: "trace".to_string(),
            channel_params,
            link: "softrate".to_string(),
            link_params: Params::new(),
            contention: "p2p".to_string(),
            contention_params: Params::new(),
            nodes: 1,
            snr_db: self.snr.db(),
            seed: self.seed,
            packets: self.packets,
            payload_bits: self.payload_bits,
        }
    }
}

/// The outcome of one trial.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Which decoder drove the PBER estimates.
    pub decoder: DecoderKind,
    /// Under/accurate/over tallies — the Figure 7 bars.
    pub stats: SelectionStats,
    /// Mean selected rate across the trial, Mbps.
    pub mean_rate_mbps: f64,
    /// Fraction of packets delivered error-free at the selected rate.
    pub delivery_rate: f64,
}

fn result_from(decoder: DecoderKind, r: &ScenarioResult) -> Fig7Result {
    let m = r.link.expect("softrate scenario carries link metrics"); // lint: allow(panic-policy) — cfg.scenario() always sets the softrate link policy
    Fig7Result {
        decoder,
        stats: SelectionStats {
            under: m.under,
            accurate: m.accurate,
            over: m.over,
        },
        mean_rate_mbps: m.mean_selected_mbps(),
        delivery_rate: m.delivery_rate(),
    }
}

/// Runs the Figure 7 trial for one decoder through the sweep engine,
/// behind a throwaway [`SweepService`] honoring `WILIS_STORE`.
pub fn run(cfg: &Fig7Config, decoder: DecoderKind) -> Fig7Result {
    run_with(
        &mut SweepService::from_env(SweepRunner::new(1)),
        cfg,
        decoder,
    )
}

/// [`run`] against a caller-owned [`SweepService`].
pub fn run_with(service: &mut SweepService, cfg: &Fig7Config, decoder: DecoderKind) -> Fig7Result {
    let results = service
        .run(&[cfg.scenario(decoder)])
        .expect("stock decoder, channel, and link names"); // lint: allow(panic-policy) — experiment driver sweeps the stock registry over a known-good grid
    result_from(decoder, &results[0])
}

/// Runs both decoders' trials concurrently — two grid points of the same
/// sweep (each is internally sequential: rate adaptation carries state
/// from packet to packet, which is exactly what the link policy models).
pub fn run_both(cfg: &Fig7Config) -> Vec<Fig7Result> {
    run_both_with(&mut SweepService::from_env(SweepRunner::auto()), cfg)
}

/// [`run_both`] against a caller-owned [`SweepService`].
pub fn run_both_with(service: &mut SweepService, cfg: &Fig7Config) -> Vec<Fig7Result> {
    let decoders = [DecoderKind::Bcjr, DecoderKind::Sova];
    let scenarios: Vec<Scenario> = decoders.iter().map(|&d| cfg.scenario(d)).collect();
    let results = service
        .run(&scenarios)
        .expect("stock decoder, channel, and link names"); // lint: allow(panic-policy) — experiment driver sweeps the stock registry over a known-good grid
    decoders
        .iter()
        .zip(&results)
        .map(|(&d, r)| result_from(d, r))
        .collect()
}

/// Renders both decoders' bars in the paper's format.
pub fn render(results: &[Fig7Result]) -> String {
    let mut out = String::from(
        "Figure 7: SoftRate under 20 Hz fading + 10 dB AWGN\n\
         (paper: both decoders >80% accurate; SOVA underselects ~4% more; both overselect ~2%)\n",
    );
    out.push_str(&format!(
        "{:<8} {:>9} {:>10} {:>8} {:>12} {:>10}\n",
        "Decoder", "Under %", "Accurate %", "Over %", "Mean Mbps", "Delivery"
    ));
    for r in results {
        let (u, a, o) = r.stats.percentages();
        out.push_str(&format!(
            "{:<8} {:>9.1} {:>10.1} {:>8.1} {:>12.2} {:>9.1}%\n",
            r.decoder.to_string(),
            u,
            a,
            o,
            r.mean_rate_mbps,
            100.0 * r.delivery_rate
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_runs_and_tallies() {
        let cfg = Fig7Config {
            packets: 12,
            payload_bits: 256,
            ..Fig7Config::paper(12)
        };
        let r = run(&cfg, DecoderKind::Sova);
        assert_eq!(r.stats.total(), 12);
        assert!(r.mean_rate_mbps >= 6.0 && r.mean_rate_mbps <= 54.0);
        let txt = render(&[r]);
        assert!(txt.contains("SOVA"));
    }

    #[test]
    fn identical_seeds_identical_outcomes() {
        let cfg = Fig7Config {
            packets: 8,
            payload_bits: 256,
            ..Fig7Config::paper(8)
        };
        let a = run(&cfg, DecoderKind::Bcjr);
        let b = run(&cfg, DecoderKind::Bcjr);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.mean_rate_mbps, b.mean_rate_mbps);
    }

    #[test]
    fn run_both_matches_individual_runs() {
        // The engine executes both decoders' trials as grid points; each
        // must be bit-identical to its standalone run.
        let cfg = Fig7Config {
            packets: 6,
            payload_bits: 256,
            ..Fig7Config::paper(6)
        };
        let both = run_both(&cfg);
        let solo = run(&cfg, DecoderKind::Bcjr);
        assert_eq!(both[0].stats, solo.stats);
        assert_eq!(both[0].mean_rate_mbps, solo.mean_rate_mbps);
    }

    #[test]
    fn adaptation_beats_fixed_worst_choice() {
        // With a fading channel at 10 dB, always sending at 54 Mbps loses
        // most packets; SoftRate should deliver materially more.
        let cfg = Fig7Config {
            packets: 30,
            payload_bits: 256,
            ..Fig7Config::paper(30)
        };
        let adaptive = run(&cfg, DecoderKind::Bcjr);
        assert!(
            adaptive.delivery_rate > 0.4,
            "delivery {:.2}",
            adaptive.delivery_rate
        );
    }
}
