//! Figure 8: synthesis results of BCJR, SOVA and Viterbi.
//!
//! Produced by the calibrated structural area model (`wilis-area`); see
//! that crate's documentation for what is calibrated versus predicted.

use wilis_area::{DecoderParams, SynthesisTable};

/// Runs the synthesis table at the paper's default parameters.
pub fn run() -> Vec<SynthesisTable> {
    SynthesisTable::paper_table()
}

/// Runs the table at a custom configuration (for the ablation benches).
/// Closed-form arithmetic — the one figure with no Monte-Carlo loop to
/// batch, so it deliberately stays off the scenario engine.
pub fn run_with(params: &DecoderParams) -> Vec<SynthesisTable> {
    use wilis_area::{synthesize, DecoderChoice};
    vec![
        synthesize(DecoderChoice::Bcjr, params),
        synthesize(DecoderChoice::Sova, params),
        synthesize(DecoderChoice::Viterbi, params),
    ]
}

/// Renders the table in the paper's layout.
pub fn render(tables: &[SynthesisTable]) -> String {
    let mut out = String::from(
        "Figure 8: synthesis results (paper: BCJR 32936/38420, SOVA 15114/15168, Viterbi 7569/4538)\n",
    );
    out.push_str(&format!(
        "{:<22} {:>8} {:>10}\n",
        "Module", "LUTs", "Registers"
    ));
    for t in tables {
        out.push_str(&t.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_matches_paper() {
        let tables = run();
        let txt = render(&tables);
        for expected in ["32936", "38420", "15114", "15168", "7569", "4538"] {
            assert!(txt.contains(expected), "missing {expected} in:\n{txt}");
        }
    }

    #[test]
    fn custom_params_change_areas() {
        let mut p = DecoderParams::paper_default();
        p.window = 16;
        let small = run_with(&p);
        let full = run();
        assert!(small[0].total.registers < full[0].total.registers);
    }
}
