//! Figure 5: BER versus SoftPHY hints, per decoder.
//!
//! The paper plots three curves per decoder — QAM-16 at 6 dB, QPSK at
//! 6 dB, QAM-16 at 8 dB — each showing the log-linear hint→BER
//! relationship. Our receiver is more ideal than the paper's (no
//! synchronization or implementation losses), so its BER waterfalls sit a
//! few dB lower; the reproduction therefore anchors each curve at the
//! *same operating point relative to the waterfall* rather than the same
//! absolute SNR: "QAM-16 at 6 dB" becomes QAM-16 at its waterfall
//! midpoint, "at 8 dB" becomes midpoint + 1 dB, and so on. EXPERIMENTS.md
//! tabulates the mapping.

use wilis_channel::SnrDb;
use wilis_phy::{Modulation, PhyRate};
use wilis_softphy::{CalibrationConfig, DecoderKind, HintCalibration, ScalingFactors};

use crate::scenario::{ScenarioResult, SweepGrid, SweepRunner};
use crate::service::SweepService;

/// One Figure 5 curve: a labeled calibration run.
#[derive(Debug, Clone)]
pub struct Fig5Curve {
    /// Legend label in the paper's format.
    pub label: String,
    /// The binned hint→BER measurement.
    pub calibration: HintCalibration,
}

/// The three paper configurations, as (rate, SNR offset from the
/// modulation's waterfall midpoint, paper label).
fn configurations() -> [(PhyRate, f64, &'static str); 3] {
    [
        (PhyRate::Qam16Half, 0.0, "QAM16, AWGN SNR 6dB"),
        (PhyRate::QpskHalf, 0.0, "QPSK, AWGN SNR 6dB"),
        (PhyRate::Qam16Half, 1.0, "QAM16, AWGN SNR 8dB"),
    ]
}

/// Packet size each curve's bit budget is split into.
const PACKET_BITS: usize = 1704;

/// Rebuilds a [`HintCalibration`] from a scenario result — the engine
/// already bins every payload bit by hint; the canonical Figure 5 fit
/// rule lives in [`HintCalibration::from_bins`].
fn calibration_from(cfg: CalibrationConfig, r: &ScenarioResult) -> HintCalibration {
    HintCalibration::from_bins(
        cfg,
        r.hint_bins.clone(),
        r.packets,
        r.packet_errors,
        r.ber(),
    )
}

/// Runs the three curves for one decoder, spending `bits_per_curve`
/// payload bits on each — all three grid points execute concurrently on
/// the scenario engine, through a throwaway [`SweepService`] honoring
/// `WILIS_STORE` (repeat invocations with a store hit the cache).
pub fn run(decoder: DecoderKind, bits_per_curve: u64, seed: u64) -> Vec<Fig5Curve> {
    run_with(
        &mut SweepService::from_env(SweepRunner::auto()),
        decoder,
        bits_per_curve,
        seed,
    )
}

/// [`run`] against a caller-owned [`SweepService`], so figure drivers
/// sharing one service (and one store) serve overlapping grid points
/// from cache.
pub fn run_with(
    service: &mut SweepService,
    decoder: DecoderKind,
    bits_per_curve: u64,
    seed: u64,
) -> Vec<Fig5Curve> {
    let packets = bits_per_curve.div_ceil(PACKET_BITS as u64).max(1) as u32;
    let configs: Vec<(PhyRate, SnrDb, &str)> = configurations()
        .into_iter()
        .map(|(rate, offset_db, label)| {
            let snr = SnrDb::new(ScalingFactors::mid_snr(rate.modulation()).db() + offset_db);
            (rate, snr, label)
        })
        .collect();
    let scenarios: Vec<_> = configs
        .iter()
        .enumerate()
        .flat_map(|(i, &(rate, snr, _))| {
            SweepGrid::new()
                .rates(&[rate])
                .decoders(&[decoder.registry_name()])
                .snrs_db(&[snr.db()])
                .seeds(&[seed ^ (i as u64) << 8])
                .packets(packets)
                .payload_bits(PACKET_BITS)
                .scenarios()
        })
        .collect();
    let results = service
        .run(&scenarios)
        .expect("stock decoder and channel names"); // lint: allow(panic-policy) — experiment driver sweeps the stock registry over a known-good grid
    configs
        .iter()
        .enumerate()
        .zip(&results)
        .map(|((i, &(rate, snr, label)), r)| {
            let cfg = CalibrationConfig {
                seed: seed ^ (i as u64) << 8,
                packet_bits: PACKET_BITS,
                ..CalibrationConfig::new(rate, decoder, snr, bits_per_curve)
            };
            Fig5Curve {
                label: format!("{label} [ours: {} @ {snr}]", rate.label()),
                calibration: calibration_from(cfg, r),
            }
        })
        .collect()
}

/// Renders the curves as aligned `(hint, BER)` columns plus the fitted
/// slope — everything needed to re-plot Figure 5.
pub fn render(decoder: DecoderKind, curves: &[Fig5Curve]) -> String {
    let mut out = format!("Figure 5 ({decoder}): BER vs SoftPHY hint\n");
    for curve in curves {
        out.push_str(&format!("-- {}\n", curve.label));
        match curve.calibration.fit {
            Some(fit) => out.push_str(&format!(
                "   log10(BER) = {:.3} + {:.4} x hint   (overall BER {:.2e}, {} packets)\n",
                fit.intercept, fit.slope, curve.calibration.overall_ber, curve.calibration.packets
            )),
            None => out.push_str(&format!(
                "   too few errors to fit (overall BER {:.2e}); raise WILIS_BITS\n",
                curve.calibration.overall_ber
            )),
        }
        for (hint, ber) in curve.calibration.curve() {
            out.push_str(&format!("   hint {hint:>2}  BER {ber:.3e}\n"));
        }
    }
    out
}

/// The modulations Figure 5 covers (used by tests and docs).
pub fn modulations() -> [Modulation; 2] {
    [Modulation::Qam16, Modulation::Qpsk]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_curves_per_decoder() {
        // Tiny budget: structure only, no statistical assertions.
        let curves = run(DecoderKind::Sova, 5_000, 1);
        assert_eq!(curves.len(), 3);
        assert!(curves[0].label.contains("QAM16"));
        assert!(curves[1].label.contains("QPSK"));
        let txt = render(DecoderKind::Sova, &curves);
        assert!(txt.contains("Figure 5"));
    }

    #[test]
    fn log_linear_relationship_emerges_with_budget() {
        // Moderate budget on the noisiest configuration: the fitted slope
        // must be negative (BER falls with hint) and the curve must span
        // at least two decades - the qualitative content of Figure 5.
        let curves = run(DecoderKind::Bcjr, 120_000, 2);
        let qam16_mid = &curves[0].calibration;
        let fit = qam16_mid.fit.expect("fit at waterfall midpoint");
        assert!(fit.slope < -0.02, "slope {}", fit.slope);
        let bers: Vec<f64> = qam16_mid.curve().map(|(_, b)| b).collect();
        let max = bers.iter().cloned().fold(0.0, f64::max);
        let min = bers.iter().cloned().fold(1.0, f64::min);
        // At this test budget a decade of separation is expected; the
        // fig5 bench with its full budget spans 4+ decades.
        assert!(
            max / min > 10.0,
            "curve should span a decade: {min:.2e}..{max:.2e}"
        );
    }
}
