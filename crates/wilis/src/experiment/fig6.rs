//! Figure 6: predicted versus actual per-packet BER.
//!
//! QAM-16 rate 1/2, AWGN with varying SNR, 1704-bit packets. Every packet
//! contributes one `(predicted PBER, actual PBER)` point; points are
//! binned by predicted value (quarter-decade bins, matching the figure's
//! log axes) and summarized as mean ± standard deviation of the actual
//! PBER — the cross-with-error-bar format of the paper's plot.
//!
//! The [`run_links`] companion runs the same grid with the `"arq"` and
//! `"ppr"` link policies: what the per-bit confidence behind this figure
//! *buys* — partial packet recovery repairing corrupted packets for a
//! fraction of whole-packet ARQ's retransmission cost.

use wilis_channel::SnrDb;
use wilis_lis::stats::Running;
use wilis_mac::LinkMetrics;
use wilis_phy::PhyRate;
use wilis_softphy::{DecoderKind, ScalingFactors};

use crate::scenario::{SweepGrid, SweepRunner};
use crate::service::SweepService;

/// Configuration of the scatter experiment.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// The PHY rate (paper: QAM-16 1/2).
    pub rate: PhyRate,
    /// Which decoder produces the hints.
    pub decoder: DecoderKind,
    /// SNR sweep; the paper varies SNR so predicted PBER covers 10⁻³..1.
    pub snrs: Vec<SnrDb>,
    /// Packets per SNR point.
    pub packets_per_snr: u32,
    /// Payload bits per packet (paper: 1704).
    pub payload_bits: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Fig6Config {
    /// The paper's configuration, sweeping around the QAM-16 waterfall.
    pub fn paper(decoder: DecoderKind, packets_per_snr: u32) -> Self {
        let mid = ScalingFactors::mid_snr(wilis_phy::Modulation::Qam16).db();
        Self {
            rate: PhyRate::Qam16Half,
            decoder,
            snrs: (-5..=3).map(|k| SnrDb::new(mid + 0.5 * k as f64)).collect(),
            packets_per_snr,
            payload_bits: 1704,
            seed: 0xF166,
        }
    }
}

/// One packet's coordinates in the scatter plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// PBER predicted from the hints (the estimator output).
    pub predicted: f64,
    /// Ground-truth PBER (bit errors / payload bits).
    pub actual: f64,
}

/// Quarter-decade summary bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Bin {
    /// Bin lower edge (predicted PBER).
    pub lo: f64,
    /// Bin upper edge.
    pub hi: f64,
    /// Packets in the bin.
    pub count: u64,
    /// Mean actual PBER.
    pub mean_actual: f64,
    /// Standard deviation of actual PBER.
    pub std_actual: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Raw per-packet points.
    pub points: Vec<ScatterPoint>,
    /// Quarter-decade bins over predicted PBER.
    pub bins: Vec<Fig6Bin>,
}

/// Runs the scatter experiment: one scenario per SNR point, all executed
/// concurrently on the scenario engine with per-packet stats recorded,
/// through a throwaway [`SweepService`] honoring `WILIS_STORE`.
pub fn run(cfg: &Fig6Config) -> Fig6Result {
    run_with(&mut SweepService::from_env(SweepRunner::auto()), cfg)
}

/// [`run`] against a caller-owned [`SweepService`]. Packet-stats
/// recording is forced on for the duration (it is part of the cache
/// key, so these points never alias a stats-free record) and restored
/// afterwards.
pub fn run_with(service: &mut SweepService, cfg: &Fig6Config) -> Fig6Result {
    let scenarios: Vec<_> = cfg
        .snrs
        .iter()
        .enumerate()
        .flat_map(|(si, &snr)| {
            SweepGrid::new()
                .rates(&[cfg.rate])
                .decoders(&[cfg.decoder.registry_name()])
                .snrs_db(&[snr.db()])
                .seeds(&[cfg.seed ^ ((si as u64) << 16)])
                .packets(cfg.packets_per_snr)
                .payload_bits(cfg.payload_bits)
                .scenarios()
        })
        .collect();
    let prior = service.runner().records_packet_stats();
    service.set_record_packet_stats(true);
    let results = service.run(&scenarios);
    service.set_record_packet_stats(prior);
    let results = results.expect("stock decoder and channel names"); // lint: allow(panic-policy) — experiment driver sweeps the stock registry over a known-good grid
    let points: Vec<ScatterPoint> = results
        .iter()
        .flat_map(|r| {
            r.packet_stats.iter().map(|p| ScatterPoint {
                predicted: p.predicted,
                actual: p.actual,
            })
        })
        .collect();
    let bins = bin_points(&points);
    Fig6Result { points, bins }
}

/// Bins points by `log10(predicted)` in quarter-decade steps over the
/// figure's 10⁻³..10⁰ range.
fn bin_points(points: &[ScatterPoint]) -> Vec<Fig6Bin> {
    const DECADES: f64 = 3.0;
    const PER_DECADE: usize = 4;
    let n_bins = (DECADES * PER_DECADE as f64) as usize;
    let mut acc = vec![Running::new(); n_bins];
    for p in points {
        if p.predicted <= 0.0 {
            continue;
        }
        let pos = (p.predicted.log10() + DECADES) * PER_DECADE as f64;
        if pos < 0.0 {
            continue;
        }
        let idx = (pos as usize).min(n_bins - 1);
        acc[idx].push(p.actual);
    }
    acc.into_iter()
        .enumerate()
        .filter(|(_, r)| r.count() > 0)
        .map(|(i, r)| Fig6Bin {
            lo: 10f64.powf(-DECADES + i as f64 / PER_DECADE as f64),
            hi: 10f64.powf(-DECADES + (i + 1) as f64 / PER_DECADE as f64),
            count: r.count(),
            mean_actual: r.mean(),
            std_actual: r.std_dev(),
        })
        .collect()
}

/// One (SNR, link) point of the link-layer companion sweep.
#[derive(Debug, Clone)]
pub struct Fig6LinkPoint {
    /// Operating SNR in dB.
    pub snr_db: f64,
    /// Link policy name (`"arq"` or `"ppr"`).
    pub link: String,
    /// The accumulated link metrics at this point.
    pub metrics: LinkMetrics,
}

/// Runs the Figure 6 grid with ARQ and PPR link policies through the
/// engine: the same packets, now closed by the link layer. Uses a
/// throwaway [`SweepService`] honoring `WILIS_STORE`.
pub fn run_links(cfg: &Fig6Config) -> Vec<Fig6LinkPoint> {
    run_links_with(&mut SweepService::from_env(SweepRunner::auto()), cfg)
}

/// [`run_links`] against a caller-owned [`SweepService`].
pub fn run_links_with(service: &mut SweepService, cfg: &Fig6Config) -> Vec<Fig6LinkPoint> {
    let snrs: Vec<f64> = cfg.snrs.iter().map(|s| s.db()).collect();
    let grid = SweepGrid::new()
        .rates(&[cfg.rate])
        .decoders(&[cfg.decoder.registry_name()])
        .links(&["arq", "ppr"])
        .snrs_db(&snrs)
        .seeds(&[cfg.seed])
        .packets(cfg.packets_per_snr)
        .payload_bits(cfg.payload_bits);
    let scenarios = grid.scenarios();
    let results = service
        .run(&scenarios)
        .expect("stock decoder, channel, and link names"); // lint: allow(panic-policy) — experiment driver sweeps the stock registry over a known-good grid
    scenarios
        .iter()
        .zip(&results)
        .map(|(sc, r)| Fig6LinkPoint {
            snr_db: sc.snr_db,
            link: sc.link.clone(),
            metrics: r.link.expect("link-enabled scenario"), // lint: allow(panic-policy) — the grid above sets a link policy on every scenario
        })
        .collect()
}

/// Renders the link companion sweep as an aligned table.
pub fn render_links(points: &[Fig6LinkPoint]) -> String {
    let mut out = String::from("Link layer on the Figure 6 grid: ARQ vs partial packet recovery\n");
    out.push_str(&format!(
        "{:>8} {:>6} {:>9} {:>8} {:>10} {:>9}\n",
        "SNR dB", "link", "goodput", "retx %", "delivered", "gave up"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>8.2} {:>6} {:>9.3} {:>7.1}% {:>10} {:>9}\n",
            p.snr_db,
            p.link,
            p.metrics.goodput(),
            100.0 * p.metrics.retransmit_fraction(),
            p.metrics.delivered,
            p.metrics.gave_up
        ));
    }
    out
}

/// Renders the binned scatter in the paper's format.
pub fn render(cfg: &Fig6Config, result: &Fig6Result) -> String {
    let mut out = format!(
        "Figure 6 ({}): predicted vs actual PBER (rate {}, {} packets)\n",
        cfg.decoder,
        cfg.rate,
        result.points.len()
    );
    out.push_str(&format!(
        "{:>22} {:>12} {:>12} {:>8}\n",
        "predicted bin", "mean actual", "std", "packets"
    ));
    for b in &result.bins {
        out.push_str(&format!(
            "{:>10.2e}-{:<10.2e} {:>12.3e} {:>12.3e} {:>8}\n",
            b.lo, b.hi, b.mean_actual, b.std_actual, b.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig6Config {
        Fig6Config {
            packets_per_snr: 6,
            payload_bits: 600,
            ..Fig6Config::paper(DecoderKind::Bcjr, 6)
        }
    }

    #[test]
    fn produces_points_and_bins() {
        let result = run(&small());
        assert_eq!(result.points.len(), 6 * 9);
        assert!(!result.bins.is_empty());
        let txt = render(&small(), &result);
        assert!(txt.contains("Figure 6"));
    }

    #[test]
    fn predictions_track_actuals_in_rank() {
        // The qualitative content of Figure 6: packets predicted worse are
        // actually worse. Compare mean actual PBER between the cleanest
        // and dirtiest thirds by prediction.
        let mut result = run(&Fig6Config {
            packets_per_snr: 12,
            payload_bits: 600,
            ..Fig6Config::paper(DecoderKind::Bcjr, 12)
        });
        result
            .points
            .sort_by(|a, b| a.predicted.partial_cmp(&b.predicted).unwrap());
        let n = result.points.len();
        let clean: f64 =
            result.points[..n / 3].iter().map(|p| p.actual).sum::<f64>() / (n / 3) as f64;
        let dirty: f64 = result.points[2 * n / 3..]
            .iter()
            .map(|p| p.actual)
            .sum::<f64>()
            / (n - 2 * n / 3) as f64;
        assert!(
            dirty > clean,
            "dirty-predicted packets should be worse: {clean:.2e} vs {dirty:.2e}"
        );
    }

    #[test]
    fn link_companion_covers_the_grid() {
        let cfg = small();
        let points = run_links(&cfg);
        assert_eq!(points.len(), cfg.snrs.len() * 2, "(SNR x {{arq, ppr}})");
        for p in &points {
            let g = p.metrics.goodput();
            assert!((0.0..=1.0).contains(&g), "{} goodput {g}", p.link);
            assert_eq!(p.metrics.packets, u64::from(cfg.packets_per_snr));
        }
        // At the top of the sweep (cleanest SNR) nearly everything lands.
        let best = points
            .iter()
            .filter(|p| p.link == "ppr")
            .max_by(|a, b| a.snr_db.partial_cmp(&b.snr_db).unwrap())
            .unwrap();
        assert!(best.metrics.delivery_rate() > 0.5);
        let txt = render_links(&points);
        assert!(txt.contains("arq") && txt.contains("ppr"));
    }

    #[test]
    fn binning_respects_edges() {
        let points = vec![
            ScatterPoint {
                predicted: 0.5,
                actual: 0.4,
            },
            ScatterPoint {
                predicted: 0.5,
                actual: 0.6,
            },
            ScatterPoint {
                predicted: 1e-9,
                actual: 0.0,
            }, // below range: dropped
            ScatterPoint {
                predicted: 0.0,
                actual: 0.0,
            }, // non-positive: dropped
        ];
        let bins = bin_points(&points);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].count, 2);
        assert!((bins[0].mean_actual - 0.5).abs() < 1e-12);
        assert!(bins[0].lo <= 0.5 && 0.5 <= bins[0].hi);
    }
}
