//! Drivers that regenerate every table and figure of the paper's
//! evaluation (§3 Figure 2; §4.4 Figures 5–8).
//!
//! Each submodule owns one experiment: a `Config` with the paper's
//! parameters as defaults, a `run` entry point, and result types that the
//! `wilis-bench` targets render as text tables. Experiments honor the
//! `WILIS_BITS` environment variable to scale Monte-Carlo depth (the
//! paper burned 10¹² bits of FPGA time on Figure 5; the defaults here are
//! laptop-sized).

pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;

/// Reads the Monte-Carlo bit budget from `WILIS_BITS`, falling back to
/// `default`. Invalid values fall back too (experiments should run, not
/// argue).
pub fn bits_budget(default: u64) -> u64 {
    std::env::var("WILIS_BITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_default_applies() {
        // WILIS_BITS is unset in the test environment (or numeric); either
        // way the result is a positive budget.
        assert!(bits_budget(1234) > 0);
    }
}
