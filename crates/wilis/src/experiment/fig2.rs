//! Figure 2: simulation speeds of the eight 802.11g rates.
//!
//! Two columns are produced: the *hybrid platform model* (the paper's
//! system — FPGA pipeline + software channel over the FSB, bottlenecked by
//! noise generation) and an optional *native* measurement of this
//! repository's pure-software pipeline, which plays the role of the
//! paper's "software simulation achieves only a few kilobits per second"
//! comparison point (§1).

use wilis_cosim::native::{measure_native, NativeDecoder, NativeSpeed};
use wilis_cosim::{SpeedModel, SpeedRow};
use wilis_phy::PhyRate;

use crate::scenario::SweepRunner;

/// One rendered row of the Figure 2 table.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// The modeled hybrid-platform row.
    pub model: SpeedRow,
    /// The measured native row, when requested.
    pub native: Option<NativeSpeed>,
}

/// Runs the Figure 2 experiment.
///
/// `native_packets > 0` also measures this repository's software pipeline
/// at each rate (Viterbi receiver, matching the paper's baseline 802.11
/// system) with that many packets.
pub fn run(native_packets: u32) -> Vec<Fig2Row> {
    run_with(&SweepRunner::auto(), native_packets)
}

/// [`run`] against a caller-owned runner — the model rows are closed-form
/// (no Monte-Carlo, nothing to memoize), so unlike the fig5–fig7 drivers
/// this one parallelizes through [`SweepRunner::run_indexed`] directly
/// rather than through a [`crate::service::SweepService`].
pub fn run_with(runner: &SweepRunner, native_packets: u32) -> Vec<Fig2Row> {
    let model = SpeedModel::paper();
    let rates = PhyRate::all();
    // Model rows are pure functions of the rate: evaluate them across the
    // scenario engine's worker pool. The native wall-clock measurement
    // stays serial — concurrent trials would time contention, not the
    // pipeline.
    let rows = runner.run_indexed(rates.len(), |i| model.row(rates[i]));
    rows.into_iter()
        .zip(rates)
        .map(|(row, rate)| Fig2Row {
            model: row,
            native: (native_packets > 0).then(|| {
                measure_native(
                    rate,
                    NativeDecoder::Viterbi,
                    native_packets,
                    1500 * 8,
                    0xF16,
                )
            }),
        })
        .collect()
}

/// Renders the table in the paper's layout.
pub fn render(rows: &[Fig2Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 2: simulation speeds (paper: 2.033-22.244 Mb/s, 32.8%-41.3% of line rate)\n",
    );
    out.push_str(&format!(
        "{:<22} {:>12} {:>9} {:>14} {:>16}\n",
        "Modulation", "Model Mb/s", "% line", "Link MB/s", "Native Mb/s"
    ));
    for row in rows {
        let native = match &row.native {
            Some(n) => format!(
                "{:.3} ({:.1}%)",
                n.sim_mbps,
                100.0 * n.fraction_of_line_rate
            ),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<22} {:>12.3} {:>8.1}% {:>14.1} {:>16}\n",
            row.model.rate.to_string(),
            row.model.sim_mbps,
            100.0 * row.model.fraction_of_line_rate,
            row.model.link_bytes_per_sec / 1e6,
            native,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_only_table_has_eight_rows() {
        let rows = run(0);
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.native.is_none()));
        // Monotone in line rate: faster rates simulate faster (the
        // bottleneck is per-sample, bits per symbol grow).
        for w in rows.windows(2) {
            assert!(w[1].model.sim_mbps > w[0].model.sim_mbps);
        }
    }

    #[test]
    fn render_contains_all_rates() {
        let table = render(&run(0));
        for rate in PhyRate::all() {
            assert!(table.contains(&rate.to_string()), "{rate} missing");
        }
    }

    #[test]
    fn native_measurement_attaches() {
        let rows = run(1);
        assert!(rows.iter().all(|r| r.native.is_some()));
    }
}
