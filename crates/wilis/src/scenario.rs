//! The batched scenario engine: Monte-Carlo grids over
//! (rate × decoder × channel × link × SNR × seed), executed across a
//! worker pool with chunk-seeded determinism.
//!
//! Every figure of the paper's evaluation is, at bottom, a grid of
//! independent transmit→channel→receive→decode trials. The paper spent
//! 10¹² FPGA bits on Figure 5 alone; this module is the software analog of
//! that throughput story: one [`Scenario`] describes one grid point, a
//! [`SweepGrid`] enumerates a whole grid, and a [`SweepRunner`] executes it
//! across threads — with results **bit-identical for any thread count**,
//! because every packet's randomness is a pure function of its scenario
//! seed and packet index (the same contract
//! [`wilis_channel::parallel::apply_awgn_parallel`] proves at the sample
//! level).
//!
//! The hot path is allocation-free in the steady state: each scenario
//! execution owns one [`PhyScratch`] and one reusable [`RxResult`],
//! reused across all of its packets, the decoders reuse their trellis
//! scratch, and channels are seed-addressed [`ChannelModel`]s — so
//! Monte-Carlo depth (packets per point) costs arithmetic, not the
//! allocator. Decoder construction shares one compiled trellis per
//! system ([`WilisSystem::compiled_ieee80211`]): the per-rate receiver
//! banks and the all-rates oracle reuse a single table lowering instead
//! of rebuilding decoder state per rate.
//!
//! Redundant per-packet work is amortized *across* grid points too:
//! scenarios that share `(rate, channel, params, SNR, seed, packets,
//! payload)` and differ only in decoder or in a non-rate-adapting link
//! policy (see [`LinkPolicy::adapts_rate`]) are fused into one
//! shared-channel job — each packet is built, transmitted, and pushed
//! through the channel **once**, then received and decoded per member.
//! Because every member would have seen the identical realization solo
//! (randomness is a pure function of the scenario seed and packet index),
//! the fused results are bit-identical to the unfused ones, and the
//! determinism contract is untouched. Fusion never starves the worker
//! pool: when a grid collapses into fewer jobs than workers, the largest
//! groups are split until every worker has work.
//!
//! The **link dimension** puts the MAC layer on the grid: a scenario names
//! a [`LinkPolicy`] (resolved through [`link_registry`]; `"none"` keeps
//! the PHY-only behavior) that observes every packet — decisions, SoftPHY
//! hints, the CRC-equivalent ground truth — and accumulates
//! [`LinkMetrics`] per grid point. Rate-adapting policies (SoftRate)
//! steer the transmit rate through their verdicts, and policies that ask
//! for it get the Figure 7 oracle: every rate replayed against the
//! identical channel realization, which the seed-addressed
//! [`ChannelModel`] contract provides for free.
//!
//! The **cell dimension** makes the shared medium itself a grid axis: a
//! scenario names a [`ContentionPolicy`] (resolved through
//! [`contention_registry`]; `"p2p"` keeps today's point-to-point
//! behavior) and a node count, and the grid point becomes a *contention
//! cell* — N nodes running independent link sessions over one slotted
//! medium, with carrier sense, collisions, and physical-layer capture
//! ([`wilis_channel::resolve_slot`]). All N nodes execute inside one
//! fused worker job, so the shared realization of every slot is drawn
//! exactly once, and every draw is a pure function of
//! `(scenario seed, node, attempt)` through the same seed-addressed
//! [`ChannelModel`] registry — cell sweeps are bit-identical for any
//! thread count, like everything else on the grid. Cell scenarios
//! accumulate [`CellMetrics`] (aggregate goodput, Jain fairness index,
//! collision and idle fractions) alongside the per-node-merged link
//! metrics, and a 1-node cell is a *strict generalization*: it reproduces
//! the point-to-point path attempt for attempt, bit for bit.
//!
//! # Example
//!
//! ```
//! use wilis::scenario::{SweepGrid, SweepRunner};
//! use wilis::phy::PhyRate;
//!
//! let grid = SweepGrid::new()
//!     .rates(&[PhyRate::QpskHalf])
//!     .decoders(&["viterbi", "bcjr"])
//!     .snrs_db(&[6.0, 8.0])
//!     .packets(2)
//!     .payload_bits(400);
//! let results = SweepRunner::new(2).run(&grid.scenarios()).unwrap();
//! assert_eq!(results.len(), 4);
//! // Same grid, different thread count: bit-identical results.
//! let serial = SweepRunner::new(1).run(&grid.scenarios()).unwrap();
//! assert_eq!(results, serial);
//! ```

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use wilis_channel::{
    resolve_slot, AwgnChannel, AwgnModel, Channel, ChannelModel, FadingModel, ReplayModel,
    SlotOutcome, SnrDb, TraceModel, TxPower,
};
use wilis_fec::{CodeRate, CompiledTrellis, Llr, MAX_BATCH_LANES, MAX_HINT};
use wilis_fxp::rng::{mix_seed, SmallRng};
use wilis_fxp::Cplx;
use wilis_lis::registry::{Params, Registry, RegistryError};
use wilis_mac::cell::{
    BackoffState, CellMetrics, ContentionPolicy, CsmaBackoff, SlotView, SlottedAloha, TdmaOracle,
    TxDecision,
};
use wilis_mac::link::{LinkContext, LinkMetrics, LinkPolicy, LinkStatus, Oracle};
use wilis_mac::ppr::PprConfig;
use wilis_mac::{ArqLink, HarqConfig, HarqLink, PprLink, SoftRate, SoftRateLink};
use wilis_phy::{PhyRate, PhyScratch, Receiver, RxResult, Transmitter};
use wilis_softphy::{BerEstimator, DecoderKind, HintBin, ScalingFactors};

use crate::faults::{FaultInjector, FaultReport, FaultSite, PointOutcome, Quarantine};
use crate::supervisor;
use crate::{SystemConfig, WilisSystem};

/// A factory slot for seed-addressed channel models.
pub type ChannelSlot = Registry<Box<dyn ChannelModel>>;

/// A factory slot for link-layer policies.
pub type LinkSlot = Registry<Box<dyn LinkPolicy>>;

/// A factory slot for cell contention policies.
pub type ContentionSlot = Registry<Box<dyn ContentionPolicy>>;

/// The stock channel registry: `"awgn"` (param: `snr_db`), `"fading"`
/// (params: `snr_db`, `doppler_hz`), `"replay"` (params: `snr_db`,
/// `doppler_hz`, `base_seed`), and `"trace"` (params: `snr_db`,
/// `doppler_hz`, `base_seed`, `gap_secs`) — the time-coherent fading walk
/// protocol experiments like Figure 7 run on.
pub fn channel_registry() -> ChannelSlot {
    let mut reg: ChannelSlot = Registry::new("channel");
    reg.register("awgn", |p| {
        let snr = SnrDb::new(p.get_f64("snr_db").unwrap_or(10.0));
        Box::new(AwgnModel::new(snr))
    });
    reg.register("fading", |p| {
        let snr = SnrDb::new(p.get_f64("snr_db").unwrap_or(10.0));
        let doppler = p.get_f64("doppler_hz").unwrap_or(20.0);
        Box::new(FadingModel::new(snr, doppler))
    });
    reg.register("replay", |p| {
        let snr = SnrDb::new(p.get_f64("snr_db").unwrap_or(10.0));
        let doppler = p.get_f64("doppler_hz").unwrap_or(20.0);
        let base = p.get_u64("base_seed").unwrap_or(0xF17);
        Box::new(ReplayModel::new(snr, doppler, base))
    });
    reg.register("trace", |p| {
        let snr = SnrDb::new(p.get_f64("snr_db").unwrap_or(10.0));
        let doppler = p.get_f64("doppler_hz").unwrap_or(20.0);
        let base = p.get_u64("base_seed").unwrap_or(0xF17);
        let gap = p.get_f64("gap_secs").unwrap_or(0.5e-3);
        Box::new(TraceModel::new(snr, doppler, base, gap))
    });
    reg
}

/// The code rate a link policy will run at, resolved from the
/// engine-filled `initial_rate_mbps` parameter the way the softrate
/// factory resolves its initial [`PhyRate`].
fn link_param_code_rate(p: &Params) -> CodeRate {
    p.get_f64("initial_rate_mbps")
        .and_then(|m| PhyRate::all().iter().copied().find(|r| r.mbps() == m))
        .unwrap_or(PhyRate::Qam16Half)
        .code_rate()
}

/// The stock link-policy registry, mirroring [`channel_registry`]:
///
/// * `"arq"` — whole-packet stop-and-wait ARQ (param: `max_retries`),
/// * `"harq-cc"` — HARQ with Chase combining (params: `attempts`, the
///   total transmission budget per packet, and `combining` to disarm the
///   combiner — disarmed it degenerates to exactly `"arq"` with
///   `attempts - 1` retries),
/// * `"harq-ir"` — HARQ with incremental redundancy (params: `attempts`,
///   `combining`, and `ir_phases`, a comma-separated puncture-phase
///   schedule that must start at 0; defaults to the rate's
///   fastest-covering schedule),
/// * `"ppr"` — partial packet recovery (params: `chunk_bits`,
///   `hint_threshold`),
/// * `"softrate"` — PBER-threshold rate adaptation (params: `pber_lo` /
///   `pber_hi` to override the packet-size-derived band, `oracle` to
///   toggle the per-packet all-rates replay behind the Figure 7 tallies).
///
/// The engine fills in `payload_bits` and `initial_rate_mbps` from the
/// scenario at run time, exactly as it fills `snr_db` for channels. The
/// name `"none"` is reserved: it never reaches the registry and keeps a
/// scenario PHY-only.
///
/// Factories are infallible, so the HARQ factories never reject a bad
/// configuration themselves: [`HarqLink`] stores the problem and the
/// runner's preflight surfaces it as
/// [`RegistryError::invalid_config`] through
/// [`LinkPolicy::config_error`].
pub fn link_registry() -> LinkSlot {
    let mut reg: LinkSlot = Registry::new("link");
    reg.register("arq", |p| {
        let bits = p.get_u64("payload_bits").unwrap_or(1704).max(1);
        let retries = p.get_u64("max_retries").unwrap_or(4) as u32;
        Box::new(ArqLink::new(bits, retries))
    });
    reg.register("harq-cc", |p| {
        let bits = p.get_u64("payload_bits").unwrap_or(1704);
        let attempts = p.get_u64("attempts").unwrap_or(4) as u32;
        let combining = p.get_bool("combining").unwrap_or(true);
        let rate = link_param_code_rate(p);
        let config = HarqConfig::chase(attempts).with_combining(combining);
        Box::new(HarqLink::new(bits, config, rate))
    });
    reg.register("harq-ir", |p| {
        let bits = p.get_u64("payload_bits").unwrap_or(1704);
        let attempts = p.get_u64("attempts").unwrap_or(4) as u32;
        let combining = p.get_bool("combining").unwrap_or(true);
        let rate = link_param_code_rate(p);
        let schedule = match p.get("ir_phases") {
            None => HarqConfig::default_ir_schedule(rate),
            // An unparsable phase becomes usize::MAX — outside every mask
            // period, so validation rejects the schedule instead of the
            // factory panicking on user input.
            Some(s) => s
                .split(',')
                .map(|t| t.trim().parse::<usize>().unwrap_or(usize::MAX))
                .collect(),
        };
        let config = HarqConfig::incremental(attempts, schedule).with_combining(combining);
        Box::new(HarqLink::new(bits, config, rate))
    });
    reg.register("ppr", |p| {
        let chunk = p.get_u64("chunk_bits").unwrap_or(71).max(1) as usize;
        let threshold = p.get_u64("hint_threshold").unwrap_or(8) as u16;
        Box::new(PprLink::new(PprConfig::new(chunk, threshold)))
    });
    reg.register("softrate", |p| {
        let bits = p.get_u64("payload_bits").unwrap_or(1704).max(1) as usize;
        let initial = p
            .get_f64("initial_rate_mbps")
            .and_then(|m| PhyRate::all().iter().copied().find(|r| r.mbps() == m))
            .unwrap_or(PhyRate::Qam16Half);
        let controller = match (p.get_f64("pber_lo"), p.get_f64("pber_hi")) {
            (Some(lo), Some(hi)) => SoftRate::with_thresholds(initial, lo, hi),
            _ => SoftRate::for_packet_bits(initial, bits),
        };
        let oracle = p.get_bool("oracle").unwrap_or(true);
        Box::new(SoftRateLink::new(controller, oracle))
    });
    reg
}

/// Default capture margin (dB) for contention cells: the strongest of
/// several overlapping arrivals survives iff its SINR clears this.
pub const DEFAULT_CAPTURE_DB: f64 = 10.0;

/// The stock contention-policy registry, third of the family after
/// [`channel_registry`] and [`link_registry`]:
///
/// * `"aloha"` — slotted ALOHA (param: `p`, per-slot transmit probability,
///   default 0.25 — set it near `1/nodes`),
/// * `"csma"` — carrier sense with binary exponential backoff (params:
///   `cw_min` default 2, `cw_max` default 64),
/// * `"tdma"` — the collision-free round-robin oracle (no params).
///
/// Two further parameters are consumed by the cell *engine* rather than
/// the policy factories: `load` (per-node packet-arrival probability per
/// slot; ≥ 1.0 — the default — means saturated queues) and `capture_db`
/// (the capture margin, default [`DEFAULT_CAPTURE_DB`]). The name
/// `"p2p"` is reserved: it never reaches the registry and keeps a
/// scenario point-to-point.
pub fn contention_registry() -> ContentionSlot {
    let mut reg: ContentionSlot = Registry::new("contention");
    reg.register("aloha", |p| {
        // Clamp like the csma factory clamps its windows: registries take
        // user strings, so out-of-range values degrade to the nearest
        // sane configuration instead of panicking mid-run.
        let prob = p
            .get_f64("p")
            .filter(|v| v.is_finite())
            .unwrap_or(0.25)
            .clamp(1e-6, 1.0);
        Box::new(SlottedAloha::new(prob))
    });
    reg.register("csma", |p| {
        let cw_min = p.get_u64("cw_min").unwrap_or(2).clamp(1, 1 << 20) as u32;
        let cw_max = p
            .get_u64("cw_max")
            .unwrap_or(64)
            .clamp(u64::from(cw_min), 1 << 20) as u32;
        Box::new(CsmaBackoff::new(cw_min, cw_max))
    });
    reg.register("tdma", |_| Box::new(TdmaOracle));
    reg
}

/// One point of a (rate × decoder × channel × link × SNR × seed) grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The PHY rate under test (the *initial* rate when a rate-adapting
    /// link policy is in force).
    pub rate: PhyRate,
    /// Decoder implementation name (resolved via [`WilisSystem`]'s
    /// registry: `"viterbi"`, `"sova"`, `"bcjr"`, or a user registration).
    pub decoder: String,
    /// Channel model name (resolved via [`channel_registry`]).
    pub channel: String,
    /// Extra channel parameters (`doppler_hz`, `base_seed`, …); `snr_db`
    /// is filled in from [`Scenario::snr_db`] at run time.
    pub channel_params: Params,
    /// Link policy name (resolved via [`link_registry`]); `"none"` keeps
    /// the scenario PHY-only.
    pub link: String,
    /// Extra link-policy parameters (`max_retries`, `hint_threshold`, …);
    /// `payload_bits` and `initial_rate_mbps` are filled in at run time.
    pub link_params: Params,
    /// Contention policy name (resolved via [`contention_registry`]);
    /// `"p2p"` keeps the scenario point-to-point.
    pub contention: String,
    /// Extra contention parameters (`p`, `cw_min`, plus the engine-level
    /// `load` and `capture_db`).
    pub contention_params: Params,
    /// Contending nodes when this scenario is a cell (`contention !=
    /// "p2p"`); ignored for point-to-point scenarios.
    pub nodes: u32,
    /// Operating SNR in dB.
    pub snr_db: f64,
    /// Scenario seed: all packet payloads and channel realizations derive
    /// from it deterministically.
    pub seed: u64,
    /// Monte-Carlo depth in packets.
    pub packets: u32,
    /// Payload bits per packet.
    pub payload_bits: usize,
}

impl Scenario {
    /// A human-readable grid-point label.
    pub fn label(&self) -> String {
        let link = if self.link == "none" {
            String::new()
        } else {
            format!(" {}", self.link)
        };
        let cell = if self.contention == "p2p" {
            String::new()
        } else {
            format!(" {} x{}", self.contention, self.nodes)
        };
        format!(
            "{} {} {}{}{} @{:.2}dB seed{}",
            self.rate.label(),
            self.decoder,
            self.channel,
            link,
            cell,
            self.snr_db,
            self.seed
        )
    }
}

/// Per-packet coordinates recorded when
/// [`SweepRunner::record_packet_stats`] is on (the Figure 6 scatter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketStat {
    /// PBER predicted from the SoftPHY hints (0 for hard decoders).
    pub predicted: f64,
    /// Ground-truth PBER (bit errors / payload bits).
    pub actual: f64,
}

/// The Monte-Carlo outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Index of the scenario within the submitted grid.
    pub scenario: usize,
    /// The grid-point label (see [`Scenario::label`]).
    pub label: String,
    /// Packets simulated.
    pub packets: u64,
    /// Packets with at least one payload bit error.
    pub packet_errors: u64,
    /// Payload bits simulated.
    pub bits: u64,
    /// Payload bits decoded incorrectly.
    pub bit_errors: u64,
    /// Per-hint statistics, index = hint value (0..=63) — the Figure 5
    /// binning.
    pub hint_bins: Vec<HintBin>,
    /// Sum of predicted per-packet BERs (mean = `/ packets`); 0 for hard
    /// decoders.
    pub predicted_pber_sum: f64,
    /// Per-packet scatter points, populated only when the runner records
    /// packet stats.
    pub packet_stats: Vec<PacketStat>,
    /// Link-layer metrics accumulated by the scenario's [`LinkPolicy`];
    /// `None` for PHY-only (`link == "none"`) scenarios. For a cell, the
    /// per-node sessions merged.
    pub link: Option<LinkMetrics>,
    /// Shared-medium metrics of a contention cell; `None` for
    /// point-to-point (`contention == "p2p"`) scenarios. For cells, the
    /// PHY-level fields above (`packets`, `bits`, `hint_bins`, …) cover
    /// only the transmissions that survived the medium and reached the
    /// receiver — collided attempts are accounted here.
    pub cell: Option<CellMetrics>,
}

impl ScenarioResult {
    /// Overall payload bit error rate.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }

    /// Packet error (loss) rate.
    pub fn per(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.packet_errors as f64 / self.packets as f64
        }
    }

    /// Mean predicted per-packet BER across the run.
    pub fn mean_predicted_pber(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.predicted_pber_sum / self.packets as f64
        }
    }
}

/// A builder enumerating the cartesian product of a sweep's axes.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    rates: Vec<PhyRate>,
    decoders: Vec<String>,
    channels: Vec<String>,
    links: Vec<String>,
    contentions: Vec<String>,
    nodes: u32,
    snrs_db: Vec<f64>,
    seeds: Vec<u64>,
    packets: u32,
    payload_bits: usize,
    channel_params: Params,
    link_params: Params,
    contention_params: Params,
}

impl SweepGrid {
    /// A single-point grid at the paper's Figure 6 operating point
    /// (QAM-16 1/2, BCJR, AWGN, 8 dB, 1704-bit packets); every axis can be
    /// widened from here.
    pub fn new() -> Self {
        Self {
            rates: vec![PhyRate::Qam16Half],
            decoders: vec!["bcjr".to_string()],
            channels: vec!["awgn".to_string()],
            links: vec!["none".to_string()],
            contentions: vec!["p2p".to_string()],
            nodes: 4,
            snrs_db: vec![8.0],
            seeds: vec![1],
            packets: 8,
            payload_bits: 1704,
            channel_params: Params::new(),
            link_params: Params::new(),
            contention_params: Params::new(),
        }
    }

    /// Sets the PHY-rate axis.
    pub fn rates(mut self, rates: &[PhyRate]) -> Self {
        self.rates = rates.to_vec();
        self
    }

    /// Sets the decoder axis (registry names).
    pub fn decoders(mut self, names: &[&str]) -> Self {
        self.decoders = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Sets the channel-model axis (registry names).
    pub fn channels(mut self, names: &[&str]) -> Self {
        self.channels = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Sets the link-policy axis (registry names plus the reserved
    /// `"none"` for PHY-only points).
    pub fn links(mut self, names: &[&str]) -> Self {
        self.links = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Sets the contention axis (registry names plus the reserved
    /// `"p2p"` for point-to-point points). Non-`"p2p"` entries turn the
    /// grid point into an N-node cell — see [`SweepGrid::nodes`].
    pub fn contentions(mut self, names: &[&str]) -> Self {
        self.contentions = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Sets the number of contending nodes for cell grid points.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the SNR axis in dB.
    pub fn snrs_db(mut self, snrs: &[f64]) -> Self {
        self.snrs_db = snrs.to_vec();
        self
    }

    /// Sets the seed axis (independent Monte-Carlo replicas).
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Sets the Monte-Carlo depth per grid point, in packets.
    pub fn packets(mut self, packets: u32) -> Self {
        self.packets = packets;
        self
    }

    /// Sets the payload size per packet, in bits.
    pub fn payload_bits(mut self, bits: usize) -> Self {
        self.payload_bits = bits;
        self
    }

    /// Sets an extra channel parameter forwarded to the model factory
    /// (e.g. `doppler_hz`).
    pub fn channel_param(mut self, key: &str, value: &str) -> Self {
        self.channel_params.set(key, value);
        self
    }

    /// Sets an extra link-policy parameter forwarded to the policy factory
    /// (e.g. `hint_threshold`); policies ignore keys they do not use.
    pub fn link_param(mut self, key: &str, value: &str) -> Self {
        self.link_params.set(key, value);
        self
    }

    /// Sets an extra contention parameter (`p`, `cw_min`, `load`,
    /// `capture_db`, …); policies and the cell engine ignore keys they do
    /// not use.
    pub fn contention_param(mut self, key: &str, value: &str) -> Self {
        self.contention_params.set(key, value);
        self
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.rates.len()
            * self.decoders.len()
            * self.channels.len()
            * self.links.len()
            * self.contentions.len()
            * self.snrs_db.len()
            * self.seeds.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the grid points (rate-major, seed-minor).
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for &rate in &self.rates {
            for decoder in &self.decoders {
                for channel in &self.channels {
                    for link in &self.links {
                        for contention in &self.contentions {
                            for &snr_db in &self.snrs_db {
                                for &seed in &self.seeds {
                                    out.push(Scenario {
                                        rate,
                                        decoder: decoder.clone(),
                                        channel: channel.clone(),
                                        channel_params: self.channel_params.clone(),
                                        link: link.clone(),
                                        link_params: self.link_params.clone(),
                                        contention: contention.clone(),
                                        contention_params: self.contention_params.clone(),
                                        nodes: self.nodes,
                                        snr_db,
                                        seed,
                                        packets: self.packets,
                                        payload_bits: self.payload_bits,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything a worker needs to execute scenarios: the system (decoder
/// registry) plus the three sweep-axis registries.
pub type SweepEnv = (WilisSystem, ChannelSlot, LinkSlot, ContentionSlot);

type EnvFactory = dyn Fn() -> SweepEnv + Send + Sync;

/// One unit of worker-pool work: a lone scenario, or a set of scenarios
/// sharing a single transmit + channel realization per packet.
#[derive(Debug, Clone)]
enum Job {
    /// A scenario that must run alone (its link policy steers the rate).
    Solo(usize),
    /// Scenarios sharing `(rate, channel, params, snr, seed, packets,
    /// payload)` — one channel realization serves every member.
    Shared(Vec<usize>),
}

/// The typed shared-channel coordinate two scenarios must agree on, field
/// for field, to fuse into one [`Job::Shared`]: rate, channel name and
/// parameters, SNR (as bits — NaN-safe exact equality), seed, packet
/// budget, payload size. A structured tuple rather than a formatted
/// string, so free-form registry names can never collide into one key.
type GroupKey = (PhyRate, String, Params, u64, u64, u32, usize);

/// The link-policy parameters as the engine fills them in at run time:
/// the grid's own parameters plus `payload_bits` and `initial_rate_mbps`
/// from the scenario. One definition shared by eligibility probing, the
/// solo path, and the fused path, so a future run-time parameter cannot
/// be added to one and missed in another.
fn runtime_link_params(sc: &Scenario) -> Params {
    let mut link_params = sc.link_params.clone();
    link_params.set("payload_bits", &format!("{}", sc.payload_bits.max(1)));
    link_params.set("initial_rate_mbps", &format!("{}", sc.rate.mbps()));
    link_params
}

/// Which Monte-Carlo estimate a [`StoppingRule`] watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StopMetric {
    /// The payload bit-error rate — trials are received payload bits.
    Ber,
    /// The packet-error rate — trials are received packets.
    Per,
}

/// Confidence-driven sequential stopping for Monte-Carlo grid points.
///
/// A point runs packets in chunks of `chunk_packets`; at each chunk
/// boundary the Wilson score interval of the watched error rate is
/// evaluated, and the point stops as soon as the interval half-width
/// closes below `target_half_width` — or at the scenario's `packets`
/// budget, whichever comes first. The budget is the hard cap: a point
/// whose interval never closes (e.g. BER pinned near 0.5 deep in the
/// waterfall) runs exactly the packets it would have run without a rule.
///
/// Determinism: the decision at a boundary is a pure function of the
/// integer error/trial counters accumulated so far, which are themselves
/// pure functions of `(scenario seed, packet index)`. The chunk schedule
/// therefore never depends on thread count, on co-scheduled grid points,
/// or on whether earlier points came from a warm cache — the bit-identity
/// contract of [`SweepRunner`] survives intact. In a fused shared-channel
/// job each member applies its *own* rule to its *own* tally and simply
/// stops observing at its stop point, so fused results remain
/// bit-identical to solo runs.
///
/// HARQ scenarios evaluate the boundary on *logical* packets (the seed
/// schedule axis) while the interval uses the attempt-level tally that
/// [`ScenarioResult::packets`] reports. Contention cells ignore stopping
/// rules: a cell's slot budget is the workload definition, not a
/// Monte-Carlo depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    /// The estimate whose confidence interval drives stopping.
    pub metric: StopMetric,
    /// Stop once the Wilson half-width is at or below this.
    pub target_half_width: f64,
    /// The normal quantile of the interval (1.96 ≈ 95% confidence).
    pub z: f64,
    /// Packets per chunk between boundary checks.
    pub chunk_packets: u32,
}

impl StoppingRule {
    /// A BER-watching rule at 95% confidence with the default chunk size.
    pub fn ber(target_half_width: f64) -> Self {
        Self {
            metric: StopMetric::Ber,
            target_half_width,
            z: 1.96,
            chunk_packets: 32,
        }
    }

    /// A PER-watching rule at 95% confidence with the default chunk size.
    pub fn per(target_half_width: f64) -> Self {
        Self {
            metric: StopMetric::Per,
            ..Self::ber(target_half_width)
        }
    }

    /// Replaces the confidence quantile.
    pub fn with_z(mut self, z: f64) -> Self {
        self.z = z;
        self
    }

    /// Replaces the chunk size.
    pub fn with_chunk(mut self, packets: u32) -> Self {
        self.chunk_packets = packets;
        self
    }

    /// The Wilson score interval half-width for `errors` successes in
    /// `trials` Bernoulli trials at quantile `z`. Returns `f64::INFINITY`
    /// for zero trials, so a rule can never stop before observing data.
    pub fn wilson_half_width(errors: u64, trials: u64, z: f64) -> f64 {
        if trials == 0 {
            return f64::INFINITY;
        }
        let n = trials as f64;
        let p = errors as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt()
    }

    fn validate(&self) -> Result<(), RegistryError> {
        // is_finite() also rejects NaN, which every comparison below
        // would otherwise wave through.
        if !self.target_half_width.is_finite() || self.target_half_width <= 0.0 {
            return Err(RegistryError::invalid_config(format!(
                "stopping rule target_half_width must be positive and finite, got {}",
                self.target_half_width
            )));
        }
        if !self.z.is_finite() || self.z <= 0.0 {
            return Err(RegistryError::invalid_config(format!(
                "stopping rule z must be positive and finite, got {}",
                self.z
            )));
        }
        if self.chunk_packets == 0 {
            return Err(RegistryError::invalid_config(
                "stopping rule chunk_packets must be at least 1",
            ));
        }
        Ok(())
    }

    /// True when `packets_done` received packets land on a chunk
    /// boundary — the only points where a stop decision may be taken.
    fn is_boundary(&self, packets_done: u64) -> bool {
        packets_done > 0 && packets_done % u64::from(self.chunk_packets) == 0
    }

    /// True when the watched interval has closed, given the tally after
    /// `receives` received packets of `payload_bits` each.
    fn closed(&self, tally: &PacketTally, receives: u64, payload_bits: usize) -> bool {
        let (errors, trials) = match self.metric {
            StopMetric::Ber => (tally.bit_errors, receives * payload_bits as u64),
            StopMetric::Per => (tally.packet_errors, receives),
        };
        Self::wilson_half_width(errors, trials, self.z) <= self.target_half_width
    }
}

/// Executes scenario grids across a worker pool.
///
/// Determinism contract: scenario `i` of a grid always produces the same
/// [`ScenarioResult`], regardless of `threads`, because all of its
/// randomness derives from `(scenario.seed, packet index)` and workers
/// never share mutable state. Scenarios are dealt round-robin so long and
/// short points interleave across workers.
pub struct SweepRunner {
    threads: usize,
    record_packet_stats: bool,
    stopping: Option<StoppingRule>,
    env: Arc<EnvFactory>,
    faults: Option<FaultInjector>,
}

impl Clone for SweepRunner {
    fn clone(&self) -> Self {
        Self {
            threads: self.threads,
            record_packet_stats: self.record_packet_stats,
            stopping: self.stopping,
            env: Arc::clone(&self.env),
            faults: self.faults.clone(),
        }
    }
}

/// The return value of [`SweepRunner::run_supervised`]: one typed
/// outcome per grid point (in submission order) plus the run's
/// [`FaultReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedSweep {
    /// One outcome per submitted scenario, in submission order.
    pub outcomes: Vec<PointOutcome>,
    /// What the fault layer observed (quarantines, injected panics).
    pub report: FaultReport,
}

impl SupervisedSweep {
    /// The completed results, paired with their grid indices — the
    /// partial-result view over a faulted run.
    pub fn completed(&self) -> impl Iterator<Item = (usize, &ScenarioResult)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.result().map(|r| (i, r)))
    }
}

impl SweepRunner {
    /// A runner with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        Self {
            threads,
            record_packet_stats: false,
            stopping: None,
            env: Arc::new(|| {
                (
                    WilisSystem::new(),
                    channel_registry(),
                    link_registry(),
                    contention_registry(),
                )
            }),
            faults: None,
        }
    }

    /// A runner sized to the host's available parallelism.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Record per-packet (predicted, actual) PBER pairs in the results —
    /// the Figure 6 scatter data.
    pub fn record_packet_stats(mut self, on: bool) -> Self {
        self.record_packet_stats = on;
        self
    }

    /// In-place variant of [`SweepRunner::record_packet_stats`], for
    /// callers (like [`crate::service::SweepService`]) that toggle the
    /// flag around a grid without rebuilding the runner.
    pub fn set_record_packet_stats(&mut self, on: bool) {
        self.record_packet_stats = on;
    }

    /// Whether per-packet statistics recording is on.
    pub fn records_packet_stats(&self) -> bool {
        self.record_packet_stats
    }

    /// Installs a confidence-driven [`StoppingRule`]: every
    /// point-to-point grid point stops at the first chunk boundary where
    /// the watched interval closes, capped at the scenario's `packets`
    /// budget. `None` restores fixed-budget execution. Contention cells
    /// ignore the rule (their slot budget defines the workload).
    pub fn with_stopping(mut self, rule: Option<StoppingRule>) -> Self {
        self.stopping = rule;
        self
    }

    /// In-place variant of [`SweepRunner::with_stopping`].
    pub fn set_stopping(&mut self, rule: Option<StoppingRule>) {
        self.stopping = rule;
    }

    /// The installed stopping rule, if any.
    pub fn stopping(&self) -> Option<StoppingRule> {
        self.stopping
    }

    /// Installs (or clears) a deterministic [`FaultInjector`]. With an
    /// injector in place, [`FaultSite::WorkerPanic`] decisions are
    /// consulted per grid point (occurrence index = grid index), and a
    /// scheduled point panics inside the supervised unwind boundary —
    /// quarantined, never aborting the rest of the grid. `None` (the
    /// default) disables injection entirely; the zero-fault path is
    /// bit-identical with or without an idle injector.
    pub fn with_faults(mut self, faults: Option<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// In-place variant of [`SweepRunner::with_faults`].
    pub fn set_faults(&mut self, faults: Option<FaultInjector>) {
        self.faults = faults;
    }

    /// The installed fault injector, if any.
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Replaces the environment factory, for sweeps over user decoder,
    /// channel, link-policy, or contention-policy registrations. The
    /// factory runs once per *job* — a single scenario, a contention
    /// cell, or one shared-channel group of scenarios that differ only in
    /// decoder/link (each job is self-contained — that is what makes the
    /// determinism contract trivial) — so keep it cheap relative to a
    /// scenario's packet budget: register implementations inside it, load
    /// big assets outside and share them via `Arc`.
    pub fn with_env(mut self, env: impl Fn() -> SweepEnv + Send + Sync + 'static) -> Self {
        self.env = Arc::new(env);
        self
    }

    /// Runs every scenario and returns results in submission order.
    ///
    /// # Errors
    ///
    /// Returns the first [`RegistryError`] if a scenario names an
    /// unregistered decoder, channel, or link policy. Names are validated
    /// *before* any Monte-Carlo work starts, so a typo in one grid point
    /// fails the run in microseconds instead of after the other points'
    /// budgets burn.
    ///
    /// # Panics
    ///
    /// Panics (also before any Monte-Carlo work) when a scenario pairs a
    /// PBER-driven link policy (`LinkPolicy::needs_pber`, e.g.
    /// `"softrate"`) with a decoder that has no SoftPHY BER estimator
    /// (e.g. `"viterbi"`): the policy would adapt on a constant 0.0 and
    /// produce plausible-looking garbage. Also panics when a contention
    /// cell has zero nodes, or pairs a rate-adapting link policy
    /// ([`LinkPolicy::adapts_rate`]) with a cell — cells pin every node
    /// to the scenario rate.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<Vec<ScenarioResult>, RegistryError> {
        let mut slots: Vec<Option<ScenarioResult>> = (0..scenarios.len()).map(|_| None).collect();
        self.run_streaming(scenarios, |i, result| slots[i] = Some(result))?;
        Ok(slots
            .into_iter()
            .map(|r| r.expect("every scenario is assigned to exactly one job")) // lint: allow(panic-policy) — the partition loop pushes each index into exactly one job
            .collect())
    }

    /// Streaming variant of [`SweepRunner::run`]: `on_result(i, result)`
    /// fires for each grid point as its worker job finishes, instead of
    /// buffering the whole grid. The callback runs under one mutex (never
    /// concurrently with itself) but on worker threads, hence the `Send`
    /// bound; [`crate::service::SweepService::run_streaming`] bridges it
    /// back onto the caller's thread for non-`Send` consumers.
    ///
    /// Delivery order is completion order — a pure function of nothing:
    /// callers needing submission order index by `i`, and each `i`'s
    /// *result* keeps the full bit-identity contract.
    ///
    /// # Errors
    ///
    /// As [`SweepRunner::run`]: preflight failures return before any
    /// Monte-Carlo work. A failure past preflight (e.g. from a user
    /// environment factory) is reported after the grid drains; results
    /// already delivered to the callback remain valid. A quarantined
    /// grid point (a worker-job panic — injected or organic) is likewise
    /// reported after the grid drains, as an `InvalidConfig` error
    /// naming the lowest quarantined grid index; callers that want the
    /// partial results instead use [`SweepRunner::run_supervised`].
    pub fn run_streaming<F>(
        &self,
        scenarios: &[Scenario],
        mut on_result: F,
    ) -> Result<(), RegistryError>
    where
        F: FnMut(usize, ScenarioResult) + Send,
    {
        let mut first_failed: Option<(usize, String)> = None;
        self.run_streaming_supervised(scenarios, |i, outcome| match outcome {
            PointOutcome::Completed(res) => on_result(i, res),
            PointOutcome::Failed { message, .. } => {
                let wins = match &first_failed {
                    Some((held, _)) => i < *held,
                    None => true,
                };
                if wins {
                    first_failed = Some((i, message));
                }
            }
        })?;
        match first_failed {
            Some((i, message)) => Err(RegistryError::invalid_config(format!(
                "grid point {i} was quarantined: {message}"
            ))),
            None => Ok(()),
        }
    }

    /// Supervised variant of [`SweepRunner::run`]: every worker job runs
    /// under an unwind boundary, a panicking grid point — injected by
    /// the installed [`FaultInjector`] or organic — is quarantined as
    /// [`PointOutcome::Failed`] while every other point completes, and
    /// the partial results come back with a [`FaultReport`]. With no
    /// faults fired the outcomes are exactly [`SweepRunner::run`]'s
    /// results wrapped in [`PointOutcome::Completed`], bit for bit.
    ///
    /// Determinism extends to failure: equal grids under equal injectors
    /// produce equal outcome vectors and equal reports at any thread
    /// count — an injected panic is keyed by the point's grid index,
    /// never by scheduling.
    ///
    /// # Errors
    ///
    /// As [`SweepRunner::run`] — configuration errors are still errors;
    /// only panics are quarantined.
    pub fn run_supervised(&self, scenarios: &[Scenario]) -> Result<SupervisedSweep, RegistryError> {
        let mut slots: Vec<Option<PointOutcome>> = (0..scenarios.len()).map(|_| None).collect();
        let report =
            self.run_streaming_supervised(scenarios, |i, outcome| slots[i] = Some(outcome))?;
        let outcomes = slots
            .into_iter()
            .map(|s| s.expect("every scenario is assigned to exactly one job")) // lint: allow(panic-policy) — the partition loop pushes each index into exactly one job
            .collect();
        Ok(SupervisedSweep { outcomes, report })
    }

    /// Streaming variant of [`SweepRunner::run_supervised`]:
    /// `on_outcome(i, outcome)` fires for each grid point as its worker
    /// job finishes or unwinds, and the run's [`FaultReport`] is
    /// returned at the end. This is the primitive under both
    /// [`SweepRunner::run_streaming`] (which turns quarantines into a
    /// deferred error) and [`SweepRunner::run_supervised`] (which
    /// buffers the outcomes).
    ///
    /// # Errors
    ///
    /// As [`SweepRunner::run_streaming`], minus quarantines — those are
    /// delivered as [`PointOutcome::Failed`] outcomes, not errors.
    pub fn run_streaming_supervised<F>(
        &self,
        scenarios: &[Scenario],
        on_outcome: F,
    ) -> Result<FaultReport, RegistryError>
    where
        F: FnMut(usize, PointOutcome) + Send,
    {
        if let Some(rule) = self.stopping {
            rule.validate()?;
        }
        // Fail fast on unknown names: resolve every distinct
        // (decoder, channel, link, contention) tuple once against a
        // throwaway environment.
        let (system, channels, links, contentions) = (self.env)();
        // The rate joins the key because link-policy validity can depend
        // on it: an IR phase schedule legal at one puncture period is
        // out of range at another.
        let mut checked: Vec<(PhyRate, &str, &str, &str, &str)> = Vec::new();
        for (i, sc) in scenarios.iter().enumerate() {
            let key = (
                sc.rate,
                sc.decoder.as_str(),
                sc.channel.as_str(),
                sc.link.as_str(),
                sc.contention.as_str(),
            );
            if sc.contention != "p2p" && sc.nodes < 1 {
                return Err(RegistryError::invalid_config(format!(
                    "scenario {i} puts zero nodes in contention cell {:?}: a cell \
                     needs at least one node",
                    sc.contention
                )));
            }
            if !checked.contains(&key) {
                system.receiver(&SystemConfig::new(sc.rate, &sc.decoder))?;
                channels.build(&sc.channel, &sc.channel_params)?;
                if sc.link != "none" {
                    // Built with the run-time parameters (payload size,
                    // initial rate), so rate-dependent validity checks
                    // see what the execution paths will actually build.
                    let mut policy = links.build(&sc.link, &runtime_link_params(sc))?;
                    // Factories are infallible; a policy that swallowed a
                    // bad configuration reports it here instead.
                    if let Some(problem) = policy.config_error() {
                        return Err(RegistryError::invalid_config(format!(
                            "link policy {:?} is misconfigured: {problem}",
                            sc.link
                        )));
                    }
                    // Every name resolved, but the *pairing* is invalid:
                    // both halves come straight from user configuration,
                    // so this is an error, not a panic.
                    if policy.needs_pber() && DecoderKind::from_registry_name(&sc.decoder).is_none()
                    {
                        return Err(RegistryError::invalid_config(format!(
                            "link policy {:?} adapts on predicted PBER, but decoder \
                             {:?} exports no SoftPHY BER estimate (its estimate \
                             would be a constant 0.0); pair it with a soft decoder \
                             such as \"sova\" or \"bcjr\"",
                            sc.link, sc.decoder
                        )));
                    }
                    if policy.harq().is_some()
                        && DecoderKind::from_registry_name(&sc.decoder).is_none()
                    {
                        return Err(RegistryError::invalid_config(format!(
                            "link policy {:?} combines soft LLR planes across \
                             retransmissions, but decoder {:?} makes hard decisions \
                             and would discard them; pair it with a soft decoder \
                             such as \"sova\" or \"bcjr\"",
                            sc.link, sc.decoder
                        )));
                    }
                }
                if sc.contention != "p2p" {
                    contentions.build(&sc.contention, &sc.contention_params)?;
                    if sc.link != "none" {
                        let policy = links.build(&sc.link, &runtime_link_params(sc))?;
                        if policy.adapts_rate() {
                            return Err(RegistryError::invalid_config(format!(
                                "link policy {:?} steers the transmit rate, which a \
                                 contention cell does not support: every node of a \
                                 cell transmits at the scenario rate",
                                sc.link
                            )));
                        }
                    }
                }
                checked.push(key);
            }
        }

        // Partition the grid into jobs. Scenarios whose link policy never
        // steers the transmit rate and that share the whole
        // (rate, channel, params, SNR, seed, packets, payload) coordinate
        // fuse into one shared-channel job: each packet is generated,
        // transmitted, and faded once, then received per member — the
        // decoder/link axes stop paying for redundant channel work.
        // Rate-adapting policies (SoftRate) diverge from the shared
        // transmit stream after the first verdict, so they keep the solo
        // path.
        let mut jobs: Vec<Job> = Vec::new();
        // BTreeMap, not HashMap: job order must be a pure function of the
        // scenario list, never of hasher state, for results to stay
        // bit-identical across runs and thread counts by construction.
        let mut shared_jobs: BTreeMap<GroupKey, usize> = BTreeMap::new();
        // Solo-required probes are cached per distinct (link, params):
        // large grids repeat a handful of policy configurations thousands
        // of times, and the probe builds a throwaway policy instance. A
        // policy runs solo when it steers the transmit rate (the shared
        // transmit stream would diverge after its first verdict) or when
        // it combines across retransmissions (the engine must replay the
        // *same* payload per attempt, which the fused per-packet stream
        // cannot do).
        let mut solo_required: BTreeMap<(String, Params), bool> = BTreeMap::new();
        for (i, sc) in scenarios.iter().enumerate() {
            // A point with a scheduled injected panic runs solo: its
            // quarantine must not take fused co-members down with it, so
            // the quarantine set stays a pure function of (grid, fault
            // plan), independent of how the partition fused.
            let panic_scheduled = self
                .faults
                .as_ref()
                .is_some_and(|f| f.fires(FaultSite::WorkerPanic, i as u64));
            // A contention cell is already a fused multi-session job of
            // its own: all N nodes run inside one worker job so the
            // shared medium realization is drawn exactly once.
            let shareable = !panic_scheduled
                && sc.contention == "p2p"
                && (sc.link == "none" || {
                    let probe_key = (sc.link.clone(), runtime_link_params(sc));
                    match solo_required.entry(probe_key) {
                        Entry::Occupied(slot) => !*slot.get(),
                        Entry::Vacant(slot) => {
                            let mut policy = links.build(&sc.link, &runtime_link_params(sc))?;
                            let solo = policy.adapts_rate() || policy.harq().is_some();
                            !*slot.insert(solo)
                        }
                    }
                });
            if !shareable {
                jobs.push(Job::Solo(i));
                continue;
            }
            let key: GroupKey = (
                sc.rate,
                sc.channel.clone(),
                sc.channel_params.clone(),
                sc.snr_db.to_bits(),
                sc.seed,
                sc.packets,
                sc.payload_bits,
            );
            match shared_jobs.entry(key) {
                Entry::Occupied(slot) => {
                    if let Job::Shared(members) = &mut jobs[*slot.get()] {
                        members.push(i);
                    }
                }
                Entry::Vacant(slot) => {
                    slot.insert(jobs.len());
                    jobs.push(Job::Shared(vec![i]));
                }
            }
        }

        // Fusion trades per-packet redundancy for scheduling granularity:
        // a grid concentrated on one channel coordinate could collapse
        // into fewer jobs than workers and serialize the decode-dominant
        // work. Split the largest shared groups until the pool is fed (a
        // split group redoes tx+channel once per piece — the pre-fusion
        // cost — while keeping the sharing within each piece). Any
        // partition yields bit-identical results, since group execution
        // equals solo execution member by member. Splitting happens on
        // the *member* axis only — every piece keeps the group's full
        // packet budget, so the packet-axis batch width of `run_group`
        // (see `batch_blocks`) is unaffected by how finely we split.
        while jobs.len() < self.threads {
            let Some(idx) = jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| matches!(j, Job::Shared(m) if m.len() >= 2))
                .max_by_key(|(_, j)| match j {
                    Job::Shared(m) => m.len(),
                    Job::Solo(_) => 0,
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            if let Job::Shared(members) = &mut jobs[idx] {
                let tail = members.split_off(members.len() / 2);
                jobs.push(Job::Shared(tail));
            }
        }

        let record = self.record_packet_stats;
        let stopping = self.stopping;
        let env = Arc::clone(&self.env);
        let faults = self.faults.clone();
        // Workers funnel finished points through one mutex-serialized
        // sink. Errors are not delivered to the callback; the one from
        // the lowest job index (first member within it) is kept, so the
        // reported error is a pure function of the scenario list.
        // Quarantines accumulate beside it and are sorted by grid index
        // after the drain, erasing completion order from the report.
        type Sink<F> = Mutex<(F, Option<(usize, RegistryError)>, Vec<Quarantine>)>;
        let sink: Sink<F> = Mutex::new((on_outcome, None, Vec::new()));
        let sink_ref = &sink;
        let faults_ref = &faults;
        self.run_indexed(jobs.len(), move |j| {
            let job = &jobs[j];
            // The unwind boundary wraps the whole job — environment
            // construction included — so any worker panic becomes a
            // quarantine instead of a pool abort.
            let outcome = supervisor::run_quarantined(|| {
                let (system, channels, links, contentions) = env();
                match job {
                    Job::Solo(i) => {
                        let sc = &scenarios[*i];
                        if let Some(inj) = faults_ref {
                            if inj.fires(FaultSite::WorkerPanic, *i as u64) {
                                supervisor::inject_panic(*i);
                            }
                        }
                        let result = if sc.contention == "p2p" {
                            run_scenario(&system, &channels, &links, *i, sc, record, stopping)
                        } else {
                            run_cell(&system, &channels, &links, &contentions, *i, sc, record)
                        };
                        vec![(*i, result)]
                    }
                    Job::Shared(members) => run_group(
                        &system, &channels, &links, members, scenarios, record, stopping,
                    ),
                }
            });
            let mut guard = match sink_ref.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            let (on_outcome, first_err, quarantined) = &mut *guard;
            match outcome {
                Ok(computed) => {
                    for (i, result) in computed {
                        match result {
                            Ok(res) => on_outcome(i, PointOutcome::Completed(res)),
                            Err(e) => {
                                let wins = match first_err {
                                    Some((held, _)) => j < *held,
                                    None => true,
                                };
                                if wins {
                                    *first_err = Some((j, e));
                                }
                            }
                        }
                    }
                }
                Err(message) => {
                    // Every member of the unwound job is quarantined.
                    // Injected panics always run solo (the partition
                    // forces it), so this multi-member case only fires
                    // for organic panics inside fused groups.
                    let members: &[usize] = match job {
                        Job::Solo(i) => std::slice::from_ref(i),
                        Job::Shared(m) => m,
                    };
                    for &i in members {
                        quarantined.push(Quarantine {
                            point: i,
                            message: message.clone(),
                        });
                        on_outcome(
                            i,
                            PointOutcome::Failed {
                                job: i,
                                message: message.clone(),
                            },
                        );
                    }
                }
            }
        });
        let (_, first_err, mut quarantined) = match sink.into_inner() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        quarantined.sort_by_key(|q| q.point);
        let injected_panics = match &faults {
            Some(inj) => quarantined
                .iter()
                .filter(|q| inj.fires(FaultSite::WorkerPanic, q.point as u64))
                .count() as u64,
            None => 0,
        };
        Ok(FaultReport {
            quarantined,
            injected_panics,
            ..FaultReport::default()
        })
    }

    /// The deterministic-parallel primitive under [`SweepRunner::run`]:
    /// evaluates `f(0..n)` across the worker pool and returns the results
    /// in index order. `f` must be a pure function of its index for the
    /// determinism contract to hold.
    ///
    /// Experiment drivers whose trials are not plain scenario grids (the
    /// Figure 7 protocol trace, Figure 2's per-rate rows) parallelize
    /// through this.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let threads = self.threads.min(n.max(1));
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let f = &f;
        std::thread::scope(|scope| {
            // Deal indices round-robin, exactly like the parallel channel
            // deals chunks: work assignment is static, results land by
            // index, nothing depends on completion order.
            let mut work: Vec<Vec<(usize, &mut Option<T>)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (i, slot) in results.iter_mut().enumerate() {
                work[i % threads].push((i, slot));
            }
            for bundle in work {
                scope.spawn(move || {
                    for (i, slot) in bundle {
                        *slot = Some(f(i));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker filled every slot")) // lint: allow(panic-policy) — run_indexed returns one result per job by construction
            .collect()
    }
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SweepRunner({} threads, packet stats {}, stopping {})",
            self.threads,
            if self.record_packet_stats {
                "on"
            } else {
                "off"
            },
            if self.stopping.is_some() { "on" } else { "off" }
        )
    }
}

/// Per-rate receiver machinery, built lazily: PHY-only scenarios and
/// non-adapting link policies only ever touch the scenario's own rate;
/// rate-adapting policies and the oracle fill in the rest on demand.
struct RateBank {
    rx: Vec<Option<(Receiver, Option<BerEstimator>)>>,
}

impl RateBank {
    fn new() -> Self {
        Self {
            rx: PhyRate::all().map(|_| None).into(),
        }
    }

    fn get(
        &mut self,
        system: &WilisSystem,
        decoder: &str,
        kind: Option<DecoderKind>,
        rate: PhyRate,
    ) -> Result<&mut (Receiver, Option<BerEstimator>), RegistryError> {
        let idx = rate_index(rate);
        if self.rx[idx].is_none() {
            let mut config = SystemConfig::new(rate, decoder);
            config.demapper_bits = ScalingFactors::hint_demapper_bits(rate.modulation());
            let estimator = kind.map(|k| BerEstimator::analytic_for_rate(rate, k));
            self.rx[idx] = Some((system.receiver(&config)?, estimator));
        }
        Ok(self.rx[idx].as_mut().expect("filled above")) // lint: allow(panic-policy) — the branch above just populated this slot
    }

    /// Removes the built machinery for `rate` from the bank — the fused
    /// execution path constructs through [`RateBank::get`] (one shared
    /// code path with the solo loop) and then owns its single rate.
    fn take(&mut self, rate: PhyRate) -> Option<(Receiver, Option<BerEstimator>)> {
        self.rx[rate_index(rate)].take()
    }
}

fn rate_index(rate: PhyRate) -> usize {
    PhyRate::all()
        .iter()
        .position(|&r| r == rate)
        .expect("rate in table") // lint: allow(panic-policy) — PhyRate::all() contains every enum variant
}

/// Replays the packet at every rate against the identical channel
/// realization (same channel seed) and returns the fastest rate that
/// decoded error-free — the Figure 7 oracle, grounded on the
/// seed-addressed [`ChannelModel`] contract. The oracle decodes with
/// Viterbi (hard decisions suffice for ground truth); all eight per-rate
/// receivers share the caller's one compiled trellis instead of
/// rebuilding decoder state per rate.
#[allow(clippy::too_many_arguments)]
fn oracle_replay(
    channel: &mut dyn ChannelModel,
    trellis: &Arc<CompiledTrellis>,
    chan_seed: u64,
    payload: &[u8],
    scramble_seed: u8,
    oracle_rx: &mut [Option<(Receiver, PhyScratch)>],
    samples: &mut Vec<Cplx>,
    got: &mut RxResult,
) -> Oracle {
    let mut best = None;
    for (ri, &rate) in PhyRate::all().iter().enumerate() {
        let (rx, scratch) = oracle_rx[ri].get_or_insert_with(|| {
            (
                Receiver::viterbi_shared(rate, Arc::clone(trellis)),
                PhyScratch::new(),
            )
        });
        Transmitter::new(rate).tx_into(payload, scramble_seed, scratch, samples);
        channel.apply(samples, chan_seed);
        rx.rx_from(samples, payload.len(), scramble_seed, scratch, got);
        if got.bit_errors(payload) == 0 {
            best = Some(rate); // rates iterate slowest -> fastest
        }
    }
    match best {
        Some(rate) => Oracle::Best(rate),
        None => Oracle::NoRate,
    }
}

/// The Monte-Carlo accumulators of one grid point, with the per-packet
/// accounting in one place. Both execution paths — the solo loop of
/// [`run_scenario`] and the fused loop of [`run_group`] — tally through
/// this struct, so the fused==solo bit-identity contract cannot be broken
/// by editing one path's statistics and forgetting the other's.
struct PacketTally {
    hint_bins: Vec<HintBin>,
    packet_errors: u64,
    bit_errors: u64,
    predicted_pber_sum: f64,
    packet_stats: Vec<PacketStat>,
}

impl PacketTally {
    fn new() -> Self {
        Self {
            hint_bins: vec![HintBin::default(); usize::from(MAX_HINT) + 1],
            packet_errors: 0,
            bit_errors: 0,
            predicted_pber_sum: 0.0,
            packet_stats: Vec::new(),
        }
    }

    /// Accounts one received packet against the transmitted payload:
    /// hint-binned bit errors, packet errors, the SoftPHY PBER estimate,
    /// and (when `record` is on) the Figure 6 scatter point. Returns the
    /// packet's bit-error count and predicted PBER for the link layer.
    fn observe(
        &mut self,
        sent: &[u8],
        got: &RxResult,
        estimator: Option<&BerEstimator>,
        record: bool,
    ) -> (u64, f64) {
        let mut errs_this_packet = 0u64;
        for ((&sent_bit, &got_bit), &hint) in sent.iter().zip(&got.payload).zip(&got.hints) {
            let bin = &mut self.hint_bins[usize::from(hint)];
            bin.bits += 1;
            if sent_bit != got_bit {
                bin.errors += 1;
                errs_this_packet += 1;
            }
        }
        self.bit_errors += errs_this_packet;
        if errs_this_packet > 0 {
            self.packet_errors += 1;
        }
        let predicted = estimator
            .map(|est| est.per_packet(&got.hints))
            .unwrap_or(0.0);
        self.predicted_pber_sum += predicted;
        if record {
            self.packet_stats.push(PacketStat {
                predicted,
                actual: errs_this_packet as f64 / sent.len().max(1) as f64,
            });
        }
        (errs_this_packet, predicted)
    }

    /// Folds the tally into the final per-scenario result. `packets` is
    /// the number of packets that actually reached the receiver —
    /// `sc.packets` for point-to-point scenarios, the surviving
    /// transmission count for cells.
    fn into_result(
        self,
        index: usize,
        sc: &Scenario,
        packets: u64,
        link: Option<LinkMetrics>,
        cell: Option<CellMetrics>,
    ) -> ScenarioResult {
        ScenarioResult {
            scenario: index,
            label: sc.label(),
            packets,
            packet_errors: self.packet_errors,
            bits: packets * sc.payload_bits as u64,
            bit_errors: self.bit_errors,
            hint_bins: self.hint_bins,
            predicted_pber_sum: self.predicted_pber_sum,
            packet_stats: self.packet_stats,
            link,
            cell,
        }
    }
}

/// Executes one scenario: the allocation-free steady-state loop at the
/// heart of the engine.
fn run_scenario(
    system: &WilisSystem,
    channels: &ChannelSlot,
    links: &LinkSlot,
    index: usize,
    sc: &Scenario,
    record: bool,
    stopping: Option<StoppingRule>,
) -> Result<ScenarioResult, RegistryError> {
    let decoder_kind = DecoderKind::from_registry_name(&sc.decoder);
    let mut bank = RateBank::new();
    bank.get(system, &sc.decoder, decoder_kind, sc.rate)?;
    let mut channel_params = sc.channel_params.clone();
    channel_params.set("snr_db", &format!("{}", sc.snr_db));
    let mut channel = channels.build(&sc.channel, &channel_params)?;
    let mut policy: Option<Box<dyn LinkPolicy>> = if sc.link == "none" {
        None
    } else {
        Some(links.build(&sc.link, &runtime_link_params(sc))?)
    };
    if policy.as_mut().is_some_and(|p| p.harq().is_some()) {
        // Soft-combining replays the *same* payload per attempt, so the
        // packet axis becomes an attempt loop of its own.
        let policy = policy.expect("harq() probe above saw a policy"); // lint: allow(panic-policy) — is_some_and returned true, so the option is Some
        return run_harq_scenario(&mut bank, channels, index, sc, policy, record, stopping);
    }
    let needs_oracle = policy.as_ref().is_some_and(|p| p.needs_oracle());
    let shared_trellis = system.compiled_ieee80211();

    let mut scratch = PhyScratch::new();
    let mut samples: Vec<Cplx> = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    let mut got = RxResult::default();
    // Oracle working memory, touched only by oracle-requesting policies.
    let mut oracle_rx: Vec<Option<(Receiver, PhyScratch)>> = PhyRate::all().map(|_| None).into();
    let mut oracle_samples: Vec<Cplx> = Vec::new();
    let mut oracle_got = RxResult::default();

    let mut tally = PacketTally::new();
    let mut current_rate = sc.rate;
    let mut observed: u64 = 0;

    for p in 0..sc.packets {
        let packet_seed = mix_seed(sc.seed, u64::from(p));
        let mut rng = SmallRng::seed_from_u64(packet_seed);
        payload.clear();
        payload.extend((0..sc.payload_bits).map(|_| rng.gen_bit()));
        let scramble_seed = (p % 127 + 1) as u8;
        let chan_seed = mix_seed(packet_seed, 1);

        let (rx, estimator) = bank.get(system, &sc.decoder, decoder_kind, current_rate)?;
        Transmitter::new(current_rate).tx_into(&payload, scramble_seed, &mut scratch, &mut samples);
        channel.apply(&mut samples, chan_seed);
        rx.rx_from(
            &samples,
            payload.len(),
            scramble_seed,
            &mut scratch,
            &mut got,
        );

        let (errs_this_packet, predicted) =
            tally.observe(&payload, &got, estimator.as_ref(), record);

        if let Some(policy) = policy.as_mut() {
            let oracle = if needs_oracle {
                oracle_replay(
                    channel.as_mut(),
                    &shared_trellis,
                    chan_seed,
                    &payload,
                    scramble_seed,
                    &mut oracle_rx,
                    &mut oracle_samples,
                    &mut oracle_got,
                )
            } else {
                Oracle::Unavailable
            };
            let ctx = LinkContext {
                sent: &payload,
                bit_errors: errs_this_packet,
                predicted_pber: predicted,
                rate: current_rate,
                oracle,
            };
            let verdict = policy.observe(&got, &got.hints, &ctx);
            if let Some(next) = verdict.next_rate {
                current_rate = next;
            }
        }
        observed = u64::from(p) + 1;
        if let Some(rule) = stopping {
            if rule.is_boundary(observed) && rule.closed(&tally, observed, sc.payload_bits) {
                break;
            }
        }
    }

    Ok(tally.into_result(index, sc, observed, policy.map(|p| p.metrics()), None))
}

/// Seed-stream tag for HARQ retransmission attempts, in the family of
/// [`BACKOFF_STREAM`] and [`ARRIVAL_STREAM`]: attempt 0 of a packet draws
/// exactly the seeds a non-HARQ packet draws (the strict-generalization
/// anchor), and attempt `a > 0` of packet seed `s` draws from
/// `mix_seed(s, HARQ_ATTEMPT_STREAM | a)` — fresh channel noise per
/// retransmission, pure in `(scenario seed, packet, attempt)`.
const HARQ_ATTEMPT_STREAM: u64 = 0x4A59_0000_0000_0000;

/// The channel seed of HARQ attempt `attempt` of the packet with seed
/// `packet_seed` — used identically by the point-to-point attempt loop
/// and the cell path, so the two can never drift apart.
fn harq_attempt_seed(packet_seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        packet_seed
    } else {
        mix_seed(packet_seed, HARQ_ATTEMPT_STREAM | u64::from(attempt))
    }
}

/// Executes one soft-combining HARQ scenario: `sc.packets` *logical*
/// packets, each an attempt loop that retransmits the identical payload
/// until the link policy closes it (delivered or budget exhausted).
///
/// Per attempt the transmitter punctures at the phase the policy's
/// [`wilis_mac::HarqCore`] schedules (phase 0 for Chase; the IR schedule
/// otherwise), the receiver front end produces the attempt's mother-code
/// LLR plane, the core absorbs it (first attempt retains, retransmissions
/// saturating-add), and the *combined* plane re-enters the decoder — so a
/// retransmission decodes with everything earlier attempts learned.
/// Every attempt's channel realization derives from
/// [`harq_attempt_seed`]; attempt 0 draws exactly the seeds the plain
/// solo loop draws.
///
/// The [`PacketTally`] observes every decode (one per attempt), so
/// `ScenarioResult::packets` counts attempts — the same
/// one-row-per-receive accounting the ARQ solo path produces.
fn run_harq_scenario(
    bank: &mut RateBank,
    channels: &ChannelSlot,
    index: usize,
    sc: &Scenario,
    mut policy: Box<dyn LinkPolicy>,
    record: bool,
    stopping: Option<StoppingRule>,
) -> Result<ScenarioResult, RegistryError> {
    let (mut rx, estimator) = bank
        .take(sc.rate)
        .expect("run_scenario populated the bank before dispatching here"); // lint: allow(panic-policy) — the caller's bank.get succeeded for this rate
    let mut channel_params = sc.channel_params.clone();
    channel_params.set("snr_db", &format!("{}", sc.snr_db));
    let mut channel = channels.build(&sc.channel, &channel_params)?;

    let mut scratch = PhyScratch::new();
    let mut samples: Vec<Cplx> = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    let mut mother: Vec<Llr> = Vec::new();
    let mut got = RxResult::default();
    let mut tally = PacketTally::new();
    let mut receives: u64 = 0;

    for p in 0..sc.packets {
        let packet_seed = mix_seed(sc.seed, u64::from(p));
        let mut rng = SmallRng::seed_from_u64(packet_seed);
        payload.clear();
        payload.extend((0..sc.payload_bits).map(|_| rng.gen_bit()));
        // Scramble identity follows the *logical* packet: a
        // retransmission is the same packet on the air.
        let scramble_seed = (p % 127 + 1) as u8;

        loop {
            {
                let core = policy
                    .harq()
                    .expect("preflight pinned a combining policy on this path"); // lint: allow(panic-policy) — run_scenario dispatches here only when harq() is Some
                let phase = core.tx_phase();
                let chan_seed = mix_seed(harq_attempt_seed(packet_seed, core.attempt()), 1);
                Transmitter::with_phase(sc.rate, phase).tx_into(
                    &payload,
                    scramble_seed,
                    &mut scratch,
                    &mut samples,
                );
                channel.apply(&mut samples, chan_seed);
                rx.set_puncture_phase(phase);
                rx.rx_front_end_into(&samples, payload.len(), &mut scratch, &mut mother);
                core.absorb(&mother);
                rx.rx_decode_from(
                    core.plane(),
                    payload.len(),
                    scramble_seed,
                    &mut scratch,
                    &mut got,
                );
            }
            receives += 1;
            let (errs_this_packet, predicted) =
                tally.observe(&payload, &got, estimator.as_ref(), record);
            let ctx = LinkContext {
                sent: &payload,
                bit_errors: errs_this_packet,
                predicted_pber: predicted,
                rate: sc.rate,
                oracle: Oracle::Unavailable,
            };
            let verdict = policy.observe(&got, &got.hints, &ctx);
            assert!(
                verdict.next_rate.is_none() || verdict.next_rate == Some(sc.rate),
                "link policy {:?} declared adapts_rate() == false but asked to \
                 steer the transmit rate",
                policy.name()
            );
            if verdict.status != LinkStatus::Retransmit {
                break;
            }
        }
        // The boundary walks the *logical* packet axis — the seed
        // schedule — while the interval watches the attempt-level tally,
        // the same accounting `ScenarioResult::packets` reports.
        if let Some(rule) = stopping {
            if rule.is_boundary(u64::from(p) + 1) && rule.closed(&tally, receives, sc.payload_bits)
            {
                break;
            }
        }
    }

    Ok(tally.into_result(index, sc, receives, Some(policy.metrics()), None))
}

/// Per-member receive state of a shared-channel job: everything that is
/// *not* shared — receiver, estimator, scratch, link policy, and the same
/// [`PacketTally`] the solo path accumulates through.
struct GroupMember<'a> {
    index: usize,
    scenario: &'a Scenario,
    rx: Receiver,
    estimator: Option<BerEstimator>,
    scratch: PhyScratch,
    /// One receive result per lane of the current packet block; the
    /// batched RX path fills all of them in lockstep.
    got_lanes: Vec<RxResult>,
    policy: Option<Box<dyn LinkPolicy>>,
    needs_oracle: bool,
    tally: PacketTally,
    /// Packets this member has observed — `scenario.packets` unless its
    /// stopping rule closed the interval first.
    observed: u64,
    /// Set once the member's own stopping rule fires: the member freezes
    /// its tally and policy at exactly the packet where its solo run
    /// would have stopped, so fused results stay bit-identical to solo
    /// results even when co-members keep running.
    stopped: bool,
}

impl<'a> GroupMember<'a> {
    fn build(
        system: &WilisSystem,
        links: &LinkSlot,
        index: usize,
        sc: &'a Scenario,
    ) -> Result<Self, RegistryError> {
        let decoder_kind = DecoderKind::from_registry_name(&sc.decoder);
        let mut bank = RateBank::new();
        bank.get(system, &sc.decoder, decoder_kind, sc.rate)?;
        let (rx, estimator) = bank
            .take(sc.rate)
            .expect("receiver built into the bank above"); // lint: allow(panic-policy) — the bank was populated for this rate a few lines up
        let policy: Option<Box<dyn LinkPolicy>> = if sc.link == "none" {
            None
        } else {
            Some(links.build(&sc.link, &runtime_link_params(sc))?)
        };
        let needs_oracle = policy.as_ref().is_some_and(|p| p.needs_oracle());
        Ok(Self {
            index,
            scenario: sc,
            rx,
            estimator,
            scratch: PhyScratch::new(),
            got_lanes: Vec::new(),
            policy,
            needs_oracle,
            tally: PacketTally::new(),
            observed: 0,
            stopped: false,
        })
    }
}

/// Partitions a packet budget into contiguous blocks of at most
/// [`MAX_BATCH_LANES`] whose sizes differ by at most one — the batch
/// width alignment of the fused path. A greedy split would run 9 packets
/// as 8 + 1 and strand the remainder on a single-lane decode; the
/// balanced split runs them as 5 + 4 so every block keeps enough lanes
/// for the lockstep kernels to pay off.
fn batch_blocks(packets: u32) -> impl Iterator<Item = u32> {
    let b = MAX_BATCH_LANES as u32;
    let n_blocks = packets.div_ceil(b);
    let base = packets.checked_div(n_blocks).unwrap_or(0);
    let bumped = packets.checked_rem(n_blocks).unwrap_or(0);
    (0..n_blocks).map(move |i| base + u32::from(i < bumped))
}

/// Executes one shared-channel job: the payload, transmit chain, and
/// channel realization of each packet are computed once and every member
/// scenario receives from the identical noisy samples. Bit-identical to
/// running each member solo — the shared inputs are exactly the inputs
/// each member would have derived from its own (equal) seed.
///
/// Packets run through the receivers in lockstep blocks of up to
/// [`MAX_BATCH_LANES`] lanes (see [`batch_blocks`]): each block transmits
/// and corrupts its packets first, then every member decodes the whole
/// block with one batched receive, then the per-packet accounting replays
/// in the original packet order so tallies and link policies observe the
/// exact sequence the solo path produces. Members whose receive chains
/// coincide share work inside a block — one front-end pass per demapper
/// class, one decode per (rate, builtin decoder) class — because equal
/// configurations produce bit-identical intermediate streams.
fn run_group(
    system: &WilisSystem,
    channels: &ChannelSlot,
    links: &LinkSlot,
    members: &[usize],
    scenarios: &[Scenario],
    record: bool,
    stopping: Option<StoppingRule>,
) -> Vec<(usize, Result<ScenarioResult, RegistryError>)> {
    let lead = &scenarios[members[0]];
    let mut out = Vec::with_capacity(members.len());
    let mut group: Vec<GroupMember> = Vec::with_capacity(members.len());
    for &i in members {
        match GroupMember::build(system, links, i, &scenarios[i]) {
            Ok(m) => group.push(m),
            Err(e) => out.push((i, Err(e))),
        }
    }

    let mut channel_params = lead.channel_params.clone();
    channel_params.set("snr_db", &format!("{}", lead.snr_db));
    let mut channel = match channels.build(&lead.channel, &channel_params) {
        Ok(c) => c,
        Err(e) => {
            for m in group {
                out.push((m.index, Err(e.clone())));
            }
            return out;
        }
    };

    let shared_trellis = system.compiled_ieee80211();
    let any_oracle = group.iter().any(|m| m.needs_oracle);
    let transmitter = Transmitter::new(lead.rate);
    let mut tx_scratch = PhyScratch::new();
    let mut lane_samples: Vec<Vec<Cplx>> = Vec::new();
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut scramble_seeds: Vec<u8> = Vec::new();
    let mut oracles: Vec<Oracle> = Vec::new();
    let mut oracle_rx: Vec<Option<(Receiver, PhyScratch)>> = PhyRate::all().map(|_| None).into();
    let mut oracle_samples: Vec<Cplx> = Vec::new();
    let mut oracle_got = RxResult::default();

    // Front-end classes: members whose receive front ends agree (same
    // rate, same demapper configuration) produce bit-identical mother LLR
    // streams, so each class runs demod/demap/deinterleave/depuncture
    // once per block and every member decodes the shared stream. In a
    // typical grid group the two hint decoders (SOVA, BCJR) share one
    // class while Viterbi's full-width demapper forms another.
    let mut class_reps: Vec<usize> = Vec::new();
    let mut class_of: Vec<usize> = Vec::with_capacity(group.len());
    for i in 0..group.len() {
        let c = class_reps
            .iter()
            .position(|&r| group[r].rx.front_end_matches(&group[i].rx))
            .unwrap_or_else(|| {
                class_reps.push(i);
                class_reps.len() - 1
            });
        class_of.push(c);
    }
    let mut class_mothers: Vec<Vec<Llr>> = class_reps.iter().map(|_| Vec::new()).collect();

    // Full-receiver classes: members that also run the same decoder
    // produce bit-identical `RxResult`s lane for lane, so only the class
    // representative decodes and the rest copy its results. This is what
    // makes link-policy grid axes nearly free — `none` and `arq` variants
    // of one decoder differ only in accounting. Restricted to the builtin
    // decoders, which are known-pure functions of (name, rate); a user
    // registration could be stateful, so it never shares.
    let mut rx_reps: Vec<usize> = Vec::new();
    let mut rx_of: Vec<usize> = Vec::with_capacity(group.len());
    for i in 0..group.len() {
        let sc = group[i].scenario;
        let builtin = DecoderKind::from_registry_name(&sc.decoder).is_some();
        let c = rx_reps
            .iter()
            .position(|&r| {
                builtin
                    && group[r].scenario.rate == sc.rate
                    && group[r].scenario.decoder == sc.decoder
            })
            .unwrap_or_else(|| {
                rx_reps.push(i);
                rx_reps.len() - 1
            });
        rx_of.push(c);
    }

    let mut first = 0u32;
    for block in batch_blocks(lead.packets) {
        let lanes = block as usize;
        if lane_samples.len() < lanes {
            lane_samples.resize_with(lanes, Vec::new);
            payloads.resize_with(lanes, Vec::new);
        }
        scramble_seeds.clear();
        oracles.clear();

        // Stage 1 — the shared part, in packet order: one transmit and
        // one channel realization per packet, exactly the sequence of
        // channel calls the unbatched loop makes.
        for k in 0..lanes {
            let p = first + k as u32;
            let packet_seed = mix_seed(lead.seed, u64::from(p));
            let mut rng = SmallRng::seed_from_u64(packet_seed);
            let payload = &mut payloads[k];
            payload.clear();
            payload.extend((0..lead.payload_bits).map(|_| rng.gen_bit()));
            let scramble_seed = (p % 127 + 1) as u8;
            let chan_seed = mix_seed(packet_seed, 1);
            let samples = &mut lane_samples[k];
            transmitter.tx_into(payload, scramble_seed, &mut tx_scratch, samples);
            channel.apply(samples, chan_seed);
            oracles.push(if any_oracle {
                oracle_replay(
                    channel.as_mut(),
                    &shared_trellis,
                    chan_seed,
                    payload,
                    scramble_seed,
                    &mut oracle_rx,
                    &mut oracle_samples,
                    &mut oracle_got,
                )
            } else {
                Oracle::Unavailable
            });
            scramble_seeds.push(scramble_seed);
        }

        // Stage 2 — every member decodes the whole block in lockstep:
        // one front-end pass per class, then each member's decoder runs
        // on its class's shared mother stream. Bit-identical per lane to
        // `rx_from`.
        for (c, &r) in class_reps.iter().enumerate() {
            let rep = &mut group[r];
            rep.rx.rx_batch_front_end_into(
                &lane_samples[..lanes],
                lead.payload_bits,
                &mut rep.scratch,
                &mut class_mothers[c],
            );
        }
        for (c, &r) in rx_reps.iter().enumerate() {
            debug_assert_eq!(rx_of[r], c);
            let rep = &mut group[r];
            rep.got_lanes.resize_with(lanes, RxResult::default);
            rep.rx.rx_batch_decode_from(
                &class_mothers[class_of[r]],
                lanes,
                lead.payload_bits,
                &scramble_seeds,
                &mut rep.scratch,
                &mut rep.got_lanes[..lanes],
            );
        }
        for i in 0..group.len() {
            let r = rx_reps[rx_of[i]];
            if r == i {
                continue;
            }
            // The representative always precedes its class members, so a
            // split at `i` puts it in the head. Field-wise `clone_from`
            // keeps the copy allocation-free in the steady state.
            let (head, tail) = group.split_at_mut(i);
            let dst_member = &mut tail[0];
            dst_member.got_lanes.resize_with(lanes, RxResult::default);
            let src_lanes = &head[r].got_lanes[..lanes];
            for (dst, src) in dst_member.got_lanes[..lanes].iter_mut().zip(src_lanes) {
                dst.payload.clone_from(&src.payload);
                dst.hints.clone_from(&src.hints);
                dst.soft_magnitudes.clone_from(&src.soft_magnitudes);
                dst.decoder_id = src.decoder_id;
            }
        }

        // Stage 3 — accounting, packet-major then member, so each
        // member's tally and link policy observe packets in the same
        // order the solo path delivers them.
        for k in 0..lanes {
            let payload = &payloads[k];
            let done = u64::from(first) + k as u64 + 1;
            for member in &mut group {
                if member.stopped {
                    continue;
                }
                let got = &member.got_lanes[k];
                let (errs_this_packet, predicted) =
                    member
                        .tally
                        .observe(payload, got, member.estimator.as_ref(), record);
                if let Some(policy) = member.policy.as_mut() {
                    let ctx = LinkContext {
                        sent: payload,
                        bit_errors: errs_this_packet,
                        predicted_pber: predicted,
                        rate: lead.rate,
                        oracle: if member.needs_oracle {
                            oracles[k]
                        } else {
                            Oracle::Unavailable
                        },
                    };
                    let verdict = policy.observe(got, &got.hints, &ctx);
                    assert!(
                        verdict.next_rate.is_none() || verdict.next_rate == Some(lead.rate),
                        "link policy {:?} declared adapts_rate() == false but asked to \
                         steer the transmit rate",
                        policy.name()
                    );
                }
                member.observed = done;
                // Each member applies its own rule to its own tally at
                // exactly the boundary its solo run would check — a
                // stopped member freezes while co-members continue.
                if let Some(rule) = stopping {
                    if rule.is_boundary(done) && rule.closed(&member.tally, done, lead.payload_bits)
                    {
                        member.stopped = true;
                    }
                }
            }
        }
        first += block;
        if stopping.is_some() && group.iter().all(|m| m.stopped) {
            break;
        }
    }

    for member in group {
        let link = member.policy.map(|p| p.metrics());
        out.push((
            member.index,
            Ok(member.tally.into_result(
                member.index,
                member.scenario,
                member.observed,
                link,
                None,
            )),
        ));
    }
    out
}

/// Per-node state of one contention cell: the MAC decision machinery,
/// the node's own link session, and its seeded randomness streams.
struct CellNode {
    policy: Box<dyn ContentionPolicy>,
    backoff: BackoffState,
    link: Option<Box<dyn LinkPolicy>>,
    arrivals: SmallRng,
    /// Transmissions made so far — the node's packet-seed index. Node 0's
    /// attempt `a` draws exactly the seeds point-to-point packet `a`
    /// draws, which is what makes a 1-node cell a strict generalization.
    attempts: u64,
    /// Logical packets *started* — the packet-seed index of a
    /// soft-combining HARQ node, whose retransmissions keep the payload
    /// (and seed) of the open packet and draw per-attempt channel noise
    /// through [`harq_attempt_seed`] instead.
    logical: u64,
    /// Packets queued at this node (head-of-queue is retransmitted until
    /// its link session closes it).
    queue: u64,
    transmitted_last_slot: bool,
}

/// Seed-stream tags for the per-node randomness of a cell, chosen far
/// outside the `attempt | node << 32` packet-seed index space.
const BACKOFF_STREAM: u64 = 0xBAC0_FF00_0000_0000;
const ARRIVAL_STREAM: u64 = 0xA221_0000_0000_0000;

/// Executes one contention-cell scenario: N nodes contending for a
/// slotted shared medium, all inside this one job.
///
/// Each slot: packets arrive (Bernoulli `load` per node, or saturated),
/// every backlogged node's [`ContentionPolicy`] decides on the slot from
/// carrier sense (some *other* node transmitted last slot) and its
/// backoff state, and the overlapping transmissions resolve through the
/// capture model ([`resolve_slot`]) — per-node link gains come from the
/// scenario's seed-addressed [`ChannelModel`], so the whole cell is a
/// pure function of `(scenario seed, node, attempt)`. The surviving
/// transmission (if any) runs the full PHY chain — transmit, per-node
/// channel realization, residual interference as noise, receive, decode —
/// and is observed by that node's own [`LinkPolicy`] session; destroyed
/// transmissions are observed as total corruption with zero-confidence
/// hints. Node 0 of a 1-node cell draws exactly the seeds the
/// point-to-point path draws, attempt for attempt.
fn run_cell(
    system: &WilisSystem,
    channels: &ChannelSlot,
    links: &LinkSlot,
    contentions: &ContentionSlot,
    index: usize,
    sc: &Scenario,
    record: bool,
) -> Result<ScenarioResult, RegistryError> {
    let nodes = sc.nodes as usize;
    let slots = u64::from(sc.packets);
    let decoder_kind = DecoderKind::from_registry_name(&sc.decoder);
    let mut bank = RateBank::new();
    bank.get(system, &sc.decoder, decoder_kind, sc.rate)?;
    // Every node transmits at the scenario rate toward one receiver, so a
    // single receiver (and estimator) serves the whole cell.
    let (mut rx, estimator) = bank.take(sc.rate).expect("receiver built above"); // lint: allow(panic-policy) — the bank was populated for this rate a few lines up

    let mut channel_params = sc.channel_params.clone();
    channel_params.set("snr_db", &format!("{}", sc.snr_db));
    let mut channel = channels.build(&sc.channel, &channel_params)?;
    let noise_power = SnrDb::new(sc.snr_db).noise_power();
    let capture_db = sc
        .contention_params
        .get_f64("capture_db")
        .unwrap_or(DEFAULT_CAPTURE_DB);
    let load = sc.contention_params.get_f64("load").unwrap_or(1.0);

    let mut cell_nodes: Vec<CellNode> = Vec::with_capacity(nodes);
    for n in 0..nodes {
        cell_nodes.push(CellNode {
            policy: contentions.build(&sc.contention, &sc.contention_params)?,
            backoff: BackoffState::new(mix_seed(sc.seed, BACKOFF_STREAM | n as u64)),
            link: if sc.link == "none" {
                None
            } else {
                Some(links.build(&sc.link, &runtime_link_params(sc))?)
            },
            arrivals: SmallRng::seed_from_u64(mix_seed(sc.seed, ARRIVAL_STREAM | n as u64)),
            attempts: 0,
            logical: 0,
            queue: 0,
            transmitted_last_slot: false,
        });
    }

    let transmitter = Transmitter::new(sc.rate);
    let mut scratch = PhyScratch::new();
    let mut samples: Vec<Cplx> = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    let mut mother: Vec<Llr> = Vec::new();
    let mut got = RxResult::default();
    let mut collided = RxResult {
        decoder_id: "collided",
        ..RxResult::default()
    };
    let mut tally = PacketTally::new();
    let mut metrics = CellMetrics::new(sc.nodes, slots, sc.payload_bits as u64);
    let mut decoded: u64 = 0;
    let mut last_tx_count = 0usize;
    let mut txs: Vec<usize> = Vec::with_capacity(nodes);
    let mut slot_txs: Vec<(usize, u64, u64, u64, u64)> = Vec::with_capacity(nodes);
    let mut powers: Vec<TxPower> = Vec::with_capacity(nodes);

    for slot in 0..slots {
        // Arrivals: saturated queues by default, Bernoulli otherwise.
        for node in &mut cell_nodes {
            if load >= 1.0 {
                node.queue = node.queue.max(1);
            } else if node.arrivals.gen_bool(load) {
                node.queue += 1;
            }
        }

        txs.clear();
        for (n, node) in cell_nodes.iter_mut().enumerate() {
            if node.queue == 0 {
                continue;
            }
            // Carrier sense reads *last* slot's air: busy iff some other
            // node transmitted (a node never defers to its own
            // transmission), i.e. last slot had more transmitters than
            // this node contributed.
            let view = SlotView {
                slot,
                node: n,
                nodes,
                carrier_busy: last_tx_count > usize::from(node.transmitted_last_slot),
            };
            if node.policy.decide(&view, &mut node.backoff) == TxDecision::Transmit {
                txs.push(n);
            }
        }
        for node in cell_nodes.iter_mut() {
            node.transmitted_last_slot = false;
        }
        for &n in &txs {
            cell_nodes[n].transmitted_last_slot = true;
        }
        last_tx_count = txs.len();
        if txs.is_empty() {
            metrics.idle_slots += 1;
            continue;
        }

        // Per-transmission seeds and link gains, then capture resolution.
        slot_txs.clear();
        powers.clear();
        for &n in &txs {
            let node = &mut cell_nodes[n];
            let attempt = node.attempts;
            node.attempts += 1;
            let harq_attempt = node
                .link
                .as_mut()
                .and_then(|l| l.harq())
                .map(|c| c.attempt());
            let (ident, packet_seed, attempt_seed) = match harq_attempt {
                // A soft-combining node keys payload identity to its
                // open logical packet; retransmissions draw fresh noise
                // from the HARQ attempt stream while attempt 0 matches
                // the plain draw exactly.
                Some(a) => {
                    let ps = mix_seed(sc.seed, node.logical | ((n as u64) << 32));
                    (node.logical, ps, harq_attempt_seed(ps, a))
                }
                None => {
                    let ps = mix_seed(sc.seed, attempt | ((n as u64) << 32));
                    (attempt, ps, ps)
                }
            };
            let chan_seed = mix_seed(attempt_seed, 1);
            powers.push(TxPower {
                node: n,
                gain: channel.packet_gain(chan_seed),
            });
            slot_txs.push((n, ident, packet_seed, attempt_seed, chan_seed));
        }
        let outcome = resolve_slot(&powers, noise_power, capture_db);
        match outcome {
            SlotOutcome::Idle => unreachable!("txs is non-empty"),
            SlotOutcome::Clean { .. } => metrics.clean_slots += 1,
            SlotOutcome::Captured { .. } => metrics.capture_slots += 1,
            SlotOutcome::Collision => metrics.collision_slots += 1,
        }
        let survivor = outcome.survivor();

        for &(n, ident, packet_seed, attempt_seed, chan_seed) in &slot_txs {
            let mut rng = SmallRng::seed_from_u64(packet_seed);
            payload.clear();
            payload.extend((0..sc.payload_bits).map(|_| rng.gen_bit()));
            let scramble_seed = (ident % 127 + 1) as u8;
            let bits = sc.payload_bits as u64;
            metrics.per_node[n].attempts += 1;
            metrics.per_node[n].bits_transmitted += bits;

            let survived = survivor == Some(n);
            let is_harq = cell_nodes[n]
                .link
                .as_mut()
                .is_some_and(|l| l.harq().is_some());
            if is_harq {
                // HARQ under collisions: every attempt — survivor or
                // destroyed — runs the full PHY and feeds the combiner.
                // A destroyed attempt's plane is corrupted by the other
                // arrivals as interference noise rather than discarded,
                // and the node decodes the *combined* plane either way.
                let phase = cell_nodes[n]
                    .link
                    .as_mut()
                    .and_then(|l| l.harq())
                    .map(|c| c.tx_phase())
                    .expect("is_harq probe above saw a combining core"); // lint: allow(panic-policy) — guarded by is_harq
                Transmitter::with_phase(sc.rate, phase).tx_into(
                    &payload,
                    scramble_seed,
                    &mut scratch,
                    &mut samples,
                );
                channel.apply(&mut samples, chan_seed);
                if survived {
                    if let SlotOutcome::Captured {
                        gain, interference, ..
                    } = outcome
                    {
                        if interference > 0.0 {
                            AwgnChannel::new(
                                SnrDb::from_linear(gain / interference),
                                mix_seed(attempt_seed, 2),
                            )
                            .apply(&mut samples);
                        }
                    }
                } else {
                    // Destroyed: the concurrent arrivals bury the signal
                    // at its slot SINR — corrupted, not erased.
                    metrics.per_node[n].collisions += 1;
                    let own = powers
                        .iter()
                        .find(|t| t.node == n)
                        .map(|t| t.gain)
                        .unwrap_or(0.0);
                    let others: f64 = powers.iter().filter(|t| t.node != n).map(|t| t.gain).sum();
                    if others > 0.0 {
                        AwgnChannel::new(
                            SnrDb::from_linear(own / others),
                            mix_seed(attempt_seed, 2),
                        )
                        .apply(&mut samples);
                    }
                }
                rx.set_puncture_phase(phase);
                rx.rx_front_end_into(&samples, payload.len(), &mut scratch, &mut mother);
                let node = &mut cell_nodes[n];
                let link = node.link.as_mut().expect("a combining core implies a link"); // lint: allow(panic-policy) — guarded by is_harq
                {
                    let core = link
                        .harq()
                        .expect("is_harq probe above saw a combining core"); // lint: allow(panic-policy) — guarded by is_harq
                    core.absorb(&mother);
                    rx.rx_decode_from(
                        core.plane(),
                        payload.len(),
                        scramble_seed,
                        &mut scratch,
                        &mut got,
                    );
                }
                decoded += 1;
                let (errs, predicted) = tally.observe(&payload, &got, estimator.as_ref(), record);
                let ctx = LinkContext {
                    sent: &payload,
                    bit_errors: errs,
                    predicted_pber: predicted,
                    rate: sc.rate,
                    oracle: Oracle::Unavailable,
                };
                let verdict = link.observe(&got, &got.hints, &ctx);
                assert!(
                    verdict.next_rate.is_none() || verdict.next_rate == Some(sc.rate),
                    "link policy {:?} asked to steer the transmit rate inside a \
                     contention cell",
                    link.name()
                );
                let (closes, delivered) = match verdict.status {
                    LinkStatus::Delivered => (true, true),
                    LinkStatus::GaveUp => (true, false),
                    LinkStatus::Retransmit => (false, false),
                };
                if closes {
                    node.queue = node.queue.saturating_sub(1);
                    node.logical += 1;
                    if delivered {
                        metrics.per_node[n].delivered += 1;
                        metrics.per_node[n].bits_delivered += bits;
                    }
                }
                node.policy.acked(survived && errs == 0, &mut node.backoff);
                continue;
            }
            let (errs, predicted, rx_result): (u64, f64, &RxResult) = if survived {
                transmitter.tx_into(&payload, scramble_seed, &mut scratch, &mut samples);
                channel.apply(&mut samples, chan_seed);
                if let SlotOutcome::Captured {
                    gain, interference, ..
                } = outcome
                {
                    // The node's channel genie-equalized the signal to
                    // unit power, so the losing arrivals degrade it as
                    // extra Gaussian noise at `interference / gain`.
                    if interference > 0.0 {
                        AwgnChannel::new(
                            SnrDb::from_linear(gain / interference),
                            mix_seed(packet_seed, 2),
                        )
                        .apply(&mut samples);
                    }
                }
                rx.rx_from(
                    &samples,
                    payload.len(),
                    scramble_seed,
                    &mut scratch,
                    &mut got,
                );
                decoded += 1;
                let (e, p) = tally.observe(&payload, &got, estimator.as_ref(), record);
                (e, p, &got)
            } else {
                // Destroyed by the medium: every bit wrong, zero
                // confidence — the receiver never locked onto it.
                metrics.per_node[n].collisions += 1;
                collided.payload.clear();
                collided.payload.extend(payload.iter().map(|b| b ^ 1));
                collided.hints.clear();
                collided.hints.resize(payload.len(), 0);
                collided.soft_magnitudes.clear();
                collided.soft_magnitudes.resize(payload.len(), 0);
                (bits, 0.0, &collided)
            };

            let node = &mut cell_nodes[n];
            let mut closes = true;
            let delivered = if let Some(link) = node.link.as_mut() {
                let ctx = LinkContext {
                    sent: &payload,
                    bit_errors: errs,
                    predicted_pber: predicted,
                    rate: sc.rate,
                    oracle: Oracle::Unavailable,
                };
                let verdict = link.observe(rx_result, &rx_result.hints, &ctx);
                assert!(
                    verdict.next_rate.is_none() || verdict.next_rate == Some(sc.rate),
                    "link policy {:?} asked to steer the transmit rate inside a \
                     contention cell",
                    link.name()
                );
                match verdict.status {
                    LinkStatus::Delivered => true,
                    LinkStatus::GaveUp => false,
                    LinkStatus::Retransmit => {
                        closes = false;
                        false
                    }
                }
            } else {
                errs == 0
            };
            if closes {
                node.queue = node.queue.saturating_sub(1);
                if delivered {
                    metrics.per_node[n].delivered += 1;
                    metrics.per_node[n].bits_delivered += bits;
                }
            }
            node.policy.acked(survived && errs == 0, &mut node.backoff);
        }
    }

    let link_metrics = if sc.link == "none" {
        None
    } else {
        let mut merged = LinkMetrics::default();
        for node in &cell_nodes {
            if let Some(link) = &node.link {
                merged.merge(&link.metrics());
            }
        }
        Some(merged)
    };
    Ok(tally.into_result(index, sc, decoded, link_metrics, Some(metrics)))
}

/// Renders the cell-level metrics of a result set as an aligned table;
/// point-to-point scenarios are skipped.
pub fn render_cell_table(results: &[ScenarioResult]) -> String {
    let mut out = format!(
        "{:<52} {:>8} {:>6} {:>7} {:>7} {:>8} {:>9}\n",
        "scenario", "goodput", "jain", "coll%", "idle%", "attempts", "delivered"
    );
    for r in results {
        let Some(c) = &r.cell else { continue };
        out.push_str(&format!(
            "{:<52} {:>8.3} {:>6.3} {:>6.1}% {:>6.1}% {:>8} {:>9}\n",
            r.label,
            c.aggregate_goodput(),
            c.jain_index(),
            100.0 * c.collision_fraction(),
            100.0 * c.idle_fraction(),
            c.attempts(),
            c.per_node.iter().map(|n| n.delivered).sum::<u64>(),
        ));
    }
    out
}

/// Renders the link-layer metrics of a result set as an aligned table;
/// PHY-only scenarios are skipped.
pub fn render_link_table(results: &[ScenarioResult]) -> String {
    let mut out = format!(
        "{:<50} {:>8} {:>7} {:>9} {:>8} {:>8} {:>17}\n",
        "scenario", "goodput", "retx", "delivered", "gave up", "Mbps", "under/acc/over"
    );
    for r in results {
        let Some(m) = &r.link else { continue };
        out.push_str(&format!(
            "{:<50} {:>8.3} {:>6.1}% {:>9} {:>8} {:>8.1} {:>5}/{:>5}/{:>5}\n",
            r.label,
            m.goodput(),
            100.0 * m.retransmit_fraction(),
            m.delivered,
            m.gave_up,
            m.mean_selected_mbps(),
            m.under,
            m.accurate,
            m.over
        ));
    }
    out
}

/// Renders a result set as an aligned table (label, BER, PER, predicted).
pub fn render_table(results: &[ScenarioResult]) -> String {
    let mut out = format!(
        "{:<44} {:>12} {:>9} {:>12}\n",
        "scenario", "BER", "PER", "pred. PBER"
    );
    for r in results {
        out.push_str(&format!(
            "{:<44} {:>12.3e} {:>8.1}% {:>12.3e}\n",
            r.label,
            r.ber(),
            100.0 * r.per(),
            r.mean_predicted_pber()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> SweepGrid {
        SweepGrid::new()
            .rates(&[PhyRate::QpskHalf, PhyRate::Qam16Half])
            .decoders(&["viterbi", "bcjr"])
            .snrs_db(&[6.0, 10.0])
            .packets(3)
            .payload_bits(300)
    }

    #[test]
    fn grid_enumerates_cartesian_product() {
        let grid = small_grid();
        assert_eq!(grid.len(), 8);
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 8);
        // Every grid point is distinct.
        for (i, a) in scenarios.iter().enumerate() {
            for b in &scenarios[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let scenarios = small_grid().scenarios();
        let serial = SweepRunner::new(1).run(&scenarios).unwrap();
        let parallel = SweepRunner::new(4).run(&scenarios).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn high_snr_scenarios_deliver() {
        let scenarios = SweepGrid::new()
            .snrs_db(&[30.0])
            .packets(2)
            .payload_bits(200)
            .scenarios();
        let results = SweepRunner::new(2).run(&scenarios).unwrap();
        assert_eq!(results[0].bit_errors, 0);
        assert_eq!(results[0].per(), 0.0);
    }

    #[test]
    fn unknown_decoder_is_an_error() {
        let scenarios = SweepGrid::new().decoders(&["turbo"]).scenarios();
        let err = SweepRunner::new(1).run(&scenarios).unwrap_err();
        assert!(err.to_string().contains("turbo"));
    }

    #[test]
    fn unknown_channel_is_an_error() {
        let scenarios = SweepGrid::new().channels(&["vacuum"]).scenarios();
        let err = SweepRunner::new(1).run(&scenarios).unwrap_err();
        assert!(err.to_string().contains("vacuum"));
    }

    #[test]
    fn hint_bins_conserve_bits() {
        let scenarios = SweepGrid::new()
            .snrs_db(&[7.0])
            .packets(4)
            .payload_bits(512)
            .scenarios();
        let r = &SweepRunner::new(2).run(&scenarios).unwrap()[0];
        let binned: u64 = r.hint_bins.iter().map(|b| b.bits).sum();
        assert_eq!(binned, r.bits);
    }

    #[test]
    fn packet_stats_recorded_on_demand() {
        let scenarios = SweepGrid::new().packets(3).payload_bits(200).scenarios();
        let without = SweepRunner::new(1).run(&scenarios).unwrap();
        assert!(without[0].packet_stats.is_empty());
        let with = SweepRunner::new(1)
            .record_packet_stats(true)
            .run(&scenarios)
            .unwrap();
        assert_eq!(with[0].packet_stats.len(), 3);
    }

    #[test]
    fn run_indexed_orders_results() {
        let runner = SweepRunner::new(3);
        let out = runner.run_indexed(10, |i| i * i);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn all_channel_models_run() {
        let scenarios = SweepGrid::new()
            .channels(&["awgn", "fading", "replay"])
            .snrs_db(&[12.0])
            .packets(2)
            .payload_bits(200)
            .scenarios();
        let results = SweepRunner::new(3).run(&scenarios).unwrap();
        assert_eq!(results.len(), 3);
        let table = render_table(&results);
        assert!(table.contains("awgn") && table.contains("fading") && table.contains("replay"));
    }

    #[test]
    fn link_registry_stock_names() {
        let reg = link_registry();
        assert_eq!(
            reg.names(),
            vec!["arq", "harq-cc", "harq-ir", "ppr", "softrate"]
        );
        assert!(!reg.contains("none"), "\"none\" never reaches the registry");
    }

    #[test]
    fn unknown_link_is_an_error() {
        let scenarios = SweepGrid::new().links(&["harq"]).scenarios();
        let err = SweepRunner::new(1).run(&scenarios).unwrap_err();
        assert!(err.to_string().contains("harq"));
    }

    #[test]
    fn none_link_stays_phy_only() {
        let scenarios = SweepGrid::new().packets(2).payload_bits(200).scenarios();
        let results = SweepRunner::new(1).run(&scenarios).unwrap();
        assert!(results[0].link.is_none());
        assert!(
            render_link_table(&results).lines().count() == 1,
            "header only"
        );
    }

    #[test]
    fn link_grid_multiplies_the_axes() {
        let grid = SweepGrid::new()
            .links(&["none", "arq", "ppr"])
            .snrs_db(&[6.0, 8.0]);
        assert_eq!(grid.len(), 6);
        let labels: Vec<String> = grid.scenarios().iter().map(|s| s.label()).collect();
        assert!(labels.iter().any(|l| l.contains(" arq ")));
        assert!(labels.iter().any(|l| l.contains(" ppr ")));
    }

    #[test]
    fn arq_link_accounts_every_packet() {
        let scenarios = SweepGrid::new()
            .links(&["arq"])
            .snrs_db(&[7.0])
            .packets(12)
            .payload_bits(400)
            .scenarios();
        let r = &SweepRunner::new(2).run(&scenarios).unwrap()[0];
        let m = r.link.expect("arq metrics");
        assert_eq!(m.packets, 12, "one attempt per simulated packet");
        assert_eq!(m.bits_transmitted, 12 * 400);
        assert!(m.goodput() >= 0.0 && m.goodput() <= 1.0);
        assert!(m.bits_retransmitted <= m.bits_transmitted);
    }

    #[test]
    fn ppr_beats_arq_goodput_in_the_waterfall() {
        // Where packets are lossy but hints are informative, chunked
        // retransmission must beat whole-packet ARQ on goodput.
        let grid = SweepGrid::new()
            .links(&["arq", "ppr"])
            .snrs_db(&[6.0])
            .packets(30)
            .payload_bits(710);
        let results = SweepRunner::new(2).run(&grid.scenarios()).unwrap();
        let arq = results[0].link.expect("arq");
        let ppr = results[1].link.expect("ppr");
        assert!(results[0].per() > 0.1, "needs a lossy operating point");
        assert!(
            ppr.goodput() > arq.goodput(),
            "PPR {:.3} should beat ARQ {:.3}",
            ppr.goodput(),
            arq.goodput()
        );
        assert!(ppr.retransmit_fraction() <= 1.0);
    }

    #[test]
    fn harq_with_hard_decoder_is_rejected() {
        // The combiner feeds soft LLR planes back into the decoder; a
        // hard decoder would throw the retained information away.
        for link in ["harq-cc", "harq-ir"] {
            let scenarios = SweepGrid::new()
                .decoders(&["viterbi"])
                .links(&[link])
                .scenarios();
            let err = SweepRunner::new(1).run(&scenarios).unwrap_err();
            assert!(err.to_string().contains("hard decisions"), "{link}: {err}");
        }
    }

    #[test]
    fn harq_zero_attempt_budget_is_rejected() {
        let scenarios = SweepGrid::new()
            .links(&["harq-cc"])
            .link_param("attempts", "0")
            .scenarios();
        let err = SweepRunner::new(1).run(&scenarios).unwrap_err();
        assert!(err.to_string().contains("attempt budget"), "{err}");
    }

    #[test]
    fn harq_ir_phase_outside_the_mask_is_rejected() {
        // The default grid rate is QAM-16 1/2 whose puncture period is 2,
        // so phase 3 can never be transmitted.
        let scenarios = SweepGrid::new()
            .links(&["harq-ir"])
            .link_param("ir_phases", "0,3")
            .scenarios();
        let err = SweepRunner::new(1).run(&scenarios).unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
        // An unparsable schedule is rejected the same way, not panicked.
        let scenarios = SweepGrid::new()
            .links(&["harq-ir"])
            .link_param("ir_phases", "0,banana")
            .scenarios();
        assert!(SweepRunner::new(1).run(&scenarios).is_err());
    }

    #[test]
    fn harq_combining_disabled_is_bit_identical_to_arq() {
        // The strict-generalization diagnostic at the Figure 6 operating
        // point (the SweepGrid default): a HARQ policy with the combiner
        // disarmed is exactly ARQ with attempts - 1 retries — same PHY
        // stream, same accounting, bit for bit.
        for snr in [6.0, 8.0] {
            let grid = SweepGrid::new()
                .links(&["arq", "harq-cc"])
                .link_param("max_retries", "3")
                .link_param("attempts", "4")
                .link_param("combining", "false")
                .snrs_db(&[snr])
                .packets(25)
                .payload_bits(710);
            let results = SweepRunner::new(2).run(&grid.scenarios()).unwrap();
            let (a, h) = (&results[0], &results[1]);
            assert_eq!(a.packets, h.packets);
            assert_eq!(a.packet_errors, h.packet_errors);
            assert_eq!(a.bit_errors, h.bit_errors);
            assert_eq!(a.hint_bins, h.hint_bins);
            assert_eq!(a.predicted_pber_sum, h.predicted_pber_sum);
            assert_eq!(a.link, h.link, "identical link accounting at {snr} dB");
        }
    }

    #[test]
    fn harq_cc_goodput_beats_arq_when_lossy() {
        let grid = SweepGrid::new()
            .links(&["arq", "harq-cc"])
            .link_param("max_retries", "3")
            .link_param("attempts", "4")
            .snrs_db(&[6.0])
            .packets(30)
            .payload_bits(710);
        let results = SweepRunner::new(2).run(&grid.scenarios()).unwrap();
        let arq = results[0].link.expect("arq");
        let harq = results[1].link.expect("harq");
        assert!(results[0].per() > 0.1, "needs a lossy operating point");
        assert!(
            harq.goodput() > arq.goodput(),
            "Chase combining {:.3} should beat ARQ {:.3}",
            harq.goodput(),
            arq.goodput()
        );
        assert!(harq.recovered > 0, "some deliveries needed the combiner");
        assert!(harq.mean_attempts() >= 1.0);
    }

    #[test]
    fn harq_ir_lowers_the_effective_rate() {
        // At a punctured rate, IR retransmissions reveal stolen mother
        // bits: the mean effective rate of closed packets must drop below
        // the nominal 3/4 whenever any packet needed a retransmission.
        let grid = SweepGrid::new()
            .rates(&[PhyRate::Qam16ThreeQuarters])
            .links(&["harq-ir"])
            .snrs_db(&[11.0])
            .packets(30)
            .payload_bits(710);
        let r = &SweepRunner::new(2).run(&grid.scenarios()).unwrap()[0];
        let m = r.link.expect("harq-ir metrics");
        assert!(m.mean_attempts() > 1.0, "needs at least one retransmission");
        assert!(
            m.mean_effective_rate() < 0.75,
            "IR must lower the effective rate, got {:.3}",
            m.mean_effective_rate()
        );
        assert!(m.mean_effective_rate() >= 0.5, "mother code is the floor");
    }

    #[test]
    fn harq_cell_observes_every_attempt() {
        // HARQ under collisions: destroyed attempts still reach the
        // combiner (and the link session), so the per-attempt accounting
        // closes exactly over the cell's attempts.
        let scenarios = SweepGrid::new()
            .contentions(&["aloha"])
            .contention_param("p", "0.5")
            .links(&["harq-cc"])
            .nodes(3)
            .snrs_db(&[8.0])
            .packets(40)
            .payload_bits(300)
            .scenarios();
        let r = &SweepRunner::new(1).run(&scenarios).unwrap()[0];
        let c = r.cell.as_ref().expect("cell metrics");
        let m = r.link.expect("merged link metrics");
        assert!(c.attempts() > 0);
        assert_eq!(
            m.packets,
            c.attempts(),
            "every attempt — survivor or destroyed — is observed"
        );
        assert_eq!(
            r.packets,
            c.attempts(),
            "every attempt decodes the combined plane"
        );
        let collided: u64 = c.per_node.iter().map(|n| n.collisions).sum();
        assert!(collided > 0, "three p=0.5 nodes must overlap");
        assert!(
            m.delivered > 0,
            "the cell still delivers through collisions"
        );
    }

    #[test]
    fn softrate_link_adapts_and_tallies() {
        let scenarios = SweepGrid::new()
            .links(&["softrate"])
            .channels(&["trace"])
            .snrs_db(&[10.0])
            .packets(10)
            .payload_bits(400)
            .scenarios();
        let r = &SweepRunner::new(1).run(&scenarios).unwrap()[0];
        let m = r.link.expect("softrate metrics");
        assert_eq!(m.packets, 10);
        assert_eq!(
            m.under + m.accurate + m.over,
            10,
            "oracle judged each packet"
        );
        assert!(m.mean_selected_mbps() >= 6.0 && m.mean_selected_mbps() <= 54.0);
    }

    #[test]
    fn softrate_with_hard_decoder_is_rejected() {
        // Hard Viterbi exports no BER estimator; adapting on a constant
        // 0.0 would be plausible-looking garbage, so the runner refuses.
        let scenarios = SweepGrid::new()
            .decoders(&["viterbi"])
            .links(&["softrate"])
            .scenarios();
        let err = SweepRunner::new(1).run(&scenarios).unwrap_err();
        assert!(err.to_string().contains("no SoftPHY BER estimate"), "{err}");
    }

    #[test]
    fn softrate_without_oracle_skips_the_tallies() {
        let scenarios = SweepGrid::new()
            .links(&["softrate"])
            .link_param("oracle", "false")
            .packets(4)
            .payload_bits(300)
            .scenarios();
        let r = &SweepRunner::new(1).run(&scenarios).unwrap()[0];
        let m = r.link.expect("softrate metrics");
        assert_eq!(m.under + m.accurate + m.over, 0);
        assert_eq!(m.packets, 4);
    }

    #[test]
    fn contention_registry_stock_names() {
        let reg = contention_registry();
        assert_eq!(reg.names(), vec!["aloha", "csma", "tdma"]);
        assert!(!reg.contains("p2p"), "\"p2p\" never reaches the registry");
    }

    #[test]
    fn contention_factories_clamp_bad_params() {
        // Registries take user strings; out-of-range values degrade to
        // the nearest sane configuration instead of panicking mid-run.
        let reg = contention_registry();
        for (key, value) in [("p", "1.5"), ("p", "0"), ("p", "nan")] {
            let mut params = Params::new();
            params.set(key, value);
            let _ = reg.build("aloha", &params).expect("clamped, not panicked");
        }
        let mut params = Params::new();
        params.set("cw_min", "0");
        params.set("cw_max", "0");
        let _ = reg.build("csma", &params).expect("clamped, not panicked");
    }

    #[test]
    fn unknown_contention_is_an_error() {
        let scenarios = SweepGrid::new()
            .contentions(&["token-ring"])
            .packets(2)
            .scenarios();
        let err = SweepRunner::new(1).run(&scenarios).unwrap_err();
        assert!(err.to_string().contains("token-ring"));
    }

    #[test]
    fn cell_grid_multiplies_the_axes_and_labels() {
        let grid = SweepGrid::new()
            .contentions(&["p2p", "csma"])
            .nodes(3)
            .snrs_db(&[6.0, 8.0]);
        assert_eq!(grid.len(), 4);
        let labels: Vec<String> = grid.scenarios().iter().map(|s| s.label()).collect();
        assert!(labels
            .iter()
            .any(|l| l.contains(" csma") && l.contains("x3")));
        assert!(labels.iter().filter(|l| !l.contains("csma")).count() == 2);
    }

    #[test]
    fn p2p_scenarios_have_no_cell_metrics() {
        let scenarios = SweepGrid::new().packets(2).payload_bits(200).scenarios();
        let results = SweepRunner::new(1).run(&scenarios).unwrap();
        assert!(results[0].cell.is_none());
        assert_eq!(
            render_cell_table(&results).lines().count(),
            1,
            "header only"
        );
    }

    #[test]
    fn saturated_tdma_cell_uses_every_slot_cleanly() {
        let scenarios = SweepGrid::new()
            .contentions(&["tdma"])
            .nodes(2)
            .snrs_db(&[30.0])
            .packets(8)
            .payload_bits(200)
            .scenarios();
        let r = &SweepRunner::new(2).run(&scenarios).unwrap()[0];
        let c = r.cell.as_ref().expect("cell metrics");
        assert_eq!(c.slots, 8);
        assert_eq!(c.idle_slots, 0, "saturated TDMA never idles");
        assert_eq!(c.collision_slots, 0, "TDMA never collides");
        assert_eq!(c.clean_slots, 8);
        assert_eq!(c.attempts(), 8);
        // 30 dB: every packet decodes; each node delivered its 4 slots.
        assert!((c.aggregate_goodput() - 1.0).abs() < 1e-12);
        assert!((c.jain_index() - 1.0).abs() < 1e-12);
        assert_eq!(r.packets, 8, "every attempt reached the receiver");
        assert_eq!(r.bit_errors, 0);
    }

    #[test]
    fn cell_slot_accounting_is_conserved() {
        for contention in ["aloha", "csma", "tdma"] {
            let scenarios = SweepGrid::new()
                .contentions(&[contention])
                .nodes(3)
                .snrs_db(&[10.0])
                .packets(20)
                .payload_bits(200)
                .scenarios();
            let r = &SweepRunner::new(1).run(&scenarios).unwrap()[0];
            let c = r.cell.as_ref().expect("cell metrics");
            assert_eq!(
                c.idle_slots + c.clean_slots + c.capture_slots + c.collision_slots,
                c.slots,
                "{contention}: every slot classified exactly once"
            );
            let collided: u64 = c.per_node.iter().map(|n| n.collisions).sum();
            assert_eq!(
                r.packets + collided,
                c.attempts(),
                "{contention}: attempts = decoded + destroyed"
            );
        }
    }

    #[test]
    fn contending_aloha_nodes_collide_on_awgn() {
        // Equal-power AWGN links cannot capture: any overlap is a full
        // collision — the classic slotted-ALOHA regime.
        let scenarios = SweepGrid::new()
            .contentions(&["aloha"])
            .contention_param("p", "0.5")
            .nodes(4)
            .snrs_db(&[30.0])
            .packets(40)
            .payload_bits(200)
            .scenarios();
        let r = &SweepRunner::new(1).run(&scenarios).unwrap()[0];
        let c = r.cell.as_ref().expect("cell metrics");
        assert!(c.collision_slots > 0, "four p=0.5 nodes must overlap");
        assert_eq!(c.capture_slots, 0, "equal-power arrivals cannot capture");
        assert!(c.aggregate_goodput() < 1.0);
    }

    #[test]
    fn fading_cells_capture() {
        // On fading links, one node in a strong fade-up wins slots the
        // AWGN cell would lose outright.
        let scenarios = SweepGrid::new()
            .contentions(&["aloha"])
            .contention_param("p", "0.6")
            .contention_param("capture_db", "3")
            .channels(&["fading"])
            .nodes(3)
            .snrs_db(&[14.0])
            .packets(60)
            .payload_bits(200)
            .scenarios();
        let r = &SweepRunner::new(1).run(&scenarios).unwrap()[0];
        let c = r.cell.as_ref().expect("cell metrics");
        assert!(
            c.capture_slots > 0,
            "fading links at a 3 dB margin must capture sometimes"
        );
    }

    #[test]
    fn offered_load_controls_idle_fraction() {
        let cell = |load: &str| {
            let scenarios = SweepGrid::new()
                .contentions(&["csma"])
                .contention_param("load", load)
                .nodes(2)
                .snrs_db(&[12.0])
                .packets(50)
                .payload_bits(200)
                .scenarios();
            SweepRunner::new(1).run(&scenarios).unwrap()[0]
                .cell
                .clone()
                .expect("cell metrics")
        };
        let light = cell("0.05");
        let heavy = cell("1.0");
        assert!(
            light.idle_fraction() > heavy.idle_fraction(),
            "light load {:.2} should idle more than saturation {:.2}",
            light.idle_fraction(),
            heavy.idle_fraction()
        );
        // Saturated CSMA still idles a little (every busy slot forces the
        // other node to defer one slot), but the medium must be mostly
        // occupied.
        assert!(
            heavy.idle_fraction() < 0.5,
            "saturation should keep the medium mostly busy, idle {:.2}",
            heavy.idle_fraction()
        );
        assert!(heavy.attempts() > light.attempts());
    }

    #[test]
    fn cell_link_sessions_merge_into_the_result() {
        let scenarios = SweepGrid::new()
            .contentions(&["tdma"])
            .links(&["arq"])
            .nodes(2)
            .snrs_db(&[30.0])
            .packets(6)
            .payload_bits(200)
            .scenarios();
        let r = &SweepRunner::new(1).run(&scenarios).unwrap()[0];
        let m = r.link.expect("merged link metrics");
        assert_eq!(m.packets, 6, "one ARQ attempt per used slot");
        assert_eq!(m.delivered, 6);
        let c = r.cell.as_ref().expect("cell metrics");
        assert_eq!(c.bits_delivered(), 6 * 200);
    }

    #[test]
    fn cells_reject_rate_adapting_link_policies() {
        let scenarios = SweepGrid::new()
            .contentions(&["csma"])
            .links(&["softrate"])
            .scenarios();
        let err = SweepRunner::new(1).run(&scenarios).unwrap_err();
        assert!(
            err.to_string().contains("steers the transmit rate"),
            "{err}"
        );
    }

    #[test]
    fn cells_reject_zero_nodes() {
        let scenarios = SweepGrid::new().contentions(&["csma"]).nodes(0).scenarios();
        let err = SweepRunner::new(1).run(&scenarios).unwrap_err();
        assert!(err.to_string().contains("at least one node"), "{err}");
    }

    #[test]
    fn fading_scenarios_lose_more_than_awgn_at_the_waterfall() {
        // Physics check: at the same mean SNR near the QAM-16 waterfall,
        // Rayleigh fading's deep fades must lose more packets than AWGN.
        let grid = SweepGrid::new()
            .channels(&["awgn", "fading"])
            .snrs_db(&[8.0])
            .packets(40)
            .payload_bits(400);
        let results = SweepRunner::auto().run(&grid.scenarios()).unwrap();
        assert!(
            results[1].per() > results[0].per(),
            "fading PER {:.2} should exceed AWGN PER {:.2}",
            results[1].per(),
            results[0].per()
        );
    }
}
