//! Deterministic fault injection: seed-addressed failures for the sweep
//! stack.
//!
//! A production-scale sweep service has to survive partial failure — a
//! panicking worker job, a store append that hits a full disk, a crash
//! that tears the final JSON line — and this repository's central
//! contract says even *failures* must be reproducible: a faulted run is
//! bit-identical at 1, 2, and 8 threads, exactly like a healthy one.
//! This module supplies the fault side of that contract. Every injected
//! failure is a pure function of `(fault_seed, site, occurrence_index)`:
//! no wall clock, no global counters shared across threads, no
//! scheduling dependence. The same registry pattern as the channel and
//! link-policy axes ([`wilis_lis::registry::Registry`]) names the fault
//! *models*, so a fault plan is configuration, not code.
//!
//! The occurrence index is defined per site so decisions stay
//! thread-invariant:
//!
//! | site | occurrence index |
//! |------|------------------|
//! | [`FaultSite::WorkerPanic`] | grid index of the point in the executed grid |
//! | [`FaultSite::StoreWrite`]  | retry attempt number within one append (0, 1, …) |
//! | [`FaultSite::StoreRead`]   | retry attempt number within one load |
//! | [`FaultSite::TornWrite`]   | content hash of the record line ([`occurrence_of`]) |
//! | [`FaultSite::CorruptRecord`] | content hash of the record line ([`occurrence_of`]) |
//!
//! Supervised execution ([`crate::scenario::SweepRunner::run_supervised`])
//! quarantines a panicking grid point as a typed
//! [`PointOutcome::Failed`] while every other point completes, and
//! returns a [`FaultReport`] tallying what fired.

use std::fmt;
use std::sync::Arc;

use wilis_fxp::rng::{mix_seed, SmallRng};
use wilis_lis::registry::{Params, Registry, RegistryError};

use crate::scenario::ScenarioResult;

/// A place in the sweep stack where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// Panic inside a worker job, before the point's Monte-Carlo work.
    WorkerPanic,
    /// A store append attempt fails with a (simulated) IO error.
    StoreWrite,
    /// A store load attempt fails with a (simulated) IO error.
    StoreRead,
    /// The record's final line is written torn (no newline, half the
    /// bytes) — a crash mid-append.
    TornWrite,
    /// The record line is written whole but mangled — bit rot on disk.
    CorruptRecord,
}

impl FaultSite {
    /// Every site, in declaration order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::WorkerPanic,
        FaultSite::StoreWrite,
        FaultSite::StoreRead,
        FaultSite::TornWrite,
        FaultSite::CorruptRecord,
    ];

    /// The parameter name of this site in fault-model [`Params`].
    pub fn key(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::StoreWrite => "store_write",
            FaultSite::StoreRead => "store_read",
            FaultSite::TornWrite => "torn_write",
            FaultSite::CorruptRecord => "corrupt_record",
        }
    }

    /// The seed-stream tag of this site: a high-bit constant in the same
    /// style as the engine's HARQ/backoff/arrival stream tags, so fault
    /// draws can never collide with Monte-Carlo draws.
    pub fn tag(self) -> u64 {
        match self {
            FaultSite::WorkerPanic => 0xFA01_7AC0_0000_0000,
            FaultSite::StoreWrite => 0xFA02_7AC0_0000_0000,
            FaultSite::StoreRead => 0xFA03_7AC0_0000_0000,
            FaultSite::TornWrite => 0xFA04_7AC0_0000_0000,
            FaultSite::CorruptRecord => 0xFA05_7AC0_0000_0000,
        }
    }
}

/// A deterministic fault plan: given a site and that site's occurrence
/// index, decide — purely — whether the fault fires.
///
/// Implementations must be pure functions of their construction
/// parameters and the `(site, occurrence)` pair; the supervisor and the
/// store call [`FaultModel::fires`] from multiple worker threads and the
/// bit-identity contract requires every call with equal arguments to
/// return the same answer.
pub trait FaultModel: Send + Sync {
    /// Whether the fault at `site` fires on its `occurrence`-th
    /// opportunity.
    fn fires(&self, site: FaultSite, occurrence: u64) -> bool;
}

/// The stock model that never fires — the explicit way to run the
/// supervised path with zero faults.
struct NeverFaults;

impl FaultModel for NeverFaults {
    fn fires(&self, _site: FaultSite, _occurrence: u64) -> bool {
        false
    }
}

/// Seeded Bernoulli faults: each site fires independently with the
/// probability named by its [`FaultSite::key`] parameter (absent ⇒ 0).
struct BernoulliFaults {
    seed: u64,
    p: [f64; FaultSite::ALL.len()],
}

impl FaultModel for BernoulliFaults {
    fn fires(&self, site: FaultSite, occurrence: u64) -> bool {
        let p = self.p[site as usize];
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let draw_seed = mix_seed(mix_seed(self.seed, site.tag()), occurrence);
        SmallRng::seed_from_u64(draw_seed).next_f64() < p
    }
}

/// Exact-occurrence faults: each site fires precisely at the occurrence
/// indices listed (as `+`-separated integers) under its
/// [`FaultSite::key`] parameter — the surgical model tests use to
/// quarantine one chosen grid point or fail one chosen retry attempt.
struct TargetedFaults {
    at: [Vec<u64>; FaultSite::ALL.len()],
}

impl FaultModel for TargetedFaults {
    fn fires(&self, site: FaultSite, occurrence: u64) -> bool {
        self.at[site as usize].contains(&occurrence)
    }
}

/// The registry of fault models, mirroring the channel / link-policy /
/// contention axes: implementations register under a name, a
/// configuration is a `(name, Params)` pair, and
/// [`FaultInjector::new`] builds through it.
///
/// Stock models: `"none"` (never fires), `"bernoulli"` (per-site
/// probabilities under a `seed`), `"targeted"` (exact per-site
/// occurrence lists).
pub fn fault_registry() -> Registry<Box<dyn FaultModel>> {
    let mut reg: Registry<Box<dyn FaultModel>> = Registry::new("fault");
    reg.register("none", |_| Box::new(NeverFaults));
    reg.register("bernoulli", |p| {
        let mut probs = [0.0; FaultSite::ALL.len()];
        for site in FaultSite::ALL {
            probs[site as usize] = p.get_f64(site.key()).unwrap_or(0.0);
        }
        Box::new(BernoulliFaults {
            seed: p.get_u64("seed").unwrap_or(0),
            p: probs,
        })
    });
    reg.register("targeted", |p| {
        let mut at: [Vec<u64>; FaultSite::ALL.len()] = Default::default();
        for site in FaultSite::ALL {
            if let Some(list) = p.get(site.key()) {
                at[site as usize] = list
                    .split('+')
                    .filter_map(|tok| tok.trim().parse().ok())
                    .collect();
            }
        }
        Box::new(TargetedFaults { at })
    });
    reg
}

/// A shareable handle on a built fault model — the object the runner and
/// the store consult at every fault site. Cloning shares the model.
#[derive(Clone)]
pub struct FaultInjector {
    model: Arc<dyn FaultModel>,
    spec: String,
}

impl FaultInjector {
    /// Builds the injector named `name` in [`fault_registry`] with
    /// `params`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] when `name` is not a registered fault
    /// model.
    pub fn new(name: &str, params: &Params) -> Result<Self, RegistryError> {
        let model = fault_registry().build(name, params)?;
        let rendered: Vec<String> = params.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let spec = if rendered.is_empty() {
            name.to_string()
        } else {
            format!("{name}:{}", rendered.join(","))
        };
        Ok(Self {
            model: Arc::from(model),
            spec,
        })
    }

    /// Parses a one-line spec — `"name"` or `"name:key=val,key=val"`,
    /// e.g. `"bernoulli:seed=7,worker_panic=0.05"` or
    /// `"targeted:worker_panic=2+5"` — and builds the injector. This is
    /// the format the `WILIS_FAULTS` environment variable takes (see
    /// [`crate::service::SweepService::from_env`]).
    ///
    /// # Errors
    ///
    /// As [`FaultInjector::new`], plus a config error for a malformed
    /// parameter list.
    pub fn from_spec(spec: &str) -> Result<Self, RegistryError> {
        let (name, rest) = match spec.split_once(':') {
            Some((name, rest)) => (name.trim(), rest),
            None => (spec.trim(), ""),
        };
        let params = Params::from_spec(rest).ok_or_else(|| {
            RegistryError::invalid_config(format!(
                "malformed fault spec {spec:?}: expected name:key=val,key=val"
            ))
        })?;
        Self::new(name, &params)
    }

    /// An injector that never fires — the supervised path with the fault
    /// layer wired in but idle.
    pub fn disabled() -> Self {
        let stock = Self::new("none", &Params::new());
        stock.expect("stock name") // lint: allow(panic-policy) — "none" is always registered
    }

    /// Whether the fault at `site` fires on its `occurrence`-th
    /// opportunity — a pure function of the injector's configuration and
    /// the arguments.
    pub fn fires(&self, site: FaultSite, occurrence: u64) -> bool {
        self.model.fires(site, occurrence)
    }

    /// The spec string this injector was built from (for diagnostics).
    pub fn spec(&self) -> &str {
        &self.spec
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FaultInjector({})", self.spec)
    }
}

/// The stable occurrence index of a content-addressed fault site
/// (FNV-1a over the record bytes): two threads appending the same record
/// compute the same index, so torn-write and corrupt-record decisions
/// never depend on completion order.
pub fn occurrence_of(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The outcome of one supervised grid point: its result, or the typed
/// quarantine record of its worker-job panic.
///
/// The variants are deliberately unboxed: an outcome moves exactly once
/// per grid point on the cold path, and indirection would buy that move
/// nothing while costing an allocation per point.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// The point ran to completion; the result keeps the full
    /// bit-identity contract.
    Completed(ScenarioResult),
    /// The point's worker job unwound and was quarantined; every other
    /// point of the grid still completed.
    Failed {
        /// Grid index of the quarantined point (its submission index in
        /// the executed grid).
        job: usize,
        /// The panic payload, rendered to text.
        message: String,
    },
}

impl PointOutcome {
    /// The completed result, if the point was not quarantined.
    pub fn result(&self) -> Option<&ScenarioResult> {
        match self {
            PointOutcome::Completed(r) => Some(r),
            PointOutcome::Failed { .. } => None,
        }
    }

    /// Consumes the outcome into its completed result, if any.
    pub fn into_result(self) -> Option<ScenarioResult> {
        match self {
            PointOutcome::Completed(r) => Some(r),
            PointOutcome::Failed { .. } => None,
        }
    }

    /// True when the point was quarantined.
    pub fn is_failed(&self) -> bool {
        matches!(self, PointOutcome::Failed { .. })
    }
}

/// One quarantined grid point inside a [`FaultReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Grid index of the quarantined point.
    pub point: usize,
    /// The panic payload, rendered to text.
    pub message: String,
}

/// What the fault layer observed over one supervised run: quarantined
/// points plus every store degradation event, all deterministic — equal
/// grids under equal injectors produce equal reports at any thread
/// count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Quarantined grid points, sorted by grid index.
    pub quarantined: Vec<Quarantine>,
    /// How many quarantines were injected by the fault plan (the rest,
    /// if any, unwound organically).
    pub injected_panics: u64,
    /// Store append attempts failed by injection.
    pub store_write_faults: u64,
    /// Store load attempts failed by injection.
    pub store_read_faults: u64,
    /// Records written torn (crash-mid-append simulation).
    pub torn_writes: u64,
    /// Records written mangled (bit-rot simulation).
    pub corrupt_records: u64,
    /// Store operations that succeeded only after deterministic retry
    /// (backoff is counted in attempts, never in wall-clock).
    pub store_retries: u64,
    /// Store operations absorbed as IO errors after the retry budget.
    pub store_io_errors: u64,
    /// Records evicted by the store's record-count/byte budget.
    pub store_evictions: u64,
}

impl FaultReport {
    /// True when nothing fired and nothing degraded.
    pub fn is_clean(&self) -> bool {
        *self == FaultReport::default()
    }

    /// One line of human-readable fault accounting for driver output.
    pub fn summary(&self) -> String {
        format!(
            "faults: {} quarantined ({} injected), {} write faults, {} read faults, \
             {} torn, {} corrupt, {} retries, {} io errors, {} evicted",
            self.quarantined.len(),
            self.injected_panics,
            self.store_write_faults,
            self.store_read_faults,
            self.torn_writes,
            self.corrupt_records,
            self.store_retries,
            self.store_io_errors,
            self.store_evictions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_addressed() {
        let mut p = Params::new();
        p.set("seed", "9").set("worker_panic", "0.5");
        let a = FaultInjector::new("bernoulli", &p).unwrap();
        let b = FaultInjector::new("bernoulli", &p).unwrap();
        let mut fired = 0u32;
        for occ in 0..256 {
            let hit = a.fires(FaultSite::WorkerPanic, occ);
            assert_eq!(hit, b.fires(FaultSite::WorkerPanic, occ), "purity");
            assert!(!a.fires(FaultSite::StoreWrite, occ), "p absent = never");
            fired += u32::from(hit);
        }
        assert!(
            (64..192).contains(&fired),
            "p=0.5 fires about half: {fired}"
        );

        let mut q = Params::new();
        q.set("seed", "10").set("worker_panic", "0.5");
        let c = FaultInjector::new("bernoulli", &q).unwrap();
        assert!(
            (0..256)
                .any(|occ| a.fires(FaultSite::WorkerPanic, occ)
                    != c.fires(FaultSite::WorkerPanic, occ)),
            "different seeds give different plans"
        );
    }

    #[test]
    fn targeted_fires_exactly_where_told() {
        let inj = FaultInjector::from_spec("targeted:worker_panic=2+5,store_write=0").unwrap();
        for occ in 0..8 {
            assert_eq!(inj.fires(FaultSite::WorkerPanic, occ), occ == 2 || occ == 5);
            assert_eq!(inj.fires(FaultSite::StoreWrite, occ), occ == 0);
            assert!(!inj.fires(FaultSite::TornWrite, occ));
        }
    }

    #[test]
    fn spec_round_trip_and_errors() {
        assert!(FaultInjector::from_spec("none").is_ok());
        assert!(FaultInjector::from_spec("bernoulli:seed=1,torn_write=1.0").is_ok());
        assert!(FaultInjector::from_spec("no-such-model").is_err());
        assert!(FaultInjector::from_spec("bernoulli:not-a-pair").is_err());
        let inj = FaultInjector::from_spec("targeted:worker_panic=3").unwrap();
        assert_eq!(inj.spec(), "targeted:worker_panic=3");
        assert!(!FaultInjector::disabled().fires(FaultSite::WorkerPanic, 0));
    }

    #[test]
    fn occurrence_hash_is_stable_and_content_addressed() {
        let a = occurrence_of(b"{\"v\":1}");
        assert_eq!(a, occurrence_of(b"{\"v\":1}"));
        assert_ne!(a, occurrence_of(b"{\"v\":2}"));
    }
}
