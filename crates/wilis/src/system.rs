//! Plug-n-play system assembly (the AWB workflow of §2).
//!
//! The paper's platform lets users assemble a wireless system by *choosing
//! an implementation per slot* from a GUI rather than editing source.
//! [`WilisSystem`] is that workflow as an API: a registry of decoder
//! implementations keyed by name, a [`SystemConfig`] selecting one, and a
//! builder producing ready-to-run transmitter/receiver pairs.

use std::sync::Arc;

use wilis_fec::{BcjrDecoder, CompiledTrellis, ConvCode, SoftDecoder, SovaDecoder, ViterbiDecoder};
use wilis_lis::registry::{Params, Registry, RegistryError};
use wilis_phy::{Demapper, PhyRate, Receiver, SnrScaling, Transmitter};

/// A factory slot for soft decoders.
pub type DecoderSlot = Registry<Box<dyn SoftDecoder>>;

/// Selection of implementations and parameters for one simulation.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The PHY rate to run at.
    pub rate: PhyRate,
    /// Which registered decoder implementation to use.
    pub decoder: String,
    /// Demapper soft-output width (the SoftPHY path default is 5).
    pub demapper_bits: u32,
    /// Extra per-module parameters (forwarded to the decoder factory).
    pub params: Params,
}

impl SystemConfig {
    /// A config at `rate` using the named decoder with defaults.
    pub fn new(rate: PhyRate, decoder: &str) -> Self {
        Self {
            rate,
            decoder: decoder.to_string(),
            demapper_bits: 5,
            params: Params::new(),
        }
    }
}

/// The plug-n-play system: decoder registry plus builders.
///
/// One [`CompiledTrellis`] for the 802.11 code is built at system
/// construction and shared (via `Arc`) by every stock decoder the system
/// instantiates — the scenario engine's per-rate receiver banks therefore
/// reuse one trellis lowering per system instead of recompiling tables
/// per rate and per decoder.
pub struct WilisSystem {
    decoders: DecoderSlot,
    compiled: Arc<CompiledTrellis>,
}

impl WilisSystem {
    /// A system with the stock implementations registered: `"viterbi"`,
    /// `"sova"` (params: `tu1`, `tu2`), `"bcjr"` (param: `block`).
    pub fn new() -> Self {
        let compiled = Arc::new(CompiledTrellis::new(&ConvCode::ieee80211()));
        let mut decoders: DecoderSlot = Registry::new("decoder");
        let shared = Arc::clone(&compiled);
        decoders.register("viterbi", move |_| {
            Box::new(ViterbiDecoder::with_shared_trellis(Arc::clone(&shared)))
        });
        let shared = Arc::clone(&compiled);
        decoders.register("sova", move |p| {
            let l = p.get_u64("tu1").unwrap_or(64) as usize;
            let k = p.get_u64("tu2").unwrap_or(64) as usize;
            Box::new(SovaDecoder::with_shared_trellis(Arc::clone(&shared), l, k))
        });
        let shared = Arc::clone(&compiled);
        decoders.register("bcjr", move |p| {
            let n = p.get_u64("block").unwrap_or(64) as usize;
            Box::new(BcjrDecoder::with_shared_trellis(Arc::clone(&shared), n))
        });
        Self { decoders, compiled }
    }

    /// The system's shared compiled 802.11 trellis — one table build
    /// serving every stock decoder this system creates (and the scenario
    /// engine's oracle receiver bank).
    pub fn compiled_ieee80211(&self) -> Arc<CompiledTrellis> {
        Arc::clone(&self.compiled)
    }

    /// The decoder registry, for registering user implementations
    /// alongside the stock ones (the paper's "users may also wish to use
    /// their own modules in combination with existing ones").
    pub fn decoders_mut(&mut self) -> &mut DecoderSlot {
        &mut self.decoders
    }

    /// Names of all registered decoder implementations.
    pub fn decoder_names(&self) -> Vec<String> {
        self.decoders.names()
    }

    /// Builds the transmitter for a config.
    pub fn transmitter(&self, config: &SystemConfig) -> Transmitter {
        Transmitter::new(config.rate)
    }

    /// Builds the receiver for a config.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] when the named decoder is not registered.
    pub fn receiver(&self, config: &SystemConfig) -> Result<Receiver, RegistryError> {
        let decoder = self.decoders.build(&config.decoder, &config.params)?;
        let demapper = Demapper::new(
            config.rate.modulation(),
            config.demapper_bits,
            SnrScaling::Off,
        );
        Ok(Receiver::new(config.rate, demapper, decoder))
    }
}

impl Default for WilisSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WilisSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WilisSystem(decoders: {})",
            self.decoder_names().join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilis_phy::PhyRate;

    #[test]
    fn stock_decoders_registered() {
        let sys = WilisSystem::new();
        assert_eq!(sys.decoder_names(), vec!["bcjr", "sova", "viterbi"]);
    }

    #[test]
    fn build_and_roundtrip_each_decoder() {
        let sys = WilisSystem::new();
        let payload: Vec<u8> = (0..200).map(|i| (i % 2) as u8).collect();
        for name in ["viterbi", "sova", "bcjr"] {
            let cfg = SystemConfig::new(PhyRate::QpskHalf, name);
            let tx = sys.transmitter(&cfg).transmit(&payload, 0x5D);
            let mut rx = sys.receiver(&cfg).unwrap();
            let got = rx.receive(&tx.samples, payload.len(), 0x5D);
            assert_eq!(got.bit_errors(&payload), 0, "{name}");
        }
    }

    #[test]
    fn unknown_decoder_is_an_error() {
        let sys = WilisSystem::new();
        let cfg = SystemConfig::new(PhyRate::BpskHalf, "turbo");
        let err = sys.receiver(&cfg).unwrap_err();
        assert!(err.to_string().contains("turbo"));
    }

    #[test]
    fn stock_decoders_share_one_compiled_trellis() {
        let sys = WilisSystem::new();
        let shared = sys.compiled_ieee80211();
        // Factory-built decoders hold handles to the same tables: the
        // system handle plus three decoders inside the receivers.
        let before = Arc::strong_count(&shared);
        let _rx = sys
            .receiver(&SystemConfig::new(PhyRate::QpskHalf, "viterbi"))
            .unwrap();
        assert_eq!(Arc::strong_count(&shared), before + 1);
    }

    #[test]
    fn user_decoder_plugs_in() {
        let mut sys = WilisSystem::new();
        sys.decoders_mut().register("my-viterbi", |_| {
            Box::new(ViterbiDecoder::new(&ConvCode::ieee80211()))
        });
        let cfg = SystemConfig::new(PhyRate::BpskHalf, "my-viterbi");
        assert!(sys.receiver(&cfg).is_ok());
    }

    #[test]
    fn params_reach_the_factory() {
        let sys = WilisSystem::new();
        let mut cfg = SystemConfig::new(PhyRate::BpskHalf, "sova");
        cfg.params.set("tu1", "32").set("tu2", "16");
        // Builds fine; window parameters are decoder-internal. The
        // registry path is what this exercises.
        assert!(sys.receiver(&cfg).is_ok());
    }
}
