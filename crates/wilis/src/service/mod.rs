//! The sweep service: the scenario engine as a long-running, memoizing
//! server instead of a batch runner.
//!
//! A [`SweepService`] wraps a [`SweepRunner`] with a [`ResultStore`]:
//! every grid point is keyed by its full typed coordinate
//! ([`StoreKey`] — all [`Scenario`] fields plus the runner knobs that
//! change what a result contains), repeated points are served from the
//! store without simulating a single packet, and fresh points stream
//! back through a per-point callback as their worker jobs finish. With
//! `WILIS_STORE=path` (see [`SweepService::from_env`]) the store is
//! mirrored to a JSON-lines file, so the cache survives across
//! *processes* — figure drivers, benches, and tests all become thin
//! clients of one store.
//!
//! Because a cached result is bit-equal to a fresh one (floats travel
//! through the disk store as IEEE-754 bit patterns), the engine's
//! determinism contract extends across the cache: any cold/warm split,
//! any thread count, same bits. Pair the service with a
//! [`StoppingRule`] (see [`SweepRunner::with_stopping`]) and points
//! also stop as soon as their Wilson interval closes — the rule joins
//! the cache key, so fixed-budget and confidence-stopped results never
//! alias.
//!
//! # Example
//!
//! ```
//! use wilis::scenario::{SweepGrid, SweepRunner};
//! use wilis::service::SweepService;
//! use wilis::phy::PhyRate;
//!
//! let grid = SweepGrid::new()
//!     .rates(&[PhyRate::QpskHalf])
//!     .decoders(&["viterbi"])
//!     .snrs_db(&[6.0, 8.0])
//!     .packets(2)
//!     .payload_bits(400);
//! let mut service = SweepService::new(SweepRunner::new(2));
//! let cold = service.run(&grid.scenarios()).unwrap();
//! let warm = service.run(&grid.scenarios()).unwrap();
//! assert_eq!(cold, warm);
//! assert_eq!(service.metrics().hits, 2); // warm run simulated nothing
//! ```

mod json;
mod store;

pub use store::{ResultStore, StoppingKey, StoreKey};

use std::collections::BTreeMap;
use std::sync::mpsc;

use wilis_lis::registry::RegistryError;

use crate::scenario::{Scenario, ScenarioResult, StoppingRule, SweepRunner};

/// Cache-effectiveness counters of a [`SweepService`], cumulative since
/// construction (or the last [`SweepService::reset_metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Grid points served from the store.
    pub hits: u64,
    /// Grid points that had to simulate.
    pub misses: u64,
    /// Packets actually simulated by misses.
    pub packets_simulated: u64,
    /// Packets *not* simulated thanks to hits — the sum of cached
    /// results' packet counts (for duplicate points within one call,
    /// every copy beyond the first counts as saved).
    pub packets_saved: u64,
    /// Records loaded from the disk store at construction.
    pub store_entries_loaded: u64,
    /// Corrupt/foreign store lines skipped at load.
    pub store_lines_skipped: u64,
    /// Store IO failures absorbed (the service degrades to in-memory).
    pub store_io_errors: u64,
}

impl ServiceMetrics {
    /// One line of human-readable cache accounting for driver output.
    pub fn summary(&self) -> String {
        format!(
            "cache: {} hits, {} misses, {} packets simulated, {} packets saved",
            self.hits, self.misses, self.packets_simulated, self.packets_saved
        )
    }
}

/// A memoizing, streaming front end over [`SweepRunner`] — see the
/// [module docs](self).
#[derive(Debug)]
pub struct SweepService {
    runner: SweepRunner,
    store: ResultStore,
    metrics: ServiceMetrics,
}

impl SweepService {
    /// A service over `runner` with a fresh in-memory store.
    pub fn new(runner: SweepRunner) -> Self {
        Self::with_store(runner, ResultStore::in_memory())
    }

    /// A service over `runner` backed by an explicit store.
    pub fn with_store(runner: SweepRunner, store: ResultStore) -> Self {
        let metrics = ServiceMetrics {
            store_entries_loaded: store.loaded(),
            store_lines_skipped: store.skipped(),
            store_io_errors: store.io_errors(),
            ..ServiceMetrics::default()
        };
        Self {
            runner,
            store,
            metrics,
        }
    }

    /// A service whose store location follows the `WILIS_STORE`
    /// environment variable: set (and non-empty), results are mirrored
    /// to that JSON-lines file and any records already there are served
    /// as cache hits; unset, the store is in-memory only.
    pub fn from_env(runner: SweepRunner) -> Self {
        match std::env::var("WILIS_STORE") {
            Ok(path) if !path.is_empty() => Self::with_store(runner, ResultStore::at_path(path)),
            _ => Self::new(runner),
        }
    }

    /// The underlying runner.
    pub fn runner(&self) -> &SweepRunner {
        &self.runner
    }

    /// The backing store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Cumulative cache metrics.
    pub fn metrics(&self) -> ServiceMetrics {
        self.metrics
    }

    /// Zeroes the per-run counters (hits, misses, packet counts); the
    /// store-load counters persist, since they describe construction.
    pub fn reset_metrics(&mut self) {
        self.metrics = ServiceMetrics {
            store_entries_loaded: self.metrics.store_entries_loaded,
            store_lines_skipped: self.metrics.store_lines_skipped,
            store_io_errors: self.metrics.store_io_errors,
            ..ServiceMetrics::default()
        };
    }

    /// Installs (or clears) the runner's confidence-driven stopping
    /// rule. The rule is part of the cache key: results computed under
    /// different rules never alias.
    pub fn set_stopping(&mut self, rule: Option<StoppingRule>) {
        self.runner.set_stopping(rule);
    }

    /// Toggles per-packet scatter recording on the runner. Also part of
    /// the cache key — a result with scatter data is a different record
    /// than one without.
    pub fn set_record_packet_stats(&mut self, on: bool) {
        self.runner.set_record_packet_stats(on);
    }

    /// The cache key of `sc` under the service's current configuration.
    pub fn key_for(&self, sc: &Scenario) -> StoreKey {
        StoreKey::new(
            sc,
            self.runner.records_packet_stats(),
            self.runner.stopping(),
        )
    }

    /// Runs a grid through the cache: hits are served from the store,
    /// misses are simulated (deduplicated — a coordinate that appears
    /// twice in `scenarios` simulates once) and inserted. Results come
    /// back in submission order, bit-identical to what [`SweepRunner::run`]
    /// would have produced for the whole grid.
    ///
    /// # Errors
    ///
    /// As [`SweepRunner::run`]; on error the store keeps any points
    /// that completed before the failure.
    pub fn run(&mut self, scenarios: &[Scenario]) -> Result<Vec<ScenarioResult>, RegistryError> {
        self.run_streaming(scenarios, |_, _| {})
    }

    /// Streaming variant of [`SweepService::run`]: `on_result(i, &result)`
    /// fires on the *calling* thread for each grid point as it becomes
    /// available — immediately for cache hits, then in completion order
    /// as fresh points finish simulating. The full result vector (in
    /// submission order) is still returned at the end.
    ///
    /// Unlike [`SweepRunner::run_streaming`], the callback needs no
    /// `Send` bound: worker results cross back over a channel and the
    /// callback (and every store mutation) runs on the caller's thread.
    ///
    /// # Errors
    ///
    /// As [`SweepService::run`].
    pub fn run_streaming<F>(
        &mut self,
        scenarios: &[Scenario],
        mut on_result: F,
    ) -> Result<Vec<ScenarioResult>, RegistryError>
    where
        F: FnMut(usize, &ScenarioResult),
    {
        let mut slots: Vec<Option<ScenarioResult>> = (0..scenarios.len()).map(|_| None).collect();
        // Misses, deduplicated by coordinate: each unique key simulates
        // once and fans out to every submission index that asked for it.
        let mut pending: BTreeMap<StoreKey, Vec<usize>> = BTreeMap::new();
        for (i, sc) in scenarios.iter().enumerate() {
            let key = self.key_for(sc);
            if let Some(hit) = self.store.get(&key) {
                let mut result = hit.clone();
                result.scenario = i;
                self.metrics.hits += 1;
                self.metrics.packets_saved += result.packets;
                on_result(i, &result);
                slots[i] = Some(result);
            } else {
                match pending.entry(key) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        // A duplicate coordinate within one call: the
                        // second copy is a hit-in-waiting, not a miss.
                        self.metrics.hits += 1;
                        e.get_mut().push(i);
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        self.metrics.misses += 1;
                        e.insert(vec![i]);
                    }
                }
            }
        }

        if !pending.is_empty() {
            let keys: Vec<&StoreKey> = pending.keys().collect();
            let reps: Vec<Scenario> = keys
                .iter()
                .map(|key| scenarios[pending[*key][0]].clone())
                .collect();
            let runner = &self.runner;
            let store = &mut self.store;
            let metrics = &mut self.metrics;
            // Bridge the runner's Send-bound worker callback back onto
            // this thread: workers push `(rep index, result)` into a
            // channel; the receive loop below does all store insertion
            // and user-callback work caller-side.
            let run_outcome = std::thread::scope(|scope| {
                let (tx, rx) = mpsc::channel::<(usize, ScenarioResult)>();
                let reps_ref = &reps;
                let worker = scope.spawn(move || {
                    runner.run_streaming(reps_ref, move |j, result| {
                        // A send fails only if the receiver is gone,
                        // i.e. the whole scope is unwinding already.
                        let _ = tx.send((j, result));
                    })
                });
                for (j, result) in rx {
                    metrics.packets_simulated += result.packets;
                    for (fanout, &i) in pending[keys[j]].iter().enumerate() {
                        if fanout > 0 {
                            metrics.packets_saved += result.packets;
                        }
                        let mut copy = result.clone();
                        copy.scenario = i;
                        on_result(i, &copy);
                        slots[i] = Some(copy);
                    }
                    // Stored with a neutral submission index, so the
                    // disk record is independent of this call's grid
                    // layout (hits rewrite the index anyway).
                    let mut canonical = result;
                    canonical.scenario = 0;
                    store.insert(keys[j].clone(), canonical);
                }
                worker
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            });
            run_outcome?;
        }

        self.metrics.store_io_errors = self.store.io_errors();
        slots
            .into_iter()
            .map(|slot| {
                slot.ok_or_else(|| {
                    RegistryError::invalid_config(
                        "sweep service lost a grid point: runner returned Ok but a \
                         pending scenario received no result",
                    )
                })
            })
            .collect()
    }
}
