//! The sweep service: the scenario engine as a long-running, memoizing
//! server instead of a batch runner.
//!
//! A [`SweepService`] wraps a [`SweepRunner`] with a [`ResultStore`]:
//! every grid point is keyed by its full typed coordinate
//! ([`StoreKey`] — all [`Scenario`] fields plus the runner knobs that
//! change what a result contains), repeated points are served from the
//! store without simulating a single packet, and fresh points stream
//! back through a per-point callback as their worker jobs finish. With
//! `WILIS_STORE=path` (see [`SweepService::from_env`]) the store is
//! mirrored to a JSON-lines file, so the cache survives across
//! *processes* — figure drivers, benches, and tests all become thin
//! clients of one store.
//!
//! Because a cached result is bit-equal to a fresh one (floats travel
//! through the disk store as IEEE-754 bit patterns), the engine's
//! determinism contract extends across the cache: any cold/warm split,
//! any thread count, same bits. Pair the service with a
//! [`StoppingRule`] (see [`SweepRunner::with_stopping`]) and points
//! also stop as soon as their Wilson interval closes — the rule joins
//! the cache key, so fixed-budget and confidence-stopped results never
//! alias.
//!
//! # Example
//!
//! ```
//! use wilis::scenario::{SweepGrid, SweepRunner};
//! use wilis::service::SweepService;
//! use wilis::phy::PhyRate;
//!
//! let grid = SweepGrid::new()
//!     .rates(&[PhyRate::QpskHalf])
//!     .decoders(&["viterbi"])
//!     .snrs_db(&[6.0, 8.0])
//!     .packets(2)
//!     .payload_bits(400);
//! let mut service = SweepService::new(SweepRunner::new(2));
//! let cold = service.run(&grid.scenarios()).unwrap();
//! let warm = service.run(&grid.scenarios()).unwrap();
//! assert_eq!(cold, warm);
//! assert_eq!(service.metrics().hits, 2); // warm run simulated nothing
//! ```

mod json;
mod store;

pub use store::{ResultStore, StoppingKey, StoreBudget, StoreKey, STORE_ATTEMPTS};

use std::collections::BTreeMap;
use std::sync::mpsc;

use wilis_lis::registry::RegistryError;

use crate::faults::{FaultInjector, FaultReport, FaultSite, PointOutcome, Quarantine};
use crate::scenario::{Scenario, ScenarioResult, StoppingRule, SupervisedSweep, SweepRunner};
use crate::supervisor;

/// Cache-effectiveness and store-degradation counters of a
/// [`SweepService`], cumulative since construction (or the last
/// [`SweepService::reset_metrics`]). The `store_*` counters mirror the
/// backing [`ResultStore`]'s own counters after every run, so a driver
/// that only holds the service still sees every degradation event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Grid points served from the store.
    pub hits: u64,
    /// Grid points that had to simulate.
    pub misses: u64,
    /// Packets actually simulated by misses.
    pub packets_simulated: u64,
    /// Packets *not* simulated thanks to hits — the sum of cached
    /// results' packet counts (for duplicate points within one call,
    /// every copy beyond the first counts as saved).
    pub packets_saved: u64,
    /// Records loaded from the disk store at construction.
    pub store_entries_loaded: u64,
    /// Corrupt/foreign store lines skipped at load (a torn final line
    /// counts here).
    pub store_lines_skipped: u64,
    /// Store IO failures absorbed after the retry budget (the service
    /// degrades to in-memory).
    pub store_io_errors: u64,
    /// Deterministic store retry attempts performed.
    pub store_retries: u64,
    /// Store append attempts failed by fault injection.
    pub store_write_faults: u64,
    /// Store load attempts failed by fault injection.
    pub store_read_faults: u64,
    /// Records written torn by fault injection.
    pub store_torn_writes: u64,
    /// Records written mangled by fault injection.
    pub store_corrupt_records: u64,
    /// Records evicted by the store's [`StoreBudget`].
    pub store_evictions: u64,
    /// Atomic store-file compactions performed.
    pub store_compactions: u64,
}

impl ServiceMetrics {
    /// One line of human-readable cache and store-degradation accounting
    /// for driver output.
    pub fn summary(&self) -> String {
        format!(
            "cache: {} hits, {} misses, {} packets simulated, {} packets saved; \
             store: {} loaded, {} skipped, {} io errors, {} retries, {} evicted, \
             {} compactions",
            self.hits,
            self.misses,
            self.packets_simulated,
            self.packets_saved,
            self.store_entries_loaded,
            self.store_lines_skipped,
            self.store_io_errors,
            self.store_retries,
            self.store_evictions,
            self.store_compactions,
        )
    }
}

/// The store's degradation counters at one instant — subtracted across a
/// run to fill the run's [`FaultReport`].
#[derive(Clone, Copy)]
struct StoreCounters {
    write_faults: u64,
    read_faults: u64,
    torn_writes: u64,
    corrupt_records: u64,
    retries: u64,
    io_errors: u64,
    evictions: u64,
}

/// A memoizing, streaming front end over [`SweepRunner`] — see the
/// [module docs](self).
#[derive(Debug)]
pub struct SweepService {
    runner: SweepRunner,
    store: ResultStore,
    metrics: ServiceMetrics,
}

impl SweepService {
    /// A service over `runner` with a fresh in-memory store.
    pub fn new(runner: SweepRunner) -> Self {
        Self::with_store(runner, ResultStore::in_memory())
    }

    /// A service over `runner` backed by an explicit store.
    pub fn with_store(runner: SweepRunner, store: ResultStore) -> Self {
        let mut service = Self {
            runner,
            store,
            metrics: ServiceMetrics::default(),
        };
        service.metrics.store_entries_loaded = service.store.loaded();
        service.metrics.store_lines_skipped = service.store.skipped();
        service.sync_store_metrics();
        service
    }

    /// A service whose store location follows the `WILIS_STORE`
    /// environment variable: set (and non-empty), results are mirrored
    /// to that JSON-lines file and any records already there are served
    /// as cache hits; unset, the store is in-memory only.
    ///
    /// `WILIS_FAULTS` (a [`FaultInjector::from_spec`] spec, e.g.
    /// `targeted:worker_panic=2` or `bernoulli:seed=7,store_write=0.1`)
    /// installs a fault injector on both the runner and the store; an
    /// unparsable spec is ignored — fault injection is a test/debug
    /// knob, never worth failing a real sweep over.
    pub fn from_env(runner: SweepRunner) -> Self {
        let mut service = match std::env::var("WILIS_STORE") {
            Ok(path) if !path.is_empty() => Self::with_store(runner, ResultStore::at_path(path)),
            _ => Self::new(runner),
        };
        if let Ok(spec) = std::env::var("WILIS_FAULTS") {
            if !spec.is_empty() {
                if let Ok(injector) = FaultInjector::from_spec(&spec) {
                    service.set_faults(Some(injector));
                }
            }
        }
        service
    }

    /// Installs (or clears) a fault injector on both the runner (worker
    /// panics) and the store (IO, torn-write, corrupt-record sites).
    pub fn set_faults(&mut self, faults: Option<FaultInjector>) {
        self.runner.set_faults(faults.clone());
        self.store.set_faults(faults);
    }

    /// The underlying runner.
    pub fn runner(&self) -> &SweepRunner {
        &self.runner
    }

    /// The backing store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Cumulative cache metrics.
    pub fn metrics(&self) -> ServiceMetrics {
        self.metrics
    }

    /// Zeroes the per-run counters (hits, misses, packet counts); the
    /// store-describing counters persist, since they mirror the backing
    /// store's cumulative state.
    pub fn reset_metrics(&mut self) {
        self.metrics = ServiceMetrics {
            hits: 0,
            misses: 0,
            packets_simulated: 0,
            packets_saved: 0,
            ..self.metrics
        };
    }

    /// Installs (or clears) the runner's confidence-driven stopping
    /// rule. The rule is part of the cache key: results computed under
    /// different rules never alias.
    pub fn set_stopping(&mut self, rule: Option<StoppingRule>) {
        self.runner.set_stopping(rule);
    }

    /// Toggles per-packet scatter recording on the runner. Also part of
    /// the cache key — a result with scatter data is a different record
    /// than one without.
    pub fn set_record_packet_stats(&mut self, on: bool) {
        self.runner.set_record_packet_stats(on);
    }

    /// The cache key of `sc` under the service's current configuration.
    pub fn key_for(&self, sc: &Scenario) -> StoreKey {
        StoreKey::new(
            sc,
            self.runner.records_packet_stats(),
            self.runner.stopping(),
        )
    }

    /// Runs a grid through the cache: hits are served from the store,
    /// misses are simulated (deduplicated — a coordinate that appears
    /// twice in `scenarios` simulates once) and inserted. Results come
    /// back in submission order, bit-identical to what [`SweepRunner::run`]
    /// would have produced for the whole grid.
    ///
    /// # Errors
    ///
    /// As [`SweepRunner::run`]; on error the store keeps any points
    /// that completed before the failure. A quarantined grid point is
    /// reported after the grid drains, as an `InvalidConfig` error
    /// naming the lowest quarantined submission index — use
    /// [`SweepService::run_supervised`] to get the partial results.
    pub fn run(&mut self, scenarios: &[Scenario]) -> Result<Vec<ScenarioResult>, RegistryError> {
        self.run_streaming(scenarios, |_, _| {})
    }

    /// Streaming variant of [`SweepService::run`]: `on_result(i, &result)`
    /// fires on the *calling* thread for each grid point as it becomes
    /// available — immediately for cache hits, then in completion order
    /// as fresh points finish simulating. The full result vector (in
    /// submission order) is still returned at the end.
    ///
    /// Unlike [`SweepRunner::run_streaming`], the callback needs no
    /// `Send` bound: worker results cross back over a channel and the
    /// callback (and every store mutation) runs on the caller's thread.
    ///
    /// # Errors
    ///
    /// As [`SweepService::run`].
    pub fn run_streaming<F>(
        &mut self,
        scenarios: &[Scenario],
        mut on_result: F,
    ) -> Result<Vec<ScenarioResult>, RegistryError>
    where
        F: FnMut(usize, &ScenarioResult),
    {
        let (outcomes, _report) = self.run_outcomes(scenarios, |i, outcome| {
            if let PointOutcome::Completed(res) = outcome {
                on_result(i, res);
            }
        })?;
        let mut first_failed: Option<(usize, String)> = None;
        let mut results = Vec::with_capacity(outcomes.len());
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                PointOutcome::Completed(res) => results.push(res),
                PointOutcome::Failed { message, .. } => {
                    if first_failed.is_none() {
                        first_failed = Some((i, message));
                    }
                }
            }
        }
        match first_failed {
            Some((i, message)) => Err(RegistryError::invalid_config(format!(
                "grid point {i} was quarantined: {message}"
            ))),
            None => Ok(results),
        }
    }

    /// Supervised variant of [`SweepService::run`]: quarantined grid
    /// points come back as typed [`PointOutcome::Failed`] entries beside
    /// every completed point, with a [`FaultReport`] tallying the run's
    /// quarantines and store degradation (the store counters are deltas
    /// across this run). With no faults fired the outcomes are exactly
    /// [`SweepService::run`]'s results, bit for bit, and the report is
    /// clean.
    ///
    /// # Errors
    ///
    /// As [`SweepRunner::run`] — configuration errors are still errors;
    /// only panics are quarantined.
    pub fn run_supervised(
        &mut self,
        scenarios: &[Scenario],
    ) -> Result<SupervisedSweep, RegistryError> {
        self.run_streaming_supervised(scenarios, |_, _| {})
    }

    /// Streaming variant of [`SweepService::run_supervised`]:
    /// `on_outcome(i, &outcome)` fires on the calling thread for each
    /// grid point as it becomes available, quarantined points included.
    ///
    /// # Errors
    ///
    /// As [`SweepService::run_supervised`].
    pub fn run_streaming_supervised<F>(
        &mut self,
        scenarios: &[Scenario],
        on_outcome: F,
    ) -> Result<SupervisedSweep, RegistryError>
    where
        F: FnMut(usize, &PointOutcome),
    {
        let (outcomes, report) = self.run_outcomes(scenarios, on_outcome)?;
        Ok(SupervisedSweep { outcomes, report })
    }

    fn store_counters(&self) -> StoreCounters {
        StoreCounters {
            write_faults: self.store.write_faults(),
            read_faults: self.store.read_faults(),
            torn_writes: self.store.torn_writes(),
            corrupt_records: self.store.corrupt_records(),
            retries: self.store.retries(),
            io_errors: self.store.io_errors(),
            evictions: self.store.evictions(),
        }
    }

    /// The supervised core under every public run variant: dedup against
    /// the store, simulate the misses under supervision, fan outcomes
    /// out to submission indices, and assemble the run's [`FaultReport`]
    /// (quarantines remapped to submission indices; store counters as
    /// deltas across the run).
    fn run_outcomes<F>(
        &mut self,
        scenarios: &[Scenario],
        mut on_outcome: F,
    ) -> Result<(Vec<PointOutcome>, FaultReport), RegistryError>
    where
        F: FnMut(usize, &PointOutcome),
    {
        let before = self.store_counters();
        let mut slots: Vec<Option<PointOutcome>> = (0..scenarios.len()).map(|_| None).collect();
        // Misses, deduplicated by coordinate: each unique key simulates
        // once and fans out to every submission index that asked for it.
        let mut pending: BTreeMap<StoreKey, Vec<usize>> = BTreeMap::new();
        for (i, sc) in scenarios.iter().enumerate() {
            let key = self.key_for(sc);
            if let Some(hit) = self.store.get(&key) {
                let mut result = hit.clone();
                result.scenario = i;
                self.metrics.hits += 1;
                self.metrics.packets_saved += result.packets;
                let outcome = PointOutcome::Completed(result);
                on_outcome(i, &outcome);
                slots[i] = Some(outcome);
            } else {
                match pending.entry(key) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        // A duplicate coordinate within one call: the
                        // second copy is a hit-in-waiting, not a miss.
                        self.metrics.hits += 1;
                        e.get_mut().push(i);
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        self.metrics.misses += 1;
                        e.insert(vec![i]);
                    }
                }
            }
        }

        let mut report = FaultReport::default();
        if !pending.is_empty() {
            let keys: Vec<&StoreKey> = pending.keys().collect();
            let reps: Vec<Scenario> = keys
                .iter()
                .map(|key| scenarios[pending[*key][0]].clone())
                .collect();
            let runner = &self.runner;
            let store = &mut self.store;
            let metrics = &mut self.metrics;
            let slots_ref = &mut slots;
            let on_outcome_ref = &mut on_outcome;
            // Bridge the runner's Send-bound worker callback back onto
            // this thread: workers push `(rep index, outcome)` into a
            // channel; the receive loop below does all store insertion
            // and user-callback work caller-side.
            let run_outcome = std::thread::scope(|scope| {
                let (tx, rx) = mpsc::channel::<(usize, PointOutcome)>();
                let reps_ref = &reps;
                let worker = scope.spawn(move || {
                    runner.run_streaming_supervised(reps_ref, move |j, outcome| {
                        // A send fails only if the receiver is gone,
                        // i.e. the whole scope is unwinding already.
                        let _ = tx.send((j, outcome));
                    })
                });
                for (j, outcome) in rx {
                    match outcome {
                        PointOutcome::Completed(result) => {
                            metrics.packets_simulated += result.packets;
                            for (fanout, &i) in pending[keys[j]].iter().enumerate() {
                                if fanout > 0 {
                                    metrics.packets_saved += result.packets;
                                }
                                let mut copy = result.clone();
                                copy.scenario = i;
                                let delivered = PointOutcome::Completed(copy);
                                on_outcome_ref(i, &delivered);
                                slots_ref[i] = Some(delivered);
                            }
                            // Stored with a neutral submission index, so
                            // the disk record is independent of this
                            // call's grid layout (hits rewrite the index
                            // anyway).
                            let mut canonical = result;
                            canonical.scenario = 0;
                            store.insert(keys[j].clone(), canonical);
                        }
                        PointOutcome::Failed { message, .. } => {
                            // Quarantines fan out too — every submission
                            // index that asked for the failed coordinate
                            // gets the typed failure. Nothing is stored.
                            for &i in &pending[keys[j]] {
                                let delivered = PointOutcome::Failed {
                                    job: i,
                                    message: message.clone(),
                                };
                                on_outcome_ref(i, &delivered);
                                slots_ref[i] = Some(delivered);
                            }
                        }
                    }
                }
                // A panic on the runner's orchestration path is an
                // engine bug, not a quarantine — keep it loud.
                supervisor::propagate_join(worker.join())
            });
            let runner_report = run_outcome?;
            // Remap quarantines from dedup-grid indices to submission
            // indices; the injected tally follows each copy.
            let faults = self.runner.faults().cloned();
            for q in &runner_report.quarantined {
                let injected = faults
                    .as_ref()
                    .is_some_and(|f| f.fires(FaultSite::WorkerPanic, q.point as u64));
                for &i in &pending[keys[q.point]] {
                    report.quarantined.push(Quarantine {
                        point: i,
                        message: q.message.clone(),
                    });
                    report.injected_panics += u64::from(injected);
                }
            }
            report.quarantined.sort_by_key(|q| q.point);
        }

        let after = self.store_counters();
        report.store_write_faults = after.write_faults - before.write_faults;
        report.store_read_faults = after.read_faults - before.read_faults;
        report.torn_writes = after.torn_writes - before.torn_writes;
        report.corrupt_records = after.corrupt_records - before.corrupt_records;
        report.store_retries = after.retries - before.retries;
        report.store_io_errors = after.io_errors - before.io_errors;
        report.store_evictions = after.evictions - before.evictions;
        self.sync_store_metrics();
        let outcomes = slots
            .into_iter()
            .map(|slot| {
                slot.ok_or_else(|| {
                    RegistryError::invalid_config(
                        "sweep service lost a grid point: runner returned Ok but a \
                         pending scenario received no result",
                    )
                })
            })
            .collect::<Result<Vec<PointOutcome>, RegistryError>>()?;
        Ok((outcomes, report))
    }

    /// Mirrors the store's cumulative degradation counters into
    /// [`ServiceMetrics`].
    fn sync_store_metrics(&mut self) {
        self.metrics.store_io_errors = self.store.io_errors();
        self.metrics.store_retries = self.store.retries();
        self.metrics.store_write_faults = self.store.write_faults();
        self.metrics.store_read_faults = self.store.read_faults();
        self.metrics.store_torn_writes = self.store.torn_writes();
        self.metrics.store_corrupt_records = self.store.corrupt_records();
        self.metrics.store_evictions = self.store.evictions();
        self.metrics.store_compactions = self.store.compactions();
    }
}
