//! A minimal JSON value, writer, and recursive-descent parser for the
//! service's on-disk result store — the container is offline and the
//! workspace std-only, so the store carries its own codec.
//!
//! The subset is deliberately narrow: `null`, booleans, **unsigned
//! integers only**, strings, arrays, and objects. The store never writes
//! a decimal float — every `f64` travels as its IEEE-754 bit pattern in
//! a u64 (see [`super::store`]) — so a parsed-back result is *bit*-equal
//! to the one written, which is what lets a warm run reproduce a cold
//! run exactly. Objects preserve insertion order on write and compare by
//! key on read via `BTreeMap`, so one logical value has one encoding.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value in the store's subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer — the only number the subset admits.
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` so equal objects encode equally.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub(crate) fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup on an object.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Serializes to a single line (no pretty-printing, no trailing
    /// newline) — one store record per line.
    pub(crate) fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one value from `text`; `None` on any syntax error, any
    /// number outside the unsigned-integer subset, or trailing garbage.
    /// The store treats an unparsable line as a corrupt record to skip,
    /// so the parser never panics.
    pub(crate) fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(value)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn consume(bytes: &[u8], pos: &mut usize, b: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'n' => parse_literal(bytes, pos, b"null", Json::Null),
        b't' => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => parse_array(bytes, pos),
        b'{' => parse_object(bytes, pos),
        b'0'..=b'9' => parse_number(bytes, pos),
        _ => None,
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &[u8], value: Json) -> Option<Json> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    // Reject the float/exponent forms the writer never produces.
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse()
        .ok()
        .map(Json::Num)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    consume(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        match b {
            b'"' => return Some(out),
            b'\\' => {
                let esc = *bytes.get(*pos)?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4)?;
                        *pos += 4;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            b if b < 0x80 => out.push(b as char),
            _ => {
                // Re-assemble the multi-byte UTF-8 sequence that started
                // at the byte we just consumed.
                let start = *pos - 1;
                let width = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return None,
                };
                let chunk = bytes.get(start..start + width)?;
                *pos = start + width;
                out.push_str(std::str::from_utf8(chunk).ok()?);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    consume(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    consume(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        consume(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(map));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj([
            ("v", Json::Num(1)),
            ("name", Json::Str("qpsk 1/2 \"quoted\"\n".into())),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(0), Json::Num(u64::MAX), Json::Arr(vec![])]),
            ),
        ]);
        let line = v.to_line();
        assert_eq!(Json::parse(&line), Some(v));
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert_eq!(Json::parse("1.5"), None);
        assert_eq!(Json::parse("1e3"), None);
        assert_eq!(Json::parse("-1"), None);
        assert_eq!(Json::parse("{\"a\":1} trailing"), None);
        assert_eq!(Json::parse("{\"a\":}"), None);
        assert_eq!(Json::parse(""), None);
    }

    #[test]
    fn parses_unicode_strings() {
        let v = Json::Str("λ → µ".into());
        assert_eq!(Json::parse(&v.to_line()), Some(v));
        assert_eq!(Json::parse("\"\\u00e9\""), Some(Json::Str("é".into())));
    }
}
