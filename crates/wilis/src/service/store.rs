//! The memoized result store: a typed key over the full scenario
//! coordinate, an in-memory map, and an optional JSON-lines disk store
//! so repeated grid points are served from cache across calls *and*
//! across processes.
//!
//! # Disk format (`WILIS_STORE`)
//!
//! One record per line: `{"v":1,"key":{…},"result":{…}}`. Every `f64`
//! (the SNR in the key; PBER sums and scatter points in the result) is
//! stored as the `u64` bit pattern of its IEEE-754 encoding, so a value
//! read back is **bit-equal** to the value written — warm results
//! reproduce cold results exactly, which is what lets the service keep
//! the engine's bit-identity contract across a cold/warm split. Corrupt
//! or foreign lines are skipped (and counted), never fatal: a store file
//! is a cache, not a database.
//!
//! # Crash safety and degradation
//!
//! The store survives its own failure modes and counts every one:
//!
//! - a **torn final line** (a crash mid-append, or
//!   [`crate::faults::FaultSite::TornWrite`] injection) is skipped at
//!   load like any corrupt line, and the next successful append first
//!   writes a newline so the torn tail can never merge with a healthy
//!   record;
//! - **transient IO errors** (organic or injected) get a bounded
//!   deterministic retry — the backoff is expressed in attempt count
//!   ([`STORE_ATTEMPTS`]), never in wall-clock, so a faulted run stays
//!   bit-identical at any thread count;
//! - a [`StoreBudget`] caps the record count and/or the mirrored file
//!   size; over-budget records are evicted oldest-first and the file is
//!   rewritten by **atomic compaction** (write a sibling temp file, then
//!   rename), so a crash during compaction leaves the previous file
//!   intact.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use wilis_lis::registry::Params;
use wilis_mac::cell::{CellMetrics, NodeCellMetrics};
use wilis_mac::link::LinkMetrics;
use wilis_phy::PhyRate;
use wilis_softphy::HintBin;

use super::json::Json;
use crate::faults::{occurrence_of, FaultInjector, FaultSite};
use crate::scenario::{PacketStat, Scenario, ScenarioResult, StopMetric, StoppingRule};

/// The bounded retry budget of one store operation: an append or load
/// may fail (organically or by injection) at most `STORE_ATTEMPTS - 1`
/// times before the store absorbs it as an IO error and degrades to
/// in-memory for that record. The backoff between attempts is the
/// attempt count itself — never a sleep — keeping faulted runs
/// bit-identical at any thread count.
pub const STORE_ATTEMPTS: u64 = 3;

/// The execution-relevant identity of a stopping rule, with floats as
/// bits so the key stays `Eq + Ord + Hash`. Two rules that differ in any
/// knob may stop a point at different depths, so they key different
/// cache entries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoppingKey {
    /// The watched metric.
    pub metric: StopMetric,
    /// `target_half_width` as IEEE-754 bits.
    pub target_bits: u64,
    /// `z` as IEEE-754 bits.
    pub z_bits: u64,
    /// The chunk size in packets.
    pub chunk_packets: u32,
}

impl From<StoppingRule> for StoppingKey {
    fn from(rule: StoppingRule) -> Self {
        Self {
            metric: rule.metric,
            target_bits: rule.target_half_width.to_bits(),
            z_bits: rule.z.to_bits(),
            chunk_packets: rule.chunk_packets,
        }
    }
}

/// The typed cache key of one grid point: every [`Scenario`] field (SNR
/// as bits — NaN-safe exact identity, like the engine's own
/// shared-channel `GroupKey`) plus the two runner knobs that change what
/// a result *contains* — packet-stats recording and the stopping rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreKey {
    /// Index of the rate in [`PhyRate::all`] — a stable small integer.
    pub rate_index: u8,
    /// Decoder registry name.
    pub decoder: String,
    /// Channel registry name.
    pub channel: String,
    /// Channel parameters.
    pub channel_params: Params,
    /// Link-policy registry name.
    pub link: String,
    /// Link-policy parameters.
    pub link_params: Params,
    /// Contention-policy registry name.
    pub contention: String,
    /// Contention parameters.
    pub contention_params: Params,
    /// Cell node count.
    pub nodes: u32,
    /// Operating SNR as IEEE-754 bits.
    pub snr_bits: u64,
    /// Scenario seed.
    pub seed: u64,
    /// Packet (or slot) budget.
    pub packets: u32,
    /// Payload bits per packet.
    pub payload_bits: u64,
    /// Whether per-packet scatter stats were recorded into the result.
    pub record_packet_stats: bool,
    /// The stopping rule in force, if any.
    pub stopping: Option<StoppingKey>,
}

impl StoreKey {
    /// The key of `sc` under the given runner configuration.
    pub fn new(sc: &Scenario, record_packet_stats: bool, stopping: Option<StoppingRule>) -> Self {
        Self {
            rate_index: rate_index(sc.rate),
            decoder: sc.decoder.clone(),
            channel: sc.channel.clone(),
            channel_params: sc.channel_params.clone(),
            link: sc.link.clone(),
            link_params: sc.link_params.clone(),
            contention: sc.contention.clone(),
            contention_params: sc.contention_params.clone(),
            nodes: sc.nodes,
            snr_bits: sc.snr_db.to_bits(),
            seed: sc.seed,
            packets: sc.packets,
            payload_bits: sc.payload_bits as u64,
            record_packet_stats,
            stopping: stopping.map(StoppingKey::from),
        }
    }
}

fn rate_index(rate: PhyRate) -> u8 {
    PhyRate::all()
        .iter()
        .position(|&r| r == rate)
        .expect("PhyRate::all() contains every variant") as u8 // lint: allow(panic-policy) — all() enumerates the whole enum
}

fn f64_bits(v: f64) -> Json {
    Json::Num(v.to_bits())
}

fn params_to_json(p: &Params) -> Json {
    Json::Obj(
        p.iter()
            .map(|(k, v)| (k.to_string(), Json::Str(v.to_string())))
            .collect(),
    )
}

fn params_from_json(v: &Json) -> Option<Params> {
    let Json::Obj(map) = v else { return None };
    let mut p = Params::new();
    for (k, val) in map {
        p.set(k, val.as_str()?);
    }
    Some(p)
}

fn key_to_json(key: &StoreKey) -> Json {
    Json::obj([
        ("rate", Json::Num(u64::from(key.rate_index))),
        ("decoder", Json::Str(key.decoder.clone())),
        ("channel", Json::Str(key.channel.clone())),
        ("channel_params", params_to_json(&key.channel_params)),
        ("link", Json::Str(key.link.clone())),
        ("link_params", params_to_json(&key.link_params)),
        ("contention", Json::Str(key.contention.clone())),
        ("contention_params", params_to_json(&key.contention_params)),
        ("nodes", Json::Num(u64::from(key.nodes))),
        ("snr_bits", Json::Num(key.snr_bits)),
        ("seed", Json::Num(key.seed)),
        ("packets", Json::Num(u64::from(key.packets))),
        ("payload_bits", Json::Num(key.payload_bits)),
        ("record_stats", Json::Bool(key.record_packet_stats)),
        (
            "stopping",
            match &key.stopping {
                None => Json::Null,
                Some(s) => Json::obj([
                    (
                        "metric",
                        Json::Str(
                            match s.metric {
                                StopMetric::Ber => "ber",
                                StopMetric::Per => "per",
                            }
                            .to_string(),
                        ),
                    ),
                    ("target_bits", Json::Num(s.target_bits)),
                    ("z_bits", Json::Num(s.z_bits)),
                    ("chunk_packets", Json::Num(u64::from(s.chunk_packets))),
                ]),
            },
        ),
    ])
}

fn key_from_json(v: &Json) -> Option<StoreKey> {
    let stopping = match v.get("stopping")? {
        Json::Null => None,
        s => Some(StoppingKey {
            metric: match s.get("metric")?.as_str()? {
                "ber" => StopMetric::Ber,
                "per" => StopMetric::Per,
                _ => return None,
            },
            target_bits: s.get("target_bits")?.as_u64()?,
            z_bits: s.get("z_bits")?.as_u64()?,
            chunk_packets: u32::try_from(s.get("chunk_packets")?.as_u64()?).ok()?,
        }),
    };
    Some(StoreKey {
        rate_index: u8::try_from(v.get("rate")?.as_u64()?).ok()?,
        decoder: v.get("decoder")?.as_str()?.to_string(),
        channel: v.get("channel")?.as_str()?.to_string(),
        channel_params: params_from_json(v.get("channel_params")?)?,
        link: v.get("link")?.as_str()?.to_string(),
        link_params: params_from_json(v.get("link_params")?)?,
        contention: v.get("contention")?.as_str()?.to_string(),
        contention_params: params_from_json(v.get("contention_params")?)?,
        nodes: u32::try_from(v.get("nodes")?.as_u64()?).ok()?,
        snr_bits: v.get("snr_bits")?.as_u64()?,
        seed: v.get("seed")?.as_u64()?,
        packets: u32::try_from(v.get("packets")?.as_u64()?).ok()?,
        payload_bits: v.get("payload_bits")?.as_u64()?,
        record_packet_stats: v.get("record_stats")?.as_bool()?,
        stopping,
    })
}

fn link_to_json(m: &LinkMetrics) -> Json {
    Json::obj([
        ("packets", Json::Num(m.packets)),
        ("delivered", Json::Num(m.delivered)),
        ("gave_up", Json::Num(m.gave_up)),
        ("bits_delivered", Json::Num(m.bits_delivered)),
        ("bits_transmitted", Json::Num(m.bits_transmitted)),
        ("bits_retransmitted", Json::Num(m.bits_retransmitted)),
        ("under", Json::Num(m.under)),
        ("accurate", Json::Num(m.accurate)),
        ("over", Json::Num(m.over)),
        ("selected_mbps_sum", f64_bits(m.selected_mbps_sum)),
        ("recovered", Json::Num(m.recovered)),
        (
            "attempts_hist",
            Json::Arr(m.attempts_hist.iter().map(|&n| Json::Num(n)).collect()),
        ),
        ("effective_rate_sum", f64_bits(m.effective_rate_sum)),
    ])
}

fn link_from_json(v: &Json) -> Option<LinkMetrics> {
    let mut attempts_hist = LinkMetrics::default().attempts_hist;
    let hist = v.get("attempts_hist")?.as_arr()?;
    if hist.len() != attempts_hist.len() {
        return None;
    }
    for (slot, item) in attempts_hist.iter_mut().zip(hist) {
        *slot = item.as_u64()?;
    }
    Some(LinkMetrics {
        packets: v.get("packets")?.as_u64()?,
        delivered: v.get("delivered")?.as_u64()?,
        gave_up: v.get("gave_up")?.as_u64()?,
        bits_delivered: v.get("bits_delivered")?.as_u64()?,
        bits_transmitted: v.get("bits_transmitted")?.as_u64()?,
        bits_retransmitted: v.get("bits_retransmitted")?.as_u64()?,
        under: v.get("under")?.as_u64()?,
        accurate: v.get("accurate")?.as_u64()?,
        over: v.get("over")?.as_u64()?,
        selected_mbps_sum: f64::from_bits(v.get("selected_mbps_sum")?.as_u64()?),
        recovered: v.get("recovered")?.as_u64()?,
        attempts_hist,
        effective_rate_sum: f64::from_bits(v.get("effective_rate_sum")?.as_u64()?),
    })
}

fn cell_to_json(c: &CellMetrics) -> Json {
    Json::obj([
        ("nodes", Json::Num(u64::from(c.nodes))),
        ("slots", Json::Num(c.slots)),
        ("payload_bits", Json::Num(c.payload_bits)),
        ("idle_slots", Json::Num(c.idle_slots)),
        ("clean_slots", Json::Num(c.clean_slots)),
        ("capture_slots", Json::Num(c.capture_slots)),
        ("collision_slots", Json::Num(c.collision_slots)),
        (
            "per_node",
            Json::Arr(
                c.per_node
                    .iter()
                    .map(|n| {
                        Json::obj([
                            ("attempts", Json::Num(n.attempts)),
                            ("collisions", Json::Num(n.collisions)),
                            ("delivered", Json::Num(n.delivered)),
                            ("bits_delivered", Json::Num(n.bits_delivered)),
                            ("bits_transmitted", Json::Num(n.bits_transmitted)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn cell_from_json(v: &Json) -> Option<CellMetrics> {
    let mut per_node = Vec::new();
    for item in v.get("per_node")?.as_arr()? {
        per_node.push(NodeCellMetrics {
            attempts: item.get("attempts")?.as_u64()?,
            collisions: item.get("collisions")?.as_u64()?,
            delivered: item.get("delivered")?.as_u64()?,
            bits_delivered: item.get("bits_delivered")?.as_u64()?,
            bits_transmitted: item.get("bits_transmitted")?.as_u64()?,
        });
    }
    Some(CellMetrics {
        nodes: u32::try_from(v.get("nodes")?.as_u64()?).ok()?,
        slots: v.get("slots")?.as_u64()?,
        payload_bits: v.get("payload_bits")?.as_u64()?,
        idle_slots: v.get("idle_slots")?.as_u64()?,
        clean_slots: v.get("clean_slots")?.as_u64()?,
        capture_slots: v.get("capture_slots")?.as_u64()?,
        collision_slots: v.get("collision_slots")?.as_u64()?,
        per_node,
    })
}

fn result_to_json(r: &ScenarioResult) -> Json {
    Json::obj([
        ("label", Json::Str(r.label.clone())),
        ("packets", Json::Num(r.packets)),
        ("packet_errors", Json::Num(r.packet_errors)),
        ("bits", Json::Num(r.bits)),
        ("bit_errors", Json::Num(r.bit_errors)),
        (
            "hint_bins",
            Json::Arr(
                r.hint_bins
                    .iter()
                    .map(|b| {
                        Json::obj([("bits", Json::Num(b.bits)), ("errors", Json::Num(b.errors))])
                    })
                    .collect(),
            ),
        ),
        ("predicted_pber_sum", f64_bits(r.predicted_pber_sum)),
        (
            "packet_stats",
            Json::Arr(
                r.packet_stats
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("predicted", f64_bits(s.predicted)),
                            ("actual", f64_bits(s.actual)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("link", r.link.as_ref().map_or(Json::Null, link_to_json)),
        ("cell", r.cell.as_ref().map_or(Json::Null, cell_to_json)),
    ])
}

fn result_from_json(v: &Json) -> Option<ScenarioResult> {
    let mut hint_bins = Vec::new();
    for item in v.get("hint_bins")?.as_arr()? {
        hint_bins.push(HintBin {
            bits: item.get("bits")?.as_u64()?,
            errors: item.get("errors")?.as_u64()?,
        });
    }
    let mut packet_stats = Vec::new();
    for item in v.get("packet_stats")?.as_arr()? {
        packet_stats.push(PacketStat {
            predicted: f64::from_bits(item.get("predicted")?.as_u64()?),
            actual: f64::from_bits(item.get("actual")?.as_u64()?),
        });
    }
    Some(ScenarioResult {
        // The submission index is call-local, not part of the point's
        // identity; the service rewrites it on every hit.
        scenario: 0,
        label: v.get("label")?.as_str()?.to_string(),
        packets: v.get("packets")?.as_u64()?,
        packet_errors: v.get("packet_errors")?.as_u64()?,
        bits: v.get("bits")?.as_u64()?,
        bit_errors: v.get("bit_errors")?.as_u64()?,
        hint_bins,
        predicted_pber_sum: f64::from_bits(v.get("predicted_pber_sum")?.as_u64()?),
        packet_stats,
        link: match v.get("link")? {
            Json::Null => None,
            m => Some(link_from_json(m)?),
        },
        cell: match v.get("cell")? {
            Json::Null => None,
            c => Some(cell_from_json(c)?),
        },
    })
}

/// One store record as a JSON line; version-tagged so a future format
/// can coexist in one file.
fn record_to_line(key: &StoreKey, result: &ScenarioResult) -> String {
    Json::obj([
        ("v", Json::Num(1)),
        ("key", key_to_json(key)),
        ("result", result_to_json(result)),
    ])
    .to_line()
}

fn record_from_line(line: &str) -> Option<(StoreKey, ScenarioResult)> {
    let v = Json::parse(line)?;
    if v.get("v")?.as_u64()? != 1 {
        return None;
    }
    Some((
        key_from_json(v.get("key")?)?,
        result_from_json(v.get("result")?)?,
    ))
}

/// The eviction policy of a [`ResultStore`]: optional caps on the
/// record count and on the mirrored file's size. `Default` is
/// unbounded — the store never evicts, matching the pre-budget
/// behavior bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreBudget {
    /// Maximum records held (in memory and on disk); the oldest records
    /// by insertion order are evicted first.
    pub max_records: Option<u64>,
    /// Maximum mirrored-file size in bytes; when an append pushes the
    /// file past it, the store compacts and evicts oldest-first until
    /// the rewritten file fits (the newest record is never evicted).
    pub max_bytes: Option<u64>,
}

impl StoreBudget {
    /// No limits — the store never evicts.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Caps the record count.
    #[must_use]
    pub fn with_max_records(mut self, n: u64) -> Self {
        self.max_records = Some(n);
        self
    }

    /// Caps the mirrored file size in bytes.
    #[must_use]
    pub fn with_max_bytes(mut self, n: u64) -> Self {
        self.max_bytes = Some(n);
        self
    }
}

/// One memoized record plus its insertion stamp — the FIFO coordinate
/// the eviction policy orders by.
#[derive(Debug)]
struct StoreEntry {
    stamp: u64,
    result: ScenarioResult,
}

/// The memoized result map, optionally mirrored to a JSON-lines file.
///
/// Inserts append one line; loads replay the file (later records win, so
/// an interrupted append at worst loses its own record). IO failures are
/// counted, never fatal — a broken disk degrades the store to in-memory.
/// See the module docs for the crash-safety and eviction behavior; every
/// degradation event (skipped lines, IO errors, retries, injected
/// faults, evictions, compactions) is exposed through a counter getter.
#[derive(Debug, Default)]
pub struct ResultStore {
    map: BTreeMap<StoreKey, StoreEntry>,
    path: Option<PathBuf>,
    budget: StoreBudget,
    faults: Option<FaultInjector>,
    next_stamp: u64,
    bytes_on_disk: u64,
    tail_torn: bool,
    loaded: u64,
    skipped: u64,
    io_errors: u64,
    retries: u64,
    write_faults: u64,
    read_faults: u64,
    torn_writes: u64,
    corrupt_records: u64,
    evictions: u64,
    compactions: u64,
}

impl ResultStore {
    /// A purely in-memory store.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// A store mirrored at `path`: existing records are loaded now and
    /// every insert appends a line. A missing file is an empty store; an
    /// unreadable one counts an IO error and starts empty. Unbounded,
    /// fault-free — see [`ResultStore::at_path_with`] for the knobs.
    pub fn at_path(path: impl Into<PathBuf>) -> Self {
        Self::at_path_with(path, StoreBudget::unbounded(), None)
    }

    /// A mirrored store with an eviction [`StoreBudget`] and an optional
    /// [`FaultInjector`] consulted at every store fault site. The load
    /// itself runs under the bounded retry policy ([`STORE_ATTEMPTS`]);
    /// a file whose final line is torn (no trailing newline) loads every
    /// healthy record and arms the tail repair for the next append.
    pub fn at_path_with(
        path: impl Into<PathBuf>,
        budget: StoreBudget,
        faults: Option<FaultInjector>,
    ) -> Self {
        let path = path.into();
        let mut store = Self {
            path: Some(path.clone()),
            budget,
            faults,
            ..Self::default()
        };
        let mut attempt: u64 = 0;
        let text = loop {
            let injected = matches!(&store.faults,
                Some(f) if f.fires(FaultSite::StoreRead, attempt));
            let outcome = if injected {
                store.read_faults += 1;
                Err(std::io::Error::other("injected store read fault"))
            } else {
                std::fs::read_to_string(&path)
            };
            match outcome {
                Ok(text) => break text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => break String::new(),
                Err(_) => {
                    attempt += 1;
                    if attempt >= STORE_ATTEMPTS {
                        store.io_errors += 1;
                        break String::new();
                    }
                    store.retries += 1;
                }
            }
        };
        store.bytes_on_disk = text.len() as u64;
        store.tail_torn = !text.is_empty() && !text.ends_with('\n');
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match record_from_line(line) {
                Some((key, result)) => {
                    let stamp = store.next_stamp;
                    store.next_stamp += 1;
                    store.map.insert(key, StoreEntry { stamp, result });
                    store.loaded += 1;
                }
                None => store.skipped += 1,
            }
        }
        store.enforce_budget();
        store
    }

    /// The mirrored file path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The eviction budget in force.
    pub fn budget(&self) -> StoreBudget {
        self.budget
    }

    /// Installs (or clears) the fault injector consulted at the store's
    /// fault sites. Loads already performed are unaffected.
    pub fn set_faults(&mut self, faults: Option<FaultInjector>) {
        self.faults = faults;
    }

    /// Replaces the eviction budget and enforces it immediately.
    pub fn set_budget(&mut self, budget: StoreBudget) {
        self.budget = budget;
        self.enforce_budget();
    }

    /// Records in the store.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Records loaded from disk at construction.
    pub fn loaded(&self) -> u64 {
        self.loaded
    }

    /// Corrupt/foreign lines skipped while loading (a torn final line
    /// counts here).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// IO failures absorbed after the retry budget (load or append).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Deterministic retry attempts performed after a failed store
    /// operation.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Append attempts failed by injection
    /// ([`FaultSite::StoreWrite`]).
    pub fn write_faults(&self) -> u64 {
        self.write_faults
    }

    /// Load attempts failed by injection ([`FaultSite::StoreRead`]).
    pub fn read_faults(&self) -> u64 {
        self.read_faults
    }

    /// Records written torn by injection ([`FaultSite::TornWrite`]).
    pub fn torn_writes(&self) -> u64 {
        self.torn_writes
    }

    /// Records written mangled by injection
    /// ([`FaultSite::CorruptRecord`]).
    pub fn corrupt_records(&self) -> u64 {
        self.corrupt_records
    }

    /// Records evicted by the [`StoreBudget`].
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Atomic file compactions performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// True when the mirrored file currently ends in a torn (unterminated)
    /// line; the next successful append repairs it.
    pub fn tail_torn(&self) -> bool {
        self.tail_torn
    }

    /// The mirrored file's size in bytes as the store accounts it.
    pub fn bytes_on_disk(&self) -> u64 {
        self.bytes_on_disk
    }

    /// Looks up the memoized result for `key`.
    pub fn get(&self, key: &StoreKey) -> Option<&ScenarioResult> {
        self.map.get(key).map(|e| &e.result)
    }

    /// Inserts (and, when mirrored, appends) one result, then enforces
    /// the eviction budget.
    pub fn insert(&mut self, key: StoreKey, result: ScenarioResult) {
        if let Some(path) = self.path.clone() {
            let line = record_to_line(&key, &result);
            self.append_line(&path, &line);
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.map.insert(key, StoreEntry { stamp, result });
        self.enforce_budget();
    }

    /// Appends one record line under the fault plan and the bounded
    /// retry policy. Torn and corrupt injections are content-addressed
    /// (the occurrence index is the line's [`occurrence_of`] hash), so
    /// the decision never depends on completion order.
    fn append_line(&mut self, path: &Path, line: &str) {
        let occ = occurrence_of(line.as_bytes());
        let corrupt = matches!(&self.faults,
            Some(f) if f.fires(FaultSite::CorruptRecord, occ));
        let torn = matches!(&self.faults,
            Some(f) if f.fires(FaultSite::TornWrite, occ));
        let mut payload = line.as_bytes().to_vec();
        if corrupt {
            // Same length, unparsable: the mangled record must be
            // skipped (and counted) at the next load.
            self.corrupt_records += 1;
            payload[0] = b'!';
        }
        let terminated = !torn;
        if torn {
            self.torn_writes += 1;
            payload.truncate(payload.len() / 2);
        }
        let mut attempt: u64 = 0;
        loop {
            let injected = matches!(&self.faults,
                Some(f) if f.fires(FaultSite::StoreWrite, attempt));
            let outcome = if injected {
                self.write_faults += 1;
                Err(std::io::Error::other("injected store write fault"))
            } else {
                let lead = self.tail_torn;
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| {
                        if lead {
                            // Repair the torn tail: a newline first, so
                            // this record cannot merge with the torn
                            // half-line before it.
                            f.write_all(b"\n")?;
                        }
                        f.write_all(&payload)?;
                        if terminated {
                            f.write_all(b"\n")?;
                        }
                        Ok(())
                    })
            };
            match outcome {
                Ok(()) => {
                    self.bytes_on_disk +=
                        u64::from(self.tail_torn) + payload.len() as u64 + u64::from(terminated);
                    self.tail_torn = !terminated;
                    break;
                }
                Err(_) => {
                    attempt += 1;
                    if attempt >= STORE_ATTEMPTS {
                        self.io_errors += 1;
                        break;
                    }
                    self.retries += 1;
                }
            }
        }
    }

    /// Evicts past the record budget and compacts the mirrored file when
    /// eviction or the byte budget requires it.
    fn enforce_budget(&mut self) {
        let mut evicted = false;
        if let Some(max) = self.budget.max_records {
            while self.map.len() as u64 > max {
                self.evict_oldest();
                evicted = true;
            }
        }
        let over_bytes = self
            .budget
            .max_bytes
            .is_some_and(|max| self.bytes_on_disk > max);
        if self.path.is_some() && (evicted || over_bytes) {
            self.compact();
        }
    }

    /// Removes the oldest record by insertion stamp.
    fn evict_oldest(&mut self) {
        let oldest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(k, _)| k.clone());
        if let Some(key) = oldest {
            self.map.remove(&key);
            self.evictions += 1;
        }
    }

    /// Rewrites the mirrored file to exactly the live records, oldest
    /// first, **atomically**: the new contents go to a sibling temp file
    /// which is then renamed over the store — a crash mid-compaction
    /// leaves the previous file intact. Under a byte budget, oldest
    /// records are evicted until the rewritten file fits (the newest
    /// record is never evicted). A no-op for in-memory stores.
    pub fn compact(&mut self) {
        let Some(path) = self.path.clone() else {
            return;
        };
        let mut lines: Vec<(StoreKey, String, u64)> = self
            .map
            .iter()
            .map(|(k, e)| (k.clone(), record_to_line(k, &e.result), e.stamp))
            .collect();
        lines.sort_by_key(|(_, _, stamp)| *stamp);
        if let Some(max) = self.budget.max_bytes {
            let mut total: u64 = lines.iter().map(|(_, l, _)| l.len() as u64 + 1).sum();
            while total > max && lines.len() > 1 {
                let (key, line, _) = lines.remove(0);
                total -= line.len() as u64 + 1;
                self.map.remove(&key);
                self.evictions += 1;
            }
        }
        let mut buf = String::new();
        for (_, line, _) in &lines {
            buf.push_str(line);
            buf.push('\n');
        }
        let tmp = {
            let mut os = path.clone().into_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let written =
            std::fs::write(&tmp, buf.as_bytes()).and_then(|()| std::fs::rename(&tmp, &path));
        match written {
            Ok(()) => {
                self.bytes_on_disk = buf.len() as u64;
                self.tail_torn = false;
                self.compactions += 1;
            }
            Err(_) => {
                self.io_errors += 1;
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_key(seed: u64) -> StoreKey {
        let mut link_params = Params::new();
        link_params.set("max_retries", "3");
        let sc = Scenario {
            rate: PhyRate::QpskHalf,
            decoder: "bcjr".to_string(),
            channel: "awgn".to_string(),
            channel_params: Params::new(),
            link: "arq".to_string(),
            link_params,
            contention: "p2p".to_string(),
            contention_params: Params::new(),
            nodes: 1,
            snr_db: 9.0,
            seed,
            packets: 64,
            payload_bits: 100,
        };
        StoreKey::new(&sc, true, Some(StoppingRule::ber(1e-3).with_chunk(16)))
    }

    fn sample_result() -> ScenarioResult {
        let mut link = LinkMetrics {
            packets: 7,
            selected_mbps_sum: 1.25e-3,
            ..LinkMetrics::default()
        };
        link.attempts_hist[2] = 5;
        ScenarioResult {
            scenario: 3,
            label: "qpsk 1/2 · bcjr · 9.0 dB".to_string(),
            packets: 7,
            packet_errors: 2,
            bits: 700,
            bit_errors: 13,
            hint_bins: vec![HintBin { bits: 5, errors: 1 }, HintBin::default()],
            predicted_pber_sum: 0.123456789,
            packet_stats: vec![PacketStat {
                predicted: 0.25,
                actual: f64::from_bits(0x3FB9_9999_9999_999A),
            }],
            link: Some(link),
            cell: Some(CellMetrics {
                nodes: 2,
                slots: 10,
                payload_bits: 100,
                idle_slots: 3,
                clean_slots: 5,
                capture_slots: 1,
                collision_slots: 1,
                per_node: vec![NodeCellMetrics {
                    attempts: 4,
                    collisions: 1,
                    delivered: 3,
                    bits_delivered: 300,
                    bits_transmitted: 400,
                }],
            }),
        }
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let key = sample_key(42);
        let result = sample_result();
        let line = record_to_line(&key, &result);
        let (key2, result2) = record_from_line(&line).expect("line parses");
        assert_eq!(key, key2);
        // `scenario` is call-local and reset on read; everything else is
        // bit-identical (PartialEq on f64 fields is exact).
        let mut expect = result.clone();
        expect.scenario = 0;
        assert_eq!(expect, result2);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wilis_store_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::at_path(&path);
            store.insert(sample_key(1), sample_result());
            store.insert(sample_key(2), sample_result());
        }
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{{not json"))
            .expect("append corrupt line");
        let reloaded = ResultStore::at_path(&path);
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.loaded(), 2);
        assert_eq!(reloaded.skipped(), 1);
        assert!(reloaded.get(&sample_key(1)).is_some());
        assert!(reloaded.get(&sample_key(3)).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
