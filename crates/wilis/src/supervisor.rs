//! The unwind boundary of the sweep stack.
//!
//! This is the **only** module in the workspace allowed to touch
//! `catch_unwind` / `resume_unwind` — the `supervised-unwind` lint rule
//! enforces it — so every policy decision about panics lives in one
//! place: worker jobs are quarantined (a panicking grid point becomes a
//! typed [`crate::faults::PointOutcome::Failed`] while the rest of the
//! grid completes), while panics on orchestration threads (the service's
//! streaming bridge) propagate to the caller unchanged.
//!
//! Keeping the boundary this narrow is what makes the policy auditable:
//! a `catch_unwind` sprinkled next to the code it guards can silently
//! swallow an invariant violation; a quarantine that must flow through
//! [`run_quarantined`] cannot.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f` under an unwind boundary: its value on success, the panic
/// payload rendered to text on unwind.
///
/// `AssertUnwindSafe` is sound here because callers discard every value
/// the closure may have half-mutated: a quarantined worker job's entire
/// output is replaced by the `Failed` outcome, so no witness of broken
/// state survives the catch.
pub(crate) fn run_quarantined<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "worker job panicked with a non-string payload".to_string()
        }
    })
}

/// Unwraps a joined thread's result, resuming the panic on the joining
/// thread when the child unwound — the orchestration-thread policy:
/// supervision quarantines *worker jobs*; a panic anywhere else is an
/// engine bug and must stay loud.
pub(crate) fn propagate_join<T>(joined: std::thread::Result<T>) -> T {
    joined.unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// The deliberate worker-job panic of the fault plan: fired inside the
/// unwind boundary when [`crate::faults::FaultSite::WorkerPanic`] is
/// scheduled at `point`, to exercise the same quarantine path an organic
/// panic would take.
pub(crate) fn inject_panic(point: usize) -> ! {
    panic!("injected worker panic at grid point {point}") // lint: allow(panic-policy) — the deliberate fault of the injection plan, always caught by run_quarantined
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_renders_payloads() {
        assert_eq!(run_quarantined(|| 7), Ok(7));
        let msg = run_quarantined(|| panic!("boom {}", 1)).unwrap_err();
        assert_eq!(msg, "boom 1");
        let msg = run_quarantined(|| std::panic::panic_any(42u32)).unwrap_err();
        assert!(msg.contains("non-string payload"));
    }

    #[test]
    fn injected_panic_is_catchable_and_named() {
        let msg = run_quarantined(|| inject_panic(3)).unwrap_err();
        assert_eq!(msg, "injected worker panic at grid point 3");
    }
}
