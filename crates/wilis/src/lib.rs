//! WiLIS: architectural modeling of wireless systems.
//!
//! This is the top-level crate of a from-scratch reproduction of
//! *"WiLIS: Architectural Modeling of Wireless Systems"* (Fleming, Ng,
//! Gross, Arvind — ISPASS 2011): a latency-insensitive co-simulation
//! platform for wireless protocol development, demonstrated by showing
//! that the SoftPHY abstraction (per-bit confidence exported from the
//! channel decoder) can be implemented efficiently in hardware.
//!
//! # Crate map
//!
//! | Layer | Crate | What it models |
//! |---|---|---|
//! | Platform | [`lis`] | latency-insensitive multi-clock engine, plug-n-play registry, link models |
//! | Numerics | [`fxp`] | fixed-point and complex arithmetic |
//! | Channel | [`channel`] | AWGN, Rayleigh fading, reproducible replay noise |
//! | FEC | [`fec`] | encoder, Viterbi, SOVA, sliding-window BCJR |
//! | Baseband | [`phy`] | scrambler, interleaver, mapper, soft demapper, FFT, OFDM, framing |
//! | SoftPHY | [`softphy`] | hint→BER estimation, scaling factors, calibration |
//! | Link layer | [`mac`] | SoftRate, ARQ, partial packet recovery; registry-addressed link policies |
//! | Platform model | [`cosim`] | Figure 2 simulation-speed model |
//! | Cost model | [`area`] | Figure 8 LUT/FF synthesis model |
//!
//! The [`experiment`] module drives every table and figure of the paper's
//! evaluation; the `wilis-bench` crate regenerates them from the command
//! line, and `EXPERIMENTS.md` records paper-vs-reproduction.
//!
//! # Quickstart
//!
//! ```
//! use wilis::prelude::*;
//!
//! // Send one packet through an AWGN channel and read its SoftPHY hints.
//! let rate = PhyRate::Qam16Half;
//! let payload: Vec<u8> = (0..256).map(|i| (i % 2) as u8).collect();
//! let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
//!
//! let mut samples = tx.samples.clone();
//! AwgnChannel::new(SnrDb::new(12.0), 7).apply(&mut samples);
//!
//! let mut rx = Receiver::bcjr(rate);
//! let got = rx.receive(&samples, payload.len(), 0x5D);
//! let est = BerEstimator::analytic(rate.modulation(), DecoderKind::Bcjr);
//! let pber = est.per_packet(&got.hints);
//! assert!(pber < 0.01, "clean-ish channel, low predicted error rate");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod faults;
pub mod scenario;
pub mod service;
mod supervisor;
mod system;

pub use faults::{FaultInjector, FaultReport, FaultSite, PointOutcome};
pub use scenario::{
    Scenario, ScenarioResult, StopMetric, StoppingRule, SupervisedSweep, SweepGrid, SweepRunner,
};
pub use service::{ResultStore, ServiceMetrics, StoreBudget, SweepService};
pub use system::{DecoderSlot, SystemConfig, WilisSystem};

/// The platform substrate (re-export of `wilis-lis`).
pub use wilis_lis as lis;

/// Fixed-point numerics (re-export of `wilis-fxp`).
pub use wilis_fxp as fxp;

/// Channel models (re-export of `wilis-channel`).
pub use wilis_channel as channel;

/// Convolutional FEC (re-export of `wilis-fec`).
pub use wilis_fec as fec;

/// OFDM baseband (re-export of `wilis-phy`).
pub use wilis_phy as phy;

/// SoftPHY estimation (re-export of `wilis-softphy`).
pub use wilis_softphy as softphy;

/// Link layer (re-export of `wilis-mac`).
pub use wilis_mac as mac;

/// Co-simulation performance model (re-export of `wilis-cosim`).
pub use wilis_cosim as cosim;

/// Area model (re-export of `wilis-area`).
pub use wilis_area as area;

/// The names most programs want in scope.
pub mod prelude {
    pub use wilis_channel::{AwgnChannel, Channel, FadingAwgnChannel, ReplayChannel, SnrDb};
    pub use wilis_fec::{
        BcjrDecoder, ConvCode, ConvEncoder, SoftDecoder, SovaDecoder, ViterbiDecoder,
    };
    pub use wilis_fxp::Cplx;
    pub use wilis_mac::{
        CellMetrics, ContentionPolicy, LinkMetrics, LinkPolicy, SelectionStats, SoftRate,
    };
    pub use wilis_phy::{Modulation, PhyRate, Receiver, Transmitter};
    pub use wilis_softphy::{BerEstimator, DecoderKind};

    pub use crate::{
        FaultInjector, FaultReport, PointOutcome, Scenario, ScenarioResult, ServiceMetrics,
        StoppingRule, SweepGrid, SweepRunner, SweepService, SystemConfig, WilisSystem,
    };
}
