//! Whole-decoder synthesis reports: the Figure 8 table.

use std::fmt;

use crate::model::{
    bcjr_decision, bcjr_final_reversal, bcjr_initial_reversal, bmu, pmu, sova_path_detect,
    sova_soft_traceback, viterbi_traceback, AreaReport, DecoderParams, UnitArea,
};

/// Which decoder to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoderChoice {
    /// Hard-output Viterbi baseline.
    Viterbi,
    /// Two-traceback-unit SOVA.
    Sova,
    /// Sliding-window BCJR (three PMUs + reversal buffers).
    Bcjr,
}

impl fmt::Display for DecoderChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DecoderChoice::Viterbi => "Viterbi",
            DecoderChoice::Sova => "SOVA",
            DecoderChoice::Bcjr => "BCJR",
        })
    }
}

/// A decoder's synthesized area: total plus the per-unit breakdown rows of
/// Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisTable {
    /// The decoder synthesized.
    pub decoder: DecoderChoice,
    /// The parameters used.
    pub params: DecoderParams,
    /// Total area (including pipeline glue not attributed to any unit).
    pub total: UnitArea,
    /// Per-unit breakdown, in the paper's row order.
    pub units: Vec<AreaReport>,
}

/// Glue (FIFOs, control, interconnect) calibrated as the remainder between
/// the paper's decoder totals and its listed sub-units at the default
/// configuration; scaled with the unit count it stitches together.
fn glue(decoder: DecoderChoice, p: &DecoderParams) -> UnitArea {
    // Remainders at the paper defaults:
    //   Viterbi: 7569 − (5144 + 4672·0 … ) — the paper lists only the TU;
    //     the remainder covers its single PMU + BMU + glue.
    //   SOVA:    15114 − 13456(soft TU) = 1658 LUT; FF similar.
    //   BCJR:    32936 − (6561+804+8651+3×4672+63) = 2841 LUT.
    let (luts, registers) = match decoder {
        DecoderChoice::Viterbi => (0, 0),
        DecoderChoice::Sova => (1658, 1766),
        DecoderChoice::Bcjr => (2841, 4901),
    };
    // Glue scales weakly with metric width (datapath FIFOs).
    UnitArea {
        luts: luts * u64::from(p.metric_bits) / 12,
        registers: registers * u64::from(p.metric_bits) / 12,
    }
}

/// Synthesizes a decoder at the given parameters, producing the Figure 8
/// rows for that decoder.
pub fn synthesize(decoder: DecoderChoice, params: &DecoderParams) -> SynthesisTable {
    let mut units: Vec<AreaReport> = Vec::new();
    let total = match decoder {
        DecoderChoice::Viterbi => {
            // The paper's Viterbi row lists the traceback unit; the rest is
            // its PMU + BMU (7569−5144 = 2425 LUT, 4538−3927 = 611 FF at
            // defaults) which our PMU/BMU formulas approximate by scaling.
            let tu = viterbi_traceback(params);
            units.push(AreaReport {
                name: "Traceback Unit",
                area: tu,
            });
            let pmu_a = pmu(params);
            let bmu_a = bmu(params);
            // Residual registers of the metric pipeline.
            let pipeline = UnitArea {
                luts: 0,
                registers: (params.states as u64) * u64::from(params.metric_bits) * 570 / (64 * 12),
            };
            tu.plus(scale_pmu_for(DecoderChoice::Viterbi, pmu_a))
                .plus(bmu_a)
                .plus(pipeline)
        }
        DecoderChoice::Sova => {
            let soft_tu = sova_soft_traceback(params);
            let detect = sova_path_detect(params);
            units.push(AreaReport {
                name: "Soft TU",
                area: soft_tu,
            });
            units.push(AreaReport {
                name: "Soft Path Detect",
                area: detect,
            });
            // The detector is inside the soft TU (the paper's rows overlap);
            // the total adds the TU once, plus PMU-side glue.
            soft_tu.plus(glue(DecoderChoice::Sova, params))
        }
        DecoderChoice::Bcjr => {
            let decision = bcjr_decision(params);
            let init_rev = bcjr_initial_reversal(params);
            let final_rev = bcjr_final_reversal(params);
            let pmu_a = pmu(params);
            let bmu_a = bmu(params);
            units.push(AreaReport {
                name: "Soft Decision Unit",
                area: decision,
            });
            units.push(AreaReport {
                name: "Initial Rev. Buf.",
                area: init_rev,
            });
            units.push(AreaReport {
                name: "Final Rev. Buf.",
                area: final_rev,
            });
            units.push(AreaReport {
                name: "Path Metric Unit",
                area: pmu_a,
            });
            units.push(AreaReport {
                name: "Branch Metric Unit",
                area: bmu_a,
            });
            // Three PMUs: forward, backward, provisional backward (§4.3.2).
            decision
                .plus(init_rev)
                .plus(final_rev)
                .plus(pmu_a)
                .plus(pmu_a)
                .plus(pmu_a)
                .plus(bmu_a)
                .plus(glue(DecoderChoice::Bcjr, params))
        }
    };
    SynthesisTable {
        decoder,
        params: *params,
        total,
        units,
    }
}

/// Viterbi's PMU is shared logic with the others but its paper total
/// implies a leaner instance; scale it to the residual calibration.
fn scale_pmu_for(decoder: DecoderChoice, area: UnitArea) -> UnitArea {
    match decoder {
        // 7569 − 5144 − 63 = 2362 LUT for PMU at defaults vs 4672 generic:
        // the hard decoder needs no soft-margin datapath.
        DecoderChoice::Viterbi => UnitArea {
            luts: area.luts * 2362 / 4672,
            registers: area.registers,
        },
        _ => area,
    }
}

impl SynthesisTable {
    /// The full Figure 8 table at the paper's default parameters.
    pub fn paper_table() -> Vec<SynthesisTable> {
        let p = DecoderParams::paper_default();
        vec![
            synthesize(DecoderChoice::Bcjr, &p),
            synthesize(DecoderChoice::Sova, &p),
            synthesize(DecoderChoice::Viterbi, &p),
        ]
    }
}

impl fmt::Display for SynthesisTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<22} {:>8} {:>10}",
            self.decoder.to_string(),
            self.total.luts,
            self.total.registers
        )?;
        for u in &self.units {
            writeln!(
                f,
                "  {:<20} {:>8} {:>10}",
                u.name, u.area.luts, u.area.registers
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> DecoderParams {
        DecoderParams::paper_default()
    }

    #[test]
    fn totals_match_figure8_within_rounding() {
        // Paper: BCJR 32936/38420, SOVA 15114/15168, Viterbi 7569/4538.
        let bcjr = synthesize(DecoderChoice::Bcjr, &paper());
        assert_eq!(
            bcjr.total,
            UnitArea {
                luts: 32936,
                registers: 38420
            }
        );
        let sova = synthesize(DecoderChoice::Sova, &paper());
        assert_eq!(
            sova.total,
            UnitArea {
                luts: 15114,
                registers: 15168
            }
        );
        let viterbi = synthesize(DecoderChoice::Viterbi, &paper());
        assert_eq!(
            viterbi.total,
            UnitArea {
                luts: 7569,
                registers: 4538
            }
        );
    }

    #[test]
    fn bcjr_is_about_twice_sova_is_about_twice_viterbi() {
        let t = SynthesisTable::paper_table();
        let (bcjr, sova, viterbi) = (&t[0], &t[1], &t[2]);
        let r1 = bcjr.total.luts as f64 / sova.total.luts as f64;
        let r2 = sova.total.luts as f64 / viterbi.total.luts as f64;
        assert!((1.8..2.6).contains(&r1), "BCJR/SOVA {r1:.2}");
        assert!((1.8..2.6).contains(&r2), "SOVA/Viterbi {r2:.2}");
    }

    #[test]
    fn reversal_buffers_dominate_bcjr_registers() {
        // §4.4.3: "Although BCJR uses fewer registers[sic: more], this is
        // because of large buffering" - the final reversal buffer alone is
        // the majority of BCJR's register count.
        let bcjr = synthesize(DecoderChoice::Bcjr, &paper());
        let final_rev = bcjr
            .units
            .iter()
            .find(|u| u.name == "Final Rev. Buf.")
            .unwrap();
        assert!(final_rev.area.registers * 2 > bcjr.total.registers);
    }

    #[test]
    fn shrinking_window_shrinks_area() {
        // §4.4.3: "The area of both SOVA and BCJR can be reduced by
        // shrinking the length of the backward analysis."
        let mut p = paper();
        p.window = 32;
        let small_bcjr = synthesize(DecoderChoice::Bcjr, &p);
        let small_sova = synthesize(DecoderChoice::Sova, &p);
        let full = SynthesisTable::paper_table();
        assert!(small_bcjr.total.registers < full[0].total.registers * 3 / 4);
        assert!(small_sova.total.luts < full[1].total.luts * 3 / 4);
    }

    #[test]
    fn narrower_inputs_shrink_everything() {
        let mut p = paper();
        p.input_bits = 3;
        p.metric_bits = 6;
        for d in [
            DecoderChoice::Viterbi,
            DecoderChoice::Sova,
            DecoderChoice::Bcjr,
        ] {
            let narrow = synthesize(d, &p).total;
            let wide = synthesize(d, &paper()).total;
            assert!(narrow.luts < wide.luts, "{d}");
        }
    }

    #[test]
    fn estimator_overhead_is_modest() {
        // The paper's conclusion: SoftPHY costs ~10% of a transceiver. The
        // BER estimator itself is a 64-entry ROM + accumulator - the delta
        // between SOVA and Viterbi relative to a full transceiver (which
        // the paper sizes implicitly) stays small. Here: check SOVA's
        // *increment* over Viterbi is within ~2x of Viterbi itself.
        let t = SynthesisTable::paper_table();
        let delta = t[1].total.luts - t[2].total.luts;
        assert!(delta < 2 * t[2].total.luts);
    }
}
