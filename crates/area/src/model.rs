//! Per-unit area formulas.

use std::fmt;

/// Architectural parameters of a decoder instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderParams {
    /// Trellis states (64 for the 802.11a code).
    pub states: usize,
    /// Soft-input width in bits (the paper's hardware sweeps 3–8).
    pub input_bits: u32,
    /// Path-metric register width in bits.
    pub metric_bits: u32,
    /// SOVA traceback window `l` = `k`, or BCJR block length `n`, or the
    /// Viterbi traceback length.
    pub window: usize,
}

impl DecoderParams {
    /// The paper's synthesis configuration: 64 states, 8-bit inputs,
    /// 12-bit metrics, window/block 64.
    pub fn paper_default() -> Self {
        Self {
            states: 64,
            input_bits: 8,
            metric_bits: 12,
            window: 64,
        }
    }
}

/// LUT/FF cost of one hardware unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitArea {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops (the paper forces all storage to registers for
    /// comparability, §4.4.3).
    pub registers: u64,
}

impl UnitArea {
    /// Component-wise sum.
    pub fn plus(self, other: UnitArea) -> UnitArea {
        UnitArea {
            luts: self.luts + other.luts,
            registers: self.registers + other.registers,
        }
    }
}

impl fmt::Display for UnitArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} LUTs / {} FFs", self.luts, self.registers)
    }
}

/// A named unit inside a decoder report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaReport {
    /// Unit name as it appears in the paper's table.
    pub name: &'static str,
    /// Its cost.
    pub area: UnitArea,
}

fn scale(base: u64, num: u64, den: u64) -> u64 {
    // Round-to-nearest integer scaling of a calibrated base value.
    (base * num + den / 2) / den
}

/// Branch metric unit: a handful of adders on the soft inputs; scales with
/// input width. Calibrated: 63 LUT / 41 FF at 8 bits.
pub fn bmu(p: &DecoderParams) -> UnitArea {
    UnitArea {
        luts: scale(63, u64::from(p.input_bits), 8),
        registers: scale(41, u64::from(p.input_bits), 8),
    }
}

/// One path metric unit: an ACS per state, scaling with state count and
/// metric width. Calibrated: 4672 LUT / 0 FF at 64 states × 12 bits (the
/// metric registers live in the surrounding pipeline, as in the paper's
/// table).
pub fn pmu(p: &DecoderParams) -> UnitArea {
    UnitArea {
        luts: scale(4672, (p.states as u64) * u64::from(p.metric_bits), 64 * 12),
        registers: 0,
    }
}

/// Viterbi's hard-decision traceback unit: survivor memory of
/// `window × states` bits plus traceback logic. Calibrated: 5144 LUT /
/// 3927 FF at 64 × 64.
pub fn viterbi_traceback(p: &DecoderParams) -> UnitArea {
    let cells = (p.window * p.states) as u64;
    UnitArea {
        luts: scale(5144, cells, 64 * 64),
        registers: scale(3927, cells, 64 * 64),
    }
}

/// SOVA's soft traceback unit (the second, dual-path traceback with
/// per-step soft-decision storage). Calibrated: 13456 LUT / 13402 FF at
/// window 64 (soft state scales with `window × metric_bits`).
pub fn sova_soft_traceback(p: &DecoderParams) -> UnitArea {
    let cells = (p.window as u64) * u64::from(p.metric_bits);
    UnitArea {
        luts: scale(13456, cells, 64 * 12),
        registers: scale(13402, cells, 64 * 12),
    }
}

/// SOVA's soft path detector (reported inside the soft traceback unit in
/// the paper's table). Calibrated: 7362 LUT / 4706 FF.
pub fn sova_path_detect(p: &DecoderParams) -> UnitArea {
    let cells = (p.window as u64) * u64::from(p.metric_bits);
    UnitArea {
        luts: scale(7362, cells, 64 * 12),
        registers: scale(4706, cells, 64 * 12),
    }
}

/// BCJR's initial reversal buffer: stores one block of soft inputs.
/// Calibrated: 804 LUT / 2608 FF at n = 64 × (2 × 8-bit inputs + control).
pub fn bcjr_initial_reversal(p: &DecoderParams) -> UnitArea {
    let bits = (p.window as u64) * 2 * u64::from(p.input_bits);
    UnitArea {
        luts: scale(804, bits, 64 * 16),
        registers: scale(2608, bits, 64 * 16),
    }
}

/// BCJR's final reversal buffer: stores a block of path-metric columns —
/// the dominant register cost. Calibrated: 8651 LUT / 30048 FF at
/// n = 64 blocks of 64-state × 12-bit metrics (paper: "based on
/// dual-ported SRAMs", synthesized to registers for the comparison).
pub fn bcjr_final_reversal(p: &DecoderParams) -> UnitArea {
    let bits = (p.window as u64) * (p.states as u64) * u64::from(p.metric_bits) / 16;
    let base_bits = 64u64 * 64 * 12 / 16;
    UnitArea {
        luts: scale(8651, bits, base_bits),
        registers: scale(30048, bits, base_bits),
    }
}

/// BCJR's soft decision unit: max-1/max-0 selection over states plus the
/// single LLR subtracter (§4.3.2). Calibrated: 6561 LUT / 822 FF.
pub fn bcjr_decision(p: &DecoderParams) -> UnitArea {
    UnitArea {
        luts: scale(6561, (p.states as u64) * u64::from(p.metric_bits), 64 * 12),
        registers: scale(822, u64::from(p.metric_bits), 12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_points_match_paper() {
        let p = DecoderParams::paper_default();
        assert_eq!(
            bmu(&p),
            UnitArea {
                luts: 63,
                registers: 41
            }
        );
        assert_eq!(
            pmu(&p),
            UnitArea {
                luts: 4672,
                registers: 0
            }
        );
        assert_eq!(
            viterbi_traceback(&p),
            UnitArea {
                luts: 5144,
                registers: 3927
            }
        );
        assert_eq!(
            sova_soft_traceback(&p),
            UnitArea {
                luts: 13456,
                registers: 13402
            }
        );
        assert_eq!(
            bcjr_final_reversal(&p),
            UnitArea {
                luts: 8651,
                registers: 30048
            }
        );
        assert_eq!(
            bcjr_initial_reversal(&p),
            UnitArea {
                luts: 804,
                registers: 2608
            }
        );
        assert_eq!(
            bcjr_decision(&p),
            UnitArea {
                luts: 6561,
                registers: 822
            }
        );
        assert_eq!(
            sova_path_detect(&p),
            UnitArea {
                luts: 7362,
                registers: 4706
            }
        );
    }

    #[test]
    fn window_scaling_is_linear_for_buffers() {
        let mut p = DecoderParams::paper_default();
        let full = bcjr_final_reversal(&p);
        p.window = 32;
        let half = bcjr_final_reversal(&p);
        assert_eq!(half.registers, full.registers / 2);
    }

    #[test]
    fn input_width_scales_bmu() {
        let mut p = DecoderParams::paper_default();
        p.input_bits = 4;
        let narrow = bmu(&p);
        assert!(narrow.luts < 63 && narrow.luts >= 28);
    }

    #[test]
    fn metric_width_scales_pmu() {
        let mut p = DecoderParams::paper_default();
        p.metric_bits = 6;
        assert_eq!(pmu(&p).luts, 2336);
    }

    #[test]
    fn unit_area_sums() {
        let a = UnitArea {
            luts: 10,
            registers: 20,
        };
        let b = UnitArea {
            luts: 1,
            registers: 2,
        };
        assert_eq!(
            a.plus(b),
            UnitArea {
                luts: 11,
                registers: 22
            }
        );
        assert_eq!(a.to_string(), "10 LUTs / 20 FFs");
    }
}
