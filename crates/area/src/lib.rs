//! Structural FPGA area model: the LUT/register costs of Figure 8.
//!
//! We cannot run Synplify Pro against a Virtex-5 LX330T, so this crate
//! substitutes a *calibrated structural model*: each hardware unit's
//! LUT/FF cost is written as a function of its architectural parameters
//! (trellis states, soft-input width, traceback window, block length),
//! with coefficients anchored so that the paper's default configuration
//! (`K = 7`, 64 states, `l = k = 64`, `n = 64`, 8-bit soft inputs,
//! 12-bit path metrics) reproduces the paper's synthesis table exactly.
//!
//! What the model preserves — and what the ablation benches exercise — is
//! the *structure* of the paper's area result:
//!
//! * BCJR ≈ 2× SOVA, "primarily due to the three path metric units used by
//!   BCJR and its larger buffering requirements" (§4.4.3);
//! * SOVA ≈ 2× Viterbi (the second traceback unit and soft-decision state);
//! * BCJR trades registers for BRAM in the reversal buffers;
//! * area scales with traceback length / block size, which is why the
//!   paper notes it can be recovered by shrinking the backward analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod synthesis;

pub use model::{AreaReport, DecoderParams, UnitArea};
pub use synthesis::{synthesize, DecoderChoice, SynthesisTable};
