//! Fixture: pragma escapes suppress findings, demand reasons, and rot
//! loudly when the finding they excused goes away.

pub fn timed() -> u32 {
    let _t0 = std::time::Instant::now(); // lint: allow(wall-clock) — measurement only; the value never reaches results
    0
}

pub fn unjustified(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(panic-policy)
}

// lint: allow(hash-iter) — nothing on the next line to suppress
pub fn stale() -> u32 {
    3
}
