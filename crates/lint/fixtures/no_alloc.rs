//! Fixture: `no-alloc` must fire on allocation in annotated hot paths,
//! including helpers reached through the intra-crate call map — and must
//! stay quiet on steady-state buffer reuse and refcount bumps.

// lint: no_alloc
pub fn hot_direct() -> Vec<u32> {
    vec![1, 2, 3]
}

// lint: no_alloc
pub fn hot_path(buf: &mut Vec<u8>) {
    buf.clear();
    buf.resize(64, 0);
    stage(buf);
}

fn stage(buf: &mut Vec<u8>) {
    let scratch: Vec<u8> = Vec::new();
    buf.extend(scratch);
}

// lint: no_alloc
pub fn deep(x: &[u8]) -> Vec<u8> {
    x.to_vec()
}

// lint: no_alloc
pub fn refcount(x: &std::sync::Arc<u32>) -> std::sync::Arc<u32> {
    std::sync::Arc::clone(x)
}

pub fn cold() -> Vec<u8> {
    Vec::with_capacity(1024)
}
