//! Fixture: `supervised-unwind` must fire on unwind plumbing outside the
//! supervisor module.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub fn swallow(f: impl FnOnce() -> u32) -> Option<u32> {
    catch_unwind(AssertUnwindSafe(f)).ok()
}

pub fn rethrow(joined: std::thread::Result<u32>) -> u32 {
    joined.unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}
