//! Fixture: `panic-policy` must fire in library code and stay quiet in
//! test code.

pub fn risky(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn checked(x: Option<u32>) -> u32 {
    x.expect("always present")
}

pub fn boom() {
    panic!("unreachable");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
