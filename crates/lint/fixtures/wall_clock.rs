//! Fixture: `wall-clock` must fire on time sources in engine code.

use std::time::Instant;
use std::time::SystemTime;

pub fn measure() -> u128 {
    let t0 = Instant::now();
    let _epoch = SystemTime::now();
    t0.elapsed().as_nanos()
}
