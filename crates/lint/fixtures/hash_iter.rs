//! Fixture: `hash-iter` must fire on std hash collections in engine code.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn job_partition() -> usize {
    let mut jobs: HashMap<u64, usize> = HashMap::new();
    jobs.insert(1, 2);
    let seen: HashSet<u64> = jobs.keys().copied().collect();
    seen.len()
}
