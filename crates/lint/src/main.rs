//! CLI entry point: walk the workspace, run every rule, print
//! diagnostics, optionally write the JSON report, exit nonzero on
//! findings.
//!
//! ```text
//! wilis-lint [--root <dir>] [--json <path>] [--quiet]
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use wilis_lint::{analyze, collect_files, find_repo_root, RULES};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: wilis-lint [--root <dir>] [--json <path>] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("wilis-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            // Resolve from the manifest dir when run via `cargo run`,
            // falling back to the current directory.
            let start = std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("."));
            match find_repo_root(&start).or_else(|| {
                std::env::current_dir()
                    .ok()
                    .and_then(|d| find_repo_root(&d))
            }) {
                Some(r) => r,
                None => {
                    eprintln!("wilis-lint: no workspace Cargo.toml found; pass --root");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let files = match collect_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "wilis-lint: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    let report = analyze(&files);

    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.render_json(&RULES)) {
            eprintln!("wilis-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", report.render_text());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
