//! The rule engine: per-file token scans, the intra-crate call map, and
//! the six workspace invariants.
//!
//! | rule                | invariant it pins                                            |
//! |---------------------|--------------------------------------------------------------|
//! | `hash-iter`         | no `HashMap`/`HashSet` in engine crates (hash order leaks)   |
//! | `wall-clock`        | no `Instant`/`SystemTime` outside the bench harness          |
//! | `no-alloc`          | `// lint: no_alloc` functions never allocate, transitively   |
//! | `panic-policy`      | `unwrap`/`expect`/`panic!` in library code carry a reason    |
//! | `supervised-unwind` | `catch_unwind`/`resume_unwind` only in the supervisor module |
//! | `forbid-unsafe`     | every crate root keeps `#![forbid(unsafe_code)]`             |
//!
//! A seventh internal rule, `pragma`, polices the escapes themselves:
//! malformed directives, missing reasons, and pragmas that no longer
//! suppress anything are all findings, so escapes cannot silently rot.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::pragma::{self, Pragmas};
use crate::report::{Allowed, Finding, Report};

/// The rule names, in report order.
pub const RULES: [&str; 7] = [
    "hash-iter",
    "wall-clock",
    "no-alloc",
    "panic-policy",
    "supervised-unwind",
    "forbid-unsafe",
    "pragma",
];

/// Crates whose whole purpose is timing measurement: exempt from
/// `wall-clock` and `panic-policy` (bench drivers assert freely).
const BENCH_CRATES: [&str; 1] = ["wilis-bench"];

/// One source file handed to [`analyze`]. `path` is repo-relative with
/// `/` separators; `crate_name` is the `crates/<name>` package it belongs
/// to, `None` for root `tests/` and `examples/` files.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path (`crates/wilis/src/scenario.rs`).
    pub path: String,
    /// Package name from the path (`wilis`), `None` outside `crates/`.
    pub crate_name: Option<String>,
    /// File contents.
    pub text: String,
}

impl SourceFile {
    /// Builds a [`SourceFile`], deriving `crate_name` from the path.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        let path = path.into();
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(|s| s.to_string());
        Self {
            path,
            crate_name,
            text: text.into(),
        }
    }

    fn package(&self) -> Option<String> {
        // `crates/<dir>` directory names match package names except for
        // the `wilis-` prefix most crates carry; normalize to directory
        // names and special-case the bench exemption below on both.
        self.crate_name.clone()
    }

    fn is_engine_code(&self) -> bool {
        match self.package() {
            Some(name) => name != "bench" && self.path.contains("/src/"),
            None => false,
        }
    }

    fn is_bench_exempt(&self) -> bool {
        match self.package() {
            Some(name) => name == "bench" || BENCH_CRATES.contains(&name.as_str()),
            None => true, // root tests/ and examples/ are driver code
        }
    }

    fn is_crate_root(&self) -> bool {
        self.path.ends_with("/src/lib.rs") || self.path.ends_with("/src/main.rs")
    }
}

/// A function extracted from the token stream.
#[derive(Debug)]
struct FnInfo {
    name: String,
    file: usize,
    /// Token index of the `fn` keyword (for annotation matching).
    kw_tok: usize,
    /// `(line, construct)` pairs of unconditionally-allocating calls.
    banned: Vec<(u32, String)>,
    /// Names this function calls (free functions and methods alike).
    calls: BTreeSet<String>,
    /// Marked `// lint: no_alloc`.
    no_alloc: bool,
}

struct FileAnalysis {
    lexed: Lexed,
    /// Per-token: inside a `#[cfg(test)]` / `#[test]` item.
    test_mask: Vec<bool>,
    pragmas: Pragmas,
}

/// Runs every rule over `files` and returns the report. Pure function of
/// its inputs — the binary wraps it with filesystem walking, printing,
/// and exit-code logic; tests call it on synthetic file sets.
pub fn analyze(files: &[SourceFile]) -> Report {
    let mut fn_table: Vec<FnInfo> = Vec::new();
    let mut analyses: Vec<FileAnalysis> = Vec::new();

    for (fi, file) in files.iter().enumerate() {
        let lexed = lex(&file.text);
        let (test_mask, test_lines) = test_spans(&lexed.toks);
        let toks = &lexed.toks;
        let mut pragmas = pragma::extract(&lexed.comments, |line| {
            toks.iter()
                .map(|t| t.line)
                .find(|&l| l > line)
                .unwrap_or(line + 1)
        });
        let in_test_lines = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
        pragmas.allows.retain(|a| !in_test_lines(a.target_line));
        pragmas.no_allocs.retain(|n| !in_test_lines(n.line));

        let first = fn_table.len();
        extract_fns(fi, &lexed.toks, &test_mask, &mut fn_table);
        apply_no_alloc(&lexed.toks, &pragmas, &mut fn_table[first..]);
        analyses.push(FileAnalysis {
            lexed,
            test_mask,
            pragmas,
        });
    }

    let mut findings: Vec<Finding> = Vec::new();

    // Pragma hygiene: malformed directives are findings no pragma can
    // suppress.
    for (fi, a) in analyses.iter().enumerate() {
        for e in &a.pragmas.errors {
            findings.push(Finding {
                rule: "pragma".to_string(),
                file: files[fi].path.clone(),
                line: e.line,
                message: e.message.clone(),
            });
        }
        for al in &a.pragmas.allows {
            if !RULES.contains(&al.rule.as_str()) {
                findings.push(Finding {
                    rule: "pragma".to_string(),
                    file: files[fi].path.clone(),
                    line: al.pragma_line,
                    message: format!("pragma names unknown rule {:?}", al.rule),
                });
            }
        }
    }

    // Token-scan rules.
    for (fi, a) in analyses.iter().enumerate() {
        let file = &files[fi];
        let toks = &a.lexed.toks;
        for (k, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || a.test_mask[k] {
                continue;
            }
            let name = t.text.as_str();
            if file.is_engine_code()
                && file.crate_name.as_deref() != Some("lint")
                && (name == "HashMap" || name == "HashSet")
            {
                findings.push(Finding {
                    rule: "hash-iter".to_string(),
                    file: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "{name} in an engine crate: iteration order depends on the \
                         hasher and breaks the bit-identity contract; use BTreeMap/\
                         BTreeSet or a sorted drain"
                    ),
                });
            }
            if file.is_engine_code()
                && !file.is_bench_exempt()
                && (name == "Instant" || name == "SystemTime")
            {
                findings.push(Finding {
                    rule: "wall-clock".to_string(),
                    file: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "{name} outside the bench harness: wall-clock reads in \
                         engine code can leak timing into results; move the \
                         measurement to `wilis-bench` or pragma with the reason \
                         timing cannot affect outputs"
                    ),
                });
            }
            if file.is_engine_code()
                && !file.path.ends_with("/supervisor.rs")
                && (name == "catch_unwind" || name == "resume_unwind")
            {
                findings.push(Finding {
                    rule: "supervised-unwind".to_string(),
                    file: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "{name} outside the supervisor module: the unwind boundary \
                         is a policy decision that lives in one audited place; route \
                         worker panics through the supervisor's quarantine/propagate \
                         helpers, or pragma with the reason this boundary must be \
                         local"
                    ),
                });
            }
            if file.is_engine_code() && !file.is_bench_exempt() {
                let panicky = ((name == "unwrap" || name == "expect") && is_call(toks, k))
                    || (name == "panic" && toks.get(k + 1).is_some_and(|n| n.text == "!"));
                if panicky {
                    findings.push(Finding {
                        rule: "panic-policy".to_string(),
                        file: file.path.clone(),
                        line: t.line,
                        message: format!(
                            "{name} in non-test library code: panics need a written \
                             justification; return an error for user-reachable \
                             failures, or pragma with the invariant that makes \
                             this unreachable"
                        ),
                    });
                }
            }
        }

        if file.is_crate_root() && !has_forbid_unsafe(toks) {
            findings.push(Finding {
                rule: "forbid-unsafe".to_string(),
                file: file.path.clone(),
                line: 1,
                message: "crate root lacks #![forbid(unsafe_code)]".to_string(),
            });
        }
    }

    // no-alloc: transitive reachability over the per-crate call map.
    findings.extend(no_alloc_findings(files, &analyses, &fn_table));

    // Suppression: match findings against allow pragmas.
    let mut allowed: Vec<Allowed> = Vec::new();
    let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();
    findings.retain(|f| {
        if f.rule == "pragma" {
            return true;
        }
        let fi = files.iter().position(|s| s.path == f.file);
        let Some(fi) = fi else { return true };
        for (ai, al) in analyses[fi].pragmas.allows.iter().enumerate() {
            if al.rule == f.rule && al.target_line == f.line {
                used.insert((fi, ai));
                allowed.push(Allowed {
                    rule: f.rule.clone(),
                    file: f.file.clone(),
                    line: f.line,
                    reason: al.reason.clone(),
                });
                return false;
            }
        }
        true
    });

    // Unused pragmas rot: a suppression that no longer suppresses
    // anything must be deleted, not inherited by future code.
    for (fi, a) in analyses.iter().enumerate() {
        for (ai, al) in a.pragmas.allows.iter().enumerate() {
            if RULES.contains(&al.rule.as_str()) && !used.contains(&(fi, ai)) {
                findings.push(Finding {
                    rule: "pragma".to_string(),
                    file: files[fi].path.clone(),
                    line: al.pragma_line,
                    message: format!(
                        "unused pragma: no {} finding on line {} to suppress; \
                         delete it",
                        al.rule, al.target_line
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    findings.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    allowed.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    allowed.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    Report {
        files_scanned: files.len(),
        findings,
        allowed,
    }
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item, and
/// returns the covered line ranges.
fn test_spans(toks: &[Tok]) -> (Vec<bool>, Vec<(u32, u32)>) {
    let mut mask = vec![false; toks.len()];
    let mut ranges = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        if toks[k].text == "#" && toks.get(k + 1).is_some_and(|t| t.text == "[") {
            let close = matching(toks, k + 1, "[", "]");
            let inner = &toks[k + 2..close.min(toks.len())];
            if is_test_attr(inner) {
                let mut m = close + 1;
                // Stacked attributes after the test attribute.
                while m + 1 < toks.len() && toks[m].text == "#" && toks[m + 1].text == "[" {
                    m = matching(toks, m + 1, "[", "]") + 1;
                }
                let end = item_end(toks, m);
                for slot in mask.iter_mut().take((end + 1).min(toks.len())).skip(k) {
                    *slot = true;
                }
                let last = end.min(toks.len().saturating_sub(1));
                ranges.push((toks[k].line, toks[last].line));
                k = end + 1;
                continue;
            }
            k = close + 1;
            continue;
        }
        k += 1;
    }
    (mask, ranges)
}

fn is_test_attr(inner: &[Tok]) -> bool {
    match inner.first() {
        Some(t) if t.text == "test" => true,
        Some(t) if t.text == "cfg" => {
            inner.iter().any(|t| t.text == "test") && !inner.iter().any(|t| t.text == "not")
        }
        _ => false,
    }
}

/// Index of the bracket matching `toks[open]`.
fn matching(toks: &[Tok], open: usize, op: &str, cl: &str) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == op {
                depth += 1;
            } else if t.text == cl {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
    }
    toks.len()
}

/// Index of the last token of the item starting at `start`: the matching
/// `}` of its first top-level `{`, or the first top-level `;`.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0i32;
    let mut seen_brace = false;
    for (k, t) in toks.iter().enumerate().skip(start) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" | "(" | "[" => {
                if t.text == "{" && depth == 0 {
                    seen_brace = true;
                }
                depth += 1;
            }
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 && seen_brace && t.text == "}" {
                    return k;
                }
            }
            ";" if depth == 0 => return k,
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// True when the identifier at `k` heads a call: `name(`, possibly with a
/// turbofish (`name::<T>(`).
fn is_call(toks: &[Tok], k: usize) -> bool {
    let mut j = k + 1;
    if toks.get(j).is_some_and(|t| t.text == ":")
        && toks.get(j + 1).is_some_and(|t| t.text == ":")
        && toks.get(j + 2).is_some_and(|t| t.text == "<")
    {
        // Skip the turbofish generics.
        let mut depth = 0i32;
        j += 2;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    toks.get(j).is_some_and(|t| t.text == "(")
}

/// The path segment preceding `::name` at token `k`, skipping generic
/// arguments: `Vec::new` → `Vec`, `Vec::<u8>::new` → `Vec`.
fn path_head(toks: &[Tok], k: usize) -> Option<&str> {
    if k < 3 || toks[k - 1].text != ":" || toks[k - 2].text != ":" {
        return None;
    }
    let mut j = k - 3;
    if toks[j].text == ">" {
        let mut depth = 0i32;
        loop {
            match toks[j].text.as_str() {
                ">" => depth += 1,
                "<" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j < 3 || toks[j - 1].text != ":" || toks[j - 2].text != ":" {
            return None;
        }
        j -= 3;
    }
    (toks[j].kind == TokKind::Ident).then(|| toks[j].text.as_str())
}

/// Types whose `new`/`from` constructors heap-allocate (or exist to).
const ALLOCATING_TYPES: [&str; 7] = [
    "Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet", "Rc",
];

/// Method names the call map never resolves: they are overwhelmingly std
/// container/iterator/float methods, and a name-only map would misbind
/// `.push(…)` or `.map(…)` to an unrelated crate function that happens to
/// share the name. A crate function called through one of these names
/// simply isn't followed — the light map trades that recall for zero
/// false bindings.
const STD_METHOD_NAMES: [&str; 40] = [
    "map",
    "filter",
    "fold",
    "reduce",
    "zip",
    "rev",
    "enumerate",
    "take",
    "skip",
    "chain",
    "flat_map",
    "for_each",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "swap",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "len",
    "is_empty",
    "first",
    "last",
    "contains",
    "sum",
    "min",
    "max",
    "copied",
    "cloned",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "and_then",
    "ok_or",
    "write",
    "fmt",
];

/// Extracts functions (outside test spans) with their banned-construct
/// sites and callee-name sets.
fn extract_fns(file: usize, toks: &[Tok], mask: &[bool], table: &mut Vec<FnInfo>) {
    let mut k = 0usize;
    while k < toks.len() {
        if toks[k].text != "fn" || toks[k].kind != TokKind::Ident || mask[k] {
            k += 1;
            continue;
        }
        let Some(name_tok) = toks.get(k + 1).filter(|t| t.kind == TokKind::Ident) else {
            k += 1;
            continue;
        };
        // Find the body: first `{` at depth 0 after the signature, or `;`
        // for a bodyless trait declaration.
        let mut depth = 0i32;
        let mut body_start = None;
        let mut j = k + 2;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body_start = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let mut info = FnInfo {
            name: name_tok.text.clone(),
            file,
            kw_tok: k,
            banned: Vec::new(),
            calls: BTreeSet::new(),
            no_alloc: false,
        };
        let next_k = if let Some(bs) = body_start {
            let be = matching(toks, bs, "{", "}");
            scan_body(toks, bs, be, &mut info);
            // Continue right after the header so nested fns are found;
            // their constructs are double-counted into the outer fn,
            // which only errs toward strictness.
            k + 2
        } else {
            j + 1
        };
        table.push(info);
        k = next_k;
    }
}

/// Records banned constructs and callee names in `toks[bs..=be]`.
fn scan_body(toks: &[Tok], bs: usize, be: usize, info: &mut FnInfo) {
    for k in bs..=be.min(toks.len().saturating_sub(1)) {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if toks.get(k + 1).is_some_and(|n| n.text == "!") {
            if name == "vec" || name == "format" {
                info.banned.push((t.line, format!("{name}!")));
            }
            continue;
        }
        if !is_call(toks, k) {
            continue;
        }
        match name {
            "with_capacity" | "to_vec" | "to_owned" | "to_string" | "collect" => {
                info.banned.push((t.line, name.to_string()));
            }
            "clone" => {
                // `Arc::clone`/`Rc::clone` are refcount bumps, not heap
                // allocations (and `Rc::new` is still banned).
                if !matches!(path_head(toks, k), Some("Arc") | Some("Rc")) {
                    info.banned.push((t.line, "clone".to_string()));
                }
            }
            "new" | "from" => {
                if let Some(head) = path_head(toks, k) {
                    if ALLOCATING_TYPES.contains(&head) {
                        info.banned.push((t.line, format!("{head}::{name}")));
                    }
                }
            }
            _ => {
                if !STD_METHOD_NAMES.contains(&name) {
                    info.calls.insert(name.to_string());
                }
            }
        }
    }
}

/// Applies `// lint: no_alloc` annotations to the file's functions: the
/// next `fn` after the annotation line, or every `fn` inside the next
/// `mod`/`impl` block.
fn apply_no_alloc(toks: &[Tok], pragmas: &Pragmas, fns: &mut [FnInfo]) {
    for ann in &pragmas.no_allocs {
        // First token at or after the annotation line.
        let Some(mut k) = toks.iter().position(|t| t.line > ann.line) else {
            continue;
        };
        // Walk the item header: attributes, visibility, qualifiers.
        loop {
            match toks.get(k).map(|t| t.text.as_str()) {
                Some("#") if toks.get(k + 1).is_some_and(|t| t.text == "[") => {
                    k = matching(toks, k + 1, "[", "]") + 1;
                }
                Some("pub") => {
                    k += 1;
                    if toks.get(k).is_some_and(|t| t.text == "(") {
                        k = matching(toks, k, "(", ")") + 1;
                    }
                }
                Some("const") | Some("async") | Some("unsafe") | Some("extern") => k += 1,
                _ => break,
            }
        }
        match toks.get(k).map(|t| t.text.as_str()) {
            Some("fn") => {
                if let Some(f) = fns.iter_mut().find(|f| f.kw_tok == k) {
                    f.no_alloc = true;
                }
            }
            Some("mod") | Some("impl") | Some("trait") => {
                let Some(bs) = (k..toks.len()).find(|&j| toks[j].text == "{") else {
                    continue;
                };
                let be = matching(toks, bs, "{", "}");
                for f in fns.iter_mut() {
                    if f.kw_tok > bs && f.kw_tok < be {
                        f.no_alloc = true;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Transitive allocation findings: from each `no_alloc` root, walk the
/// intra-crate call map (names resolved only when unambiguous — a light
/// map, not a type checker) and report every banned construct reached.
fn no_alloc_findings(
    files: &[SourceFile],
    analyses: &[FileAnalysis],
    fn_table: &[FnInfo],
) -> Vec<Finding> {
    let _ = analyses;
    // Group functions by the call-map domain: the crate for crates/ code,
    // the top-level directory otherwise.
    let domain_of = |fi: usize| -> String {
        let f = &files[fi];
        match &f.crate_name {
            Some(c) => format!("crates/{c}"),
            None => f.path.split('/').next().unwrap_or("").to_string(),
        }
    };
    let mut by_name: BTreeMap<(String, &str), Vec<usize>> = BTreeMap::new();
    for (id, f) in fn_table.iter().enumerate() {
        by_name
            .entry((domain_of(f.file), f.name.as_str()))
            .or_default()
            .push(id);
    }

    let mut findings = Vec::new();
    let mut reported: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    for (root_id, root) in fn_table.iter().enumerate() {
        if !root.no_alloc {
            continue;
        }
        let domain = domain_of(root.file);
        // DFS with path tracking for the diagnostic chain.
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(root_id, vec![root_id])];
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        while let Some((id, chain)) = stack.pop() {
            if !visited.insert(id) {
                continue;
            }
            let f = &fn_table[id];
            for (line, construct) in &f.banned {
                if !reported.insert((f.file, *line, construct.clone())) {
                    continue;
                }
                let via = chain
                    .iter()
                    .map(|&c| fn_table[c].name.as_str())
                    .collect::<Vec<_>>()
                    .join(" -> ");
                findings.push(Finding {
                    rule: "no-alloc".to_string(),
                    file: files[f.file].path.clone(),
                    line: *line,
                    message: format!(
                        "`{construct}` allocates on a `no_alloc` path \
                         (reached via {via}); reuse a scratch buffer, or pragma \
                         with why this call is cold"
                    ),
                });
            }
            for callee in &f.calls {
                if let Some(ids) = by_name.get(&(domain.clone(), callee.as_str())) {
                    // Only unambiguous names resolve; `new` et al. have
                    // many definitions and are skipped rather than
                    // guessed.
                    if ids.len() == 1 && !visited.contains(&ids[0]) {
                        let mut c = chain.clone();
                        c.push(ids[0]);
                        stack.push((ids[0], c));
                    }
                }
            }
        }
    }
    findings
}

/// True when the token stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}
