//! Pragma escapes and `no_alloc` annotations.
//!
//! Two comment-level directives drive the linter:
//!
//! * `// lint: allow(<rule>) — <reason>` suppresses findings of `<rule>`
//!   on the pragma's own line (trailing form) or on the next code line
//!   (standalone form). The reason is **mandatory** — a pragma without one
//!   is itself a finding, so every escape in the tree carries its
//!   justification next to the code it excuses. `—`, `--`, and ` - ` are
//!   all accepted as the separator.
//! * `// lint: no_alloc` marks the next `fn` (or every `fn` inside the
//!   next `mod`/`impl`) as allocation-free in the steady state; the
//!   `no-alloc` rule then rejects unconditionally-allocating calls in the
//!   function and everything it reaches through the intra-crate call map.

use crate::lexer::Comment;

/// A parsed `allow` pragma.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// The mandatory human reason.
    pub reason: String,
    /// The line whose findings are suppressed.
    pub target_line: u32,
    /// The line the pragma comment itself is on.
    pub pragma_line: u32,
}

/// A `no_alloc` annotation; the annotated item is resolved later against
/// the token stream.
#[derive(Debug, Clone, Copy)]
pub struct NoAlloc {
    /// The line the annotation comment is on; the annotated item is the
    /// next `fn`/`mod`/`impl` after it.
    pub line: u32,
}

/// A malformed directive — reported as a finding by the `pragma` rule.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// The offending line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

/// Everything extracted from one file's comments.
#[derive(Debug, Default)]
pub struct Pragmas {
    /// Well-formed `allow` pragmas.
    pub allows: Vec<Allow>,
    /// `no_alloc` annotations.
    pub no_allocs: Vec<NoAlloc>,
    /// Malformed directives.
    pub errors: Vec<PragmaError>,
}

/// Extracts directives from `comments`. `next_code_line` maps a comment
/// line to the first following line holding a code token (for standalone
/// pragmas); it is built from the token stream by the caller.
pub fn extract(comments: &[Comment], next_code_line: impl Fn(u32) -> u32) -> Pragmas {
    let mut out = Pragmas::default();
    for c in comments {
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(directive) = body.strip_prefix("lint:") else {
            continue;
        };
        let directive = directive.trim();
        if directive == "no_alloc" {
            out.no_allocs.push(NoAlloc { line: c.line });
            continue;
        }
        if let Some(rest) = directive.strip_prefix("allow(") {
            let Some(close) = rest.find(')') else {
                out.errors.push(PragmaError {
                    line: c.line,
                    message: "malformed pragma: missing ')' in `lint: allow(<rule>)`".to_string(),
                });
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let tail = rest[close + 1..].trim();
            let reason = ["—", "--", "-"]
                .iter()
                .find_map(|sep| tail.strip_prefix(sep))
                .map(str::trim)
                .unwrap_or("");
            if rule.is_empty() {
                out.errors.push(PragmaError {
                    line: c.line,
                    message: "malformed pragma: empty rule name".to_string(),
                });
            } else if reason.is_empty() {
                out.errors.push(PragmaError {
                    line: c.line,
                    message: format!(
                        "pragma `allow({rule})` carries no reason; write \
                         `// lint: allow({rule}) — <why this is sound>`"
                    ),
                });
            } else {
                out.allows.push(Allow {
                    rule,
                    reason: reason.to_string(),
                    target_line: if c.trailing {
                        c.line
                    } else {
                        next_code_line(c.line)
                    },
                    pragma_line: c.line,
                });
            }
        } else {
            out.errors.push(PragmaError {
                line: c.line,
                message: format!(
                    "unknown lint directive {directive:?}; expected \
                     `allow(<rule>) — <reason>` or `no_alloc`"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas(src: &str) -> Pragmas {
        let l = lex(src);
        let toks = l.toks;
        extract(&l.comments, move |line| {
            toks.iter()
                .map(|t| t.line)
                .find(|&l| l > line)
                .unwrap_or(line + 1)
        })
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let p = pragmas("let t = now(); // lint: allow(wall-clock) — bench only\n");
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].target_line, 1);
        assert_eq!(p.allows[0].rule, "wall-clock");
        assert_eq!(p.allows[0].reason, "bench only");
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let p =
            pragmas("// lint: allow(panic-policy) — infallible by construction\n\nx.unwrap();\n");
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].target_line, 3);
    }

    #[test]
    fn reason_is_mandatory() {
        let p = pragmas("// lint: allow(hash-iter)\nlet m = 1;\n");
        assert!(p.allows.is_empty());
        assert_eq!(p.errors.len(), 1);
        assert!(p.errors[0].message.contains("no reason"));
    }

    #[test]
    fn ascii_separators_accepted() {
        let p =
            pragmas("let a = 1; // lint: allow(x) -- why\nlet b = 2; // lint: allow(y) - why2\n");
        assert_eq!(p.allows.len(), 2);
        assert_eq!(p.allows[0].reason, "why");
        assert_eq!(p.allows[1].reason, "why2");
    }

    #[test]
    fn no_alloc_annotation_extracted() {
        let p = pragmas("// lint: no_alloc\nfn hot() {}\n");
        assert_eq!(p.no_allocs.len(), 1);
        assert_eq!(p.no_allocs[0].line, 1);
    }

    #[test]
    fn unknown_directive_is_an_error() {
        let p = pragmas("// lint: disable(everything)\n");
        assert_eq!(p.errors.len(), 1);
    }

    #[test]
    fn unrelated_comments_ignored() {
        let p = pragmas("// just prose about lint: things\n/// doc\nfn f() {}\n");
        assert!(p.allows.is_empty() && p.no_allocs.is_empty() && p.errors.is_empty());
    }
}
