//! The machine-readable report: findings, granted escapes, and counts,
//! serialized as JSON by hand (std-only crate — no serde in the offline
//! container).

use std::fmt::Write as _;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (`hash-iter`, …).
    pub rule: String,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation with the suggested fix.
    pub message: String,
}

/// One finding suppressed by a pragma — reported so the escape inventory
/// is visible in CI artifacts, not just in scattered comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allowed {
    /// Rule name.
    pub rule: String,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// The pragma's mandatory reason.
    pub reason: String,
}

/// The complete analysis result.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Violations, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Pragma-suppressed findings, sorted by (file, line).
    pub allowed: Vec<Allowed>,
}

impl Report {
    /// True when the workspace is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable diagnostic listing.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            let _ = writeln!(s, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            s,
            "wilis-lint: {} file(s) scanned, {} finding(s), {} allowed by pragma",
            self.files_scanned,
            self.findings.len(),
            self.allowed.len()
        );
        s
    }

    /// Renders the JSON report (schema checked by `tools/check_lint.py`).
    pub fn render_json(&self, rules: &[&str]) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"tool\": \"wilis-lint\",\n");
        s.push_str("  \"version\": 1,\n");
        let rule_list = rules
            .iter()
            .map(|r| json_str(r))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(s, "  \"rules\": [{rule_list}],");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        s.push_str("  \"findings\": [");
        for (k, f) in self.findings.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"allowed\": [");
        for (k, a) in self.allowed.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&a.rule),
                json_str(&a.file),
                a.line,
                json_str(&a.reason)
            );
        }
        if !self.allowed.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        let _ = writeln!(
            s,
            "  \"counts\": {{\"findings\": {}, \"allowed\": {}}}",
            self.findings.len(),
            self.allowed.len()
        );
        s.push_str("}\n");
        s
    }
}

/// Escapes `v` as a JSON string literal.
fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_renders_valid_skeleton() {
        let r = Report {
            files_scanned: 3,
            ..Default::default()
        };
        let j = r.render_json(&["hash-iter"]);
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"counts\": {\"findings\": 0, \"allowed\": 0}"));
    }

    #[test]
    fn findings_serialize_with_all_fields() {
        let r = Report {
            files_scanned: 1,
            findings: vec![Finding {
                rule: "hash-iter".to_string(),
                file: "crates/x/src/lib.rs".to_string(),
                line: 7,
                message: "said \"no\"".to_string(),
            }],
            allowed: vec![Allowed {
                rule: "wall-clock".to_string(),
                file: "crates/y/src/lib.rs".to_string(),
                line: 9,
                reason: "bench only".to_string(),
            }],
        };
        let j = r.render_json(&["hash-iter", "wall-clock"]);
        assert!(j.contains("\"line\": 7"));
        assert!(j.contains("said \\\"no\\\""));
        assert!(j.contains("\"reason\": \"bench only\""));
        assert!(j.contains("\"counts\": {\"findings\": 1, \"allowed\": 1}"));
    }
}
