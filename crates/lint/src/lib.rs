//! `wilis-lint`: a std-only static analyzer for the workspace's own
//! invariants.
//!
//! The simulator's central contract — bit-identical results at any thread
//! count, allocation-free steady-state hot paths, no panics on
//! user-reachable input — is invisible to `rustc` and `clippy`: nothing
//! stops a `HashMap` iteration from leaking hasher order into a sweep
//! summary, or a `Vec::new` from sneaking into a per-packet loop. This
//! crate walks every `.rs` file with its own comment/string-aware lexer
//! (the container is offline; `syn` is not available) and enforces those
//! rules mechanically, with `file:line` diagnostics, a JSON report for
//! CI, and pragma escapes that must carry a written reason.
//!
//! Run it with `cargo run -p wilis-lint` from anywhere in the workspace;
//! it exits nonzero when any finding survives the pragmas.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;

pub use report::{Allowed, Finding, Report};
pub use rules::{analyze, SourceFile, RULES};

use std::path::{Path, PathBuf};

/// Directories under the repo root that are walked for `.rs` files.
const SCAN_ROOTS: [&str; 3] = ["crates", "tests", "examples"];

/// Path components that are never scanned: build output and the lint
/// crate's own rule-violation corpus.
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", ".git"];

/// Collects every `.rs` file under the scan roots, repo-relative and
/// sorted, so reports are stable across filesystems.
pub fn collect_files(repo_root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for root in SCAN_ROOTS {
        let dir = repo_root.join(root);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(repo_root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = std::fs::read_to_string(&p)?;
        out.push(SourceFile::new(rel, text));
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the repo root: walks up from `start` to the first directory
/// holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_repo_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}
