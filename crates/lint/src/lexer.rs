//! A comment/string/raw-string-aware Rust lexer.
//!
//! The container is offline, so `syn` is not an option; the rules in this
//! crate only need token identity and line numbers, not a parse tree. The
//! lexer's single job is to never confuse the three syntactic worlds a
//! naive `grep` conflates: code, comments, and string literals. `"panic!"`
//! inside a string is a literal, `// unwrap()` inside a comment is prose,
//! and `r#"HashMap"#` inside a raw string is data — none of them may ever
//! reach a rule as an identifier token.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// A single punctuation character (`(`, `:`, `!`, …).
    Punct,
    /// A literal the rules never look inside: string, raw string, char,
    /// byte string, or number.
    Lit,
}

/// One code token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token text; for [`TokKind::Lit`] only a placeholder kind tag.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
}

/// One comment (line or block) with its source line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` or `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when code precedes the comment on the same line (a trailing
    /// comment annotates its own line; a standalone one annotates the next
    /// code line).
    pub trailing: bool,
}

/// The lexer's output: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens.
    pub toks: Vec<Tok>,
    /// Comments (line and block).
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src` into tokens and comments.
///
/// Unterminated strings or comments lex to end-of-file rather than
/// erroring: the linter runs on code `cargo check` already accepted, so
/// malformed input only occurs on fixture snippets, where best-effort is
/// the right behavior.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut last_code_line = 0u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    trailing: last_code_line == line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i.min(b.len())].to_string(),
                    line: start_line,
                    trailing: last_code_line == start_line,
                });
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                out.toks.push(Tok {
                    text: "\"str\"".to_string(),
                    line,
                    kind: TokKind::Lit,
                });
                last_code_line = line;
            }
            b'r' | b'b' => {
                if let Some(next) = raw_or_byte_literal(b, i, &mut line) {
                    i = next;
                    out.toks.push(Tok {
                        text: "\"str\"".to_string(),
                        line,
                        kind: TokKind::Lit,
                    });
                    last_code_line = line;
                } else if c == b'r' && b.get(i + 1) == Some(&b'#') {
                    // Raw identifier `r#ident`: skip the prefix, lex the
                    // identifier itself.
                    i += 2;
                } else {
                    i = push_ident(src, b, i, line, &mut out);
                    last_code_line = line;
                }
            }
            b'\'' => {
                // Lifetime or char literal. `'a` with no closing quote in
                // reach is a lifetime; everything else is a char literal.
                let is_char = match (b.get(i + 1), b.get(i + 2)) {
                    (Some(&b'\\'), _) => true,
                    (Some(&n), Some(&b'\'')) if n != b'\'' => true,
                    _ => false,
                };
                if is_char {
                    i += 1; // opening quote
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\\' {
                            i += 1;
                        }
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                    out.toks.push(Tok {
                        text: "'c'".to_string(),
                        line,
                        kind: TokKind::Lit,
                    });
                } else {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        text: "'life".to_string(),
                        line,
                        kind: TokKind::Lit,
                    });
                }
                last_code_line = line;
            }
            _ if is_ident_start(c) => {
                i = push_ident(src, b, i, line, &mut out);
                last_code_line = line;
            }
            _ if c.is_ascii_digit() => {
                // Numbers never matter to the rules; `.` is left out so
                // ranges (`0..n`) lex as separate punctuation.
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    text: "0".to_string(),
                    line,
                    kind: TokKind::Lit,
                });
                last_code_line = line;
            }
            _ => {
                out.toks.push(Tok {
                    text: (c as char).to_string(),
                    line,
                    kind: TokKind::Punct,
                });
                last_code_line = line;
                i += 1;
            }
        }
    }
    out
}

fn push_ident(src: &str, b: &[u8], mut i: usize, line: u32, out: &mut Lexed) -> usize {
    let start = i;
    while i < b.len() && is_ident_continue(b[i]) {
        i += 1;
    }
    out.toks.push(Tok {
        text: src[start..i].to_string(),
        line,
        kind: TokKind::Ident,
    });
    i
}

/// Skips a normal (escaped) string literal starting at the opening quote;
/// returns the index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            // An escape may be a line continuation (`\` + newline), whose
            // newline still advances the line counter.
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Detects and skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and `b'…'`
/// literals starting at `i`. Returns the index past the literal, or
/// `None` when `i` does not start one.
fn raw_or_byte_literal(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let (mut j, raw) = match b[i] {
        b'r' => (i + 1, true),
        b'b' => match b.get(i + 1) {
            Some(&b'r') => (i + 2, true),
            Some(&b'"') => return Some(skip_string(b, i + 1, line)),
            Some(&b'\'') => {
                // Byte char literal b'x' / b'\n'.
                let mut k = i + 2;
                while k < b.len() && b[k] != b'\'' {
                    if b[k] == b'\\' {
                        k += 1;
                    }
                    k += 1;
                }
                return Some(k + 1);
            }
            _ => return None,
        },
        _ => return None,
    };
    if !raw {
        return None;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let end = j + 1;
            if b[end..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes {
                return Some(end + hashes);
            }
        }
        j += 1;
    }
    Some(j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r####"
            // HashMap in a comment
            /* unwrap() in a block /* nested */ comment */
            let s = "panic!(HashMap)";
            let r = r#"Instant "quoted" SystemTime"#;
            let real = HashSet::new();
        "####;
        let ids = idents(src);
        assert!(ids.contains(&"HashSet".to_string()));
        assert!(!ids.iter().any(|t| t == "HashMap"));
        assert!(!ids.iter().any(|t| t == "unwrap"));
        assert!(!ids.iter().any(|t| t == "Instant"));
        assert!(!ids.iter().any(|t| t == "SystemTime"));
        assert!(!ids.iter().any(|t| t == "panic"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // The char literal 'x' must not swallow the rest of the line.
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines_in_literals() {
        let src = "let a = \"two\nlines\";\nlet b = HashMap::new();";
        let l = lex(src);
        let hm = l
            .toks
            .iter()
            .find(|t| t.text == "HashMap")
            .expect("HashMap");
        assert_eq!(hm.line, 3);
    }

    #[test]
    fn line_numbers_track_string_continuations() {
        // `\` + newline is a line continuation inside a string literal;
        // its newline must still advance the line counter.
        let src = "let a = \"one \\\n         two\";\nlet b = HashMap::new();";
        let l = lex(src);
        let hm = l
            .toks
            .iter()
            .find(|t| t.text == "HashMap")
            .expect("HashMap");
        assert_eq!(hm.line, 3);
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let src = "let a = 1; // trailing\n// standalone\nlet b = 2;";
        let l = lex(src);
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn byte_literals_are_opaque() {
        let ids = idents("let x = b\"unwrap\"; let y = b'u'; let z = br#\"panic\"#;");
        assert!(!ids.iter().any(|t| t == "unwrap"));
        assert!(!ids.iter().any(|t| t == "panic"));
    }
}
