//! Self-tests: each rule must fire on its fixture (the fixtures live in
//! `fixtures/`, which the workspace walker skips — they violate the rules
//! on purpose) and stay quiet on compliant code.

#![forbid(unsafe_code)]

use wilis_lint::{analyze, Report, SourceFile};

/// Lints `src` as if it lived in an engine crate.
fn engine(src: &str) -> Report {
    analyze(&[SourceFile::new("crates/phy/src/fixture.rs", src)])
}

fn rules_fired(r: &Report) -> Vec<&str> {
    r.findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn hash_iter_fires_in_engine_crates() {
    let r = engine(include_str!("../fixtures/hash_iter.rs"));
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "hash-iter")
        .collect();
    assert!(hits.len() >= 3, "use + 2 sites: {:?}", r.findings);
    assert!(hits.iter().all(|f| f.message.contains("BTreeMap")));
}

#[test]
fn hash_iter_exempt_in_bench_crate() {
    let r = analyze(&[SourceFile::new(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/hash_iter.rs"),
    )]);
    assert!(r.clean(), "bench crates may hash: {:?}", r.findings);
}

#[test]
fn wall_clock_fires_in_engine_crates() {
    let r = engine(include_str!("../fixtures/wall_clock.rs"));
    let hits = rules_fired(&r);
    assert!(
        hits.iter().filter(|&&x| x == "wall-clock").count() >= 3,
        "Instant use + Instant::now + SystemTime::now: {:?}",
        r.findings
    );
}

#[test]
fn wall_clock_exempt_in_bench_crate() {
    let r = analyze(&[SourceFile::new(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/wall_clock.rs"),
    )]);
    assert!(r.clean(), "bench crates may time: {:?}", r.findings);
}

#[test]
fn no_alloc_fires_directly_and_transitively() {
    let r = engine(include_str!("../fixtures/no_alloc.rs"));
    let msgs: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "no-alloc")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        msgs.iter().any(|m| m.contains("`vec!`")),
        "direct macro allocation: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`Vec::new`") && m.contains("hot_path -> stage")),
        "transitive allocation via the call map: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("`to_vec`")),
        "to_vec ban: {msgs:?}"
    );
    assert!(
        !msgs.iter().any(|m| m.contains("with_capacity")),
        "unannotated, unreachable fns are out of scope: {msgs:?}"
    );
    assert!(
        !msgs.iter().any(|m| m.contains("clone")),
        "Arc::clone is a refcount bump, not an allocation: {msgs:?}"
    );
}

#[test]
fn no_alloc_allows_steady_state_buffer_reuse() {
    let r = engine(
        "// lint: no_alloc\n\
         pub fn hot(buf: &mut Vec<u8>, src: &[u8]) {\n\
             buf.clear();\n\
             buf.reserve(src.len());\n\
             buf.extend(src.iter().copied());\n\
             buf.push(0);\n\
             buf.resize(src.len() * 2, 0);\n\
         }\n",
    );
    assert!(r.clean(), "reuse ops must pass: {:?}", r.findings);
}

#[test]
fn no_alloc_on_impl_block_covers_every_method() {
    let r = engine(
        "pub struct S;\n\
         // lint: no_alloc\n\
         impl S {\n\
             pub fn a(&self) -> Vec<u8> { Vec::new() }\n\
             pub fn b(&self) -> String { format!(\"x\") }\n\
         }\n",
    );
    let hits = r.findings.iter().filter(|f| f.rule == "no-alloc").count();
    assert_eq!(hits, 2, "{:?}", r.findings);
}

#[test]
fn panic_policy_fires_outside_tests_only() {
    let r = engine(include_str!("../fixtures/panic_policy.rs"));
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "panic-policy")
        .collect();
    assert_eq!(hits.len(), 3, "unwrap + expect + panic!: {:?}", r.findings);
    // The #[cfg(test)] mod sits past line 15; none of its unwraps count.
    assert!(hits.iter().all(|f| f.line < 15), "{:?}", r.findings);
}

#[test]
fn supervised_unwind_fires_outside_the_supervisor() {
    let r = engine(include_str!("../fixtures/supervised_unwind.rs"));
    let hits = rules_fired(&r);
    assert!(
        hits.iter().filter(|&&x| x == "supervised-unwind").count() >= 3,
        "catch_unwind use + call + resume_unwind: {:?}",
        r.findings
    );
}

#[test]
fn supervised_unwind_quiet_in_the_supervisor_module() {
    let r = analyze(&[SourceFile::new(
        "crates/wilis/src/supervisor.rs",
        include_str!("../fixtures/supervised_unwind.rs"),
    )]);
    assert!(
        !rules_fired(&r).contains(&"supervised-unwind"),
        "the supervisor module owns the unwind boundary: {:?}",
        r.findings
    );
}

#[test]
fn supervised_unwind_pragma_escape_demands_a_reason() {
    let r = engine(
        "pub fn local(f: impl FnOnce() -> u32) -> Option<u32> {\n\
             std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).ok() // lint: allow(supervised-unwind) — FFI boundary must not unwind\n\
         }\n",
    );
    assert!(
        !rules_fired(&r).contains(&"supervised-unwind"),
        "{:?}",
        r.findings
    );
    assert!(
        r.allowed
            .iter()
            .any(|a| a.rule == "supervised-unwind" && a.reason.contains("FFI")),
        "{:?}",
        r.allowed
    );
}

#[test]
fn forbid_unsafe_checks_crate_roots() {
    let clean = analyze(&[SourceFile::new(
        "crates/x/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )]);
    assert!(clean.clean(), "{:?}", clean.findings);

    let dirty = analyze(&[SourceFile::new("crates/x/src/lib.rs", "pub fn f() {}\n")]);
    assert_eq!(rules_fired(&dirty), vec!["forbid-unsafe"]);

    // Non-root files carry no such obligation.
    let module = analyze(&[SourceFile::new("crates/x/src/helper.rs", "pub fn f() {}\n")]);
    assert!(module.clean(), "{:?}", module.findings);
}

#[test]
fn pragmas_suppress_demand_reasons_and_rot() {
    let r = engine(include_str!("../fixtures/pragmas.rs"));
    // The justified wall-clock escape is granted and inventoried.
    assert!(
        r.allowed
            .iter()
            .any(|a| a.rule == "wall-clock" && a.reason.contains("measurement only")),
        "{:?}",
        r.allowed
    );
    assert!(!rules_fired(&r).contains(&"wall-clock"), "{:?}", r.findings);
    // The reasonless pragma is itself a finding and suppresses nothing.
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == "pragma" && f.message.contains("no reason")),
        "{:?}",
        r.findings
    );
    assert!(
        rules_fired(&r).contains(&"panic-policy"),
        "{:?}",
        r.findings
    );
    // The stale pragma with nothing left to suppress is a finding too.
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == "pragma" && f.message.contains("unused pragma")),
        "{:?}",
        r.findings
    );
}

#[test]
fn test_code_is_invisible_to_every_rule() {
    let r = engine(
        "#[cfg(test)]\n\
         mod tests {\n\
             use std::collections::HashMap;\n\
             use std::time::Instant;\n\
             #[test]\n\
             fn t() {\n\
                 let mut m = HashMap::new();\n\
                 let _t = Instant::now();\n\
                 m.insert(1, 2);\n\
                 assert_eq!(m.len(), 1);\n\
                 Option::<u32>::None.unwrap_or(0);\n\
                 Some(3).unwrap();\n\
             }\n\
         }\n",
    );
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn cfg_not_test_is_still_checked() {
    let r = engine(
        "#[cfg(not(test))]\n\
         pub fn prod(x: Option<u32>) -> u32 {\n\
             x.unwrap()\n\
         }\n",
    );
    assert_eq!(rules_fired(&r), vec!["panic-policy"], "{:?}", r.findings);
}

#[test]
fn clean_engine_code_passes() {
    let r = engine(
        "use std::collections::BTreeMap;\n\
         pub fn partition(n: u64) -> BTreeMap<u64, usize> {\n\
             let mut out = BTreeMap::new();\n\
             out.insert(n, 1);\n\
             out\n\
         }\n",
    );
    assert!(r.clean(), "{:?}", r.findings);
    assert_eq!(r.files_scanned, 1);
}

#[test]
fn json_report_round_trips_the_counts() {
    let r = engine(include_str!("../fixtures/hash_iter.rs"));
    let j = r.render_json(&wilis_lint::RULES);
    assert!(j.contains("\"tool\": \"wilis-lint\""));
    assert!(j.contains(&format!("\"findings\": {}", r.findings.len())));
    assert!(j.contains("\"rule\": \"hash-iter\""));
}
