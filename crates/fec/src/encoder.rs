//! The convolutional encoder: "a shift register of k − m bits" (§4.1).

use crate::trellis::Trellis;
use crate::ConvCode;

/// A streaming convolutional encoder.
///
/// # Example
///
/// ```
/// use wilis_fec::{ConvCode, ConvEncoder};
///
/// let code = ConvCode::ieee80211();
/// let mut enc = ConvEncoder::new(&code);
/// let coded = enc.encode_terminated(&[1, 0, 1]);
/// // 3 data bits + 6 tail bits, 2 coded bits each.
/// assert_eq!(coded.len(), (3 + 6) * 2);
/// ```
#[derive(Debug, Clone)]
pub struct ConvEncoder {
    code: ConvCode,
    trellis: Trellis,
    state: usize,
}

impl ConvEncoder {
    /// An encoder for `code`, starting in the all-zero state.
    pub fn new(code: &ConvCode) -> Self {
        Self {
            code: code.clone(),
            trellis: Trellis::new(code),
            state: 0,
        }
    }

    /// Encodes one input bit, returning `n_out` coded bits (values 0/1,
    /// generator 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not 0 or 1.
    pub fn push(&mut self, bit: u8) -> Vec<u8> {
        assert!(bit < 2, "binary input expected, got {bit}");
        let tr = self.trellis.next(self.state, bit);
        self.state = tr.next as usize;
        (0..self.code.n_out())
            .map(|j| (tr.output >> j) & 1)
            .collect()
    }

    /// Encodes a bit slice without termination, appending coded bits to
    /// `out`; the encoder state carries over to subsequent calls. This is
    /// the allocation-free form the scenario engine's hot path uses.
    ///
    /// # Panics
    ///
    /// Panics if any input bit is not 0 or 1.
    pub fn encode_into(&mut self, bits: &[u8], out: &mut Vec<u8>) {
        let n_out = self.code.n_out();
        out.reserve(bits.len() * n_out);
        for &b in bits {
            assert!(b < 2, "binary input expected, got {b}");
            let tr = self.trellis.next(self.state, b);
            self.state = tr.next as usize;
            for j in 0..n_out {
                out.push((tr.output >> j) & 1);
            }
        }
    }

    /// Encodes a bit slice without termination; the encoder state carries
    /// over to subsequent calls.
    pub fn encode(&mut self, bits: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(bits.len() * self.code.n_out());
        self.encode_into(bits, &mut out);
        out
    }

    /// Terminated-block form of [`ConvEncoder::encode_into`]: the data
    /// bits followed by `K - 1` zero tail bits, returning the encoder to
    /// state zero.
    pub fn encode_terminated_into(&mut self, bits: &[u8], out: &mut Vec<u8>) {
        self.encode_into(bits, out);
        for _ in 0..self.code.tail_len() {
            let tr = self.trellis.next(self.state, 0);
            self.state = tr.next as usize;
            for j in 0..self.code.n_out() {
                out.push((tr.output >> j) & 1);
            }
        }
        debug_assert_eq!(self.state, 0, "tail must flush to state zero");
    }

    /// Encodes a complete block: the data bits followed by `K - 1` zero
    /// tail bits, returning the encoder to state zero (the 802.11a
    /// convention the decoders' terminated mode assumes).
    pub fn encode_terminated(&mut self, bits: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity((bits.len() + self.code.tail_len()) * self.code.n_out());
        self.encode_terminated_into(bits, &mut out);
        out
    }

    /// The current shift-register state.
    pub fn state(&self) -> usize {
        self.state
    }

    /// Resets the shift register to zero.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// The code this encoder implements.
    pub fn code(&self) -> &ConvCode {
        &self.code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_input_gives_zero_output() {
        let mut enc = ConvEncoder::new(&ConvCode::ieee80211());
        let coded = enc.encode(&[0; 20]);
        assert!(coded.iter().all(|&b| b == 0));
        assert_eq!(enc.state(), 0);
    }

    #[test]
    fn termination_flushes_state() {
        let mut enc = ConvEncoder::new(&ConvCode::ieee80211());
        let _ = enc.encode_terminated(&[1, 1, 0, 1, 0, 0, 1, 1, 1]);
        assert_eq!(enc.state(), 0);
    }

    #[test]
    fn impulse_response_matches_generators() {
        // A single 1 followed by zeros reads the generator taps out of the
        // register one step at a time.
        let code = ConvCode::ieee80211();
        let mut enc = ConvEncoder::new(&code);
        let coded = enc.encode(&[1, 0, 0, 0, 0, 0, 0]);
        for (step, pair) in coded.chunks(2).enumerate() {
            // At step t, the impulse sits at register position t, which the
            // generator weights by its bit (K-1-t).
            let tap = code.constraint_len() as usize - 1 - step;
            let g0 = (code.generators()[0] >> tap) & 1;
            let g1 = (code.generators()[1] >> tap) & 1;
            assert_eq!(u32::from(pair[0]), g0, "g0 tap at step {step}");
            assert_eq!(u32::from(pair[1]), g1, "g1 tap at step {step}");
        }
    }

    #[test]
    fn encode_is_linear() {
        // c(a) XOR c(b) == c(a XOR b) for equal-length blocks - the
        // defining property of a linear code, and a strong whole-encoder
        // correctness check.
        let code = ConvCode::ieee80211();
        let a = [1u8, 0, 1, 1, 0, 1, 0, 0, 1, 1];
        let b = [0u8, 1, 1, 0, 0, 1, 1, 0, 1, 0];
        let xor: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let ca = ConvEncoder::new(&code).encode(&a);
        let cb = ConvEncoder::new(&code).encode(&b);
        let cxor = ConvEncoder::new(&code).encode(&xor);
        let sum: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
        assert_eq!(sum, cxor);
    }

    #[test]
    #[should_panic(expected = "binary input")]
    fn non_binary_input_panics() {
        let mut enc = ConvEncoder::new(&ConvCode::k3());
        let _ = enc.push(2);
    }

    #[test]
    fn streaming_equals_block() {
        let code = ConvCode::ieee80211();
        let bits = [1u8, 1, 0, 1, 0, 1, 1, 0];
        let mut s = ConvEncoder::new(&code);
        let mut streamed = Vec::new();
        for &b in &bits {
            streamed.extend(s.push(b));
        }
        let mut blk = ConvEncoder::new(&code);
        assert_eq!(streamed, blk.encode(&bits));
    }
}
