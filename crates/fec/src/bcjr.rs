//! Sliding-window BCJR (SW-BCJR) in the Figure 4 microarchitecture.
//!
//! Full BCJR needs the entire frame before the backward recursion can
//! start, which is "unacceptable, both in terms of the latency of
//! processing and in terms of storage requirements" (§4.3.2). The paper
//! therefore blocks the stream into windows of `n` steps: the backward
//! path metrics of block `p` are seeded by a *provisional* backward pass
//! over block `p+1` that itself starts from an "uncertain" (uniform)
//! metric. The hardware realizes this with three path-metric units (one
//! forward, one backward, one provisional backward) and a pair of reversal
//! buffers that re-orient each block for the backward walk.
//!
//! SoftPHY support costs one subtracter: the decision unit picks both the
//! most likely input-1 and input-0 transitions and subtracts their path
//! metrics (max-log LLR).
//!
//! Both recursions run on the compiled-trellis `i32` kernels
//! ([`crate::compiled`]) with per-step normalization — the same
//! normalization policy as the reference decoder, so outputs stay
//! bit-identical.
//!
//! Latency: `2n + 7` cycles, dominated by the two reversal buffers; see
//! [`BcjrDecoder::latency_cycles`].

use std::sync::Arc;

use crate::batch;
use crate::bmu::Bmu;
use crate::compiled::{fast_path_ok, CompiledBmu, CompiledTrellis};
use crate::llr::{DecodeOutput, Llr, SoftDecoder};
use crate::pmu::{normalize32, NEG_INF32};
use crate::reference;
use crate::scratch::TrellisScratch;
use crate::ConvCode;

/// A sliding-window max-log BCJR decoder with block length `n`.
///
/// # Example
///
/// ```
/// use wilis_fec::{BcjrDecoder, ConvCode, ConvEncoder, SoftDecoder, hard_llr};
///
/// let code = ConvCode::ieee80211();
/// let data = [1u8, 0, 0, 1, 1, 0, 1, 0];
/// let coded = ConvEncoder::new(&code).encode_terminated(&data);
/// let llrs: Vec<i32> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
/// let mut dec = BcjrDecoder::new(&code, 64);
/// let out = dec.decode_terminated(&llrs);
/// assert_eq!(out.bits, data);
/// assert_eq!(dec.latency_cycles(), 2 * 64 + 7);
/// ```
#[derive(Debug, Clone)]
pub struct BcjrDecoder {
    code: ConvCode,
    compiled: Arc<CompiledTrellis>,
    bmu: Bmu,
    cbmu: CompiledBmu,
    scratch: TrellisScratch,
    /// Sliding-window block length; the paper uses 64 and notes blocks
    /// smaller than 32 degrade accuracy.
    block_len: usize,
}

impl BcjrDecoder {
    /// A decoder over `code` with sliding-window block length `block_len`
    /// (the paper's configuration is 64).
    ///
    /// # Panics
    ///
    /// Panics if `block_len` is zero.
    pub fn new(code: &ConvCode, block_len: usize) -> Self {
        Self::with_shared_trellis(Arc::new(CompiledTrellis::new(code)), block_len)
    }

    /// A decoder sharing an already-compiled trellis (see
    /// [`CompiledTrellis`]), with sliding-window block length `block_len`.
    ///
    /// # Panics
    ///
    /// Panics if `block_len` is zero.
    pub fn with_shared_trellis(trellis: Arc<CompiledTrellis>, block_len: usize) -> Self {
        assert!(block_len > 0, "block length must be positive");
        Self {
            code: trellis.code().clone(),
            bmu: Bmu::new(trellis.n_out()),
            cbmu: CompiledBmu::new(trellis.n_out()),
            compiled: trellis,
            scratch: TrellisScratch::new(),
            block_len,
        }
    }

    /// The sliding-window block length.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Pipeline latency in decoder-clock cycles: `2n + 7` (§4.3.2 — two
    /// reversal buffers of `n` plus pipeline and FIFO overhead).
    pub fn latency_cycles(&self) -> u64 {
        (2 * self.block_len + 7) as u64
    }

    /// The code being decoded.
    pub fn code(&self) -> &ConvCode {
        &self.code
    }

    /// The shared compiled-trellis handle.
    pub fn shared_trellis(&self) -> &Arc<CompiledTrellis> {
        &self.compiled
    }

    fn validate(&self, llrs: &[Llr]) -> usize {
        let n_out = self.compiled.n_out();
        assert!(
            llrs.len() % n_out == 0,
            "soft input length {} not a multiple of n_out {}",
            llrs.len(),
            n_out
        );
        let steps = llrs.len() / n_out;
        assert!(
            steps > self.code.tail_len(),
            "block shorter than the code tail"
        );
        steps
    }

    /// Decodes through the frozen `i64` reference kernels (see
    /// [`ViterbiDecoder::decode_terminated_reference_into`][crate::ViterbiDecoder::decode_terminated_reference_into]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`SoftDecoder::decode_terminated_into`].
    pub fn decode_terminated_reference_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        self.validate(llrs);
        reference::bcjr_decode(
            self.compiled.trellis(),
            self.code.tail_len(),
            self.block_len,
            &mut self.bmu,
            &mut self.scratch,
            llrs,
            out,
        );
    }

    /// The `beta` column applying *before* step `t` of `range`, for every
    /// `t`, written into `betas` (flattened, indexed relative to the range
    /// start). `boundary` is the column just *after* the last step.
    fn backward_block_flat32(
        ct: &CompiledTrellis,
        bms: &[i32],
        n_patterns: usize,
        range: std::ops::Range<usize>,
        boundary: &[i32],
        betas: &mut [i32],
    ) {
        let n_states = ct.n_states();
        let len = range.len();
        debug_assert_eq!(betas.len(), len * n_states);
        for (local, t) in range.clone().enumerate().rev() {
            let bm = &bms[t * n_patterns..(t + 1) * n_patterns];
            let (head, tail) = betas.split_at_mut((local + 1) * n_states);
            let after: &[i32] = if local + 1 < len {
                &tail[..n_states]
            } else {
                boundary
            };
            let row = &mut head[local * n_states..];
            ct.beta_step(bm, after, row);
            normalize32(row);
        }
    }

    fn decode_fast(&mut self, steps: usize, llrs: &[Llr], out: &mut DecodeOutput) {
        let Self {
            code,
            compiled,
            cbmu,
            scratch,
            block_len,
            ..
        } = self;
        let block_len = *block_len;
        let ct = &**compiled;
        let n_out = ct.n_out();
        let n_states = ct.n_states();
        let n_patterns = 1usize << n_out;

        // Branch metrics for every step, computed once into the scratch.
        scratch.bms32.clear();
        scratch.bms32.resize(steps * n_patterns, 0);
        for t in 0..steps {
            let bm = cbmu.compute(&llrs[t * n_out..(t + 1) * n_out]);
            scratch.bms32[t * n_patterns..(t + 1) * n_patterns].copy_from_slice(bm);
        }

        scratch.init_columns32(n_states, 0);
        let TrellisScratch {
            pm32: alpha,
            next32: next_alpha,
            bms32: bms,
            betas32: betas,
            boundary32: boundary,
            col32: col,
            ..
        } = scratch;
        out.bits.clear();
        out.soft.clear();

        let mut t0 = 0usize;
        while t0 < steps {
            let t1 = (t0 + block_len).min(steps);
            // Beta boundary for the end of this block.
            if t1 == steps {
                // Terminated frame: the path ends in state zero.
                boundary.clear();
                boundary.resize(n_states, NEG_INF32);
                boundary[0] = 0;
            } else {
                // Provisional backward pass over the *next* block, started
                // from the "uncertain" uniform column (§4.3.2), keeping
                // only the column that lands on t1.
                let t2 = (t1 + block_len).min(steps);
                boundary.clear();
                boundary.resize(n_states, 0);
                col.clear();
                col.resize(n_states, 0);
                for t in (t1..t2).rev() {
                    let bm = &bms[t * n_patterns..(t + 1) * n_patterns];
                    ct.beta_step(bm, boundary, col);
                    normalize32(col);
                    std::mem::swap(boundary, col);
                }
            }
            betas.clear();
            betas.resize((t1 - t0) * n_states, 0);
            Self::backward_block_flat32(ct, bms, n_patterns, t0..t1, boundary, betas);

            // Forward pass + decision unit over this block.
            for t in t0..t1 {
                let bm = &bms[t * n_patterns..(t + 1) * n_patterns];
                // beta that applies after consuming step t:
                let beta_after: &[i32] = if t + 1 < t1 {
                    &betas[(t + 1 - t0) * n_states..(t + 2 - t0) * n_states]
                } else {
                    boundary
                };
                let best = ct.decision_best(bm, alpha, beta_after);
                // The decision unit: most-likely-1 minus most-likely-0
                // path metrics — the single added subtracter of §4.3.2.
                let llr = best[1].saturating_sub(best[0]);
                out.bits.push(u8::from(llr > 0));
                out.soft.push(llr);

                ct.alpha_step(bm, alpha, next_alpha);
                normalize32(next_alpha);
                std::mem::swap(alpha, next_alpha);
            }
            t0 = t1;
        }

        let info = steps - code.tail_len();
        out.bits.truncate(info);
        out.soft.truncate(info);
    }
}

impl SoftDecoder for BcjrDecoder {
    // lint: no_alloc
    fn decode_terminated_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        let steps = self.validate(llrs);
        if fast_path_ok(llrs) {
            self.decode_fast(steps, llrs, out);
        } else {
            reference::bcjr_decode(
                self.compiled.trellis(),
                self.code.tail_len(),
                self.block_len,
                &mut self.bmu,
                &mut self.scratch,
                llrs,
                out,
            );
        }
    }

    // lint: no_alloc
    fn decode_terminated_batch_into(
        &mut self,
        llrs: &[Llr],
        lanes: usize,
        outs: &mut [DecodeOutput],
    ) {
        batch::validate_batch(
            self.compiled.n_out(),
            self.code.tail_len(),
            llrs,
            lanes,
            outs.len(),
        );
        // No survivor matrix here, so the lockstep path has no state-count
        // gate — only the lane-count and LLR-magnitude ones.
        if lanes <= batch::MAX_LANES && fast_path_ok(llrs) {
            batch::bcjr_batch(
                &self.compiled,
                self.code.tail_len(),
                self.block_len,
                llrs,
                lanes,
                &mut self.scratch.batch,
                outs,
            );
        } else {
            let mut lane_buf = std::mem::take(&mut self.scratch.batch.lane_llrs);
            for (l, out) in outs.iter_mut().enumerate() {
                batch::gather_lane(llrs, lanes, l, &mut lane_buf);
                self.decode_terminated_into(&lane_buf, out);
            }
            self.scratch.batch.lane_llrs = lane_buf;
        }
    }

    fn id(&self) -> &'static str {
        "bcjr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard_llr;
    use crate::{ConvEncoder, SovaDecoder, ViterbiDecoder};

    fn encode(code: &ConvCode, data: &[u8], mag: Llr) -> Vec<Llr> {
        ConvEncoder::new(code)
            .encode_terminated(data)
            .iter()
            .map(|&b| hard_llr(b, mag))
            .collect()
    }

    #[test]
    fn clean_roundtrip() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..200).map(|i| ((i * 13) % 7 < 3) as u8).collect();
        let llrs = encode(&code, &data, 7);
        let out = BcjrDecoder::new(&code, 64).decode_terminated(&llrs);
        assert_eq!(out.bits, data);
        assert!(out.soft.iter().all(|&s| s != 0));
    }

    #[test]
    fn clean_roundtrip_small_blocks() {
        // Even a pathologically small window decodes a clean channel.
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..100).map(|i| (i % 4 == 1) as u8).collect();
        let llrs = encode(&code, &data, 7);
        for block in [8, 32, 64, 256] {
            let out = BcjrDecoder::new(&code, block).decode_terminated(&llrs);
            assert_eq!(out.bits, data, "block {block}");
        }
    }

    #[test]
    fn agrees_with_viterbi_under_noise() {
        // Max-log BCJR's MAP-per-bit decisions overwhelmingly agree with the
        // ML sequence; allow a small disagreement budget on damaged input.
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..300).map(|i| (i % 3 == 0) as u8).collect();
        let mut llrs = encode(&code, &data, 7);
        for i in (0..llrs.len()).step_by(13) {
            llrs[i] = -llrs[i] / 2;
        }
        let bcjr = BcjrDecoder::new(&code, 64).decode_terminated(&llrs);
        let viterbi = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        let diff = bcjr
            .bits
            .iter()
            .zip(&viterbi.bits)
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff <= 6, "{diff} disagreements between BCJR and Viterbi");
    }

    #[test]
    fn corrupted_bits_get_low_confidence() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..120).map(|i| (i % 2) as u8).collect();
        let mut llrs = encode(&code, &data, 7);
        for step in 58..=62 {
            llrs[step * 2] = -llrs[step * 2];
            llrs[step * 2 + 1] = -llrs[step * 2 + 1];
        }
        let out = BcjrDecoder::new(&code, 64).decode_terminated(&llrs);
        let near: f64 = (55..66)
            .map(|i| out.soft[i].unsigned_abs() as f64)
            .sum::<f64>()
            / 11.0;
        let far: f64 = (5..25)
            .map(|i| out.soft[i].unsigned_abs() as f64)
            .sum::<f64>()
            / 20.0;
        assert!(
            near < far / 2.0,
            "damaged region confidence {near} vs clean {far}"
        );
    }

    #[test]
    fn window_64_matches_full_frame() {
        // The paper: "increasing these values provides no performance
        // improvement" beyond 64. Full-frame BCJR (block >= frame) and
        // block-64 must produce identical decisions on moderately noisy
        // input.
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..256).map(|i| ((i * 7) % 5 < 2) as u8).collect();
        let mut llrs = encode(&code, &data, 7);
        for i in (0..llrs.len()).step_by(17) {
            llrs[i] = -llrs[i];
        }
        let windowed = BcjrDecoder::new(&code, 64).decode_terminated(&llrs);
        let full = BcjrDecoder::new(&code, 4096).decode_terminated(&llrs);
        assert_eq!(windowed.bits, full.bits);
    }

    #[test]
    fn latency_formula() {
        let code = ConvCode::ieee80211();
        assert_eq!(BcjrDecoder::new(&code, 64).latency_cycles(), 135);
        assert_eq!(BcjrDecoder::new(&code, 32).latency_cycles(), 71);
    }

    #[test]
    fn soft_sign_matches_bits() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..90).map(|i| (i % 5 == 0) as u8).collect();
        let mut llrs = encode(&code, &data, 7);
        for i in (0..llrs.len()).step_by(11) {
            llrs[i] = 0;
        }
        let out = BcjrDecoder::new(&code, 64).decode_terminated(&llrs);
        for (i, (&bit, &s)) in out.bits.iter().zip(&out.soft).enumerate() {
            if s > 0 {
                assert_eq!(bit, 1, "bit {i}");
            } else if s < 0 {
                assert_eq!(bit, 0, "bit {i}");
            }
        }
    }

    #[test]
    fn bcjr_confidence_correlates_with_sova() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..100).map(|i| (i % 3 == 1) as u8).collect();
        let mut llrs = encode(&code, &data, 7);
        for i in (0..llrs.len()).step_by(9) {
            llrs[i] = -llrs[i];
        }
        let bcjr = BcjrDecoder::new(&code, 64).decode_terminated(&llrs);
        let sova = SovaDecoder::new(&code, 64, 64).decode_terminated(&llrs);
        // Rank correlation proxy: bits SOVA flags as weakest should also be
        // below-median for BCJR more often than not.
        let med_b = {
            let mut v: Vec<u32> = bcjr.soft.iter().map(|s| s.unsigned_abs()).collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        let mut sova_idx: Vec<usize> = (0..sova.soft.len()).collect();
        sova_idx.sort_by_key(|&i| sova.soft[i].unsigned_abs());
        let weak_match = sova_idx[..10]
            .iter()
            .filter(|&&i| bcjr.soft[i].unsigned_abs() <= med_b)
            .count();
        assert!(weak_match >= 6, "only {weak_match}/10 weak bits agree");
    }
}
