//! Old-vs-new kernel equivalence: the compiled `i32` trellis kernels must
//! reproduce the frozen `i64` reference path **bit for bit** — identical
//! hard decisions *and* identical saturated soft outputs — for every
//! decoder, code, and soft-input distribution. These tests are the
//! enforcement arm of the contract documented in [`crate::compiled`].

use wilis_fxp::rng::SmallRng;

use crate::compiled::FAST_LLR_LIMIT;
use crate::{
    hard_llr, BcjrDecoder, ConvCode, ConvEncoder, DecodeOutput, Llr, SoftDecoder, SovaDecoder,
    ViterbiDecoder,
};

/// Codes the differential suite sweeps: the paper's 802.11 code, the tiny
/// exhaustible K=3 code, a K=5 rate-1/3 code (n_out ≠ 2 exercises the
/// generic BMU), and a K=9 code whose 256 states need multi-word survivor
/// packing.
fn codes() -> Vec<ConvCode> {
    vec![
        ConvCode::ieee80211(),
        ConvCode::k3(),
        ConvCode::new(5, &[0o23, 0o35, 0o31]),
        ConvCode::new(9, &[0o561, 0o753]),
    ]
}

/// A random soft-input block of `steps` trellis steps with magnitudes up
/// to `mag`, with a sprinkling of exact erasures (depunctured positions).
fn random_llrs(rng: &mut SmallRng, code: &ConvCode, steps: usize, mag: i64) -> Vec<Llr> {
    (0..steps * code.n_out())
        .map(|_| {
            if rng.gen_i64(0, 3) == 0 {
                0 // erased / depunctured position
            } else {
                rng.gen_i64(-mag, mag) as Llr
            }
        })
        .collect()
}

fn assert_equiv(code: &ConvCode, llrs: &[Llr], ctx: &str) {
    let mut fast = DecodeOutput::default();
    let mut slow = DecodeOutput::default();

    let mut v = ViterbiDecoder::new(code);
    v.decode_terminated_into(llrs, &mut fast);
    v.decode_terminated_reference_into(llrs, &mut slow);
    assert_eq!(fast.bits, slow.bits, "viterbi bits diverged: {ctx}");
    assert_eq!(fast.soft, slow.soft, "viterbi soft diverged: {ctx}");

    let mut s = SovaDecoder::new(code, 64, 64);
    s.decode_terminated_into(llrs, &mut fast);
    s.decode_terminated_reference_into(llrs, &mut slow);
    assert_eq!(fast.bits, slow.bits, "sova bits diverged: {ctx}");
    assert_eq!(fast.soft, slow.soft, "sova soft diverged: {ctx}");

    let mut b = BcjrDecoder::new(code, 64);
    b.decode_terminated_into(llrs, &mut fast);
    b.decode_terminated_reference_into(llrs, &mut slow);
    assert_eq!(fast.bits, slow.bits, "bcjr bits diverged: {ctx}");
    assert_eq!(fast.soft, slow.soft, "bcjr soft diverged: {ctx}");
}

/// Random noisy blocks at demapper-realistic magnitudes, every code.
#[test]
fn compiled_kernels_match_reference_on_random_blocks() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0001);
    for code in codes() {
        for round in 0..24 {
            let steps = code.tail_len() + rng.gen_i64(1, 150) as usize;
            let llrs = random_llrs(&mut rng, &code, steps, 31);
            assert_equiv(&code, &llrs, &format!("{code} round {round}"));
        }
    }
}

/// Clean encoded frames (the all-margins-huge corner: every ACS decision
/// is unanimous, so SOVA reliabilities ride the sentinel-margin path).
#[test]
fn compiled_kernels_match_reference_on_clean_frames() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0002);
    for code in codes() {
        for _ in 0..8 {
            let n = rng.gen_i64(8, 96) as usize;
            let data: Vec<u8> = (0..n).map(|_| rng.gen_bit()).collect();
            let coded = ConvEncoder::new(&code).encode_terminated(&data);
            let llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, 15)).collect();
            assert_equiv(&code, &llrs, &format!("{code} clean"));
            // And the decoded bits are the transmitted ones.
            let out = ViterbiDecoder::new(&code).decode_terminated(&llrs);
            assert_eq!(out.bits, data);
        }
    }
}

/// Magnitudes straddling `FAST_LLR_LIMIT`: at the limit the compiled path
/// runs; one past it the decode falls back to the reference path. Both
/// must agree with the reference output.
#[test]
fn compiled_kernels_match_reference_at_the_fast_path_boundary() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0003);
    let code = ConvCode::ieee80211();
    for mag in [
        i64::from(FAST_LLR_LIMIT) - 1,
        i64::from(FAST_LLR_LIMIT),
        i64::from(FAST_LLR_LIMIT) + 1,
        i64::from(i32::MAX / 2),
    ] {
        let steps = code.tail_len() + 80;
        let llrs = random_llrs(&mut rng, &code, steps, mag);
        assert_equiv(&code, &llrs, &format!("magnitude {mag}"));
    }
}

/// Heavy puncturing patterns: long runs of erased positions interleaved
/// with strong disagreeing evidence.
#[test]
fn compiled_kernels_match_reference_under_puncturing() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0004);
    for code in [ConvCode::ieee80211(), ConvCode::k3()] {
        for _ in 0..12 {
            let steps = code.tail_len() + rng.gen_i64(20, 120) as usize;
            let mut llrs = random_llrs(&mut rng, &code, steps, 31);
            // Erase a run covering several constraint lengths.
            let start = rng.gen_i64(0, (llrs.len() / 2) as i64) as usize;
            let len = rng.gen_i64(4, 40) as usize;
            for l in llrs.iter_mut().skip(start).take(len) {
                *l = 0;
            }
            assert_equiv(&code, &llrs, &format!("{code} punctured"));
        }
    }
}

/// The long-frame regression for the renormalization invariant: a frame
/// tens of thousands of steps long with LLRs at the fast-path limit. The
/// unnormalized drift would wrap an `i32` within ~4k steps; periodic
/// renormalization must keep the compiled kernels exact all the way out.
#[test]
fn long_frame_renormalization_regression() {
    let code = ConvCode::ieee80211();
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0005);
    let info = 20_000usize;
    let data: Vec<u8> = (0..info).map(|_| rng.gen_bit()).collect();
    let coded = ConvEncoder::new(&code).encode_terminated(&data);
    let limit = i64::from(FAST_LLR_LIMIT);
    // Max-magnitude evidence with some corruption keeps metric growth at
    // the theoretical worst case while still being decodable.
    let llrs: Vec<Llr> = coded
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let l = hard_llr(b, limit as Llr);
            if i % 97 == 0 {
                -l
            } else {
                l
            }
        })
        .collect();
    let mut v = ViterbiDecoder::new(&code);
    let out = v.decode_terminated(&llrs);
    assert_eq!(out.bits, data, "long-frame Viterbi decode must stay exact");
    let mut reference = DecodeOutput::default();
    v.decode_terminated_reference_into(&llrs, &mut reference);
    assert_eq!(out.bits, reference.bits);

    // The soft decoders survive the same frame bit-identically.
    let mut s = SovaDecoder::new(&code, 64, 64);
    let sova_fast = s.decode_terminated(&llrs);
    s.decode_terminated_reference_into(&llrs, &mut reference);
    assert_eq!(sova_fast.bits, reference.bits);
    assert_eq!(sova_fast.soft, reference.soft);

    let mut b = BcjrDecoder::new(&code, 64);
    let bcjr_fast = b.decode_terminated(&llrs);
    b.decode_terminated_reference_into(&llrs, &mut reference);
    assert_eq!(bcjr_fast.bits, reference.bits);
    assert_eq!(bcjr_fast.soft, reference.soft);
}

/// Repeated decodes through one decoder instance (scratch reuse across
/// different block sizes) stay equivalent — the steady-state shape the
/// scenario engine runs.
#[test]
fn scratch_reuse_across_blocks_stays_equivalent() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0006);
    let code = ConvCode::ieee80211();
    let mut v = ViterbiDecoder::new(&code);
    let mut s = SovaDecoder::new(&code, 64, 64);
    let mut b = BcjrDecoder::new(&code, 64);
    let mut fast = DecodeOutput::default();
    let mut slow = DecodeOutput::default();
    for round in 0..16 {
        let steps = code.tail_len() + rng.gen_i64(1, 400) as usize;
        let llrs = random_llrs(&mut rng, &code, steps, 31);
        for (name, dec) in [
            ("viterbi", &mut v as &mut dyn ReferenceDecode),
            ("sova", &mut s),
            ("bcjr", &mut b),
        ] {
            dec.fast_into(&llrs, &mut fast);
            dec.reference_into(&llrs, &mut slow);
            assert_eq!(fast, slow, "{name} round {round}");
        }
    }
}

/// Interlaces equal-length per-lane blocks into the lane-major SoA layout
/// the batched entry points consume.
fn interleave_lanes(lanes: &[Vec<Llr>]) -> Vec<Llr> {
    let n = lanes.len();
    let per = lanes[0].len();
    assert!(lanes.iter().all(|l| l.len() == per));
    let mut soa = vec![0; per * n];
    for (l, lane) in lanes.iter().enumerate() {
        for (i, &v) in lane.iter().enumerate() {
            soa[i * n + l] = v;
        }
    }
    soa
}

/// Every decoder's batched decode must be bit-identical, lane for lane, to
/// solo scalar decodes of the same blocks.
fn assert_batch_matches_solo(code: &ConvCode, lanes_llrs: &[Vec<Llr>], ctx: &str) {
    let lanes = lanes_llrs.len();
    let soa = interleave_lanes(lanes_llrs);
    let mut outs = vec![DecodeOutput::default(); lanes];
    let mut solo = DecodeOutput::default();

    let mut v = ViterbiDecoder::new(code);
    v.decode_terminated_batch_into(&soa, lanes, &mut outs);
    for (l, lane) in lanes_llrs.iter().enumerate() {
        v.decode_terminated_into(lane, &mut solo);
        assert_eq!(outs[l], solo, "viterbi lane {l}/{lanes}: {ctx}");
    }

    let mut s = SovaDecoder::new(code, 64, 64);
    s.decode_terminated_batch_into(&soa, lanes, &mut outs);
    for (l, lane) in lanes_llrs.iter().enumerate() {
        s.decode_terminated_into(lane, &mut solo);
        assert_eq!(outs[l], solo, "sova lane {l}/{lanes}: {ctx}");
    }

    let mut b = BcjrDecoder::new(code, 64);
    b.decode_terminated_batch_into(&soa, lanes, &mut outs);
    for (l, lane) in lanes_llrs.iter().enumerate() {
        b.decode_terminated_into(lane, &mut solo);
        assert_eq!(outs[l], solo, "bcjr lane {l}/{lanes}: {ctx}");
    }
}

/// Lockstep batches of every width the engine uses (1, 2, 4, 8) decode
/// each lane bit-identically to solo execution, for every code — including
/// the K=9 code whose Viterbi/SOVA batches take the per-lane fallback.
#[test]
fn batched_decodes_match_solo_for_every_lane_count() {
    let mut rng = SmallRng::seed_from_u64(0xBA7C_0001);
    for code in codes() {
        for lanes in [1usize, 2, 4, 8] {
            let steps = code.tail_len() + rng.gen_i64(20, 120) as usize;
            let blocks: Vec<Vec<Llr>> = (0..lanes)
                .map(|_| random_llrs(&mut rng, &code, steps, 31))
                .collect();
            assert_batch_matches_solo(&code, &blocks, &format!("{code}"));
        }
    }
}

/// Ragged widths — the tail of a packet group that doesn't fill the batch
/// — and oversized batches beyond `MAX_LANES` (which must take the scalar
/// per-lane path) both stay lane-identical to solo.
#[test]
fn ragged_and_oversized_batches_match_solo() {
    let mut rng = SmallRng::seed_from_u64(0xBA7C_0002);
    let code = ConvCode::ieee80211();
    for lanes in [3usize, 5, 7, 9, 11] {
        let steps = code.tail_len() + rng.gen_i64(20, 90) as usize;
        let blocks: Vec<Vec<Llr>> = (0..lanes)
            .map(|_| random_llrs(&mut rng, &code, steps, 31))
            .collect();
        assert_batch_matches_solo(&code, &blocks, "ragged");
    }
}

/// Mixed batches: clean full-confidence lanes in lockstep with heavily
/// corrupted ones (the sentinel-margin corner next to the noisy-margin
/// corner, in the same batch), plus a lane past `FAST_LLR_LIMIT` that
/// pushes the whole batch through the reference-backed fallback.
#[test]
fn mixed_noisy_and_clean_lanes_match_solo() {
    let mut rng = SmallRng::seed_from_u64(0xBA7C_0003);
    let code = ConvCode::ieee80211();
    let steps = code.tail_len() + 64;
    let info = steps - code.tail_len();
    let clean = |rng: &mut SmallRng| -> Vec<Llr> {
        let data: Vec<u8> = (0..info).map(|_| rng.gen_bit()).collect();
        ConvEncoder::new(&code)
            .encode_terminated(&data)
            .iter()
            .map(|&b| hard_llr(b, 15))
            .collect()
    };
    let blocks: Vec<Vec<Llr>> = (0..8)
        .map(|l| {
            if l % 2 == 0 {
                clean(&mut rng)
            } else {
                random_llrs(&mut rng, &code, steps, 31)
            }
        })
        .collect();
    assert_batch_matches_solo(&code, &blocks, "mixed clean/noisy");

    // One lane beyond the fast-path bound: the batch gate must reject the
    // whole group and the per-lane scalar path (reference for that lane)
    // must still match solo execution exactly.
    let mut spiked = blocks;
    let mid = spiked[3].len() / 2;
    spiked[3][mid] = FAST_LLR_LIMIT as Llr + 1;
    assert_batch_matches_solo(&code, &spiked, "fast-path spike");
}

/// The batched entry points inherit the scalar panics on malformed shapes.
#[test]
#[should_panic(expected = "not a multiple of lane count")]
fn misaligned_batch_input_panics() {
    let code = ConvCode::ieee80211();
    let mut outs = vec![DecodeOutput::default(); 3];
    ViterbiDecoder::new(&code).decode_terminated_batch_into(&[1, 2, 3, 4], 3, &mut outs);
}

/// Small helper trait so the reuse test can drive all three decoders
/// through both paths uniformly.
trait ReferenceDecode {
    fn fast_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput);
    fn reference_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput);
}

impl ReferenceDecode for ViterbiDecoder {
    fn fast_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        self.decode_terminated_into(llrs, out);
    }
    fn reference_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        self.decode_terminated_reference_into(llrs, out);
    }
}

impl ReferenceDecode for SovaDecoder {
    fn fast_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        self.decode_terminated_into(llrs, out);
    }
    fn reference_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        self.decode_terminated_reference_into(llrs, out);
    }
}

impl ReferenceDecode for BcjrDecoder {
    fn fast_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        self.decode_terminated_into(llrs, out);
    }
    fn reference_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        self.decode_terminated_reference_into(llrs, out);
    }
}
