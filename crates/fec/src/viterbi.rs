//! Hard-output Viterbi — the baseline decoder "typically used in commodity
//! 802.11a/g baseband pipelines" (§4.4.3).

use std::sync::Arc;

use crate::batch;
use crate::bmu::Bmu;
use crate::compiled::{
    fast_path_ok, renormalize_uniform, CompiledBmu, CompiledTrellis, NORM_INTERVAL,
};
use crate::llr::{DecodeOutput, Llr, SoftDecoder};
use crate::reference;
use crate::scratch::TrellisScratch;
use crate::ConvCode;

/// A block Viterbi decoder for tail-terminated frames.
///
/// Runs the compiled-trellis forward ACS ([`crate::compiled`]): branchless
/// butterfly steps over `i32` metrics with periodic renormalization,
/// survivors bit-packed one `u64` word per step for the 64-state 802.11
/// code. Produces hard decisions only; the `soft` outputs are all zero
/// (this is precisely what SoftPHY adds on top).
///
/// # Example
///
/// ```
/// use wilis_fec::{ConvCode, ConvEncoder, SoftDecoder, ViterbiDecoder, hard_llr};
///
/// let code = ConvCode::ieee80211();
/// let data = [0u8, 1, 1, 0, 1];
/// let coded = ConvEncoder::new(&code).encode_terminated(&data);
/// let llrs: Vec<i32> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
/// let out = ViterbiDecoder::new(&code).decode_terminated(&llrs);
/// assert_eq!(out.bits, data);
/// ```
#[derive(Debug, Clone)]
pub struct ViterbiDecoder {
    code: ConvCode,
    compiled: Arc<CompiledTrellis>,
    bmu: Bmu,
    cbmu: CompiledBmu,
    scratch: TrellisScratch,
    /// Traceback window length; retained for the latency/area models (the
    /// block decode itself is exact).
    traceback_len: usize,
}

impl ViterbiDecoder {
    /// A decoder for `code` with the paper's default traceback length (64).
    pub fn new(code: &ConvCode) -> Self {
        Self::with_traceback(code, 64)
    }

    /// A decoder with an explicit traceback length (used by the latency
    /// and area models; the functional decode is block-exact either way).
    ///
    /// # Panics
    ///
    /// Panics if `traceback_len` is zero.
    pub fn with_traceback(code: &ConvCode, traceback_len: usize) -> Self {
        Self::assemble(Arc::new(CompiledTrellis::new(code)), traceback_len)
    }

    /// A decoder sharing an already-compiled trellis — the construction
    /// the scenario engine's receiver banks use so one table build serves
    /// every rate and every oracle replica of a code.
    pub fn with_shared_trellis(trellis: Arc<CompiledTrellis>) -> Self {
        Self::assemble(trellis, 64)
    }

    fn assemble(compiled: Arc<CompiledTrellis>, traceback_len: usize) -> Self {
        assert!(traceback_len > 0, "traceback length must be positive");
        Self {
            code: compiled.code().clone(),
            bmu: Bmu::new(compiled.n_out()),
            cbmu: CompiledBmu::new(compiled.n_out()),
            compiled,
            scratch: TrellisScratch::new(),
            traceback_len,
        }
    }

    /// The configured traceback length.
    pub fn traceback_len(&self) -> usize {
        self.traceback_len
    }

    /// The code being decoded.
    pub fn code(&self) -> &ConvCode {
        &self.code
    }

    /// The shared compiled-trellis handle.
    pub fn shared_trellis(&self) -> &Arc<CompiledTrellis> {
        &self.compiled
    }

    fn validate(&self, llrs: &[Llr]) -> usize {
        let n_out = self.compiled.n_out();
        assert!(
            llrs.len() % n_out == 0,
            "soft input length {} not a multiple of n_out {}",
            llrs.len(),
            n_out
        );
        let steps = llrs.len() / n_out;
        assert!(
            steps > self.code.tail_len(),
            "block shorter than the code tail"
        );
        steps
    }

    /// Decodes through the frozen `i64` reference kernels — the pre-PR
    /// decode path, kept callable for differential tests and as the
    /// baseline the `perf_trellis` bench records speedups against.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`SoftDecoder::decode_terminated_into`].
    pub fn decode_terminated_reference_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        self.validate(llrs);
        reference::viterbi_decode(
            self.compiled.trellis(),
            self.code.tail_len(),
            &mut self.bmu,
            &mut self.scratch,
            llrs,
            out,
        );
    }

    fn decode_fast(&mut self, steps: usize, llrs: &[Llr], out: &mut DecodeOutput) {
        let Self {
            code,
            compiled,
            cbmu,
            scratch,
            ..
        } = self;
        let ct = &**compiled;
        let n_out = ct.n_out();
        let n_states = ct.n_states();
        let wps = ct.words_per_step();
        let warmup = (code.memory() as usize).min(steps);

        scratch.init_columns32(n_states, 0);
        scratch.init_surv_words(steps, wps);
        for step in 0..steps {
            let bm = cbmu.compute(&llrs[step * n_out..(step + 1) * n_out]);
            let surv = &mut scratch.surv_words[step * wps..(step + 1) * wps];
            if step < warmup {
                ct.forward_step_warmup(bm, &scratch.pm32, &mut scratch.next32, surv, None);
            } else {
                if (step - warmup) % NORM_INTERVAL == 0 {
                    renormalize_uniform(&mut scratch.pm32);
                }
                ct.forward_step_viterbi(bm, &scratch.pm32, &mut scratch.next32, surv);
            }
            std::mem::swap(&mut scratch.pm32, &mut scratch.next32);
        }

        // Terminated frame: the true path ends in state zero. Traceback
        // reads one survivor bit per step from the packed words.
        out.bits.clear();
        out.bits.resize(steps, 0);
        let mut state = 0usize;
        for t in (0..steps).rev() {
            let winner = ct.survivor_bit(&scratch.surv_words, wps, t, state);
            let (bit, prev) = ct.traceback_edge(state, winner);
            out.bits[t] = bit;
            state = prev;
        }
        let info = steps - code.tail_len();
        out.bits.truncate(info);
        out.soft.clear();
        out.soft.resize(info, 0);
    }
}

impl SoftDecoder for ViterbiDecoder {
    // lint: no_alloc
    fn decode_terminated_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        let steps = self.validate(llrs);
        if fast_path_ok(llrs) {
            self.decode_fast(steps, llrs, out);
        } else {
            reference::viterbi_decode(
                self.compiled.trellis(),
                self.code.tail_len(),
                &mut self.bmu,
                &mut self.scratch,
                llrs,
                out,
            );
        }
    }

    // lint: no_alloc
    fn decode_terminated_batch_into(
        &mut self,
        llrs: &[Llr],
        lanes: usize,
        outs: &mut [DecodeOutput],
    ) {
        batch::validate_batch(
            self.compiled.n_out(),
            self.code.tail_len(),
            llrs,
            lanes,
            outs.len(),
        );
        // Lockstep requires one survivor word per (step, lane) — i.e. at
        // most 64 states — and every lane inside the fast-path LLR bound;
        // anything else decodes per lane through the scalar gate.
        if lanes <= batch::MAX_LANES && self.compiled.words_per_step() == 1 && fast_path_ok(llrs) {
            batch::viterbi_batch(
                &self.compiled,
                self.code.memory() as usize,
                self.code.tail_len(),
                llrs,
                lanes,
                &mut self.scratch.batch,
                outs,
            );
        } else {
            let mut lane_buf = std::mem::take(&mut self.scratch.batch.lane_llrs);
            for (l, out) in outs.iter_mut().enumerate() {
                batch::gather_lane(llrs, lanes, l, &mut lane_buf);
                self.decode_terminated_into(&lane_buf, out);
            }
            self.scratch.batch.lane_llrs = lane_buf;
        }
    }

    fn id(&self) -> &'static str {
        "viterbi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard_llr;
    use crate::ConvEncoder;

    fn roundtrip(code: &ConvCode, data: &[u8]) -> Vec<u8> {
        let coded = ConvEncoder::new(code).encode_terminated(data);
        let llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
        ViterbiDecoder::new(code).decode_terminated(&llrs).bits
    }

    #[test]
    fn clean_roundtrip_80211() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..200).map(|i| ((i * 7 + 3) % 5 % 2) as u8).collect();
        assert_eq!(roundtrip(&code, &data), data);
    }

    #[test]
    fn clean_roundtrip_k3() {
        let code = ConvCode::k3();
        let data = [1u8, 1, 0, 1, 0, 0, 1];
        assert_eq!(roundtrip(&code, &data), data);
    }

    #[test]
    fn corrects_isolated_errors() {
        // K=7 rate 1/2 has free distance 10: a few well-separated flipped
        // coded bits must be corrected.
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..100).map(|i| (i % 3 == 0) as u8).collect();
        let coded = ConvEncoder::new(&code).encode_terminated(&data);
        let mut llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
        for &pos in &[10, 50, 90, 130, 170] {
            llrs[pos] = -llrs[pos];
        }
        let out = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        assert_eq!(out.bits, data);
    }

    #[test]
    fn survives_erasures() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        let coded = ConvEncoder::new(&code).encode_terminated(&data);
        let mut llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
        // Erase every 4th soft value (as 3/4 puncturing would).
        for l in llrs.iter_mut().step_by(4) {
            *l = 0;
        }
        let out = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        assert_eq!(out.bits, data);
    }

    #[test]
    fn soft_outputs_are_zero() {
        let code = ConvCode::k3();
        let coded = ConvEncoder::new(&code).encode_terminated(&[1, 0, 1]);
        let llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
        let out = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        assert!(out.soft.iter().all(|&s| s == 0));
        assert_eq!(out.bits.len(), out.soft.len());
    }

    #[test]
    fn oversized_llrs_fall_back_to_the_reference_path() {
        // Inputs beyond the fast-path bound decode through the i64
        // kernels and still invert the encoder.
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..40).map(|i| (i % 3 == 1) as u8).collect();
        let coded = ConvEncoder::new(&code).encode_terminated(&data);
        let llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, i32::MAX / 2)).collect();
        let out = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        assert_eq!(out.bits, data);
    }

    #[test]
    fn shared_trellis_decoder_matches_owned() {
        let code = ConvCode::ieee80211();
        let shared = Arc::new(CompiledTrellis::new(&code));
        let data: Vec<u8> = (0..60).map(|i| (i % 4 == 2) as u8).collect();
        let coded = ConvEncoder::new(&code).encode_terminated(&data);
        let llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
        let a = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        let b = ViterbiDecoder::with_shared_trellis(shared).decode_terminated(&llrs);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_input_panics() {
        let code = ConvCode::ieee80211();
        let _ = ViterbiDecoder::new(&code).decode_terminated(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "shorter than the code tail")]
    fn too_short_block_panics() {
        let code = ConvCode::ieee80211();
        let _ = ViterbiDecoder::new(&code).decode_terminated(&[1, 1]);
    }
}
