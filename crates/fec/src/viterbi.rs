//! Hard-output Viterbi — the baseline decoder "typically used in commodity
//! 802.11a/g baseband pipelines" (§4.4.3).

use crate::bmu::Bmu;
use crate::llr::{DecodeOutput, Llr, SoftDecoder};
use crate::pmu::forward_acs;
use crate::scratch::TrellisScratch;
use crate::trellis::Trellis;
use crate::ConvCode;

/// A block Viterbi decoder for tail-terminated frames.
///
/// Runs the shared forward ACS recursion, records survivors, and traces
/// back from the known terminal state. Produces hard decisions only; the
/// `soft` outputs are all zero (this is precisely what SoftPHY adds on top).
///
/// # Example
///
/// ```
/// use wilis_fec::{ConvCode, ConvEncoder, SoftDecoder, ViterbiDecoder, hard_llr};
///
/// let code = ConvCode::ieee80211();
/// let data = [0u8, 1, 1, 0, 1];
/// let coded = ConvEncoder::new(&code).encode_terminated(&data);
/// let llrs: Vec<i32> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
/// let out = ViterbiDecoder::new(&code).decode_terminated(&llrs);
/// assert_eq!(out.bits, data);
/// ```
#[derive(Debug, Clone)]
pub struct ViterbiDecoder {
    code: ConvCode,
    trellis: Trellis,
    bmu: Bmu,
    scratch: TrellisScratch,
    /// Traceback window length; retained for the latency/area models (the
    /// block decode itself is exact).
    traceback_len: usize,
}

impl ViterbiDecoder {
    /// A decoder for `code` with the paper's default traceback length (64).
    pub fn new(code: &ConvCode) -> Self {
        Self::with_traceback(code, 64)
    }

    /// A decoder with an explicit traceback length (used by the latency
    /// and area models; the functional decode is block-exact either way).
    ///
    /// # Panics
    ///
    /// Panics if `traceback_len` is zero.
    pub fn with_traceback(code: &ConvCode, traceback_len: usize) -> Self {
        assert!(traceback_len > 0, "traceback length must be positive");
        Self {
            code: code.clone(),
            trellis: Trellis::new(code),
            bmu: Bmu::new(code.n_out()),
            scratch: TrellisScratch::new(),
            traceback_len,
        }
    }

    /// The configured traceback length.
    pub fn traceback_len(&self) -> usize {
        self.traceback_len
    }

    /// The code being decoded.
    pub fn code(&self) -> &ConvCode {
        &self.code
    }
}

impl SoftDecoder for ViterbiDecoder {
    fn decode_terminated_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        let n_out = self.trellis.n_out();
        assert!(
            llrs.len() % n_out == 0,
            "soft input length {} not a multiple of n_out {}",
            llrs.len(),
            n_out
        );
        let steps = llrs.len() / n_out;
        assert!(
            steps > self.code.tail_len(),
            "block shorter than the code tail"
        );
        let n_states = self.trellis.n_states();

        // Forward ACS, survivors recorded into the flattened scratch.
        self.scratch.init_columns(n_states, 0);
        self.scratch.init_survivors(steps, n_states);
        for step in 0..steps {
            let bm = self.bmu.compute(&llrs[step * n_out..(step + 1) * n_out]);
            let surv = &mut self.scratch.survivors[step * n_states..(step + 1) * n_states];
            forward_acs(
                &self.trellis,
                bm,
                &self.scratch.pm,
                &mut self.scratch.next,
                Some(surv),
                None,
            );
            std::mem::swap(&mut self.scratch.pm, &mut self.scratch.next);
        }

        // Terminated frame: the true path ends in state zero.
        out.bits.clear();
        out.bits.resize(steps, 0);
        let mut state = 0usize;
        for t in (0..steps).rev() {
            let winner = self.scratch.survivors[t * n_states + state];
            let edge = self.trellis.incoming(state)[winner as usize];
            out.bits[t] = edge.input;
            state = edge.prev as usize;
        }
        let info = steps - self.code.tail_len();
        out.bits.truncate(info);
        out.soft.clear();
        out.soft.resize(info, 0);
    }

    fn id(&self) -> &'static str {
        "viterbi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard_llr;
    use crate::ConvEncoder;

    fn roundtrip(code: &ConvCode, data: &[u8]) -> Vec<u8> {
        let coded = ConvEncoder::new(code).encode_terminated(data);
        let llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
        ViterbiDecoder::new(code).decode_terminated(&llrs).bits
    }

    #[test]
    fn clean_roundtrip_80211() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..200).map(|i| ((i * 7 + 3) % 5 % 2) as u8).collect();
        assert_eq!(roundtrip(&code, &data), data);
    }

    #[test]
    fn clean_roundtrip_k3() {
        let code = ConvCode::k3();
        let data = [1u8, 1, 0, 1, 0, 0, 1];
        assert_eq!(roundtrip(&code, &data), data);
    }

    #[test]
    fn corrects_isolated_errors() {
        // K=7 rate 1/2 has free distance 10: a few well-separated flipped
        // coded bits must be corrected.
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..100).map(|i| (i % 3 == 0) as u8).collect();
        let coded = ConvEncoder::new(&code).encode_terminated(&data);
        let mut llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
        for &pos in &[10, 50, 90, 130, 170] {
            llrs[pos] = -llrs[pos];
        }
        let out = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        assert_eq!(out.bits, data);
    }

    #[test]
    fn survives_erasures() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        let coded = ConvEncoder::new(&code).encode_terminated(&data);
        let mut llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
        // Erase every 4th soft value (as 3/4 puncturing would).
        for l in llrs.iter_mut().step_by(4) {
            *l = 0;
        }
        let out = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        assert_eq!(out.bits, data);
    }

    #[test]
    fn soft_outputs_are_zero() {
        let code = ConvCode::k3();
        let coded = ConvEncoder::new(&code).encode_terminated(&[1, 0, 1]);
        let llrs: Vec<Llr> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
        let out = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        assert!(out.soft.iter().all(|&s| s == 0));
        assert_eq!(out.bits.len(), out.soft.len());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_input_panics() {
        let code = ConvCode::ieee80211();
        let _ = ViterbiDecoder::new(&code).decode_terminated(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "shorter than the code tail")]
    fn too_short_block_panics() {
        let code = ConvCode::ieee80211();
        let _ = ViterbiDecoder::new(&code).decode_terminated(&[1, 1]);
    }
}
