//! Reusable decode working memory.
//!
//! The three decoders share one BMU/PMU substrate (§4.3); they also share
//! one working-memory layout. [`TrellisScratch`] owns every intermediate
//! buffer a block decode needs — path-metric columns, flattened survivor
//! and margin matrices, branch-metric and backward-metric stores — sized
//! on first use and retained across calls, so the steady-state decode path
//! of the scenario engine allocates nothing per packet.

use crate::pmu::{NEG_INF, NEG_INF32};

/// Working buffers for one decoder instance.
///
/// Matrices are flattened row-major: step `t`, state `s` lives at
/// `t * n_states + s`. Buffers grow monotonically to the largest block
/// seen and are reused verbatim afterwards.
#[derive(Debug, Clone, Default)]
pub struct TrellisScratch {
    /// Forward path-metric column (current step).
    pub(crate) pm: Vec<i64>,
    /// Forward path-metric column (next step).
    pub(crate) next: Vec<i64>,
    /// Survivor edge indices, `steps × n_states`.
    pub(crate) survivors: Vec<u8>,
    /// ACS decision margins, `steps × n_states` (SOVA).
    pub(crate) margins: Vec<i64>,
    /// Per-step reliabilities along the ML path (SOVA).
    pub(crate) reliability: Vec<i64>,
    /// ML state sequence, `steps + 1` entries (SOVA).
    pub(crate) ml_states: Vec<u32>,
    /// ML input bits, one per step (SOVA).
    pub(crate) ml_bits: Vec<u8>,
    /// Branch metrics, `steps × 2^n_out` (BCJR).
    pub(crate) bms: Vec<i64>,
    /// Backward metric columns for the current block, `block × n_states`
    /// (BCJR).
    pub(crate) betas: Vec<i64>,
    /// Beta boundary column at the end of the current block (BCJR).
    pub(crate) boundary: Vec<i64>,
    /// Spare column for the provisional backward walk (BCJR).
    pub(crate) col: Vec<i64>,
    // --- compiled-kernel (i32) buffers; the reference path above is kept
    // --- verbatim for the fallback and differential tests.
    /// Forward path-metric column, compiled kernels (current step).
    pub(crate) pm32: Vec<i32>,
    /// Forward path-metric column, compiled kernels (next step).
    pub(crate) next32: Vec<i32>,
    /// Bit-packed survivors, `steps × words_per_step` `u64` words (one bit
    /// per state instead of the reference path's one byte).
    pub(crate) surv_words: Vec<u64>,
    /// ACS decision margins, `steps × n_states` (SOVA, compiled).
    pub(crate) margins32: Vec<i32>,
    /// Per-step reliabilities along the ML path (SOVA, compiled).
    pub(crate) reliability32: Vec<i32>,
    /// Branch metrics, `steps × 2^n_out` (BCJR, compiled).
    pub(crate) bms32: Vec<i32>,
    /// Backward metric columns for the current block (BCJR, compiled).
    pub(crate) betas32: Vec<i32>,
    /// Beta boundary column (BCJR, compiled).
    pub(crate) boundary32: Vec<i32>,
    /// Spare column for the provisional backward walk (BCJR, compiled).
    pub(crate) col32: Vec<i32>,
    /// Lane-major buffers for the lockstep batch kernels
    /// ([`crate::batch`]); empty until the first batched decode.
    pub(crate) batch: crate::batch::BatchScratch,
}

impl TrellisScratch {
    /// An empty scratch; buffers are sized lazily on first decode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets `pm` to the known-state column (state `state` certain) and
    /// sizes `next` to match.
    pub(crate) fn init_columns(&mut self, n_states: usize, state: usize) {
        self.pm.clear();
        self.pm.resize(n_states, NEG_INF);
        self.pm[state] = 0;
        self.next.clear();
        self.next.resize(n_states, 0);
    }

    /// Sizes the flattened survivor matrix for `steps` trellis steps.
    pub(crate) fn init_survivors(&mut self, steps: usize, n_states: usize) {
        self.survivors.clear();
        self.survivors.resize(steps * n_states, 0);
    }

    /// Resets `pm32` to the known-state column and sizes `next32` — the
    /// compiled-kernel analog of [`TrellisScratch::init_columns`].
    pub(crate) fn init_columns32(&mut self, n_states: usize, state: usize) {
        self.pm32.clear();
        self.pm32.resize(n_states, NEG_INF32);
        self.pm32[state] = 0;
        self.next32.clear();
        self.next32.resize(n_states, 0);
    }

    /// Sizes the bit-packed survivor matrix for `steps` trellis steps of
    /// `words` `u64` words each.
    pub(crate) fn init_surv_words(&mut self, steps: usize, words: usize) {
        self.surv_words.clear();
        self.surv_words.resize(steps * words, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_initialize_to_known_state() {
        let mut s = TrellisScratch::new();
        s.init_columns(4, 2);
        assert_eq!(s.pm, vec![NEG_INF, NEG_INF, 0, NEG_INF]);
        assert_eq!(s.next.len(), 4);
    }

    #[test]
    fn buffers_retain_capacity_across_reuse() {
        let mut s = TrellisScratch::new();
        s.init_survivors(100, 64);
        let cap = s.survivors.capacity();
        s.init_survivors(50, 64);
        assert!(s.survivors.capacity() >= cap, "shrank a reusable buffer");
    }

    #[test]
    fn compiled_columns_initialize_to_known_state() {
        let mut s = TrellisScratch::new();
        s.init_columns32(4, 1);
        assert_eq!(s.pm32, vec![NEG_INF32, 0, NEG_INF32, NEG_INF32]);
        s.init_surv_words(10, 2);
        assert_eq!(s.surv_words.len(), 20);
        assert!(s.surv_words.iter().all(|&w| w == 0));
    }
}
