//! Reusable decode working memory.
//!
//! The three decoders share one BMU/PMU substrate (§4.3); they also share
//! one working-memory layout. [`TrellisScratch`] owns every intermediate
//! buffer a block decode needs — path-metric columns, flattened survivor
//! and margin matrices, branch-metric and backward-metric stores — sized
//! on first use and retained across calls, so the steady-state decode path
//! of the scenario engine allocates nothing per packet.

use crate::pmu::NEG_INF;

/// Working buffers for one decoder instance.
///
/// Matrices are flattened row-major: step `t`, state `s` lives at
/// `t * n_states + s`. Buffers grow monotonically to the largest block
/// seen and are reused verbatim afterwards.
#[derive(Debug, Clone, Default)]
pub struct TrellisScratch {
    /// Forward path-metric column (current step).
    pub(crate) pm: Vec<i64>,
    /// Forward path-metric column (next step).
    pub(crate) next: Vec<i64>,
    /// Survivor edge indices, `steps × n_states`.
    pub(crate) survivors: Vec<u8>,
    /// ACS decision margins, `steps × n_states` (SOVA).
    pub(crate) margins: Vec<i64>,
    /// Per-step reliabilities along the ML path (SOVA).
    pub(crate) reliability: Vec<i64>,
    /// ML state sequence, `steps + 1` entries (SOVA).
    pub(crate) ml_states: Vec<u32>,
    /// ML input bits, one per step (SOVA).
    pub(crate) ml_bits: Vec<u8>,
    /// Branch metrics, `steps × 2^n_out` (BCJR).
    pub(crate) bms: Vec<i64>,
    /// Backward metric columns for the current block, `block × n_states`
    /// (BCJR).
    pub(crate) betas: Vec<i64>,
    /// Beta boundary column at the end of the current block (BCJR).
    pub(crate) boundary: Vec<i64>,
    /// Spare column for the provisional backward walk (BCJR).
    pub(crate) col: Vec<i64>,
}

impl TrellisScratch {
    /// An empty scratch; buffers are sized lazily on first decode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets `pm` to the known-state column (state `state` certain) and
    /// sizes `next` to match.
    pub(crate) fn init_columns(&mut self, n_states: usize, state: usize) {
        self.pm.clear();
        self.pm.resize(n_states, NEG_INF);
        self.pm[state] = 0;
        self.next.clear();
        self.next.resize(n_states, 0);
    }

    /// Sizes the flattened survivor matrix for `steps` trellis steps.
    pub(crate) fn init_survivors(&mut self, steps: usize, n_states: usize) {
        self.survivors.clear();
        self.survivors.resize(steps * n_states, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_initialize_to_known_state() {
        let mut s = TrellisScratch::new();
        s.init_columns(4, 2);
        assert_eq!(s.pm, vec![NEG_INF, NEG_INF, 0, NEG_INF]);
        assert_eq!(s.next.len(), 4);
    }

    #[test]
    fn buffers_retain_capacity_across_reuse() {
        let mut s = TrellisScratch::new();
        s.init_survivors(100, 64);
        let cap = s.survivors.capacity();
        s.init_survivors(50, 64);
        assert!(s.survivors.capacity() >= cap, "shrank a reusable buffer");
    }
}
