//! The frozen `i64` reference decode paths.
//!
//! These are the pre-compiled-trellis decoder bodies, preserved verbatim
//! for three jobs:
//!
//! 1. **Fallback** — soft inputs outside the compiled kernels' LLR bound
//!    ([`crate::compiled::fast_path_ok`]) decode here, so the public
//!    decoders behave identically for *any* `i32` input.
//! 2. **Differential oracle** — the equivalence property tests assert the
//!    compiled kernels reproduce these outputs bit-for-bit.
//! 3. **Perf baseline** — the `perf_trellis` bench times this path as the
//!    "pre" side of the recorded speedup.
//!
//! Do not optimize this module; its value is that it does not change.

use crate::bmu::Bmu;
use crate::llr::{DecodeOutput, Llr};
use crate::pmu::{backward_acs, forward_acs, normalize, saturate_llr, NEG_INF};
use crate::scratch::TrellisScratch;
use crate::trellis::Trellis;

/// Block-exact hard-output Viterbi over the per-state edge structs — the
/// original `ViterbiDecoder` body.
pub(crate) fn viterbi_decode(
    trellis: &Trellis,
    tail_len: usize,
    bmu: &mut Bmu,
    scratch: &mut TrellisScratch,
    llrs: &[Llr],
    out: &mut DecodeOutput,
) {
    let n_out = trellis.n_out();
    let steps = llrs.len() / n_out;
    let n_states = trellis.n_states();

    // Forward ACS, survivors recorded into the flattened scratch.
    scratch.init_columns(n_states, 0);
    scratch.init_survivors(steps, n_states);
    for step in 0..steps {
        let bm = bmu.compute(&llrs[step * n_out..(step + 1) * n_out]);
        let surv = &mut scratch.survivors[step * n_states..(step + 1) * n_states];
        forward_acs(
            trellis,
            bm,
            &scratch.pm,
            &mut scratch.next,
            Some(surv),
            None,
        );
        std::mem::swap(&mut scratch.pm, &mut scratch.next);
    }

    // Terminated frame: the true path ends in state zero.
    out.bits.clear();
    out.bits.resize(steps, 0);
    let mut state = 0usize;
    for t in (0..steps).rev() {
        let winner = scratch.survivors[t * n_states + state];
        let edge = trellis.incoming(state)[winner as usize];
        out.bits[t] = edge.input;
        state = edge.prev as usize;
    }
    let info = steps - tail_len;
    out.bits.truncate(info);
    out.soft.clear();
    out.soft.resize(info, 0);
}

/// Block-exact SOVA with the Hagenauer-rule reliability update — the
/// original `SovaDecoder` body (`k` is the TU2 update window).
pub(crate) fn sova_decode(
    trellis: &Trellis,
    tail_len: usize,
    k: usize,
    bmu: &mut Bmu,
    scratch: &mut TrellisScratch,
    llrs: &[Llr],
    out: &mut DecodeOutput,
) {
    let n_out = trellis.n_out();
    let steps = llrs.len() / n_out;
    let n_states = trellis.n_states();

    // Forward pass, keeping survivors and ACS margins per step in the
    // flattened scratch matrices.
    scratch.init_columns(n_states, 0);
    scratch.init_survivors(steps, n_states);
    scratch.margins.clear();
    scratch.margins.resize(steps * n_states, 0);
    for step in 0..steps {
        let bm = bmu.compute(&llrs[step * n_out..(step + 1) * n_out]);
        let row = step * n_states..(step + 1) * n_states;
        forward_acs(
            trellis,
            bm,
            &scratch.pm,
            &mut scratch.next,
            Some(&mut scratch.survivors[row.clone()]), // lint: allow(no-alloc) — Range<usize> clone is a stack copy, no heap allocation
            Some(&mut scratch.margins[row]),
        );
        std::mem::swap(&mut scratch.pm, &mut scratch.next);
    }
    let s = scratch;
    let survivors = &s.survivors;
    let margins = &s.margins;

    // TU1: maximum-likelihood state sequence. Terminated frame ends in
    // state zero; ml_states[t] is the state entering step t.
    s.ml_states.clear();
    s.ml_states.resize(steps + 1, 0);
    s.ml_bits.clear();
    s.ml_bits.resize(steps, 0);
    let (ml_states, ml_bits) = (&mut s.ml_states, &mut s.ml_bits);
    for t in (0..steps).rev() {
        let state = ml_states[t + 1] as usize;
        let edge = trellis.incoming(state)[survivors[t * n_states + state] as usize];
        ml_bits[t] = edge.input;
        ml_states[t] = edge.prev as u32;
    }

    // TU2: Hagenauer-rule reliability update. For each ML step t, the
    // competing (second-best) path into ml_states[t+1] diverges
    // backwards; everywhere its decisions differ within the window, the
    // reliability drops to the ACS margin if smaller.
    s.reliability.clear();
    s.reliability.resize(steps, i64::MAX);
    let reliability = &mut s.reliability;
    for t in 0..steps {
        let s_next = ml_states[t + 1] as usize;
        let winner = survivors[t * n_states + s_next] as usize;
        let margin = margins[t * n_states + s_next];
        let loser_edge = trellis.incoming(s_next)[1 - winner];
        // The competing hypothesis for bit t itself.
        if loser_edge.input != ml_bits[t] && margin < reliability[t] {
            reliability[t] = margin;
        }
        // Trace the competing path backwards up to k steps, comparing
        // decisions against the ML path.
        let mut state = loser_edge.prev as usize;
        let window_start = t.saturating_sub(k);
        for i in (window_start..t).rev() {
            let edge = trellis.incoming(state)[survivors[i * n_states + state] as usize];
            if edge.input != ml_bits[i] && margin < reliability[i] {
                reliability[i] = margin;
            }
            state = edge.prev as usize;
            if state == ml_states[i] as usize {
                // Paths have remerged; earlier decisions coincide.
                break;
            }
        }
    }

    let info = steps - tail_len;
    out.bits.clear();
    out.bits.extend_from_slice(&ml_bits[..info]);
    out.soft.clear();
    out.soft.extend((0..info).map(|t| {
        let mag = saturate_llr(reliability[t]);
        if ml_bits[t] == 1 {
            mag
        } else {
            -mag
        }
    }));
}

/// The `beta` column applying *before* step `t` of `range`, for every
/// `t`, written into `betas` (flattened, `range.len() × n_states`,
/// indexed relative to the range start). `boundary` is the column just
/// *after* the last step of the range.
fn backward_block_flat(
    trellis: &Trellis,
    bms: &[i64],
    n_patterns: usize,
    range: std::ops::Range<usize>,
    boundary: &[i64],
    betas: &mut [i64],
) {
    let n_states = trellis.n_states();
    let len = range.len();
    debug_assert_eq!(betas.len(), len * n_states);
    // lint: allow(no-alloc) — Range<usize> clone is a stack copy, no heap allocation
    for (local, t) in range.clone().enumerate().rev() {
        let bm = &bms[t * n_patterns..(t + 1) * n_patterns];
        let (head, tail) = betas.split_at_mut((local + 1) * n_states);
        let after: &[i64] = if local + 1 < len {
            &tail[..n_states]
        } else {
            boundary
        };
        let row = &mut head[local * n_states..];
        backward_acs(trellis, bm, after, row);
        normalize(row);
    }
}

/// Sliding-window max-log BCJR — the original `BcjrDecoder` body.
pub(crate) fn bcjr_decode(
    trellis: &Trellis,
    tail_len: usize,
    block_len: usize,
    bmu: &mut Bmu,
    scratch: &mut TrellisScratch,
    llrs: &[Llr],
    out: &mut DecodeOutput,
) {
    let n_out = trellis.n_out();
    let steps = llrs.len() / n_out;
    let n_states = trellis.n_states();
    let n_patterns = 1usize << n_out;

    // Branch metrics for every step (the hardware streams these through
    // the reversal buffers; we precompute per-frame into the scratch).
    scratch.bms.clear();
    scratch.bms.resize(steps * n_patterns, 0);
    for t in 0..steps {
        let bm = bmu.compute(&llrs[t * n_out..(t + 1) * n_out]);
        scratch.bms[t * n_patterns..(t + 1) * n_patterns].copy_from_slice(bm);
    }

    scratch.init_columns(n_states, 0);
    let TrellisScratch {
        pm: alpha,
        next: next_alpha,
        bms,
        betas,
        boundary,
        col,
        ..
    } = scratch;
    out.bits.clear();
    out.soft.clear();

    let mut t0 = 0usize;
    while t0 < steps {
        let t1 = (t0 + block_len).min(steps);
        // Beta boundary for the end of this block.
        if t1 == steps {
            // Terminated frame: the path ends in state zero.
            boundary.clear();
            boundary.resize(n_states, NEG_INF);
            boundary[0] = 0;
        } else {
            // Provisional backward pass over the *next* block, started
            // from the "uncertain" uniform column (§4.3.2), keeping
            // only the column that lands on t1.
            let t2 = (t1 + block_len).min(steps);
            boundary.clear();
            boundary.resize(n_states, 0);
            col.clear();
            col.resize(n_states, 0);
            for t in (t1..t2).rev() {
                let bm = &bms[t * n_patterns..(t + 1) * n_patterns];
                backward_acs(trellis, bm, boundary, col);
                normalize(col);
                std::mem::swap(boundary, col);
            }
        }
        betas.clear();
        betas.resize((t1 - t0) * n_states, 0);
        backward_block_flat(trellis, bms, n_patterns, t0..t1, boundary, betas);

        // Forward pass + decision unit over this block.
        for t in t0..t1 {
            let bm = &bms[t * n_patterns..(t + 1) * n_patterns];
            // beta that applies after consuming step t:
            let beta_after: &[i64] = if t + 1 < t1 {
                &betas[(t + 1 - t0) * n_states..(t + 2 - t0) * n_states]
            } else {
                boundary
            };
            let mut best = [NEG_INF; 2];
            for (s, &a) in alpha.iter().enumerate() {
                if a <= NEG_INF / 2 {
                    continue;
                }
                for (b, best_b) in best.iter_mut().enumerate() {
                    let tr = trellis.next(s, b as u8);
                    let m = a
                        .saturating_add(bm[tr.output as usize])
                        .saturating_add(beta_after[tr.next as usize]);
                    if m > *best_b {
                        *best_b = m;
                    }
                }
            }
            // The decision unit: most-likely-1 minus most-likely-0
            // path metrics — the single added subtracter of §4.3.2.
            let llr = best[1].saturating_sub(best[0]);
            out.bits.push(u8::from(llr > 0));
            out.soft.push(saturate_llr(llr));

            forward_acs(trellis, bm, alpha, next_alpha, None, None);
            normalize(next_alpha);
            std::mem::swap(alpha, next_alpha);
        }
        t0 = t1;
    }

    let info = steps - tail_len;
    out.bits.truncate(info);
    out.soft.truncate(info);
}
