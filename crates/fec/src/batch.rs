//! Lockstep batch decoding: B same-shape packets through one trellis walk,
//! metrics laid out structure-of-arrays so the lane axis autovectorizes.
//!
//! The compiled kernels of [`crate::compiled`] removed every per-edge
//! branch from a *single* decode; what remains is instruction-level
//! parallelism the scalar recurrence cannot expose — each ACS step depends
//! on the previous column. Packets, however, are independent. This module
//! decodes up to [`MAX_LANES`] equal-length blocks *in lockstep*: one pass
//! over the trellis where every intermediate quantity carries one value
//! per lane, stored lane-innermost so the per-state inner loops become
//! straight-line arithmetic over `[i32; L]` rows — exactly the shape the
//! autovectorizer turns into SIMD.
//!
//! Layouts (`L` = lane count, `l` = lane index):
//!
//! * soft inputs — lane-major SoA: soft value `i` of lane `l` at
//!   `llrs[i * L + l]`;
//! * path-metric columns — `[state][lane]`: `pm[s * L + l]`;
//! * branch metrics — `[pattern][lane]`: `bm[p * L + l]`;
//! * SOVA margins — `[step][state][lane]`:
//!   `margins[(t * n_states + s) * L + l]`;
//! * survivors — one register-built `u64` per `(step, lane)` with bit `s`
//!   holding state `s`'s decision: `surv[t * L + l]`. (The 64-state 802.11
//!   code packs one word per step, so this is the `[step][state][lane]`
//!   bit-cube with the state axis folded into the word.)
//!
//! **Bit-identity contract.** Each lane of a batch kernel performs exactly
//! the arithmetic of the corresponding scalar compiled kernel — the same
//! adds, the same compares, the same renormalization schedule applied
//! per lane — and lanes never interact. Per-lane outputs are therefore
//! bit-identical to solo [`crate::SoftDecoder::decode_terminated_into`]
//! calls by construction, which the equivalence suite checks for every
//! lane count, against both the scalar compiled path and the frozen `i64`
//! reference kernels.
//!
//! Gating mirrors the scalar fast path: any lane whose soft values exceed
//! [`crate::compiled::fast_path_ok`], or a code whose survivors need more
//! than one word per step (≥ 65 states), sends the whole batch through the
//! per-lane scalar path — which itself falls back to the reference kernels
//! exactly as before.
//!
//! `#[inline]` / bounds-check audit: the `lane`/`lane_mut` row accessors
//! below are the load-bearing inlines — they convert a slice index into a
//! `&[i32; L]` array reference, so every per-lane inner loop is over a
//! compile-time-sized row and LLVM drops all bounds checks after the one
//! slice-to-array conversion. They mirror the `wilis_fxp::Cplx` treatment:
//! `#[inline(always)]`, because an outlined call would re-introduce a
//! per-row function boundary in loops executed `steps × n_states` times.

use crate::compiled::{CompiledTrellis, HUGE_MARGIN, NORM_INTERVAL};
use crate::llr::{DecodeOutput, Llr};
use crate::pmu::NEG_INF32;

/// Widest lockstep batch the kernels are monomorphized for. Matches the
/// scenario engine's packet-block width: fused shared-channel jobs hand
/// the receivers up to this many packets per batched decode, and ragged
/// tails simply instantiate a narrower lane count.
pub const MAX_LANES: usize = 8;

/// Threshold separating genuine metrics from unreachable-state sentinels
/// (same constant the scalar kernels use).
const UNREACHABLE32: i32 = NEG_INF32 / 2;

/// Working buffers for one decoder's batched decodes — the lane-major twin
/// of [`crate::TrellisScratch`], grown on first use and reused verbatim.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchScratch {
    /// Path-metric column, `[state][lane]` (current step).
    pm: Vec<i32>,
    /// Path-metric column, `[state][lane]` (next step).
    next: Vec<i32>,
    /// Survivor words, one `u64` per `(step, lane)`.
    surv: Vec<u64>,
    /// One step's branch metrics, `[pattern][lane]`.
    bm: Vec<i32>,
    /// ACS margins, `[step][state][lane]` (SOVA).
    margins: Vec<i32>,
    /// Per-step reliabilities along one lane's ML path (SOVA; lanes trace
    /// back serially, so one column is reused across lanes).
    reliability: Vec<i32>,
    /// One lane's ML state sequence, `steps + 1` entries (SOVA).
    ml_states: Vec<u32>,
    /// One lane's ML input bits (SOVA).
    ml_bits: Vec<u8>,
    /// The current window's branch metrics, `[local][pattern][lane]`
    /// (BCJR). Streamed per window rather than precomputed whole-frame:
    /// at 8 lanes a frame's metrics would run to ~1 MB and every pass
    /// would stream them from L3, while one window is ~32 KB and stays
    /// cache-resident across the three passes that read it.
    bms: Vec<i32>,
    /// The next window's branch metrics (the provisional backward pass
    /// reads one window ahead; swapped into `bms` when the window
    /// advances so each step's metrics are computed exactly once).
    bms_next: Vec<i32>,
    /// Backward metric columns for the current block, `[local][state][lane]`
    /// (BCJR).
    betas: Vec<i32>,
    /// Beta boundary column, `[state][lane]` (BCJR).
    boundary: Vec<i32>,
    /// Spare column for the provisional backward walk (BCJR).
    col: Vec<i32>,
    /// One lane's gathered soft inputs for the scalar fallback path.
    pub(crate) lane_llrs: Vec<Llr>,
}

/// Shape checks shared by every batched entry point: `lanes` lanes of
/// equal length, one output slot per lane, each lane a whole number of
/// trellis steps longer than the tail.
pub(crate) fn validate_batch(
    n_out: usize,
    tail_len: usize,
    llrs: &[Llr],
    lanes: usize,
    n_outputs: usize,
) -> usize {
    assert!(lanes > 0, "at least one lane");
    assert_eq!(n_outputs, lanes, "one DecodeOutput per lane");
    assert!(
        llrs.len() % lanes == 0,
        "lane-major input length {} not a multiple of lane count {lanes}",
        llrs.len()
    );
    let per_lane = llrs.len() / lanes;
    assert!(
        per_lane % n_out == 0,
        "soft input length {per_lane} not a multiple of n_out {n_out}"
    );
    let steps = per_lane / n_out;
    assert!(steps > tail_len, "block shorter than the code tail");
    steps
}

/// Copies lane `l` of a lane-major block into a contiguous buffer — the
/// de-interlacing step of the scalar fallback path.
pub(crate) fn gather_lane(soa: &[Llr], lanes: usize, l: usize, out: &mut Vec<Llr>) {
    out.clear();
    out.extend(soa.chunks_exact(lanes).map(|row| row[l]));
}

/// A lane row of a `[index][lane]` buffer as a fixed-size array — the
/// bounds-check-eliminating accessor every batch kernel loops over.
#[inline(always)]
fn lane<const L: usize>(buf: &[i32], idx: usize) -> &[i32; L] {
    buf[idx * L..idx * L + L].try_into().unwrap() // lint: allow(panic-policy) — the slice is exactly L long by the index arithmetic
}

/// Mutable form of [`lane`].
#[inline(always)]
fn lane_mut<const L: usize>(buf: &mut [i32], idx: usize) -> &mut [i32; L] {
    (&mut buf[idx * L..idx * L + L]).try_into().unwrap() // lint: allow(panic-policy) — the slice is exactly L long by the index arithmetic
}

/// One step's branch metrics for all lanes: the batched image of
/// [`crate::CompiledBmu::compute`], including its rate-1/2 special case.
#[inline]
fn compute_bm_batch<const L: usize>(step_llrs: &[Llr], n_out: usize, out: &mut [i32]) {
    debug_assert_eq!(step_llrs.len(), n_out * L);
    debug_assert_eq!(out.len(), (1usize << n_out) * L);
    if n_out == 2 {
        let l0 = lane::<L>(step_llrs, 0);
        let l1 = lane::<L>(step_llrs, 1);
        for l in 0..L {
            // Rate-1/2 special case: ±sum, ±diff — identical per lane to
            // the scalar BMU.
            let s = l0[l] + l1[l];
            let d = l0[l] - l1[l];
            out[l] = -s;
            out[L + l] = d;
            out[2 * L + l] = -d;
            out[3 * L + l] = s;
        }
    } else {
        for (pattern, slot) in out.chunks_exact_mut(L).enumerate() {
            for l in 0..L {
                let mut m = 0i32;
                for j in 0..n_out {
                    let llr = step_llrs[j * L + l];
                    if (pattern >> j) & 1 == 1 {
                        m += llr;
                    } else {
                        m -= llr;
                    }
                }
                slot[l] = m;
            }
        }
    }
}

/// Per-lane uniform-shift renormalization: each lane's column maximum is
/// subtracted from that lane's entries —
/// [`crate::compiled::renormalize_uniform`] applied independently per lane.
#[inline]
fn renormalize_uniform_batch<const L: usize>(col: &mut [i32]) {
    let mut maxs = [i32::MIN; L];
    for row in col.chunks_exact(L) {
        for l in 0..L {
            maxs[l] = maxs[l].max(row[l]);
        }
    }
    for row in col.chunks_exact_mut(L) {
        for l in 0..L {
            row[l] -= maxs[l];
        }
    }
}

/// Per-lane sentinel-preserving normalization — [`crate::pmu::normalize32`]
/// applied independently per lane. The shift is forced to zero for lanes
/// whose column is all-sentinel, which makes the scalar kernel's outer
/// `if max > NEG_INF32/2` guard equivalent to an unconditional pass.
#[inline]
fn normalize32_batch<const L: usize>(col: &mut [i32]) {
    let mut maxs = [i32::MIN; L];
    for row in col.chunks_exact(L) {
        for l in 0..L {
            maxs[l] = maxs[l].max(row[l]);
        }
    }
    let mut shifts = [0i32; L];
    for l in 0..L {
        if maxs[l] > UNREACHABLE32 {
            shifts[l] = maxs[l];
        }
    }
    for row in col.chunks_exact_mut(L) {
        for l in 0..L {
            if row[l] > UNREACHABLE32 {
                row[l] -= shifts[l];
            }
        }
    }
}

/// One post-warmup forward ACS step for all lanes, survivors packed one
/// word per lane. State-ordered like the generic scalar kernel; the
/// butterfly streaming form computes identical values in a different
/// visit order, so the lane results match both.
#[inline]
fn forward_step_viterbi_batch<const L: usize>(
    ct: &CompiledTrellis,
    bm: &[i32],
    prev: &[i32],
    out: &mut [i32],
    surv: &mut [u64],
) {
    let n = ct.n_states();
    debug_assert!(n <= 64);
    let mut words = [0u64; L];
    for s in 0..n {
        let p0 = lane::<L>(prev, ct.prev0[s] as usize);
        let p1 = lane::<L>(prev, ct.prev1[s] as usize);
        let b0 = lane::<L>(bm, ct.omask0[s] as usize);
        let b1 = lane::<L>(bm, ct.omask1[s] as usize);
        let row = lane_mut::<L>(out, s);
        for l in 0..L {
            let c0 = p0[l] + b0[l];
            let c1 = p1[l] + b1[l];
            let take1 = c1 > c0;
            row[l] = if take1 { c1 } else { c0 };
            words[l] |= u64::from(take1) << s;
        }
    }
    surv[..L].copy_from_slice(&words);
}

/// The SOVA variant of [`forward_step_viterbi_batch`]: additionally
/// records the per-state ACS margin `|c1 - c0|` for every lane.
#[inline]
fn forward_step_sova_batch<const L: usize>(
    ct: &CompiledTrellis,
    bm: &[i32],
    prev: &[i32],
    out: &mut [i32],
    surv: &mut [u64],
    margins: &mut [i32],
) {
    let n = ct.n_states();
    debug_assert!(n <= 64);
    let mut words = [0u64; L];
    for s in 0..n {
        let p0 = lane::<L>(prev, ct.prev0[s] as usize);
        let p1 = lane::<L>(prev, ct.prev1[s] as usize);
        let b0 = lane::<L>(bm, ct.omask0[s] as usize);
        let b1 = lane::<L>(bm, ct.omask1[s] as usize);
        let mg = lane_mut::<L>(margins, s);
        let row = lane_mut::<L>(out, s);
        for l in 0..L {
            let c0 = p0[l] + b0[l];
            let c1 = p1[l] + b1[l];
            let take1 = c1 > c0;
            row[l] = if take1 { c1 } else { c0 };
            mg[l] = (c1 - c0).abs();
            words[l] |= u64::from(take1) << s;
        }
    }
    surv[..L].copy_from_slice(&words);
}

/// The sentinel-aware warmup step for all lanes — the batched image of
/// [`CompiledTrellis::forward_step_warmup`]: an unreachable competitor
/// always loses and concedes a [`HUGE_MARGIN`].
fn forward_step_warmup_batch<const L: usize>(
    ct: &CompiledTrellis,
    bm: &[i32],
    prev: &[i32],
    out: &mut [i32],
    surv: &mut [u64],
    mut margins: Option<&mut [i32]>,
) {
    let n = ct.n_states();
    debug_assert!(n <= 64);
    let mut words = [0u64; L];
    for s in 0..n {
        let p0 = lane::<L>(prev, ct.prev0[s] as usize);
        let p1 = lane::<L>(prev, ct.prev1[s] as usize);
        let b0 = lane::<L>(bm, ct.omask0[s] as usize);
        let b1 = lane::<L>(bm, ct.omask1[s] as usize);
        let row = lane_mut::<L>(out, s);
        for l in 0..L {
            let c0 = p0[l] + b0[l];
            let c1 = p1[l] + b1[l];
            let r0 = c0 > UNREACHABLE32;
            let r1 = c1 > UNREACHABLE32;
            let (take1, metric, margin) = match (r0, r1) {
                (true, false) => (false, c0, HUGE_MARGIN),
                (false, true) => (true, c1, HUGE_MARGIN),
                _ => {
                    let take1 = c1 > c0;
                    (take1, if take1 { c1 } else { c0 }, (c1 - c0).abs())
                }
            };
            row[l] = metric;
            words[l] |= u64::from(take1) << s;
            if let Some(m) = margins.as_deref_mut() {
                m[s * L + l] = margin;
            }
        }
    }
    surv[..L].copy_from_slice(&words);
}

/// One BCJR α step for all lanes (saturating, sentinel-carrying).
#[inline]
fn alpha_step_batch<const L: usize>(
    ct: &CompiledTrellis,
    bm: &[i32],
    prev: &[i32],
    out: &mut [i32],
) {
    for s in 0..ct.n_states() {
        let p0 = lane::<L>(prev, ct.prev0[s] as usize);
        let p1 = lane::<L>(prev, ct.prev1[s] as usize);
        let b0 = lane::<L>(bm, ct.omask0[s] as usize);
        let b1 = lane::<L>(bm, ct.omask1[s] as usize);
        let row = lane_mut::<L>(out, s);
        for l in 0..L {
            let c0 = p0[l].saturating_add(b0[l]);
            let c1 = p1[l].saturating_add(b1[l]);
            row[l] = c0.max(c1);
        }
    }
}

/// One BCJR β step for all lanes over the source-indexed tables.
#[inline]
fn beta_step_batch<const L: usize>(
    ct: &CompiledTrellis,
    bm: &[i32],
    next: &[i32],
    out: &mut [i32],
) {
    for s in 0..ct.n_states() {
        let n0 = lane::<L>(next, ct.next0[s] as usize);
        let n1 = lane::<L>(next, ct.next1[s] as usize);
        let b0 = lane::<L>(bm, ct.fout0[s] as usize);
        let b1 = lane::<L>(bm, ct.fout1[s] as usize);
        let row = lane_mut::<L>(out, s);
        for l in 0..L {
            let c0 = n0[l].saturating_add(b0[l]);
            let c1 = n1[l].saturating_add(b1[l]);
            row[l] = c0.max(c1);
        }
    }
}

/// The BCJR decision maxima for one step, all lanes at once: best
/// `α + branch + β` over input-0 and input-1 transitions, skipping
/// forward-unreachable states per lane exactly as the scalar decision
/// unit does (the discarded speculative sums use the same saturating
/// arithmetic, so skipped lanes are unaffected).
#[inline]
fn decision_best_batch<const L: usize>(
    ct: &CompiledTrellis,
    bm: &[i32],
    alpha: &[i32],
    beta_after: &[i32],
    best0: &mut [i32; L],
    best1: &mut [i32; L],
) {
    *best0 = [NEG_INF32; L];
    *best1 = [NEG_INF32; L];
    for s in 0..ct.n_states() {
        let a = lane::<L>(alpha, s);
        let b0 = lane::<L>(bm, ct.fout0[s] as usize);
        let b1 = lane::<L>(bm, ct.fout1[s] as usize);
        let n0 = lane::<L>(beta_after, ct.next0[s] as usize);
        let n1 = lane::<L>(beta_after, ct.next1[s] as usize);
        for l in 0..L {
            let reachable = a[l] > UNREACHABLE32;
            let m0 = a[l].saturating_add(b0[l]).saturating_add(n0[l]);
            let m1 = a[l].saturating_add(b1[l]).saturating_add(n1[l]);
            // Branchless skip: an unreachable state contributes the
            // running maxima's floor instead of branching around the
            // update, which keeps the lane loop a pure select chain.
            best0[l] = best0[l].max(if reachable { m0 } else { NEG_INF32 });
            best1[l] = best1[l].max(if reachable { m1 } else { NEG_INF32 });
        }
    }
}

/// Resets the path-metric columns to the known-state-zero start, one
/// sentinel column per lane.
fn init_columns_batch<const L: usize>(s: &mut BatchScratch, n_states: usize) {
    s.pm.clear();
    s.pm.resize(n_states * L, NEG_INF32);
    s.pm[..L].fill(0);
    s.next.clear();
    s.next.resize(n_states * L, 0);
}

/// Traceback of one lane from the terminal state-zero over the per-lane
/// survivor words (`surv[t * L + l]`, bit `s` = state `s`'s decision).
fn traceback_lane<const L: usize>(
    ct: &CompiledTrellis,
    surv: &[u64],
    steps: usize,
    l: usize,
    bits: &mut [u8],
) {
    let mut state = 0usize;
    for t in (0..steps).rev() {
        let winner = ((surv[t * L + l] >> state) & 1) as u8;
        let (bit, prev) = ct.traceback_edge(state, winner);
        bits[t] = bit;
        state = prev;
    }
}

/// Lockstep Viterbi over `L` lanes: the batched image of the scalar
/// compiled decode — shared forward pass, per-lane traceback.
// lint: no_alloc
fn viterbi_kernel<const L: usize>(
    ct: &CompiledTrellis,
    memory: usize,
    tail_len: usize,
    llrs: &[Llr],
    s: &mut BatchScratch,
    outs: &mut [DecodeOutput],
) {
    let n_out = ct.n_out();
    let n_states = ct.n_states();
    let n_patterns = 1usize << n_out;
    let steps = llrs.len() / (n_out * L);
    let warmup = memory.min(steps);

    init_columns_batch::<L>(s, n_states);
    s.surv.clear();
    s.surv.resize(steps * L, 0);
    s.bm.clear();
    s.bm.resize(n_patterns * L, 0);
    for step in 0..steps {
        compute_bm_batch::<L>(
            &llrs[step * n_out * L..(step + 1) * n_out * L],
            n_out,
            &mut s.bm,
        );
        let surv = &mut s.surv[step * L..(step + 1) * L];
        if step < warmup {
            forward_step_warmup_batch::<L>(ct, &s.bm, &s.pm, &mut s.next, surv, None);
        } else {
            if (step - warmup) % NORM_INTERVAL == 0 {
                renormalize_uniform_batch::<L>(&mut s.pm);
            }
            forward_step_viterbi_batch::<L>(ct, &s.bm, &s.pm, &mut s.next, surv);
        }
        std::mem::swap(&mut s.pm, &mut s.next);
    }

    let info = steps - tail_len;
    for (l, out) in outs.iter_mut().enumerate() {
        out.bits.clear();
        out.bits.resize(steps, 0);
        traceback_lane::<L>(ct, &s.surv, steps, l, &mut out.bits);
        out.bits.truncate(info);
        out.soft.clear();
        out.soft.resize(info, 0);
    }
}

/// Lockstep SOVA over `L` lanes: shared forward pass with lane-major
/// margins, then the two serial traceback units per lane (TU1 ML path,
/// TU2 Hagenauer reliability update).
// lint: no_alloc
fn sova_kernel<const L: usize>(
    ct: &CompiledTrellis,
    memory: usize,
    tail_len: usize,
    k: usize,
    llrs: &[Llr],
    s: &mut BatchScratch,
    outs: &mut [DecodeOutput],
) {
    let n_out = ct.n_out();
    let n_states = ct.n_states();
    let n_patterns = 1usize << n_out;
    let steps = llrs.len() / (n_out * L);
    let warmup = memory.min(steps);

    init_columns_batch::<L>(s, n_states);
    s.surv.clear();
    s.surv.resize(steps * L, 0);
    s.bm.clear();
    s.bm.resize(n_patterns * L, 0);
    s.margins.clear();
    s.margins.resize(steps * n_states * L, 0);
    for step in 0..steps {
        compute_bm_batch::<L>(
            &llrs[step * n_out * L..(step + 1) * n_out * L],
            n_out,
            &mut s.bm,
        );
        let surv = &mut s.surv[step * L..(step + 1) * L];
        let margins = &mut s.margins[step * n_states * L..(step + 1) * n_states * L];
        if step < warmup {
            forward_step_warmup_batch::<L>(ct, &s.bm, &s.pm, &mut s.next, surv, Some(margins));
        } else {
            if (step - warmup) % NORM_INTERVAL == 0 {
                renormalize_uniform_batch::<L>(&mut s.pm);
            }
            forward_step_sova_batch::<L>(ct, &s.bm, &s.pm, &mut s.next, surv, margins);
        }
        std::mem::swap(&mut s.pm, &mut s.next);
    }

    let surv = &s.surv;
    let margins = &s.margins;
    let info = steps - tail_len;
    for (l, out) in outs.iter_mut().enumerate() {
        // TU1: this lane's ML state sequence off the packed survivors.
        s.ml_states.clear();
        s.ml_states.resize(steps + 1, 0);
        s.ml_bits.clear();
        s.ml_bits.resize(steps, 0);
        let (ml_states, ml_bits) = (&mut s.ml_states, &mut s.ml_bits);
        for t in (0..steps).rev() {
            let state = ml_states[t + 1] as usize;
            let winner = ((surv[t * L + l] >> state) & 1) as u8;
            let (bit, prev) = ct.traceback_edge(state, winner);
            ml_bits[t] = bit;
            ml_states[t] = prev as u32;
        }

        // TU2: Hagenauer-rule reliability update, identical control flow to
        // the scalar kernel with lane-strided survivor/margin reads.
        s.reliability.clear();
        s.reliability.resize(steps, i32::MAX);
        let reliability = &mut s.reliability;
        for t in 0..steps {
            let s_next = ml_states[t + 1] as usize;
            let winner = ((surv[t * L + l] >> s_next) & 1) as u8;
            let margin = margins[(t * n_states + s_next) * L + l];
            let (loser_bit, loser_prev) = ct.traceback_edge(s_next, 1 - winner);
            if loser_bit != ml_bits[t] && margin < reliability[t] {
                reliability[t] = margin;
            }
            let mut state = loser_prev;
            let window_start = t.saturating_sub(k);
            for i in (window_start..t).rev() {
                let winner = ((surv[i * L + l] >> state) & 1) as u8;
                let (bit, prev) = ct.traceback_edge(state, winner);
                if bit != ml_bits[i] && margin < reliability[i] {
                    reliability[i] = margin;
                }
                state = prev;
                if state == ml_states[i] as usize {
                    break;
                }
            }
        }

        out.bits.clear();
        out.bits.extend_from_slice(&ml_bits[..info]);
        out.soft.clear();
        out.soft.extend((0..info).map(|t| {
            let mag = reliability[t];
            if ml_bits[t] == 1 {
                mag
            } else {
                -mag
            }
        }));
    }
}

/// Lockstep sliding-window BCJR over `L` lanes: both recursions, the
/// provisional backward pass, and the decision unit all carry one value
/// per lane, with [`normalize32_batch`] applied per column exactly where
/// the scalar kernel normalizes.
// lint: no_alloc
fn bcjr_kernel<const L: usize>(
    ct: &CompiledTrellis,
    tail_len: usize,
    block_len: usize,
    llrs: &[Llr],
    s: &mut BatchScratch,
    outs: &mut [DecodeOutput],
) {
    let n_out = ct.n_out();
    let n_states = ct.n_states();
    let n_patterns = 1usize << n_out;
    let steps = llrs.len() / (n_out * L);
    let np_l = n_patterns * L;

    init_columns_batch::<L>(s, n_states);
    let BatchScratch {
        pm: alpha,
        next: next_alpha,
        bms,
        bms_next,
        betas,
        boundary,
        col,
        ..
    } = s;
    for out in outs.iter_mut() {
        out.bits.clear();
        out.soft.clear();
    }

    // One window's branch metrics, `[local][pattern][lane]`.
    let fill_bms = |buf: &mut Vec<i32>, a: usize, b: usize| {
        buf.clear();
        buf.resize((b - a) * np_l, 0);
        for (i, t) in (a..b).enumerate() {
            compute_bm_batch::<L>(
                &llrs[t * n_out * L..(t + 1) * n_out * L],
                n_out,
                &mut buf[i * np_l..(i + 1) * np_l],
            );
        }
    };

    let row_len = n_states * L;
    let mut best0 = [0i32; L];
    let mut best1 = [0i32; L];
    let mut t0 = 0usize;
    fill_bms(bms, 0, block_len.min(steps));
    while t0 < steps {
        let t1 = (t0 + block_len).min(steps);
        if t1 == steps {
            // Terminated frame: every lane's path ends in state zero.
            boundary.clear();
            boundary.resize(row_len, NEG_INF32);
            boundary[..L].fill(0);
            bms_next.clear();
        } else {
            // Provisional backward pass over the next block from the
            // uniform "uncertain" column, keeping only the column at t1.
            let t2 = (t1 + block_len).min(steps);
            fill_bms(bms_next, t1, t2);
            boundary.clear();
            boundary.resize(row_len, 0);
            col.clear();
            col.resize(row_len, 0);
            for t in (t1..t2).rev() {
                let bm = &bms_next[(t - t1) * np_l..(t - t1 + 1) * np_l];
                beta_step_batch::<L>(ct, bm, boundary, col);
                normalize32_batch::<L>(col);
                std::mem::swap(boundary, col);
            }
        }
        betas.clear();
        betas.resize((t1 - t0) * row_len, 0);
        let len = t1 - t0;
        for (local, _t) in (t0..t1).enumerate().rev() {
            let bm = &bms[local * np_l..(local + 1) * np_l];
            let (head, tail) = betas.split_at_mut((local + 1) * row_len);
            let after: &[i32] = if local + 1 < len {
                &tail[..row_len]
            } else {
                boundary
            };
            let row = &mut head[local * row_len..];
            beta_step_batch::<L>(ct, bm, after, row);
            normalize32_batch::<L>(row);
        }

        for t in t0..t1 {
            let bm = &bms[(t - t0) * np_l..(t - t0 + 1) * np_l];
            let beta_after: &[i32] = if t + 1 < t1 {
                &betas[(t + 1 - t0) * row_len..(t + 2 - t0) * row_len]
            } else {
                boundary
            };
            decision_best_batch::<L>(ct, bm, alpha, beta_after, &mut best0, &mut best1);
            for (l, out) in outs.iter_mut().enumerate() {
                let llr = best1[l].saturating_sub(best0[l]);
                out.bits.push(u8::from(llr > 0));
                out.soft.push(llr);
            }
            alpha_step_batch::<L>(ct, bm, alpha, next_alpha);
            normalize32_batch::<L>(next_alpha);
            std::mem::swap(alpha, next_alpha);
        }
        t0 = t1;
        // The provisional window becomes the real one; its metrics were
        // computed once and are reused verbatim.
        std::mem::swap(bms, bms_next);
    }

    let info = steps - tail_len;
    for out in outs.iter_mut() {
        out.bits.truncate(info);
        out.soft.truncate(info);
    }
}

/// Dispatches a runtime lane count onto the monomorphized kernels.
macro_rules! dispatch_lanes {
    ($lanes:expr, $kernel:ident ( $($arg:expr),* $(,)? )) => {
        match $lanes {
            1 => $kernel::<1>($($arg),*),
            2 => $kernel::<2>($($arg),*),
            3 => $kernel::<3>($($arg),*),
            4 => $kernel::<4>($($arg),*),
            5 => $kernel::<5>($($arg),*),
            6 => $kernel::<6>($($arg),*),
            7 => $kernel::<7>($($arg),*),
            8 => $kernel::<8>($($arg),*),
            n => unreachable!("lane count {n} exceeds MAX_LANES"),
        }
    };
}

/// Batched Viterbi entry point (lane-count dispatch).
pub(crate) fn viterbi_batch(
    ct: &CompiledTrellis,
    memory: usize,
    tail_len: usize,
    llrs: &[Llr],
    lanes: usize,
    s: &mut BatchScratch,
    outs: &mut [DecodeOutput],
) {
    dispatch_lanes!(lanes, viterbi_kernel(ct, memory, tail_len, llrs, s, outs));
}

/// Batched SOVA entry point (lane-count dispatch).
#[allow(clippy::too_many_arguments)]
pub(crate) fn sova_batch(
    ct: &CompiledTrellis,
    memory: usize,
    tail_len: usize,
    k: usize,
    llrs: &[Llr],
    lanes: usize,
    s: &mut BatchScratch,
    outs: &mut [DecodeOutput],
) {
    dispatch_lanes!(lanes, sova_kernel(ct, memory, tail_len, k, llrs, s, outs));
}

/// Batched BCJR entry point (lane-count dispatch).
pub(crate) fn bcjr_batch(
    ct: &CompiledTrellis,
    tail_len: usize,
    block_len: usize,
    llrs: &[Llr],
    lanes: usize,
    s: &mut BatchScratch,
    outs: &mut [DecodeOutput],
) {
    dispatch_lanes!(lanes, bcjr_kernel(ct, tail_len, block_len, llrs, s, outs));
}
