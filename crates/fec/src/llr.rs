//! Soft-value conventions shared by the demapper, decoders and estimator.

/// A soft bit value: `log P(bit = 1) / P(bit = 0)`, scaled and quantized.
///
/// Positive means `1` is more likely; the magnitude is confidence. The
/// demapper decides the scale (§4.1: hardware drops the `Es/N0` and
/// modulation factors, which is exactly why the SoftPHY estimator has to
/// reintroduce them — equation 5 of the paper).
pub type Llr = i32;

/// Number of bits in a SoftPHY hint; hints range over `0..=MAX_HINT`.
///
/// The paper's Figure 5 plots hints on a 0–60 axis, i.e. 6-bit quantized
/// confidence values.
pub const HINT_BITS: u32 = 6;

/// Largest SoftPHY hint value.
pub const MAX_HINT: u16 = (1 << HINT_BITS) - 1;

/// A full-confidence LLR for a known bit, at `magnitude`.
///
/// # Example
///
/// ```
/// use wilis_fec::hard_llr;
/// assert_eq!(hard_llr(1, 15), 15);
/// assert_eq!(hard_llr(0, 15), -15);
/// ```
///
/// # Panics
///
/// Panics if `bit` is not 0 or 1 or `magnitude` is negative.
pub fn hard_llr(bit: u8, magnitude: Llr) -> Llr {
    assert!(bit < 2, "binary bit expected");
    assert!(magnitude >= 0, "magnitude must be non-negative");
    if bit == 1 {
        magnitude
    } else {
        -magnitude
    }
}

/// The result of decoding one terminated block.
///
/// The buffers are reusable: passing the same `DecodeOutput` to
/// [`SoftDecoder::decode_terminated_into`] repeatedly retains their
/// capacity, so the steady-state decode path performs no heap allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecodeOutput {
    /// Hard decisions for the information bits (tail excluded), values 0/1.
    pub bits: Vec<u8>,
    /// Per-bit signed soft outputs aligned with `bits`: sign matches the
    /// decision, magnitude is the decoder's confidence. All zeros for
    /// hard-output decoders.
    pub soft: Vec<Llr>,
}

impl DecodeOutput {
    /// The SoftPHY hint for bit `i`: the soft magnitude clamped to the
    /// 6-bit hint range (`0..=63`), which is what crosses the PHY/MAC
    /// interface in the paper's hardware.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn hint(&self, i: usize) -> u16 {
        (self.soft[i].unsigned_abs().min(u32::from(MAX_HINT))) as u16
    }

    /// Iterates `(bit, hint)` pairs.
    pub fn iter_hints(&self) -> impl Iterator<Item = (u8, u16)> + '_ {
        (0..self.bits.len()).map(|i| (self.bits[i], self.hint(i)))
    }
}

/// A soft-decision decoder for terminated convolutional blocks.
///
/// `llrs` must contain `n_out` soft values per trellis step, including the
/// tail steps, in transmission order; the block is assumed tail-terminated
/// in state zero (802.11a convention). Implementations return only the
/// information bits.
pub trait SoftDecoder {
    /// Decodes one terminated block into `out`, reusing its buffers.
    ///
    /// This is the hot-path entry point: together with the decoder's
    /// internal [`crate::TrellisScratch`], repeated calls on same-sized
    /// blocks perform no heap allocation after the first.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not a multiple of the code's `n_out`, or
    /// the block is shorter than the tail.
    fn decode_terminated_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput);

    /// Decodes one terminated block into a freshly allocated output — the
    /// convenience form of [`SoftDecoder::decode_terminated_into`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`SoftDecoder::decode_terminated_into`].
    fn decode_terminated(&mut self, llrs: &[Llr]) -> DecodeOutput {
        let mut out = DecodeOutput::default();
        self.decode_terminated_into(llrs, &mut out);
        out
    }

    /// Decodes `lanes` equal-length terminated blocks presented lane-major
    /// (soft value `i` of lane `l` at `llrs[i * lanes + l]`), one
    /// [`DecodeOutput`] per lane.
    ///
    /// Per-lane results are bit-identical to `lanes` separate
    /// [`SoftDecoder::decode_terminated_into`] calls — batching is purely
    /// a throughput lever. The default implementation de-interlaces and
    /// decodes each lane through the scalar path; the workspace decoders
    /// override it with the lockstep structure-of-arrays kernels of
    /// `wilis_fec::batch` for lane counts up to
    /// [`crate::batch::MAX_LANES`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, `outs.len() != lanes`, `llrs.len()` is
    /// not a multiple of `lanes`, or any lane violates the conditions of
    /// [`SoftDecoder::decode_terminated_into`].
    fn decode_terminated_batch_into(
        &mut self,
        llrs: &[Llr],
        lanes: usize,
        outs: &mut [DecodeOutput],
    ) {
        assert!(lanes > 0, "at least one lane");
        assert_eq!(outs.len(), lanes, "one DecodeOutput per lane");
        assert!(
            llrs.len() % lanes == 0,
            "lane-major input length {} not a multiple of lane count {lanes}",
            llrs.len()
        );
        let mut lane_buf = Vec::with_capacity(llrs.len() / lanes);
        for (l, out) in outs.iter_mut().enumerate() {
            lane_buf.clear();
            lane_buf.extend(llrs.chunks_exact(lanes).map(|row| row[l]));
            self.decode_terminated_into(&lane_buf, out);
        }
    }

    /// A short identifier (`"viterbi"`, `"sova"`, `"bcjr"`), used by the
    /// plug-n-play registry and result labels.
    fn id(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_clamps_to_six_bits() {
        let out = DecodeOutput {
            bits: vec![1, 0, 1],
            soft: vec![1000, -3, 63],
        };
        assert_eq!(out.hint(0), 63);
        assert_eq!(out.hint(1), 3);
        assert_eq!(out.hint(2), 63);
    }

    #[test]
    fn iter_hints_pairs_bits_with_confidence() {
        let out = DecodeOutput {
            bits: vec![1, 0],
            soft: vec![10, -20],
        };
        let v: Vec<(u8, u16)> = out.iter_hints().collect();
        assert_eq!(v, vec![(1, 10), (0, 20)]);
    }

    #[test]
    #[should_panic(expected = "binary bit")]
    fn hard_llr_rejects_non_binary() {
        let _ = hard_llr(3, 1);
    }

    #[test]
    fn max_hint_is_63() {
        assert_eq!(MAX_HINT, 63);
    }
}
