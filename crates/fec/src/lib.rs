//! Convolutional FEC: the encoder and the three decoder microarchitectures
//! the WiLIS paper evaluates.
//!
//! The paper's case study (§4) asks whether SoftPHY — exporting a per-bit
//! confidence (log-likelihood ratio, LLR) from the channel decoder up the
//! network stack — can be implemented in hardware at 802.11a/g rates. It
//! answers by building and characterizing two soft-output decoders on a
//! shared substrate:
//!
//! * [`ViterbiDecoder`] — the hard-output baseline used in commodity
//!   802.11 basebands (the Figure 8 area reference).
//! * [`SovaDecoder`] — the Soft-Output Viterbi Algorithm in the
//!   two-traceback-unit microarchitecture of Berrou et al. (Figure 3);
//!   latency `l + k + 12` cycles.
//! * [`BcjrDecoder`] — sliding-window max-log BCJR (Benedetto et al.'s
//!   SW-BCJR, Figure 4) with a provisional backward path-metric unit and
//!   block reversal buffers; latency `2n + 7` cycles.
//!
//! All three share one [`Trellis`], one branch-metric unit ([`bmu`]) and
//! one parameterized path-metric unit ([`pmu`]) — mirroring the paper's
//! observation (§4.3) that "as both SOVA and BCJR use BMU and PMU, the
//! designs of these two components are shared."
//!
//! At construction each decoder lowers its trellis into a
//! [`CompiledTrellis`] — flat structure-of-arrays butterfly tables — and
//! runs its hot loops on the branchless `i32` kernels of [`compiled`],
//! with survivors bit-packed one `u64` word per step for the 64-state
//! 802.11 code. The original `i64` kernels are preserved verbatim as the
//! reference path (each decoder's `decode_terminated_reference_into`),
//! bit-identical to the compiled path and used as fallback for soft
//! inputs beyond [`compiled::FAST_LLR_LIMIT`]. Compiled trellises are
//! `Arc`-shared: one table build can serve every decoder instance of a
//! code (see `with_shared_trellis` on each decoder).
//!
//! Soft inputs and outputs use the [`Llr`] convention: positive means the
//! bit is more likely a `1`, and magnitude is confidence.
//!
//! # Example: round-trip through encoder and SOVA
//!
//! ```
//! use wilis_fec::{ConvCode, ConvEncoder, SovaDecoder, SoftDecoder, hard_llr};
//!
//! let code = ConvCode::ieee80211();
//! let data = [1u8, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0];
//! let coded = ConvEncoder::new(&code).encode_terminated(&data);
//!
//! // Perfect channel: full-confidence LLRs.
//! let llrs: Vec<i32> = coded.iter().map(|&b| hard_llr(b, 15)).collect();
//! let mut dec = SovaDecoder::new(&code, 64, 64);
//! let out = dec.decode_terminated(&llrs);
//! assert_eq!(out.bits, data);
//! assert!(out.soft.iter().all(|&s| s != 0), "clean bits carry confidence");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod bcjr;
pub mod bmu;
mod code;
pub mod compiled;
mod encoder;
mod llr;
pub mod pipeline;
pub mod pmu;
mod puncture;
mod reference;
mod scratch;
mod sova;
mod trellis;
mod viterbi;

pub use batch::MAX_LANES as MAX_BATCH_LANES;
pub use bcjr::BcjrDecoder;
pub use code::ConvCode;
pub use compiled::{CompiledBmu, CompiledTrellis};
pub use encoder::ConvEncoder;
pub use llr::{hard_llr, DecodeOutput, Llr, SoftDecoder, HINT_BITS, MAX_HINT};
pub use puncture::{combine_llrs_into, CodeRate, Depuncturer, Puncturer};
pub use scratch::TrellisScratch;
pub use sova::SovaDecoder;
pub use trellis::Trellis;
pub use viterbi::ViterbiDecoder;

#[cfg(test)]
mod equiv_tests;
#[cfg(test)]
mod prop_tests;
