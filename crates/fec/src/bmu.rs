//! Branch metric unit — identical in Viterbi, SOVA and BCJR (§4.3).
//!
//! "At each time step, the BMU produces a branch metric for each possible
//! transition by calculating the distance between the observed received
//! output and the expected output of that transition." With LLR inputs the
//! natural (max-log) metric is a *correlation*: expected bit 1 contributes
//! `+llr`, expected bit 0 contributes `-llr`. Larger is better; erased
//! (depunctured) positions carry `llr = 0` and are metric-neutral.

use crate::llr::Llr;

/// Computes the branch metrics for one trellis step.
///
/// `step_llrs` holds the `n_out` soft inputs of this step; the result is
/// indexed by the transition's output bitmask (so `metrics[0b10]` is the
/// metric of a branch expected to emit bit1=1, bit0=0). `n_out` of up to 8
/// output bits is supported, matching [`crate::Trellis`]'s `u8` masks.
///
/// # Panics
///
/// Panics if `step_llrs` is empty or longer than 8.
///
/// # Example
///
/// ```
/// use wilis_fec::bmu::branch_metrics;
///
/// // Strong 1 on the first coded bit, weak 0 on the second.
/// let m = branch_metrics(&[9, -2]);
/// assert_eq!(m[0b00], -9 + 2);
/// assert_eq!(m[0b01], 9 + 2);   // expects bit0=1, bit1=0
/// assert_eq!(m[0b10], -9 - 2);
/// assert_eq!(m[0b11], 9 - 2);
/// ```
/// This form allocates a fresh table per call and is kept for tests and
/// one-shot inspection only; per-step metric computation on decode hot
/// paths goes through the reusable [`Bmu`] / [`crate::compiled::CompiledBmu`]
/// state (or [`branch_metrics_into`] when a caller owns the buffer).
pub fn branch_metrics(step_llrs: &[Llr]) -> Vec<i64> {
    let mut metrics = Vec::new();
    branch_metrics_into(step_llrs, &mut metrics);
    metrics
}

/// Computes one step's branch metrics into `out` (resized to `2^n_out`),
/// the allocation-free form of [`branch_metrics`].
///
/// # Panics
///
/// Panics if `step_llrs` is empty or longer than 8.
pub fn branch_metrics_into(step_llrs: &[Llr], out: &mut Vec<i64>) {
    assert!(
        !step_llrs.is_empty() && step_llrs.len() <= 8,
        "1..=8 coded bits per step supported"
    );
    let patterns = 1usize << step_llrs.len();
    out.clear();
    out.resize(patterns, 0);
    for (pattern, slot) in out.iter_mut().enumerate() {
        let mut m = 0i64;
        for (j, &llr) in step_llrs.iter().enumerate() {
            if (pattern >> j) & 1 == 1 {
                m += i64::from(llr);
            } else {
                m -= i64::from(llr);
            }
        }
        *slot = m;
    }
}

/// A reusable BMU that avoids reallocating the metric table per step — the
/// form the hot decode loops use.
#[derive(Debug, Clone)]
pub struct Bmu {
    n_out: usize,
    metrics: Vec<i64>,
}

impl Bmu {
    /// A BMU for `n_out` coded bits per step.
    ///
    /// # Panics
    ///
    /// Panics if `n_out` is 0 or greater than 8.
    pub fn new(n_out: usize) -> Self {
        assert!((1..=8).contains(&n_out), "1..=8 coded bits per step");
        Self {
            n_out,
            metrics: vec![0; 1 << n_out],
        }
    }

    /// Computes this step's metrics in place and returns them.
    ///
    /// # Panics
    ///
    /// Panics if `step_llrs.len()` differs from the configured `n_out`.
    pub fn compute(&mut self, step_llrs: &[Llr]) -> &[i64] {
        assert_eq!(step_llrs.len(), self.n_out, "wrong number of soft inputs");
        // Gray-order enumeration would save adds in hardware; here clarity
        // wins and the compiler vectorizes the small fixed loop anyway.
        for (pattern, slot) in self.metrics.iter_mut().enumerate() {
            let mut m = 0i64;
            for (j, &llr) in step_llrs.iter().enumerate() {
                if (pattern >> j) & 1 == 1 {
                    m += i64::from(llr);
                } else {
                    m -= i64::from(llr);
                }
            }
            *slot = m;
        }
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_erasure_does_not_discriminate() {
        let m = branch_metrics(&[0, 5]);
        // bit0 erased: patterns differing only in bit0 have equal metrics.
        assert_eq!(m[0b00], m[0b01]);
        assert_eq!(m[0b10], m[0b11]);
        assert!(m[0b10] > m[0b00]);
    }

    #[test]
    fn best_pattern_matches_signs() {
        let m = branch_metrics(&[7, -3]);
        let best = (0..4).max_by_key(|&p| m[p]).unwrap();
        assert_eq!(best, 0b01, "bit0 = 1 (llr +7), bit1 = 0 (llr -3)");
    }

    #[test]
    fn metric_is_antisymmetric_under_complement() {
        let m = branch_metrics(&[4, 9, -2]);
        for p in 0..8usize {
            assert_eq!(m[p], -m[p ^ 0b111]);
        }
    }

    #[test]
    fn into_form_reuses_the_buffer() {
        let mut buf = Vec::new();
        branch_metrics_into(&[3, -8], &mut buf);
        assert_eq!(buf, branch_metrics(&[3, -8]));
        let cap = buf.capacity();
        branch_metrics_into(&[1, 2], &mut buf);
        assert!(buf.capacity() >= cap, "buffer must be reused, not dropped");
    }

    #[test]
    fn reusable_bmu_matches_free_function() {
        let mut bmu = Bmu::new(2);
        assert_eq!(bmu.compute(&[3, -8]), branch_metrics(&[3, -8]).as_slice());
    }

    #[test]
    #[should_panic(expected = "wrong number")]
    fn bmu_checks_arity() {
        let mut bmu = Bmu::new(2);
        let _ = bmu.compute(&[1, 2, 3]);
    }
}
