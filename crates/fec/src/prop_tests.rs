//! Randomized property tests across the FEC stack (deterministic,
//! self-seeded — the offline analog of a proptest suite).

use wilis_fxp::rng::SmallRng;

use crate::{
    hard_llr, BcjrDecoder, CodeRate, ConvCode, ConvEncoder, Depuncturer, Llr, Puncturer,
    SoftDecoder, SovaDecoder, ViterbiDecoder,
};

fn random_bits(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let n = rng.gen_i64(8, max_len as i64) as usize;
    (0..n).map(|_| rng.gen_bit()).collect()
}

fn clean_llrs(code: &ConvCode, data: &[u8]) -> Vec<Llr> {
    ConvEncoder::new(code)
        .encode_terminated(data)
        .iter()
        .map(|&b| hard_llr(b, 7))
        .collect()
}

/// All three decoders invert the encoder on a clean channel, for any
/// payload.
#[test]
fn decoders_invert_encoder() {
    let mut rng = SmallRng::seed_from_u64(0xFEC1);
    let code = ConvCode::ieee80211();
    for _ in 0..48 {
        let data = random_bits(&mut rng, 96);
        let llrs = clean_llrs(&code, &data);
        assert_eq!(
            ViterbiDecoder::new(&code).decode_terminated(&llrs).bits,
            data
        );
        assert_eq!(
            SovaDecoder::new(&code, 64, 64)
                .decode_terminated(&llrs)
                .bits,
            data
        );
        assert_eq!(
            BcjrDecoder::new(&code, 64).decode_terminated(&llrs).bits,
            data
        );
    }
}

/// Puncture/depuncture are inverses on the kept positions for every
/// rate and length.
#[test]
fn puncture_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xFEC2);
    for _ in 0..48 {
        let len = rng.gen_i64(1, 199) as usize;
        let rate = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters]
            [rng.gen_i64(0, 2) as usize];
        let mother: Vec<Llr> = (0..len as i32).map(|i| i + 1).collect();
        let tx = Puncturer::new(rate).puncture(&mother);
        let rx = Depuncturer::new(rate).depuncture(&tx, len);
        assert_eq!(rx.len(), len);
        let mask = rate.mask();
        for (i, (&orig, &got)) in mother.iter().zip(&rx).enumerate() {
            if mask[i % mask.len()] == 1 {
                assert_eq!(got, orig);
            } else {
                assert_eq!(got, 0);
            }
        }
    }
}

/// Punctured clean streams still decode exactly (the erasure pattern is
/// within the code's correction power on a noiseless channel).
#[test]
fn punctured_clean_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xFEC3);
    let code = ConvCode::ieee80211();
    for _ in 0..24 {
        let data = random_bits(&mut rng, 64);
        let rate = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters]
            [rng.gen_i64(0, 2) as usize];
        let coded = ConvEncoder::new(&code).encode_terminated(&data);
        let tx = Puncturer::new(rate).puncture(&coded);
        let rx_llrs: Vec<Llr> = tx.iter().map(|&b| hard_llr(b, 7)).collect();
        let mother = Depuncturer::new(rate).depuncture(&rx_llrs, coded.len());
        assert_eq!(
            ViterbiDecoder::new(&code).decode_terminated(&mother).bits,
            data
        );
        assert_eq!(
            BcjrDecoder::new(&code, 64).decode_terminated(&mother).bits,
            data
        );
    }
}

/// SOVA's hard decisions equal Viterbi's on arbitrary (noisy) inputs:
/// both follow the maximum-likelihood path.
#[test]
fn sova_bits_equal_viterbi() {
    let mut rng = SmallRng::seed_from_u64(0xFEC4);
    let code = ConvCode::ieee80211();
    for _ in 0..48 {
        let len = rng.gen_i64(16, 79) as usize;
        let steps = len + code.tail_len();
        let llrs: Vec<Llr> = (0..steps * 2).map(|_| rng.gen_i64(-7, 7) as Llr).collect();
        let v = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        let s = SovaDecoder::new(&code, 64, 64).decode_terminated(&llrs);
        assert_eq!(v.bits, s.bits);
    }
}

/// Soft outputs of both soft decoders carry the sign of the decision.
#[test]
fn soft_sign_consistency() {
    let mut rng = SmallRng::seed_from_u64(0xFEC5);
    let code = ConvCode::ieee80211();
    for _ in 0..48 {
        let len = rng.gen_i64(16, 63) as usize;
        let steps = len + code.tail_len();
        let llrs: Vec<Llr> = (0..steps * 2).map(|_| rng.gen_i64(-7, 7) as Llr).collect();
        for out in [
            SovaDecoder::new(&code, 64, 64).decode_terminated(&llrs),
            BcjrDecoder::new(&code, 64).decode_terminated(&llrs),
        ] {
            for (i, (&bit, &s)) in out.bits.iter().zip(&out.soft).enumerate() {
                if s > 0 {
                    assert_eq!(bit, 1, "bit {i}");
                }
                if s < 0 {
                    assert_eq!(bit, 0, "bit {i}");
                }
            }
        }
    }
}

/// Scaling every input LLR by a positive constant never changes any
/// decoder's hard decisions (the relative-ordering property that lets
/// hardware drop the SNR factor, §4.1) - and scales BCJR's soft outputs.
#[test]
fn hard_decisions_scale_invariant() {
    let mut rng = SmallRng::seed_from_u64(0xFEC6);
    let code = ConvCode::ieee80211();
    for _ in 0..24 {
        let len = rng.gen_i64(16, 47) as usize;
        let scale = rng.gen_i64(2, 4) as i32;
        let steps = len + code.tail_len();
        let base: Vec<Llr> = (0..steps * 2).map(|_| rng.gen_i64(-7, 7) as Llr).collect();
        let scaled: Vec<Llr> = base.iter().map(|&l| l * scale).collect();
        let v1 = ViterbiDecoder::new(&code).decode_terminated(&base);
        let v2 = ViterbiDecoder::new(&code).decode_terminated(&scaled);
        assert_eq!(v1.bits, v2.bits);
        let b1 = BcjrDecoder::new(&code, 64).decode_terminated(&base);
        let b2 = BcjrDecoder::new(&code, 64).decode_terminated(&scaled);
        assert_eq!(b1.bits, b2.bits);
        for (s1, s2) in b1.soft.iter().zip(&b2.soft) {
            assert_eq!(i64::from(*s1) * i64::from(scale), i64::from(*s2));
        }
    }
}

/// Latency formulas hold for arbitrary window sizes, measured on the
/// latency-insensitive engine.
#[test]
fn latency_formulas_hold() {
    let mut rng = SmallRng::seed_from_u64(0xFEC7);
    for _ in 0..12 {
        let l = rng.gen_i64(1, 47) as u64;
        let k = rng.gen_i64(1, 47) as u64;
        let n = rng.gen_i64(1, 47) as u64;
        assert_eq!(crate::pipeline::sova_pipeline_latency(l, k), l + k + 12);
        assert_eq!(crate::pipeline::bcjr_pipeline_latency(n), 2 * n + 7);
    }
}

#[test]
fn decoders_beat_uncoded_at_moderate_noise() {
    // End-to-end sanity: with noise-perturbed LLRs at a level where
    // uncoded BPSK has a few-percent error rate, every decoder must achieve
    // a materially lower BER. This pins the whole metric pipeline's sign
    // conventions together.
    let code = ConvCode::ieee80211();
    let mut rng = SmallRng::seed_from_u64(7);
    let n_blocks = 60;
    let block = 200usize;
    let sigma = 0.6; // per-dimension noise on unit-amplitude BPSK
    let mut uncoded_errs = 0u64;
    let mut errs = [0u64; 3];
    let mut total = 0u64;
    for _ in 0..n_blocks {
        let data: Vec<u8> = (0..block).map(|_| rng.gen_bit()).collect();
        let coded = ConvEncoder::new(&code).encode_terminated(&data);
        let llrs: Vec<Llr> = coded
            .iter()
            .map(|&b| {
                let tx = if b == 1 { 1.0 } else { -1.0 };
                // Crude uniform-ish noise is fine here; quantize to 5 bits.
                let y: f64 = tx + sigma * (rng.next_f64() * 2.0 - 1.0) * 2.0;
                ((y * 8.0).round() as i32).clamp(-15, 15)
            })
            .collect();
        // Uncoded reference: same noise realization on the data bits alone.
        for (i, &b) in data.iter().enumerate() {
            let l = llrs[i * 2];
            if (l > 0) != (b == 1) && l != 0 {
                uncoded_errs += 1;
            }
        }
        let outs = [
            ViterbiDecoder::new(&code).decode_terminated(&llrs).bits,
            SovaDecoder::new(&code, 64, 64)
                .decode_terminated(&llrs)
                .bits,
            BcjrDecoder::new(&code, 64).decode_terminated(&llrs).bits,
        ];
        for (d, out) in outs.iter().enumerate() {
            errs[d] += out.iter().zip(&data).filter(|(a, b)| a != b).count() as u64;
        }
        total += block as u64;
    }
    assert!(uncoded_errs > 0, "noise level should cause raw errors");
    for (d, &e) in errs.iter().enumerate() {
        assert!(
            e * 3 < uncoded_errs,
            "decoder {d}: {e} errors vs uncoded {uncoded_errs} over {total} bits"
        );
    }
}
