//! Soft-Output Viterbi (SOVA) in the two-traceback-unit microarchitecture
//! of Figure 3.
//!
//! The hardware pipeline is `BMU → PMU → delay buffer → traceback unit 1 →
//! traceback unit 2`, where TU1 (window `l`) finds a reliable state for TU2
//! to start from, and TU2 (window `k`) performs *two simultaneous
//! tracebacks* — the best and the second-best path — updating a soft
//! decision whenever the two paths disagree on a bit and the path-metric
//! difference is smaller than the current soft value (§4.3.1).
//!
//! This model decodes block-exactly (the ML path is recovered from the
//! terminated trellis, which is what TU1's window converges to) and applies
//! the Hagenauer-rule reliability update with update window `k`: at every
//! step of the ML path, the *competing* path into that state is traced for
//! up to `k` steps, and every bit where it disagrees with the ML decision
//! has its reliability lowered to the ACS margin if smaller. This is the
//! functional content of TU2's dual traceback.
//!
//! The forward pass runs on the compiled-trellis kernels
//! ([`crate::compiled`]): branchless `i32` butterflies, bit-packed
//! survivors, `i32` margins — bit-identical to the `i64` reference path.
//!
//! Latency: `l + k + 12` cycles (1 BMU + 1 PMU + 5 two-entry FIFOs at 2
//! cycles each + the two windows); see [`SovaDecoder::latency_cycles`] and
//! the `latency` bench, which measures the same number on the
//! latency-insensitive engine.

use std::sync::Arc;

use crate::batch;
use crate::bmu::Bmu;
use crate::compiled::{
    fast_path_ok, renormalize_uniform, CompiledBmu, CompiledTrellis, NORM_INTERVAL,
};
use crate::llr::{DecodeOutput, Llr, SoftDecoder};
use crate::reference;
use crate::scratch::TrellisScratch;
use crate::ConvCode;

/// A SOVA decoder with traceback windows `l` (TU1) and `k` (TU2).
///
/// # Example
///
/// ```
/// use wilis_fec::{ConvCode, ConvEncoder, SoftDecoder, SovaDecoder, hard_llr};
///
/// let code = ConvCode::ieee80211();
/// let data = [1u8, 1, 0, 1, 0, 0, 1, 0];
/// let coded = ConvEncoder::new(&code).encode_terminated(&data);
/// let llrs: Vec<i32> = coded.iter().map(|&b| hard_llr(b, 7)).collect();
/// let mut dec = SovaDecoder::new(&code, 64, 64);
/// let out = dec.decode_terminated(&llrs);
/// assert_eq!(out.bits, data);
/// assert_eq!(dec.latency_cycles(), 64 + 64 + 12);
/// ```
#[derive(Debug, Clone)]
pub struct SovaDecoder {
    code: ConvCode,
    compiled: Arc<CompiledTrellis>,
    bmu: Bmu,
    cbmu: CompiledBmu,
    scratch: TrellisScratch,
    /// TU1 window (hard-decision convergence).
    l: usize,
    /// TU2 window (reliability update depth).
    k: usize,
}

impl SovaDecoder {
    /// A SOVA decoder over `code` with TU1 window `l` and TU2 window `k`.
    /// The paper's configuration is `l = k = 64`.
    ///
    /// # Panics
    ///
    /// Panics if either window is zero.
    pub fn new(code: &ConvCode, l: usize, k: usize) -> Self {
        Self::with_shared_trellis(Arc::new(CompiledTrellis::new(code)), l, k)
    }

    /// A SOVA decoder sharing an already-compiled trellis (see
    /// [`CompiledTrellis`]), with TU1 window `l` and TU2 window `k`.
    ///
    /// # Panics
    ///
    /// Panics if either window is zero.
    pub fn with_shared_trellis(trellis: Arc<CompiledTrellis>, l: usize, k: usize) -> Self {
        assert!(l > 0 && k > 0, "traceback windows must be positive");
        Self {
            code: trellis.code().clone(),
            bmu: Bmu::new(trellis.n_out()),
            cbmu: CompiledBmu::new(trellis.n_out()),
            compiled: trellis,
            scratch: TrellisScratch::new(),
            l,
            k,
        }
    }

    /// TU1 window length.
    pub fn tu1_window(&self) -> usize {
        self.l
    }

    /// TU2 window length (also the reliability update depth).
    pub fn tu2_window(&self) -> usize {
        self.k
    }

    /// Pipeline latency in decoder-clock cycles: `l + k + 12` (§4.3.1 —
    /// one cycle each for BMU and PMU, plus five 2-entry FIFOs at up to 2
    /// cycles each).
    pub fn latency_cycles(&self) -> u64 {
        (self.l + self.k + 12) as u64
    }

    /// The code being decoded.
    pub fn code(&self) -> &ConvCode {
        &self.code
    }

    /// The shared compiled-trellis handle.
    pub fn shared_trellis(&self) -> &Arc<CompiledTrellis> {
        &self.compiled
    }

    fn validate(&self, llrs: &[Llr]) -> usize {
        let n_out = self.compiled.n_out();
        assert!(
            llrs.len() % n_out == 0,
            "soft input length {} not a multiple of n_out {}",
            llrs.len(),
            n_out
        );
        let steps = llrs.len() / n_out;
        assert!(
            steps > self.code.tail_len(),
            "block shorter than the code tail"
        );
        steps
    }

    /// Decodes through the frozen `i64` reference kernels (see
    /// [`ViterbiDecoder::decode_terminated_reference_into`][crate::ViterbiDecoder::decode_terminated_reference_into]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`SoftDecoder::decode_terminated_into`].
    pub fn decode_terminated_reference_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        self.validate(llrs);
        reference::sova_decode(
            self.compiled.trellis(),
            self.code.tail_len(),
            self.k,
            &mut self.bmu,
            &mut self.scratch,
            llrs,
            out,
        );
    }

    fn decode_fast(&mut self, steps: usize, llrs: &[Llr], out: &mut DecodeOutput) {
        let Self {
            code,
            compiled,
            cbmu,
            scratch,
            k,
            ..
        } = self;
        let k = *k;
        let ct = &**compiled;
        let n_out = ct.n_out();
        let n_states = ct.n_states();
        let wps = ct.words_per_step();
        let warmup = (code.memory() as usize).min(steps);

        // Forward pass: packed survivors plus i32 ACS margins per step.
        scratch.init_columns32(n_states, 0);
        scratch.init_surv_words(steps, wps);
        scratch.margins32.clear();
        scratch.margins32.resize(steps * n_states, 0);
        for step in 0..steps {
            let bm = cbmu.compute(&llrs[step * n_out..(step + 1) * n_out]);
            let surv = &mut scratch.surv_words[step * wps..(step + 1) * wps];
            let margins = &mut scratch.margins32[step * n_states..(step + 1) * n_states];
            if step < warmup {
                ct.forward_step_warmup(bm, &scratch.pm32, &mut scratch.next32, surv, Some(margins));
            } else {
                if (step - warmup) % NORM_INTERVAL == 0 {
                    renormalize_uniform(&mut scratch.pm32);
                }
                ct.forward_step_sova(bm, &scratch.pm32, &mut scratch.next32, surv, margins);
            }
            std::mem::swap(&mut scratch.pm32, &mut scratch.next32);
        }
        let surv_words = &scratch.surv_words;
        let margins = &scratch.margins32;

        // TU1: maximum-likelihood state sequence. Terminated frame ends in
        // state zero; ml_states[t] is the state entering step t.
        scratch.ml_states.clear();
        scratch.ml_states.resize(steps + 1, 0);
        scratch.ml_bits.clear();
        scratch.ml_bits.resize(steps, 0);
        let (ml_states, ml_bits) = (&mut scratch.ml_states, &mut scratch.ml_bits);
        for t in (0..steps).rev() {
            let state = ml_states[t + 1] as usize;
            let winner = ct.survivor_bit(surv_words, wps, t, state);
            let (bit, prev) = ct.traceback_edge(state, winner);
            ml_bits[t] = bit;
            ml_states[t] = prev as u32;
        }

        // TU2: Hagenauer-rule reliability update over the packed survivors
        // and i32 margins (HUGE_MARGIN plays the role of the reference's
        // sentinel margins; both saturate to the same soft output).
        scratch.reliability32.clear();
        scratch.reliability32.resize(steps, i32::MAX);
        let reliability = &mut scratch.reliability32;
        for t in 0..steps {
            let s_next = ml_states[t + 1] as usize;
            let winner = ct.survivor_bit(surv_words, wps, t, s_next);
            let margin = margins[t * n_states + s_next];
            // The competing (second-best) edge into the ML state.
            let (loser_bit, loser_prev) = ct.traceback_edge(s_next, 1 - winner);
            // The competing hypothesis for bit t itself.
            if loser_bit != ml_bits[t] && margin < reliability[t] {
                reliability[t] = margin;
            }
            // Trace the competing path backwards up to k steps, comparing
            // decisions against the ML path.
            let mut state = loser_prev;
            let window_start = t.saturating_sub(k);
            for i in (window_start..t).rev() {
                let winner = ct.survivor_bit(surv_words, wps, i, state);
                let (bit, prev) = ct.traceback_edge(state, winner);
                if bit != ml_bits[i] && margin < reliability[i] {
                    reliability[i] = margin;
                }
                state = prev;
                if state == ml_states[i] as usize {
                    // Paths have remerged; earlier decisions coincide.
                    break;
                }
            }
        }

        let info = steps - code.tail_len();
        out.bits.clear();
        out.bits.extend_from_slice(&ml_bits[..info]);
        out.soft.clear();
        out.soft.extend((0..info).map(|t| {
            let mag = reliability[t];
            if ml_bits[t] == 1 {
                mag
            } else {
                -mag
            }
        }));
    }
}

impl SoftDecoder for SovaDecoder {
    // lint: no_alloc
    fn decode_terminated_into(&mut self, llrs: &[Llr], out: &mut DecodeOutput) {
        let steps = self.validate(llrs);
        if fast_path_ok(llrs) {
            self.decode_fast(steps, llrs, out);
        } else {
            reference::sova_decode(
                self.compiled.trellis(),
                self.code.tail_len(),
                self.k,
                &mut self.bmu,
                &mut self.scratch,
                llrs,
                out,
            );
        }
    }

    // lint: no_alloc
    fn decode_terminated_batch_into(
        &mut self,
        llrs: &[Llr],
        lanes: usize,
        outs: &mut [DecodeOutput],
    ) {
        batch::validate_batch(
            self.compiled.n_out(),
            self.code.tail_len(),
            llrs,
            lanes,
            outs.len(),
        );
        if lanes <= batch::MAX_LANES && self.compiled.words_per_step() == 1 && fast_path_ok(llrs) {
            batch::sova_batch(
                &self.compiled,
                self.code.memory() as usize,
                self.code.tail_len(),
                self.k,
                llrs,
                lanes,
                &mut self.scratch.batch,
                outs,
            );
        } else {
            let mut lane_buf = std::mem::take(&mut self.scratch.batch.lane_llrs);
            for (l, out) in outs.iter_mut().enumerate() {
                batch::gather_lane(llrs, lanes, l, &mut lane_buf);
                self.decode_terminated_into(&lane_buf, out);
            }
            self.scratch.batch.lane_llrs = lane_buf;
        }
    }

    fn id(&self) -> &'static str {
        "sova"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard_llr;
    use crate::{ConvEncoder, ViterbiDecoder};

    fn encode(code: &ConvCode, data: &[u8], mag: Llr) -> Vec<Llr> {
        ConvEncoder::new(code)
            .encode_terminated(data)
            .iter()
            .map(|&b| hard_llr(b, mag))
            .collect()
    }

    #[test]
    fn clean_roundtrip() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..150).map(|i| ((i * 11) % 3 == 0) as u8).collect();
        let llrs = encode(&code, &data, 7);
        let out = SovaDecoder::new(&code, 64, 64).decode_terminated(&llrs);
        assert_eq!(out.bits, data);
    }

    #[test]
    fn hard_decisions_match_viterbi() {
        // SOVA's hard output is by construction the ML path - identical to
        // Viterbi's on any input, noisy or not.
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..80).map(|i| (i % 5 < 2) as u8).collect();
        let mut llrs = encode(&code, &data, 7);
        // Heavy corruption.
        for (i, l) in llrs.iter_mut().enumerate() {
            if i % 7 == 0 {
                *l = -*l;
            }
            if i % 11 == 0 {
                *l = 0;
            }
        }
        let sova = SovaDecoder::new(&code, 64, 64).decode_terminated(&llrs);
        let viterbi = ViterbiDecoder::new(&code).decode_terminated(&llrs);
        assert_eq!(sova.bits, viterbi.bits);
    }

    #[test]
    fn corrupted_bits_get_low_confidence() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..120).map(|i| (i % 2) as u8).collect();
        let mut llrs = encode(&code, &data, 7);
        // Concentrate damage around info bit 60: flip both coded bits of
        // steps 58..=62.
        for step in 58..=62 {
            llrs[step * 2] = -llrs[step * 2];
            llrs[step * 2 + 1] = -llrs[step * 2 + 1];
        }
        let out = SovaDecoder::new(&code, 64, 64).decode_terminated(&llrs);
        // Mean confidence near the damage must be well below the clean
        // region's (the decoded bits may or may not be in error, but SOVA
        // must flag reduced reliability either way).
        let near: f64 = (50..70)
            .map(|i| out.soft[i].unsigned_abs() as f64)
            .sum::<f64>()
            / 20.0;
        let far: f64 = (5..25)
            .map(|i| out.soft[i].unsigned_abs() as f64)
            .sum::<f64>()
            / 20.0;
        assert!(
            near < far / 2.0,
            "damaged region confidence {near} vs clean {far}"
        );
    }

    #[test]
    fn update_window_bounds_effect() {
        // With k=1 the reliability update barely propagates; soft values
        // should be (weakly) larger than with k=64 on the same noisy input.
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..100).map(|i| (i % 3 == 1) as u8).collect();
        let mut llrs = encode(&code, &data, 7);
        for i in (0..llrs.len()).step_by(9) {
            llrs[i] = -llrs[i];
        }
        let wide = SovaDecoder::new(&code, 64, 64).decode_terminated(&llrs);
        let narrow = SovaDecoder::new(&code, 64, 1).decode_terminated(&llrs);
        let sum_wide: i64 = wide
            .soft
            .iter()
            .map(|&s| i64::from(s.unsigned_abs() as i32))
            .sum();
        let sum_narrow: i64 = narrow
            .soft
            .iter()
            .map(|&s| i64::from(s.unsigned_abs() as i32))
            .sum();
        assert!(
            sum_narrow >= sum_wide,
            "narrow window {sum_narrow} must not reduce confidence below wide {sum_wide}"
        );
        assert_eq!(wide.bits, narrow.bits, "windows affect soft values only");
    }

    #[test]
    fn latency_formula() {
        let code = ConvCode::ieee80211();
        assert_eq!(SovaDecoder::new(&code, 64, 64).latency_cycles(), 140);
        assert_eq!(SovaDecoder::new(&code, 32, 16).latency_cycles(), 60);
    }

    #[test]
    fn confidence_scales_with_input_magnitude() {
        let code = ConvCode::ieee80211();
        let data: Vec<u8> = (0..60).map(|i| (i % 2) as u8).collect();
        let soft_sum = |mag: Llr| -> i64 {
            let llrs = encode(&code, &data, mag);
            SovaDecoder::new(&code, 64, 64)
                .decode_terminated(&llrs)
                .soft
                .iter()
                .map(|&s| i64::from(s.unsigned_abs() as i32))
                .sum()
        };
        assert!(soft_sum(14) > soft_sum(7), "LLR scale must carry through");
    }
}
