//! Convolutional code specification.

use std::fmt;

/// A rate-`1/n` binary convolutional code: a constraint length and one
/// generator polynomial per output bit.
///
/// Generators are given in the standard octal-literal convention, where the
/// most significant coefficient multiplies the *current* input bit. The
/// 802.11a code is `K = 7`, generators `0o133` and `0o171`.
///
/// # Example
///
/// ```
/// use wilis_fec::ConvCode;
///
/// let code = ConvCode::ieee80211();
/// assert_eq!(code.constraint_len(), 7);
/// assert_eq!(code.n_out(), 2);
/// assert_eq!(code.n_states(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvCode {
    constraint_len: u32,
    generators: Vec<u32>,
}

impl ConvCode {
    /// Defines a code from a constraint length and generator polynomials.
    ///
    /// # Panics
    ///
    /// Panics if `constraint_len` is not in `2..=16`, if fewer than two
    /// generators are given, or if any generator needs more than
    /// `constraint_len` bits.
    pub fn new(constraint_len: u32, generators: &[u32]) -> Self {
        assert!(
            (2..=16).contains(&constraint_len),
            "constraint length {constraint_len} out of supported range 2..=16"
        );
        assert!(generators.len() >= 2, "a rate-1/n code needs n >= 2");
        for &g in generators {
            assert!(
                g < (1 << constraint_len),
                "generator {g:#o} wider than constraint length {constraint_len}"
            );
            assert!(g != 0, "zero generator produces no information");
        }
        Self {
            constraint_len,
            generators: generators.to_vec(),
        }
    }

    /// The industry-standard 802.11a code: `K = 7`, rate 1/2, generators
    /// `0o133` and `0o171` (§4.1 of the paper).
    pub fn ieee80211() -> Self {
        Self::new(7, &[0o133, 0o171])
    }

    /// A small `K = 3` code (`0o5`, `0o7`), handy for exhaustive tests.
    pub fn k3() -> Self {
        Self::new(3, &[0o5, 0o7])
    }

    /// Constraint length `K`.
    pub fn constraint_len(&self) -> u32 {
        self.constraint_len
    }

    /// Number of memory bits, `K - 1`.
    pub fn memory(&self) -> u32 {
        self.constraint_len - 1
    }

    /// Number of coded output bits per input bit (the `n` of rate `1/n`).
    pub fn n_out(&self) -> usize {
        self.generators.len()
    }

    /// Number of trellis states, `2^(K-1)`.
    pub fn n_states(&self) -> usize {
        1 << self.memory()
    }

    /// The generator polynomials.
    pub fn generators(&self) -> &[u32] {
        &self.generators
    }

    /// Number of tail bits needed to return the encoder to state zero.
    pub fn tail_len(&self) -> usize {
        self.memory() as usize
    }
}

impl fmt::Display for ConvCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K={} r=1/{} (", self.constraint_len, self.n_out())?;
        for (i, g) in self.generators.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{g:#o}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ieee80211_shape() {
        let c = ConvCode::ieee80211();
        assert_eq!(c.memory(), 6);
        assert_eq!(c.n_states(), 64);
        assert_eq!(c.tail_len(), 6);
        assert_eq!(c.generators(), &[0o133, 0o171]);
        assert_eq!(c.to_string(), "K=7 r=1/2 (0o133, 0o171)");
    }

    #[test]
    fn k3_shape() {
        let c = ConvCode::k3();
        assert_eq!(c.n_states(), 4);
    }

    #[test]
    #[should_panic(expected = "wider than constraint length")]
    fn oversized_generator_rejected() {
        let _ = ConvCode::new(3, &[0o5, 0o17]);
    }

    #[test]
    #[should_panic(expected = "needs n >= 2")]
    fn single_generator_rejected() {
        let _ = ConvCode::new(3, &[0o5]);
    }

    #[test]
    #[should_panic(expected = "zero generator")]
    fn zero_generator_rejected() {
        let _ = ConvCode::new(3, &[0o5, 0]);
    }
}
