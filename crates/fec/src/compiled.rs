//! The compiled trellis: flat structure-of-arrays butterfly tables and the
//! branchless `i32` step kernels every decoder's hot path runs on.
//!
//! [`crate::Trellis`] is the *specification* of the transition graph —
//! per-state edge structs, convenient to inspect, slow to walk. At decoder
//! construction it is lowered once into a [`CompiledTrellis`]: flat
//! arrays of source states and output masks indexed by destination state,
//! a packed edge table for branchless traceback, plus the mirrored
//! source-indexed arrays for the backward recursion. The hot
//! Add-Compare-Select kernels then run over plain
//! `u32`/`u8` tables in butterfly order — no struct field chasing, no
//! `Option` plumbing, no per-edge branches — on `i32` path metrics with
//! periodic renormalization instead of the reference kernels' wide `i64`
//! saturating arithmetic.
//!
//! **Bit-identity contract.** For any input whose soft values satisfy
//! [`fast_path_ok`] (|LLR| ≤ [`FAST_LLR_LIMIT`], which covers every
//! demapper in this workspace by orders of magnitude), the compiled
//! kernels produce *exactly* the hard bits, survivor decisions, ACS
//! margins, and saturated soft outputs of the `i64` reference kernels in
//! [`crate::pmu`]. Three facts make this exact rather than approximate:
//!
//! 1. Every decoder decision is a function of *differences* of path
//!    metrics within one column, never of absolute values, so the uniform
//!    column shifts of [`renormalize_uniform`] are invisible.
//! 2. Unreachable-state sentinels only exist for the first `K-1` steps of
//!    a terminated frame (the trellis fully connects after `memory`
//!    steps); those warmup steps run a sentinel-aware variant that
//!    reproduces the reference kernel's sentinel arithmetic — including
//!    its effectively infinite margins, which map to [`HUGE_MARGIN`] and
//!    saturate to the same `i32::MAX` soft output.
//! 3. With |LLR| ≤ 2¹⁶ and at most 8 coded bits per step, branch metrics
//!    are below 2¹⁹ and the renormalized metric spread stays below 2²⁶,
//!    so no `i32` ever wraps between renormalizations.
//!
//! Inputs outside [`fast_path_ok`] take the frozen reference path
//! (each decoder's `decode_terminated_reference_into`), preserving exact
//! behavior for pathological LLRs.

use crate::llr::Llr;
use crate::pmu::NEG_INF32;
use crate::trellis::Trellis;
use crate::ConvCode;

/// Largest soft-input magnitude the compiled `i32` kernels accept; larger
/// inputs fall back to the `i64` reference kernels. Every demapper in this
/// workspace emits ≤ 8-bit LLRs, so real traffic always takes the fast
/// path.
pub const FAST_LLR_LIMIT: u32 = 1 << 16;

/// Renormalization cadence of the compiled forward kernels, in trellis
/// steps. With branch metrics bounded by `8 * FAST_LLR_LIMIT` the metric
/// drift over one interval stays below 2²⁶ — far from `i32` saturation.
pub const NORM_INTERVAL: usize = 64;

/// The margin recorded when an ACS decision beats an unreachable-state
/// competitor: the `i32` image of the reference kernels' astronomically
/// large sentinel margins. Both saturate to the same `Llr::MAX` soft
/// output, and both lose every `min` against a genuine margin.
pub const HUGE_MARGIN: i32 = i32::MAX;

/// Threshold separating genuine path metrics from unreachable-state
/// sentinels in the warmup steps (mirrors `pmu::NEG_INF / 2` in `i32`).
const UNREACHABLE32: i32 = NEG_INF32 / 2;

/// Whether a soft-input block is eligible for the compiled `i32` kernels.
///
/// # Example
///
/// ```
/// use wilis_fec::compiled::{fast_path_ok, FAST_LLR_LIMIT};
///
/// assert!(fast_path_ok(&[7, -31, 0]));
/// assert!(!fast_path_ok(&[7, FAST_LLR_LIMIT as i32 + 1]));
/// ```
pub fn fast_path_ok(llrs: &[Llr]) -> bool {
    llrs.iter().all(|l| l.unsigned_abs() <= FAST_LLR_LIMIT)
}

/// Subtracts the column maximum from **every** entry — the uniform-shift
/// renormalization of the compiled forward kernels. Unlike
/// [`crate::pmu::normalize`] this shifts unconditionally, which is exact
/// for the post-warmup columns (no sentinels remain) and preserves every
/// within-column difference bit-for-bit.
pub fn renormalize_uniform(column: &mut [i32]) {
    let max = column.iter().copied().max().unwrap_or(0);
    for m in column {
        *m -= max;
    }
}

/// A [`Trellis`] lowered into flat structure-of-arrays butterfly tables.
///
/// Shared across decoders via `Arc`: the scenario engine builds one
/// compiled trellis per code and hands clones of the handle to every
/// decoder instance (all rates, the oracle's receiver bank, …) instead of
/// rebuilding the tables per decoder.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use wilis_fec::{CompiledTrellis, ConvCode, ViterbiDecoder};
///
/// let shared = Arc::new(CompiledTrellis::new(&ConvCode::ieee80211()));
/// assert_eq!(shared.n_states(), 64);
/// assert_eq!(shared.words_per_step(), 1); // survivors pack into one u64
/// let _dec = ViterbiDecoder::with_shared_trellis(Arc::clone(&shared));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledTrellis {
    code: ConvCode,
    trellis: Trellis,
    /// Source state of incoming edge 0/1, indexed by destination state.
    /// Edge order matches [`Trellis::incoming`] exactly, so survivor
    /// indices recorded by the kernels mean the same thing in both worlds.
    pub(crate) prev0: Vec<u32>,
    pub(crate) prev1: Vec<u32>,
    /// Output bitmask of incoming edge 0/1, indexed by destination state.
    pub(crate) omask0: Vec<u8>,
    pub(crate) omask1: Vec<u8>,
    /// Incoming edges packed for branchless traceback, indexed
    /// `state * 2 + winner`: source state in the low 16 bits, input bit in
    /// bit 16. One indexed load per traceback step — no data-dependent
    /// branching on the survivor bit.
    pub(crate) edges: Vec<u32>,
    /// Destination state on input 0/1, indexed by source state (the
    /// backward recursion's tables).
    pub(crate) next0: Vec<u32>,
    pub(crate) next1: Vec<u32>,
    /// Output bitmask on input 0/1, indexed by source state.
    pub(crate) fout0: Vec<u8>,
    pub(crate) fout1: Vec<u8>,
    /// Whether the tables have the shift-register butterfly shape
    /// (`prev0[s] = 2·(s mod half)`, `prev1 = prev0 + 1`,
    /// `next0[s] = s/2`, `next1[s] = half + s/2`): destination pair
    /// `(j, j + half)` reads the *sequential* source pair `(2j, 2j+1)`,
    /// so the hot kernels stream both metric columns with no
    /// data-dependent gathers at all. True for every [`Trellis`] this
    /// repository builds; the generic kernels remain as the fallback.
    pub(crate) butterfly: bool,
}

impl CompiledTrellis {
    /// Lowers `code`'s trellis into butterfly tables.
    pub fn new(code: &ConvCode) -> Self {
        let trellis = Trellis::new(code);
        let n = trellis.n_states();
        let mut prev0 = Vec::with_capacity(n);
        let mut prev1 = Vec::with_capacity(n);
        let mut omask0 = Vec::with_capacity(n);
        let mut omask1 = Vec::with_capacity(n);
        let mut next0 = Vec::with_capacity(n);
        let mut next1 = Vec::with_capacity(n);
        let mut fout0 = Vec::with_capacity(n);
        let mut fout1 = Vec::with_capacity(n);
        let mut edges = Vec::with_capacity(n * 2);
        for s in 0..n {
            let [e0, e1] = trellis.incoming(s);
            prev0.push(u32::from(e0.prev));
            prev1.push(u32::from(e1.prev));
            omask0.push(e0.output);
            omask1.push(e1.output);
            edges.push(u32::from(e0.prev) | (u32::from(e0.input) << 16));
            edges.push(u32::from(e1.prev) | (u32::from(e1.input) << 16));
            let t0 = trellis.next(s, 0);
            let t1 = trellis.next(s, 1);
            next0.push(u32::from(t0.next));
            next1.push(u32::from(t1.next));
            fout0.push(t0.output);
            fout1.push(t1.output);
        }
        let half = n / 2;
        let butterfly = half > 0
            && (0..n).all(|s| {
                prev0[s] as usize == 2 * (s % half)
                    && prev1[s] == prev0[s] + 1
                    && next0[s] as usize == s / 2
                    && next1[s] as usize == half + s / 2
            });
        Self {
            code: code.clone(),
            trellis,
            prev0,
            prev1,
            omask0,
            omask1,
            edges,
            next0,
            next1,
            fout0,
            fout1,
            butterfly,
        }
    }

    /// The incoming edge `(input_bit, source_state)` selected by `winner`
    /// into `state` — the branchless traceback load.
    #[inline]
    pub(crate) fn traceback_edge(&self, state: usize, winner: u8) -> (u8, usize) {
        let e = self.edges[state * 2 + usize::from(winner)];
        ((e >> 16) as u8, (e & 0xFFFF) as usize)
    }

    /// The code these tables were compiled from.
    pub fn code(&self) -> &ConvCode {
        &self.code
    }

    /// The specification-form trellis (used by the reference kernels).
    pub fn trellis(&self) -> &Trellis {
        &self.trellis
    }

    /// Number of trellis states per column.
    pub fn n_states(&self) -> usize {
        self.trellis.n_states()
    }

    /// Coded bits per trellis step.
    pub fn n_out(&self) -> usize {
        self.trellis.n_out()
    }

    /// `u64` words per step of the bit-packed survivor matrix: 1 for every
    /// code up to 64 states (the 802.11 `K = 7` case), `⌈n_states / 64⌉`
    /// beyond.
    pub fn words_per_step(&self) -> usize {
        self.n_states().div_ceil(64)
    }

    /// The survivor decision recorded for `state` at step `t` of a packed
    /// matrix with [`CompiledTrellis::words_per_step`] words per step.
    #[inline]
    pub(crate) fn survivor_bit(&self, words: &[u64], wps: usize, t: usize, state: usize) -> u8 {
        ((words[t * wps + (state >> 6)] >> (state & 63)) & 1) as u8
    }

    /// One branchless forward ACS step: path metrics only, survivors
    /// bit-packed into `surv` (one bit per state, `words_per_step` words).
    /// Valid only once every state is reachable (post-warmup).
    #[inline]
    pub(crate) fn forward_step_viterbi(
        &self,
        bm: &[i32],
        prev: &[i32],
        out: &mut [i32],
        surv: &mut [u64],
    ) {
        debug_assert_eq!(out.len(), self.n_states());
        debug_assert_eq!(surv.len(), self.words_per_step());
        let n = self.n_states();
        if self.butterfly && n <= 64 {
            // Streaming butterfly form: destination pair (j, j + half)
            // consumes the sequential source pair (2j, 2j+1) — no
            // gathers, one register-resident survivor word.
            let half = n / 2;
            let (lo, hi) = out.split_at_mut(half);
            let (m0lo, m0hi) = self.omask0.split_at(half);
            let (m1lo, m1hi) = self.omask1.split_at(half);
            let sel = bm.len() - 1;
            let mut word = 0u64;
            for (j, pair) in prev.chunks_exact(2).enumerate() {
                let (a, b) = (pair[0], pair[1]);
                let c0 = a + bm[usize::from(m0lo[j]) & sel];
                let c1 = b + bm[usize::from(m1lo[j]) & sel];
                let take_lo = c1 > c0;
                lo[j] = if take_lo { c1 } else { c0 };
                let d0 = a + bm[usize::from(m0hi[j]) & sel];
                let d1 = b + bm[usize::from(m1hi[j]) & sel];
                let take_hi = d1 > d0;
                hi[j] = if take_hi { d1 } else { d0 };
                word |= (u64::from(take_lo) << j) | (u64::from(take_hi) << (j + half));
            }
            surv[0] = word;
        } else {
            self.forward_step_viterbi_generic(bm, prev, out, surv);
        }
    }

    fn forward_step_viterbi_generic(
        &self,
        bm: &[i32],
        prev: &[i32],
        out: &mut [i32],
        surv: &mut [u64],
    ) {
        let mut word = 0u64;
        let mut wi = 0usize;
        for (s, slot) in out.iter_mut().enumerate() {
            let c0 = prev[self.prev0[s] as usize] + bm[self.omask0[s] as usize];
            let c1 = prev[self.prev1[s] as usize] + bm[self.omask1[s] as usize];
            let take1 = c1 > c0;
            *slot = if take1 { c1 } else { c0 };
            word |= u64::from(take1) << (s & 63);
            if s & 63 == 63 {
                surv[wi] = word;
                wi += 1;
                word = 0;
            }
        }
        if self.n_states() & 63 != 0 {
            surv[wi] = word;
        }
    }

    /// Forward ACS step recording both packed survivors and per-state ACS
    /// margins (`|c0 - c1|`) — the SOVA variant. Post-warmup only.
    #[inline]
    pub(crate) fn forward_step_sova(
        &self,
        bm: &[i32],
        prev: &[i32],
        out: &mut [i32],
        surv: &mut [u64],
        margins: &mut [i32],
    ) {
        debug_assert_eq!(out.len(), self.n_states());
        debug_assert_eq!(margins.len(), self.n_states());
        let n = self.n_states();
        if self.butterfly && n <= 64 {
            let half = n / 2;
            let (lo, hi) = out.split_at_mut(half);
            let (mg_lo, mg_hi) = margins.split_at_mut(half);
            let (m0lo, m0hi) = self.omask0.split_at(half);
            let (m1lo, m1hi) = self.omask1.split_at(half);
            let sel = bm.len() - 1;
            let mut word = 0u64;
            for (j, pair) in prev.chunks_exact(2).enumerate() {
                let (a, b) = (pair[0], pair[1]);
                let c0 = a + bm[usize::from(m0lo[j]) & sel];
                let c1 = b + bm[usize::from(m1lo[j]) & sel];
                let take_lo = c1 > c0;
                lo[j] = if take_lo { c1 } else { c0 };
                mg_lo[j] = (c1 - c0).abs();
                let d0 = a + bm[usize::from(m0hi[j]) & sel];
                let d1 = b + bm[usize::from(m1hi[j]) & sel];
                let take_hi = d1 > d0;
                hi[j] = if take_hi { d1 } else { d0 };
                mg_hi[j] = (d1 - d0).abs();
                word |= (u64::from(take_lo) << j) | (u64::from(take_hi) << (j + half));
            }
            surv[0] = word;
        } else {
            self.forward_step_sova_generic(bm, prev, out, surv, margins);
        }
    }

    fn forward_step_sova_generic(
        &self,
        bm: &[i32],
        prev: &[i32],
        out: &mut [i32],
        surv: &mut [u64],
        margins: &mut [i32],
    ) {
        let mut word = 0u64;
        let mut wi = 0usize;
        for (s, (slot, margin)) in out.iter_mut().zip(margins.iter_mut()).enumerate() {
            let c0 = prev[self.prev0[s] as usize] + bm[self.omask0[s] as usize];
            let c1 = prev[self.prev1[s] as usize] + bm[self.omask1[s] as usize];
            let take1 = c1 > c0;
            *slot = if take1 { c1 } else { c0 };
            *margin = (c1 - c0).abs();
            word |= u64::from(take1) << (s & 63);
            if s & 63 == 63 {
                surv[wi] = word;
                wi += 1;
                word = 0;
            }
        }
        if self.n_states() & 63 != 0 {
            surv[wi] = word;
        }
    }

    /// The sentinel-aware forward step used for the first `K-1` steps of a
    /// frame, while some states are still unreachable. Reproduces the
    /// reference kernel's behavior exactly: an unreachable competitor
    /// always loses, and the margin it concedes is recorded as
    /// [`HUGE_MARGIN`] (the `i32` image of the reference's ~2⁶¹ sentinel
    /// margins — identical after output saturation).
    pub(crate) fn forward_step_warmup(
        &self,
        bm: &[i32],
        prev: &[i32],
        out: &mut [i32],
        surv: &mut [u64],
        mut margins: Option<&mut [i32]>,
    ) {
        debug_assert_eq!(out.len(), self.n_states());
        let mut word = 0u64;
        let mut wi = 0usize;
        for (s, slot) in out.iter_mut().enumerate() {
            let c0 = prev[self.prev0[s] as usize] + bm[self.omask0[s] as usize];
            let c1 = prev[self.prev1[s] as usize] + bm[self.omask1[s] as usize];
            let r0 = c0 > UNREACHABLE32;
            let r1 = c1 > UNREACHABLE32;
            let (take1, metric, margin) = match (r0, r1) {
                (true, false) => (false, c0, HUGE_MARGIN),
                (false, true) => (true, c1, HUGE_MARGIN),
                // Both reachable, or both unreachable (where the sentinel
                // base cancels): the plain comparison the reference makes.
                _ => {
                    let take1 = c1 > c0;
                    (take1, if take1 { c1 } else { c0 }, (c1 - c0).abs())
                }
            };
            *slot = metric;
            if let Some(m) = margins.as_deref_mut() {
                m[s] = margin;
            }
            word |= u64::from(take1) << (s & 63);
            if s & 63 == 63 {
                surv[wi] = word;
                wi += 1;
                word = 0;
            }
        }
        if self.n_states() & 63 != 0 {
            surv[wi] = word;
        }
    }

    /// One forward ACS step for the BCJR α recursion: metrics only, with
    /// the reference kernel's saturating arithmetic (sentinels survive the
    /// whole frame here, kept in check by `pmu::normalize32` exactly as
    /// the `i64` path keeps them in check with `pmu::normalize`).
    #[inline]
    pub(crate) fn alpha_step(&self, bm: &[i32], prev: &[i32], out: &mut [i32]) {
        debug_assert_eq!(out.len(), self.n_states());
        let n = self.n_states();
        if self.butterfly {
            let half = n / 2;
            let (lo, hi) = out.split_at_mut(half);
            let (m0lo, m0hi) = self.omask0.split_at(half);
            let (m1lo, m1hi) = self.omask1.split_at(half);
            let sel = bm.len() - 1;
            for (j, pair) in prev.chunks_exact(2).enumerate() {
                let (a, b) = (pair[0], pair[1]);
                let c0 = a.saturating_add(bm[usize::from(m0lo[j]) & sel]);
                let c1 = b.saturating_add(bm[usize::from(m1lo[j]) & sel]);
                lo[j] = c0.max(c1);
                let d0 = a.saturating_add(bm[usize::from(m0hi[j]) & sel]);
                let d1 = b.saturating_add(bm[usize::from(m1hi[j]) & sel]);
                hi[j] = d0.max(d1);
            }
        } else {
            for (s, slot) in out.iter_mut().enumerate() {
                let c0 = prev[self.prev0[s] as usize].saturating_add(bm[self.omask0[s] as usize]);
                let c1 = prev[self.prev1[s] as usize].saturating_add(bm[self.omask1[s] as usize]);
                *slot = c0.max(c1);
            }
        }
    }

    /// One backward ACS step (the BCJR β recursion) over the
    /// source-indexed tables.
    #[inline]
    pub(crate) fn beta_step(&self, bm: &[i32], next: &[i32], out: &mut [i32]) {
        debug_assert_eq!(out.len(), self.n_states());
        let n = self.n_states();
        if self.butterfly {
            // Sources (2j, 2j+1) both branch to destinations (j, j+half):
            // sequential writes, two shared sequential reads.
            let half = n / 2;
            let (blo, bhi) = next.split_at(half);
            let sel = bm.len() - 1;
            for (((pair, f0), f1), (j, _)) in out
                .chunks_exact_mut(2)
                .zip(self.fout0.chunks_exact(2))
                .zip(self.fout1.chunks_exact(2))
                .zip(blo.iter().enumerate())
            {
                let b0 = blo[j];
                let b1 = bhi[j];
                pair[0] = b0
                    .saturating_add(bm[usize::from(f0[0]) & sel])
                    .max(b1.saturating_add(bm[usize::from(f1[0]) & sel]));
                pair[1] = b0
                    .saturating_add(bm[usize::from(f0[1]) & sel])
                    .max(b1.saturating_add(bm[usize::from(f1[1]) & sel]));
            }
        } else {
            for (s, slot) in out.iter_mut().enumerate() {
                let c0 = next[self.next0[s] as usize].saturating_add(bm[self.fout0[s] as usize]);
                let c1 = next[self.next1[s] as usize].saturating_add(bm[self.fout1[s] as usize]);
                *slot = c0.max(c1);
            }
        }
    }

    /// The BCJR decision unit's maxima for one step: the best
    /// `α + branch + β` over all transitions with input 0 and input 1
    /// respectively, skipping forward-unreachable states — exactly the
    /// reference decision loop, in butterfly order.
    #[inline]
    pub(crate) fn decision_best(&self, bm: &[i32], alpha: &[i32], beta_after: &[i32]) -> [i32; 2] {
        use crate::pmu::NEG_INF32 as N32;
        let n = self.n_states();
        let mut best = [N32; 2];
        if self.butterfly {
            let half = n / 2;
            let (blo, bhi) = beta_after.split_at(half);
            let sel = bm.len() - 1;
            for (((pair, f0), f1), (j, _)) in alpha
                .chunks_exact(2)
                .zip(self.fout0.chunks_exact(2))
                .zip(self.fout1.chunks_exact(2))
                .zip(blo.iter().enumerate())
            {
                let b0 = blo[j];
                let b1 = bhi[j];
                for t in 0..2 {
                    let a = pair[t];
                    if a <= N32 / 2 {
                        continue;
                    }
                    let m0 = a
                        .saturating_add(bm[usize::from(f0[t]) & sel])
                        .saturating_add(b0);
                    let m1 = a
                        .saturating_add(bm[usize::from(f1[t]) & sel])
                        .saturating_add(b1);
                    best[0] = best[0].max(m0);
                    best[1] = best[1].max(m1);
                }
            }
        } else {
            for (s, &a) in alpha.iter().enumerate() {
                if a <= N32 / 2 {
                    continue;
                }
                let m0 = a
                    .saturating_add(bm[self.fout0[s] as usize])
                    .saturating_add(beta_after[self.next0[s] as usize]);
                let m1 = a
                    .saturating_add(bm[self.fout1[s] as usize])
                    .saturating_add(beta_after[self.next1[s] as usize]);
                best[0] = best[0].max(m0);
                best[1] = best[1].max(m1);
            }
        }
        best
    }
}

/// The compiled branch-metric unit: `i32` metrics into a reusable table,
/// with the `n_out = 2` case (802.11's mother code) specialized to two
/// adds and four negations instead of the generic `2^n · n` pattern loop.
#[derive(Debug, Clone)]
pub struct CompiledBmu {
    n_out: usize,
    metrics: Vec<i32>,
}

impl CompiledBmu {
    /// A BMU for `n_out` coded bits per step.
    ///
    /// # Panics
    ///
    /// Panics if `n_out` is 0 or greater than 8.
    pub fn new(n_out: usize) -> Self {
        assert!((1..=8).contains(&n_out), "1..=8 coded bits per step");
        Self {
            n_out,
            metrics: vec![0; 1 << n_out],
        }
    }

    /// Computes this step's metrics in place and returns them, indexed by
    /// output bitmask (same convention as [`crate::bmu::branch_metrics`]).
    ///
    /// # Panics
    ///
    /// Panics if `step_llrs.len()` differs from the configured `n_out`.
    #[inline]
    pub fn compute(&mut self, step_llrs: &[Llr]) -> &[i32] {
        assert_eq!(step_llrs.len(), self.n_out, "wrong number of soft inputs");
        if let [l0, l1] = *step_llrs {
            // Rate-1/2 special case: the four correlations are ±sum, ±diff.
            let s = l0 + l1;
            let d = l0 - l1;
            self.metrics[0b00] = -s;
            self.metrics[0b01] = d;
            self.metrics[0b10] = -d;
            self.metrics[0b11] = s;
        } else {
            for (pattern, slot) in self.metrics.iter_mut().enumerate() {
                let mut m = 0i32;
                for (j, &llr) in step_llrs.iter().enumerate() {
                    if (pattern >> j) & 1 == 1 {
                        m += llr;
                    } else {
                        m -= llr;
                    }
                }
                *slot = m;
            }
        }
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmu::branch_metrics;
    use crate::pmu::{forward_acs, NEG_INF};

    #[test]
    fn tables_agree_with_trellis() {
        for code in [ConvCode::ieee80211(), ConvCode::k3()] {
            let ct = CompiledTrellis::new(&code);
            let t = ct.trellis();
            for s in 0..ct.n_states() {
                let [e0, e1] = t.incoming(s);
                assert_eq!(ct.prev0[s], u32::from(e0.prev));
                assert_eq!(ct.prev1[s], u32::from(e1.prev));
                assert_eq!(ct.traceback_edge(s, 0), (e0.input, usize::from(e0.prev)));
                assert_eq!(ct.traceback_edge(s, 1), (e1.input, usize::from(e1.prev)));
                assert_eq!(ct.omask0[s], e0.output);
                assert_eq!(ct.omask1[s], e1.output);
                assert_eq!(ct.next0[s] as usize, t.next(s, 0).next as usize);
                assert_eq!(ct.next1[s] as usize, t.next(s, 1).next as usize);
                assert_eq!(ct.fout0[s], t.next(s, 0).output);
                assert_eq!(ct.fout1[s], t.next(s, 1).output);
            }
        }
    }

    #[test]
    fn survivor_packing_is_one_word_for_80211() {
        let ct = CompiledTrellis::new(&ConvCode::ieee80211());
        assert_eq!(ct.words_per_step(), 1);
        let ct3 = CompiledTrellis::new(&ConvCode::k3());
        assert_eq!(ct3.words_per_step(), 1);
        // A K=8 code still fits one word; K=9 (256 states) needs four.
        let big = CompiledTrellis::new(&ConvCode::new(9, &[0o561, 0o753]));
        assert_eq!(big.n_states(), 256);
        assert_eq!(big.words_per_step(), 4);
    }

    #[test]
    fn compiled_bmu_matches_reference_for_every_width() {
        for n_out in 1..=4usize {
            let mut cb = CompiledBmu::new(n_out);
            let llrs: Vec<Llr> = (0..n_out as i32).map(|i| 7 - 5 * i).collect();
            let fast = cb.compute(&llrs).to_vec();
            let slow = branch_metrics(&llrs);
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(i64::from(*f), *s, "n_out {n_out}");
            }
        }
    }

    #[test]
    fn hot_step_matches_reference_acs_post_warmup() {
        // Start from an all-reachable column and compare one compiled step
        // against the i64 reference kernel: identical survivors, margins,
        // and metric differences.
        let code = ConvCode::ieee80211();
        let ct = CompiledTrellis::new(&code);
        let n = ct.n_states();
        let prev32: Vec<i32> = (0..n as i32).map(|i| -(i * 3 % 17)).collect();
        let prev64: Vec<i64> = prev32.iter().map(|&v| i64::from(v) + 1000).collect();
        let llrs = [9, -4];
        let mut cb = CompiledBmu::new(2);
        let bm32 = cb.compute(&llrs).to_vec();
        let bm64 = branch_metrics(&llrs);

        let mut out32 = vec![0i32; n];
        let mut surv = vec![0u64; 1];
        let mut margins32 = vec![0i32; n];
        ct.forward_step_sova(&bm32, &prev32, &mut out32, &mut surv, &mut margins32);

        let mut out64 = vec![0i64; n];
        let mut surv64 = vec![0u8; n];
        let mut margins64 = vec![0i64; n];
        forward_acs(
            ct.trellis(),
            &bm64,
            &prev64,
            &mut out64,
            Some(&mut surv64),
            Some(&mut margins64),
        );
        for s in 0..n {
            assert_eq!(ct.survivor_bit(&surv, 1, 0, s), surv64[s], "state {s}");
            assert_eq!(i64::from(margins32[s]), margins64[s], "state {s}");
            // Metrics agree up to the uniform 1000 offset.
            assert_eq!(i64::from(out32[s]) + 1000, out64[s], "state {s}");
        }
    }

    #[test]
    fn warmup_step_mirrors_sentinel_reference() {
        let code = ConvCode::k3();
        let ct = CompiledTrellis::new(&code);
        let n = ct.n_states();
        let mut prev32 = vec![NEG_INF32; n];
        prev32[0] = 0;
        let mut prev64 = vec![NEG_INF; n];
        prev64[0] = 0;
        let llrs = [5, -3];
        let mut cb = CompiledBmu::new(2);
        let bm32 = cb.compute(&llrs).to_vec();
        let bm64 = branch_metrics(&llrs);

        let mut out32 = vec![0i32; n];
        let mut surv = vec![0u64; 1];
        let mut margins32 = vec![0i32; n];
        ct.forward_step_warmup(&bm32, &prev32, &mut out32, &mut surv, Some(&mut margins32));

        let mut out64 = vec![0i64; n];
        let mut surv64 = vec![0u8; n];
        let mut margins64 = vec![0i64; n];
        forward_acs(
            ct.trellis(),
            &bm64,
            &prev64,
            &mut out64,
            Some(&mut surv64),
            Some(&mut margins64),
        );
        for s in 0..n {
            assert_eq!(ct.survivor_bit(&surv, 1, 0, s), surv64[s], "state {s}");
            let m64 = margins64[s];
            if m64 > i64::from(i32::MAX) {
                assert_eq!(margins32[s], HUGE_MARGIN, "state {s}");
            } else {
                assert_eq!(i64::from(margins32[s]), m64, "state {s}");
            }
        }
    }

    #[test]
    fn renormalize_uniform_preserves_differences() {
        let mut col = vec![40, -3, 17, 0];
        let orig = col.clone();
        renormalize_uniform(&mut col);
        assert_eq!(*col.iter().max().unwrap(), 0);
        for (a, b) in col.iter().zip(&orig) {
            assert_eq!(a - col[0], b - orig[0]);
        }
    }

    #[test]
    fn fast_path_gate() {
        assert!(fast_path_ok(&[]));
        assert!(fast_path_ok(&[
            FAST_LLR_LIMIT as i32,
            -(FAST_LLR_LIMIT as i32)
        ]));
        assert!(!fast_path_ok(&[0, i32::MIN]));
    }

    #[test]
    #[should_panic(expected = "wrong number")]
    fn compiled_bmu_checks_arity() {
        let mut cb = CompiledBmu::new(2);
        let _ = cb.compute(&[1, 2, 3]);
    }
}
