//! Path metric unit — shared by all decoders, "parameterized in terms of
//! path permutation, which differs between the forward and backward trellis
//! paths of BCJR, and the Add-Compare-Select units" (§4.3).
//!
//! Metrics are max-log: larger is more likely. The unreachable-state
//! sentinel is a large negative value far from overflow.

use crate::llr::Llr;
use crate::trellis::Trellis;

/// Metric of an unreachable state. Far enough from `i64::MIN` that adding
/// branch metrics can never wrap.
pub const NEG_INF: i64 = i64::MIN / 4;

/// The `i32` image of [`NEG_INF`] used by the compiled kernels
/// ([`crate::compiled`]). Far enough from `i32::MIN` that the bounded
/// branch metrics of the fast path can never wrap it.
pub const NEG_INF32: i32 = i32::MIN / 4;

/// One forward Add-Compare-Select step.
///
/// For every destination state, adds each incoming edge's branch metric to
/// its source path metric, compares, and selects the larger. Optionally
/// records the surviving edge index and the decision margin `|difference|`
/// — the quantities SOVA's traceback units consume.
///
/// `bm` is indexed by output bitmask (see [`crate::bmu`]); `prev` and `out`
/// are path-metric columns of `trellis.n_states()` entries.
///
/// # Panics
///
/// Panics (in debug builds) if column sizes disagree with the trellis.
pub fn forward_acs(
    trellis: &Trellis,
    bm: &[i64],
    prev: &[i64],
    out: &mut [i64],
    mut survivors: Option<&mut [u8]>,
    mut deltas: Option<&mut [i64]>,
) {
    debug_assert_eq!(prev.len(), trellis.n_states());
    debug_assert_eq!(out.len(), trellis.n_states());
    for state in 0..trellis.n_states() {
        let [e0, e1] = trellis.incoming(state);
        let c0 = prev[e0.prev as usize].saturating_add(bm[e0.output as usize]);
        let c1 = prev[e1.prev as usize].saturating_add(bm[e1.output as usize]);
        let (winner, metric, margin) = if c0 >= c1 {
            (0u8, c0, c0 - c1)
        } else {
            (1u8, c1, c1 - c0)
        };
        out[state] = metric;
        if let Some(s) = survivors.as_deref_mut() {
            s[state] = winner;
        }
        if let Some(d) = deltas.as_deref_mut() {
            d[state] = margin;
        }
    }
}

/// One backward ACS step (BCJR's reverse path): for every source state,
/// combines each outgoing edge's branch metric with the *destination*'s
/// backward metric — the "path permutation" that distinguishes the
/// backward PMU from the forward one.
pub fn backward_acs(trellis: &Trellis, bm: &[i64], next: &[i64], out: &mut [i64]) {
    debug_assert_eq!(next.len(), trellis.n_states());
    debug_assert_eq!(out.len(), trellis.n_states());
    for (state, slot) in out.iter_mut().enumerate() {
        let t0 = trellis.next(state, 0);
        let t1 = trellis.next(state, 1);
        let c0 = next[t0.next as usize].saturating_add(bm[t0.output as usize]);
        let c1 = next[t1.next as usize].saturating_add(bm[t1.output as usize]);
        *slot = c0.max(c1);
    }
}

/// Rescales a metric column so its maximum is zero — the modulo/subtract
/// normalization hardware PMUs apply to keep register widths bounded.
pub fn normalize(column: &mut [i64]) {
    let max = column.iter().copied().max().unwrap_or(0);
    if max > NEG_INF / 2 {
        for m in column {
            if *m > NEG_INF / 2 {
                *m -= max;
            }
        }
    }
}

/// The `i32` form of [`normalize`], bit-for-bit the same policy on the
/// compiled kernels' narrow metrics: reachable entries are shifted so the
/// column maximum is zero, sentinels stay put.
///
/// Renormalization is an *invariant* of the compiled kernels, not an
/// optional cleanup: the reference kernels lean on 64-bit headroom and
/// `saturating_add` to survive long frames unnormalized, but an `i32`
/// recursion would wrap within thousands of steps. The BCJR kernels call
/// this every step (mirroring the reference decoder); the Viterbi/SOVA
/// kernels apply the uniform-shift variant
/// ([`crate::compiled::renormalize_uniform`]) every
/// [`crate::compiled::NORM_INTERVAL`] steps.
pub fn normalize32(column: &mut [i32]) {
    let max = column.iter().copied().max().unwrap_or(0);
    if max > NEG_INF32 / 2 {
        for m in column {
            if *m > NEG_INF32 / 2 {
                *m -= max;
            }
        }
    }
}

/// A metric column initialized for a path known to start in `state`.
pub fn known_state_column(n_states: usize, state: usize) -> Vec<i64> {
    let mut col = vec![NEG_INF; n_states];
    col[state] = 0;
    col
}

/// A metric column for a completely unknown ("uncertain") state — the
/// initialization the paper uses for the provisional backward pass (§4.3.2).
pub fn uncertain_column(n_states: usize) -> Vec<i64> {
    vec![0; n_states]
}

/// Saturates a wide internal metric to an [`Llr`]-width soft output, the
/// final quantization before a soft value leaves the decoder.
pub fn saturate_llr(metric: i64) -> Llr {
    metric.clamp(i64::from(Llr::MIN), i64::from(Llr::MAX)) as Llr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmu::branch_metrics;
    use crate::{ConvCode, ConvEncoder};

    fn trellis() -> Trellis {
        Trellis::new(&ConvCode::k3())
    }

    #[test]
    fn forward_tracks_clean_path() {
        // Encode a short sequence; with full-confidence LLRs the true path
        // must be the unique maximum at every step.
        let code = ConvCode::k3();
        let t = Trellis::new(&code);
        let bits = [1u8, 0, 1, 1];
        let mut enc = ConvEncoder::new(&code);
        let coded = enc.encode(&bits);

        let mut pm = known_state_column(t.n_states(), 0);
        let mut next = vec![0i64; t.n_states()];
        let mut state = 0usize;
        for (step, pair) in coded.chunks(2).enumerate() {
            let llrs: Vec<i32> = pair.iter().map(|&b| if b == 1 { 8 } else { -8 }).collect();
            let bm = branch_metrics(&llrs);
            forward_acs(&t, &bm, &pm, &mut next, None, None);
            state = t.next(state, bits[step]).next as usize;
            let best = (0..t.n_states()).max_by_key(|&s| next[s]).unwrap();
            assert_eq!(best, state, "true path lost at step {step}");
            std::mem::swap(&mut pm, &mut next);
        }
    }

    #[test]
    fn margins_are_nonnegative() {
        let t = trellis();
        let bm = branch_metrics(&[3, -5]);
        let prev = uncertain_column(t.n_states());
        let mut out = vec![0i64; t.n_states()];
        let mut surv = vec![0u8; t.n_states()];
        let mut delta = vec![0i64; t.n_states()];
        forward_acs(&t, &bm, &prev, &mut out, Some(&mut surv), Some(&mut delta));
        assert!(delta.iter().all(|&d| d >= 0));
    }

    #[test]
    fn backward_mirrors_forward_on_symmetric_input() {
        // With an uncertain start and a single step, the backward metric of
        // a state is the max over its outgoing branch metrics; check against
        // a hand computation.
        let t = trellis();
        let bm = branch_metrics(&[2, 6]);
        let next = uncertain_column(t.n_states());
        let mut out = vec![0i64; t.n_states()];
        backward_acs(&t, &bm, &next, &mut out);
        for s in 0..t.n_states() {
            let m0 = bm[t.next(s, 0).output as usize];
            let m1 = bm[t.next(s, 1).output as usize];
            assert_eq!(out[s], m0.max(m1));
        }
    }

    #[test]
    fn normalize_zeroes_the_max() {
        let mut col = vec![100, 50, NEG_INF, 75];
        normalize(&mut col);
        assert_eq!(col[0], 0);
        assert_eq!(col[1], -50);
        assert_eq!(col[2], NEG_INF, "unreachable stays unreachable");
    }

    #[test]
    fn normalize32_mirrors_normalize() {
        let mut wide = vec![100, 50, NEG_INF, 75];
        let mut narrow = vec![100i32, 50, NEG_INF32, 75];
        normalize(&mut wide);
        normalize32(&mut narrow);
        for (w, n) in wide.iter().zip(&narrow) {
            if *w == NEG_INF {
                assert_eq!(*n, NEG_INF32, "sentinel preserved in both widths");
            } else {
                assert_eq!(*w, i64::from(*n));
            }
        }
    }

    #[test]
    fn saturate_llr_clamps() {
        assert_eq!(saturate_llr(i64::MAX / 2), i32::MAX);
        assert_eq!(saturate_llr(-(i64::MAX / 2)), i32::MIN);
        assert_eq!(saturate_llr(-5), -5);
    }

    #[test]
    fn unreachable_states_do_not_win() {
        let t = trellis();
        let bm = branch_metrics(&[1, 1]);
        let prev = known_state_column(t.n_states(), 2);
        let mut out = vec![0i64; t.n_states()];
        forward_acs(&t, &bm, &prev, &mut out, None, None);
        // Only successors of state 2 should be reachable.
        let reachable: Vec<usize> = (0..t.n_states())
            .filter(|&s| out[s] > NEG_INF / 2)
            .collect();
        let expect: Vec<usize> = (0..2u8).map(|b| t.next(2, b).next as usize).collect();
        let mut expect_sorted = expect;
        expect_sorted.sort_unstable();
        assert_eq!(reachable, expect_sorted);
    }
}
