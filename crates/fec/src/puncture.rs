//! Puncturing: deriving the 802.11a code rates from the rate-1/2 mother
//! code by deleting coded bits on a fixed pattern, and re-inserting
//! metric-neutral erasures at the receiver.

use std::fmt;

use crate::llr::Llr;

/// The three 802.11a code rates.
///
/// Patterns follow IEEE 802.11-2007 §17.3.5.6: over each period the mask
/// selects which mother-code bits (in `A1 B1 A2 B2 ...` order) are
/// transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2: no puncturing.
    Half,
    /// Rate 2/3: one of every four mother bits removed.
    TwoThirds,
    /// Rate 3/4: two of every six mother bits removed.
    ThreeQuarters,
}

impl CodeRate {
    /// The keep-mask over one puncturing period of mother-coded bits.
    pub fn mask(self) -> &'static [u8] {
        match self {
            CodeRate::Half => &[1, 1],
            CodeRate::TwoThirds => &[1, 1, 1, 0],
            CodeRate::ThreeQuarters => &[1, 1, 1, 0, 0, 1],
        }
    }

    /// The rate as `(numerator, denominator)`.
    pub fn fraction(self) -> (u32, u32) {
        match self {
            CodeRate::Half => (1, 2),
            CodeRate::TwoThirds => (2, 3),
            CodeRate::ThreeQuarters => (3, 4),
        }
    }

    /// The rate as a float (data bits per coded bit).
    pub fn value(self) -> f64 {
        let (n, d) = self.fraction();
        f64::from(n) / f64::from(d)
    }
}

impl fmt::Display for CodeRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (n, d) = self.fraction();
        write!(f, "{n}/{d}")
    }
}

/// Saturating element-wise LLR combination: `acc[i] += fresh[i]`.
///
/// This is the Chase/IR combiner core: soft planes from repeated
/// transmissions of the same mother block add coherently (independent
/// noise adds incoherently), so the combined block decodes as if it had
/// been received at a higher SNR. Addition saturates at the `i32` rails
/// so a long retry run cannot wrap a confident bit into the opposite
/// sign.
///
/// # Panics
///
/// Panics if the planes disagree on length — combining is only defined
/// over the same mother-code geometry.
// lint: no_alloc
pub fn combine_llrs_into(acc: &mut [Llr], fresh: &[Llr]) {
    assert_eq!(
        acc.len(),
        fresh.len(),
        "LLR planes must share the mother-code geometry"
    );
    for (a, &f) in acc.iter_mut().zip(fresh) {
        *a = a.saturating_add(f);
    }
}

/// Deletes coded bits according to a [`CodeRate`] mask.
///
/// # Example
///
/// ```
/// use wilis_fec::{CodeRate, Depuncturer, Puncturer};
///
/// let p = Puncturer::new(CodeRate::ThreeQuarters);
/// let coded: Vec<u8> = (0..12).map(|i| (i % 2) as u8).collect();
/// let tx = p.puncture(&coded);
/// assert_eq!(tx.len(), 8, "3/4 keeps 4 of every 6");
///
/// let d = Depuncturer::new(CodeRate::ThreeQuarters);
/// let llrs: Vec<i32> = tx.iter().map(|&b| if b == 1 { 5 } else { -5 }).collect();
/// let rx = d.depuncture(&llrs, 12);
/// assert_eq!(rx.len(), 12);
/// assert_eq!(rx.iter().filter(|&&l| l == 0).count(), 4, "erasures are neutral");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Puncturer {
    rate: CodeRate,
    phase: usize,
}

impl Puncturer {
    /// A puncturer for `rate` at phase 0 (the standard 802.11a pattern).
    pub fn new(rate: CodeRate) -> Self {
        Self::with_phase(rate, 0)
    }

    /// A puncturer whose keep-mask is rotated left by `phase` positions:
    /// mother bit `i` is kept iff `mask[(i + phase) % period] == 1`.
    ///
    /// Phase rotation is the incremental-redundancy mechanism: each HARQ
    /// retransmission sends a *different* subset of the mother-code bits,
    /// so the union across attempts covers more of the mother block and
    /// the combined effective code rate drops. Over whole mask periods a
    /// rotation keeps exactly as many bits as phase 0, so the transmitted
    /// symbol geometry is phase-invariant.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is not within the mask period.
    pub fn with_phase(rate: CodeRate, phase: usize) -> Self {
        assert!(
            phase < rate.mask().len(),
            "phase {phase} outside the {rate} mask period ({})",
            rate.mask().len()
        );
        Self { rate, phase }
    }

    /// The mask phase this puncturer applies.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Removes masked-out bits from a mother-coded stream, appending the
    /// survivors to `out` (the allocation-free hot-path form).
    pub fn puncture_into<T: Copy>(&self, coded: &[T], out: &mut Vec<T>) {
        let mask = self.rate.mask();
        out.reserve(self.punctured_len(coded.len()));
        for (i, &b) in coded.iter().enumerate() {
            if mask[(i + self.phase) % mask.len()] == 1 {
                out.push(b);
            }
        }
    }

    /// Removes masked-out bits from a mother-coded stream.
    pub fn puncture<T: Copy>(&self, coded: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.puncture_into(coded, &mut out);
        out
    }

    /// Number of transmitted bits for `mother_len` mother-coded bits.
    pub fn punctured_len(&self, mother_len: usize) -> usize {
        let mask = self.rate.mask();
        let kept_per_period: usize = mask.iter().map(|&m| m as usize).sum();
        let full = mother_len / mask.len();
        let rem = mother_len % mask.len();
        let tail: usize = (0..rem)
            .map(|i| mask[(i + self.phase) % mask.len()] as usize)
            .sum();
        full * kept_per_period + tail
    }
}

/// Restores the mother-code geometry by inserting zero-LLR erasures where
/// bits were punctured. An erased position is metric-neutral in the BMU,
/// which is exactly how the hardware treats stolen bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Depuncturer {
    rate: CodeRate,
    phase: usize,
}

impl Depuncturer {
    /// A depuncturer for `rate` at phase 0 (the standard 802.11a pattern).
    pub fn new(rate: CodeRate) -> Self {
        Self::with_phase(rate, 0)
    }

    /// A depuncturer matching [`Puncturer::with_phase`]: erasures land on
    /// the positions the rotated mask stole.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is not within the mask period.
    pub fn with_phase(rate: CodeRate, phase: usize) -> Self {
        assert!(
            phase < rate.mask().len(),
            "phase {phase} outside the {rate} mask period ({})",
            rate.mask().len()
        );
        Self { rate, phase }
    }

    /// The mask phase this depuncturer expects.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Expands received soft values back to `mother_len` positions.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` does not match the number of transmitted bits
    /// implied by `mother_len`.
    pub fn depuncture(&self, llrs: &[Llr], mother_len: usize) -> Vec<Llr> {
        let mut out = Vec::with_capacity(mother_len);
        self.depuncture_into(llrs, mother_len, &mut out);
        out
    }

    /// Expands received soft values back to `mother_len` positions,
    /// appending to `out` (the allocation-free hot-path form).
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` does not match the number of transmitted bits
    /// implied by `mother_len`.
    pub fn depuncture_into(&self, llrs: &[Llr], mother_len: usize, out: &mut Vec<Llr>) {
        let expect = Puncturer::with_phase(self.rate, self.phase).punctured_len(mother_len);
        assert_eq!(
            llrs.len(),
            expect,
            "received {} soft values, expected {expect} for {mother_len} mother bits",
            llrs.len()
        );
        let mask = self.rate.mask();
        out.reserve(mother_len);
        let mut src = llrs.iter();
        for i in 0..mother_len {
            if mask[(i + self.phase) % mask.len()] == 1 {
                out.push(*src.next().expect("length checked above")); // lint: allow(panic-policy) — the assert above sized `llrs` to the mask weight
            } else {
                out.push(0);
            }
        }
    }

    /// The lane-major form of [`Depuncturer::depuncture_into`] for the
    /// lockstep batch path: `llrs` holds `lanes` punctured streams
    /// interlaced (soft value `i` of lane `l` at `llrs[i * lanes + l]`),
    /// and the output is the `mother_len`-row lane-major mother stream.
    /// The puncturing pattern is position-, not value-, dependent, so
    /// every lane shares the same erasure rows and whole rows copy at
    /// once — per lane this is exactly the scalar expansion.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `llrs.len()` does not match the
    /// transmitted-bit count implied by `mother_len` times `lanes`.
    pub fn depuncture_lanes_into(
        &self,
        llrs: &[Llr],
        lanes: usize,
        mother_len: usize,
        out: &mut Vec<Llr>,
    ) {
        assert!(lanes > 0, "at least one lane");
        let expect = Puncturer::with_phase(self.rate, self.phase).punctured_len(mother_len);
        assert_eq!(
            llrs.len(),
            expect * lanes,
            "received {} soft values, expected {expect} x {lanes} lanes for \
             {mother_len} mother bits",
            llrs.len()
        );
        let mask = self.rate.mask();
        out.reserve(mother_len * lanes);
        let mut rows = llrs.chunks_exact(lanes);
        for i in 0..mother_len {
            if mask[(i + self.phase) % mask.len()] == 1 {
                // lint: allow(panic-policy) — the assert above sized `llrs` to the mask weight
                out.extend_from_slice(rows.next().expect("length checked above"));
            } else {
                out.extend(std::iter::repeat(0).take(lanes));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_rate_is_identity() {
        let p = Puncturer::new(CodeRate::Half);
        let bits = [1u8, 0, 1, 1, 0];
        assert_eq!(p.puncture(&bits), bits);
        let d = Depuncturer::new(CodeRate::Half);
        let llrs = [5, -5, 5, 5, -5];
        assert_eq!(d.depuncture(&llrs, 5), llrs);
    }

    #[test]
    fn two_thirds_drops_every_fourth() {
        let p = Puncturer::new(CodeRate::TwoThirds);
        let bits: Vec<u8> = (0..8).map(|i| i as u8 % 2).collect();
        // indices kept: 0 1 2, 4 5 6
        assert_eq!(p.puncture(&bits), vec![0, 1, 0, 0, 1, 0]);
        assert_eq!(p.punctured_len(8), 6);
    }

    #[test]
    fn roundtrip_restores_geometry() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let p = Puncturer::new(rate);
            let d = Depuncturer::new(rate);
            let mother: Vec<Llr> = (1..=24).collect();
            let tx = p.puncture(&mother);
            let rx = d.depuncture(&tx, mother.len());
            assert_eq!(rx.len(), mother.len());
            for (i, (&orig, &got)) in mother.iter().zip(&rx).enumerate() {
                let kept = rate.mask()[i % rate.mask().len()] == 1;
                if kept {
                    assert_eq!(got, orig, "kept bit {i} altered");
                } else {
                    assert_eq!(got, 0, "stolen bit {i} must be erased");
                }
            }
        }
    }

    #[test]
    fn lane_major_depuncture_matches_per_lane_scalar() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let p = Puncturer::new(rate);
            let d = Depuncturer::new(rate);
            let mother_len = 24;
            for lanes in [1usize, 3, 8] {
                let lane_tx: Vec<Vec<Llr>> = (0..lanes)
                    .map(|l| {
                        let mother: Vec<Llr> = (0..mother_len)
                            .map(|i| (i as Llr + 1) * (l as Llr + 1))
                            .collect();
                        p.puncture(&mother)
                    })
                    .collect();
                // Interlace lane-major, expand, and compare row by row.
                let mut soa = Vec::new();
                for i in 0..lane_tx[0].len() {
                    for lane in &lane_tx {
                        soa.push(lane[i]);
                    }
                }
                let mut got = Vec::new();
                d.depuncture_lanes_into(&soa, lanes, mother_len, &mut got);
                for (l, lane) in lane_tx.iter().enumerate() {
                    let solo = d.depuncture(lane, mother_len);
                    let gathered: Vec<Llr> = got.chunks_exact(lanes).map(|row| row[l]).collect();
                    assert_eq!(gathered, solo, "{rate} lane {l} of {lanes}");
                }
            }
        }
    }

    #[test]
    fn punctured_len_handles_partial_periods() {
        let p = Puncturer::new(CodeRate::ThreeQuarters);
        for len in 0..30 {
            let bits = vec![0u8; len];
            assert_eq!(p.puncture(&bits).len(), p.punctured_len(len), "len {len}");
        }
    }

    #[test]
    fn rates_have_correct_values() {
        assert_eq!(CodeRate::Half.value(), 0.5);
        assert!((CodeRate::TwoThirds.value() - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(CodeRate::ThreeQuarters.value(), 0.75);
        assert_eq!(CodeRate::ThreeQuarters.to_string(), "3/4");
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn wrong_length_panics() {
        let d = Depuncturer::new(CodeRate::TwoThirds);
        let _ = d.depuncture(&[1, 2, 3], 8);
    }

    #[test]
    fn phase_zero_matches_unphased() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let mother: Vec<Llr> = (1..=24).collect();
            assert_eq!(
                Puncturer::with_phase(rate, 0).puncture(&mother),
                Puncturer::new(rate).puncture(&mother),
            );
        }
    }

    #[test]
    fn rotation_preserves_kept_count_over_whole_periods() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let period = rate.mask().len();
            for phase in 0..period {
                let p = Puncturer::with_phase(rate, phase);
                for periods in [1usize, 3, 7] {
                    assert_eq!(
                        p.punctured_len(periods * period),
                        Puncturer::new(rate).punctured_len(periods * period),
                        "{rate} phase {phase}"
                    );
                }
            }
        }
    }

    #[test]
    fn rotated_roundtrip_restores_geometry() {
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let period = rate.mask().len();
            for phase in 0..period {
                let p = Puncturer::with_phase(rate, phase);
                let d = Depuncturer::with_phase(rate, phase);
                let mother: Vec<Llr> = (1..=24).collect();
                let tx = p.puncture(&mother);
                let rx = d.depuncture(&tx, mother.len());
                for (i, (&orig, &got)) in mother.iter().zip(&rx).enumerate() {
                    let kept = rate.mask()[(i + phase) % period] == 1;
                    if kept {
                        assert_eq!(got, orig, "{rate} phase {phase} kept bit {i}");
                    } else {
                        assert_eq!(got, 0, "{rate} phase {phase} stolen bit {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn rotated_punctured_len_handles_partial_periods() {
        for rate in [CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            for phase in 0..rate.mask().len() {
                let p = Puncturer::with_phase(rate, phase);
                for len in 0..30 {
                    let bits = vec![0u8; len];
                    assert_eq!(
                        p.puncture(&bits).len(),
                        p.punctured_len(len),
                        "{rate} phase {phase} len {len}"
                    );
                }
            }
        }
    }

    #[test]
    fn ir_phase_union_lowers_effective_rate() {
        // The default 3/4 IR schedule {0, 3} covers every mother position:
        // mask 1 1 1 0 0 1 rotated by 3 is 0 0 1 1 1 1 — together rate 1/2.
        let rate = CodeRate::ThreeQuarters;
        let period = rate.mask().len();
        let covered: Vec<bool> = (0..period)
            .map(|i| {
                [0usize, 3]
                    .iter()
                    .any(|&ph| rate.mask()[(i + ph) % period] == 1)
            })
            .collect();
        assert!(
            covered.iter().all(|&c| c),
            "phases 0+3 cover all of the 3/4 mask"
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn phase_beyond_period_panics() {
        let _ = Puncturer::with_phase(CodeRate::TwoThirds, 4);
    }

    #[test]
    fn combine_llrs_saturates_at_the_rails() {
        let mut acc = vec![i32::MAX - 1, i32::MIN + 1, 10, -10];
        combine_llrs_into(&mut acc, &[5, -5, 7, -7]);
        assert_eq!(acc, vec![i32::MAX, i32::MIN, 17, -17]);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn combine_llrs_rejects_mismatched_planes() {
        let mut acc = vec![1, 2, 3];
        combine_llrs_into(&mut acc, &[1, 2]);
    }
}
