//! Cycle-level latency models of the decoder pipelines, built on the
//! latency-insensitive engine.
//!
//! The paper derives the decoder latencies structurally (§4.3.1, §4.3.2):
//!
//! * SOVA: `l + k + 12` — one cycle each for BMU and PMU, five two-entry
//!   FIFOs contributing up to two cycles each, plus the two traceback
//!   windows (Figure 3).
//! * BCJR: `2n + 7` — two reversal buffers of `n` cycles each dominate,
//!   with pipeline stages and FIFOs making up the constant (Figure 4).
//!
//! These functions *measure* the same numbers by pushing a token through a
//! [`wilis_lis`] pipeline whose stages impose exactly the hardware's
//! processing delays. The `latency` bench and the `latency_contracts`
//! integration test assert measurement == formula — the kind of check the
//! latency-insensitive methodology makes cheap (§2: modules can be refined
//! without re-verifying the composition).

use std::collections::VecDeque;

use wilis_lis::{ClockHandle, Freq, LinkSpec, Module, Sink, Source, SystemBuilder};

/// A token stamped with its birth edge, for end-to-end latency measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    /// Sequence number.
    pub id: u64,
    /// Clock edge (in the measurement domain) when the token entered the
    /// pipeline.
    pub birth_edge: u64,
}

/// A fixed-latency, fully pipelined stage: tokens exit exactly
/// `delay_cycles` edges after entering, one per cycle at full throughput.
/// Models BMUs, PMUs, traceback windows, delay buffers and reversal buffers
/// — anything with shift-register timing.
#[derive(Debug)]
pub struct DelayStage {
    name: String,
    inp: Source<Stamped>,
    out: Sink<Stamped>,
    clk: ClockHandle,
    delay_cycles: u64,
    line: VecDeque<(Stamped, u64)>,
}

impl DelayStage {
    /// A stage with the given processing delay.
    ///
    /// # Panics
    ///
    /// Panics if `delay_cycles` is zero — a zero-latency stage is a wire,
    /// not a pipeline stage.
    pub fn new(
        name: &str,
        inp: Source<Stamped>,
        out: Sink<Stamped>,
        clk: ClockHandle,
        delay_cycles: u64,
    ) -> Self {
        assert!(delay_cycles > 0, "a pipeline stage has at least one cycle");
        Self {
            name: name.to_string(),
            inp,
            out,
            clk,
            delay_cycles,
            line: VecDeque::new(),
        }
    }
}

impl Module for DelayStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self) {
        let now = self.clk.edges();
        // Retire a token whose dwell time has elapsed.
        if let Some(&(token, entered)) = self.line.front() {
            if now >= entered + self.delay_cycles && self.out.can_enq() {
                self.out.enq(token);
                self.line.pop_front();
            }
        }
        // Accept a new token if the shift register has room.
        if (self.line.len() as u64) < self.delay_cycles {
            if let Some(token) = self.inp.deq() {
                self.line.push_back((token, now));
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.line.is_empty()
    }
}

struct Injector {
    out: Sink<Stamped>,
    clk: ClockHandle,
    remaining: u64,
    next_id: u64,
}

impl Module for Injector {
    fn name(&self) -> &str {
        "injector"
    }
    fn tick(&mut self) {
        if self.remaining > 0 && self.out.can_enq() {
            self.out.enq(Stamped {
                id: self.next_id,
                birth_edge: self.clk.edges(),
            });
            self.next_id += 1;
            self.remaining -= 1;
        }
    }
    fn is_idle(&self) -> bool {
        self.remaining == 0
    }
}

struct LatencyProbe {
    inp: Source<Stamped>,
    clk: ClockHandle,
    latencies: Vec<u64>,
}

impl Module for LatencyProbe {
    fn name(&self) -> &str {
        "latency-probe"
    }
    fn tick(&mut self) {
        if let Some(token) = self.inp.deq() {
            self.latencies.push(self.clk.edges() - token.birth_edge);
        }
    }
}

/// Assembles a chain of [`DelayStage`]s joined by two-entry, two-cycle
/// FIFOs (the paper's pipeline FIFOs), pushes `tokens` through it, and
/// returns each token's end-to-end latency in cycles.
///
/// The chain is `injector → FIFO → stage_0 → FIFO → ... → stage_last →
/// FIFO → probe`: `stages.len() + 1` FIFOs in total.
///
/// # Panics
///
/// Panics if `stages` is empty or `tokens` is zero.
pub fn measure_chain_latency(stage_delays: &[(&str, u64)], tokens: u64) -> Vec<u64> {
    assert!(!stage_delays.is_empty(), "need at least one stage");
    assert!(tokens > 0, "need at least one token");
    let mut b = SystemBuilder::new();
    let clk = b.clock("decoder", Freq::mhz(60));
    let fifo = || LinkSpec::new(2).delay(2);

    let (inj_tx, mut chain_rx) = b.link::<Stamped>(&clk, &clk, fifo());
    b.add_module(
        &clk,
        Injector {
            out: inj_tx,
            clk: clk.clone(),
            remaining: tokens,
            next_id: 0,
        },
    );
    for &(name, delay) in stage_delays {
        let (tx, rx) = b.link::<Stamped>(&clk, &clk, fifo());
        b.add_module(
            &clk,
            DelayStage::new(name, chain_rx, tx, clk.clone(), delay),
        );
        chain_rx = rx;
    }
    let probe = b.add_module(
        &clk,
        LatencyProbe {
            inp: chain_rx,
            clk: clk.clone(),
            latencies: Vec::new(),
        },
    );
    let mut sys = b.build();
    let total_delay: u64 = stage_delays.iter().map(|&(_, d)| d).sum();
    let budget = (total_delay + 2 * (stage_delays.len() as u64 + 1) + tokens + 16) * 4;
    sys.run_until(budget * 2, |s| {
        s.module::<LatencyProbe>(probe).latencies.len() as u64 >= tokens
    });
    sys.module::<LatencyProbe>(probe).latencies.clone()
}

/// The SOVA pipeline of Figure 3 as stage delays: BMU (1) → PMU (1) →
/// delay buffer folded into TU1's window (`l`) → TU2 (`k`), joined by five
/// two-cycle FIFOs. Measures the first token's latency.
pub fn sova_pipeline_latency(l: u64, k: u64) -> u64 {
    // 4 stages => 5 FIFOs, matching the paper's count.
    let lat = measure_chain_latency(&[("bmu", 1), ("pmu", 1), ("tu1", l), ("tu2", k)], 4);
    lat[0]
}

/// The BCJR pipeline of Figure 4, with the SRAM-coupled units fused the
/// way the hardware couples them: BMU feeds the initial reversal buffer
/// directly (one stage of `n + 1` cycles), the backward PMU feeds the
/// final reversal buffer (another `n + 1`), and the decision unit adds one
/// more cycle. The four registered FIFO hops contribute one cycle each,
/// giving the paper's `2n + 7` exactly. (The provisional PMU runs in
/// parallel with the final reversal buffer and does not add latency; it
/// adds *area*, which `wilis-area` accounts for.)
pub fn bcjr_pipeline_latency(n: u64) -> u64 {
    let mut b = SystemBuilder::new();
    let clk = b.clock("decoder", Freq::mhz(60));
    let reg = LinkSpec::new(2).delay(1);

    let (inj_tx, rx0) = b.link::<Stamped>(&clk, &clk, reg);
    b.add_module(
        &clk,
        Injector {
            out: inj_tx,
            clk: clk.clone(),
            remaining: 4,
            next_id: 0,
        },
    );
    let stages: [(&str, u64); 3] = [
        ("bmu+rev-initial", n + 1),
        ("pmu+rev-final", n + 1),
        ("decision", 1),
    ];
    let mut rx = rx0;
    for (name, delay) in stages {
        let (tx, next_rx) = b.link::<Stamped>(&clk, &clk, reg);
        b.add_module(&clk, DelayStage::new(name, rx, tx, clk.clone(), delay));
        rx = next_rx;
    }
    let probe = b.add_module(
        &clk,
        LatencyProbe {
            inp: rx,
            clk: clk.clone(),
            latencies: Vec::new(),
        },
    );
    let mut sys = b.build();
    sys.run_until((2 * n + 200) * 8, |s| {
        !s.module::<LatencyProbe>(probe).latencies.is_empty()
    });
    sys.module::<LatencyProbe>(probe).latencies[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sova_latency_matches_formula() {
        // §4.3.1: "If the l and k are both 64, the total latency will be
        // 140 cycles."
        assert_eq!(sova_pipeline_latency(64, 64), 140);
        assert_eq!(sova_pipeline_latency(32, 16), 32 + 16 + 12);
        assert_eq!(sova_pipeline_latency(1, 1), 14);
    }

    #[test]
    fn bcjr_latency_matches_formula() {
        // §4.3.2: "With a reversal buffer of size n the latency of BCJR is
        // 2n+7" -> 135 cycles at n = 64.
        assert_eq!(bcjr_pipeline_latency(64), 135);
        assert_eq!(bcjr_pipeline_latency(32), 71);
        assert_eq!(bcjr_pipeline_latency(1), 9);
    }

    #[test]
    fn sixty_mhz_meets_80211_deadline() {
        // §4.3.1: at 60 MHz, 140 cycles = 2.33 us < the 25 us SIFS budget;
        // §4.3.2: 135 cycles = 2.25 us.
        let cycle = 1.0 / 60.0e6;
        assert!(sova_pipeline_latency(64, 64) as f64 * cycle < 25e-6);
        assert!(bcjr_pipeline_latency(64) as f64 * cycle < 25e-6);
    }

    #[test]
    fn throughput_is_one_token_per_cycle_after_fill() {
        // Fully pipelined: once the pipe is full, tokens retire every cycle,
        // so the i-th token's latency equals the first token's.
        let lats = measure_chain_latency(&[("a", 3), ("b", 2)], 8);
        assert_eq!(lats.len(), 8);
        assert!(
            lats.windows(2).all(|w| w[1] <= w[0] + 1),
            "tokens must stream without pipeline bubbles: {lats:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_panics() {
        let _ = measure_chain_latency(&[], 1);
    }
}
