//! Precomputed trellis: the state-transition graph shared by every decoder.
//!
//! "Both SOVA and BCJR decode the data by constructing one or more
//! trellises, directed graphs comprised of all the state transitions across
//! all time steps" (§4.3). This module precomputes one *column* of that
//! graph — the per-step transition structure — which every decoder then
//! walks forward, backward, or both.

use crate::ConvCode;

/// A forward transition out of a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Destination state.
    pub next: u16,
    /// Coded output bits as a bitmask; bit `j` is generator `j`'s output.
    pub output: u8,
}

/// An incoming edge of a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Incoming {
    /// Source state.
    pub prev: u16,
    /// The input bit that drives `prev` to this state.
    pub input: u8,
    /// Coded output bits of that transition.
    pub output: u8,
}

/// The precomputed transition structure of a [`ConvCode`].
///
/// # Example
///
/// ```
/// use wilis_fec::{ConvCode, Trellis};
///
/// let t = Trellis::new(&ConvCode::ieee80211());
/// assert_eq!(t.n_states(), 64);
/// // Every state has exactly two successors and two predecessors.
/// let tr = t.next(0, 1);
/// assert!(usize::from(tr.next) < t.n_states());
/// ```
#[derive(Debug, Clone)]
pub struct Trellis {
    n_states: usize,
    n_out: usize,
    /// `forward[state * 2 + input]`
    forward: Vec<Transition>,
    /// `backward[state * 2 + j]`, the two incoming edges of `state`.
    backward: Vec<Incoming>,
}

impl Trellis {
    /// Builds the trellis of `code`.
    pub fn new(code: &ConvCode) -> Self {
        let m = code.memory();
        let n_states = code.n_states();
        let mut forward = Vec::with_capacity(n_states * 2);
        for state in 0..n_states as u32 {
            for input in 0..2u32 {
                // The shift register word: current input in the top bit,
                // then the K-1 previous bits (newest first).
                let word = (input << m) | state;
                let mut output = 0u8;
                for (j, &g) in code.generators().iter().enumerate() {
                    output |= (((word & g).count_ones() & 1) as u8) << j;
                }
                forward.push(Transition {
                    next: (word >> 1) as u16,
                    output,
                });
            }
        }
        let mut backward = vec![
            Incoming {
                prev: 0,
                input: 0,
                output: 0
            };
            n_states * 2
        ];
        let mut fill = vec![0usize; n_states];
        for state in 0..n_states {
            for input in 0..2usize {
                let tr = forward[state * 2 + input];
                let dst = tr.next as usize;
                backward[dst * 2 + fill[dst]] = Incoming {
                    prev: state as u16,
                    input: input as u8,
                    output: tr.output,
                };
                fill[dst] += 1;
            }
        }
        debug_assert!(fill.iter().all(|&f| f == 2), "trellis must be 2-regular");
        Self {
            n_states,
            n_out: code.n_out(),
            forward,
            backward,
        }
    }

    /// Number of states per column.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Coded bits per trellis step.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// The transition taken from `state` on `input`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range or `input` is not 0 or 1.
    pub fn next(&self, state: usize, input: u8) -> Transition {
        assert!(input < 2, "binary input expected");
        self.forward[state * 2 + input as usize]
    }

    /// The two incoming edges of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn incoming(&self, state: usize) -> [Incoming; 2] {
        [self.backward[state * 2], self.backward[state * 2 + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_regular_both_directions() {
        let t = Trellis::new(&ConvCode::ieee80211());
        // Forward: every state reachable from exactly two states.
        let mut in_degree = vec![0usize; t.n_states()];
        for s in 0..t.n_states() {
            for b in 0..2u8 {
                in_degree[t.next(s, b).next as usize] += 1;
            }
        }
        assert!(in_degree.iter().all(|&d| d == 2));
        // Backward table agrees with forward table.
        for s in 0..t.n_states() {
            for inc in t.incoming(s) {
                let tr = t.next(inc.prev as usize, inc.input);
                assert_eq!(tr.next as usize, s);
                assert_eq!(tr.output, inc.output);
            }
        }
    }

    #[test]
    fn zero_state_zero_input_stays_zero() {
        let t = Trellis::new(&ConvCode::ieee80211());
        let tr = t.next(0, 0);
        assert_eq!(tr.next, 0);
        assert_eq!(tr.output, 0, "all-zero input gives all-zero output");
    }

    #[test]
    fn known_80211_first_transition() {
        // From state 0 with input 1: word = 1000000b. g0 = 0o133 has the
        // top bit set, so output bit 0 = 1; likewise g1 = 0o171 -> 1.
        let t = Trellis::new(&ConvCode::ieee80211());
        let tr = t.next(0, 1);
        assert_eq!(tr.output, 0b11);
        assert_eq!(tr.next, 0b100000, "input enters at the top of the register");
    }

    #[test]
    fn k3_exhaustive() {
        let t = Trellis::new(&ConvCode::k3());
        // K=3, generators 5 (101) and 7 (111); state = [b_{t-1} b_{t-2}].
        // From state 0b01 (b_{t-1}=0, b_{t-2}=1) with input 1:
        // word = 101b; g0: 101 & 101 -> two ones -> 0; g1: 101 & 111 -> 0.
        let tr = t.next(0b01, 1);
        assert_eq!(tr.output, 0b00);
        assert_eq!(tr.next, 0b10);
    }

    #[test]
    fn input_bit_recoverable_from_next_state() {
        // The newest bit sits in the top bit of the next state, so the
        // trellis is invertible - required for traceback.
        let code = ConvCode::ieee80211();
        let t = Trellis::new(&code);
        let top = code.memory() - 1;
        for s in 0..t.n_states() {
            for b in 0..2u8 {
                let tr = t.next(s, b);
                assert_eq!((tr.next >> top) as u8 & 1, b);
            }
        }
    }
}
