//! Platform virtualization (LEAP analog).
//!
//! WiLIS runs on any FPGA board for which LEAP provides device drivers; the
//! user design sees a uniform link interface regardless of whether the
//! physical transport is a front-side bus, PCIe, or USB (§2 "FPGA
//! Virtualization"). This module models that layer: a [`LinkModel`]
//! describes a physical host↔accelerator transport by bandwidth, latency
//! and per-message overhead, and a [`Multiplexer`] shares one physical link
//! among logical channels the way LEAP multiplexes services.
//!
//! The co-simulation performance model (`wilis-cosim`) uses these to
//! reproduce the paper's Figure 2 platform: an FSB link with >700 MB/s of
//! bandwidth of which the simulation consumes only ~55 MB/s.

use std::fmt;

/// A physical host↔accelerator transport, described by the three numbers
/// that matter for batched streaming: sustained bandwidth, one-way latency,
/// and fixed per-message overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    name: &'static str,
    bandwidth_bytes_per_sec: f64,
    latency_secs: f64,
    per_message_overhead_secs: f64,
}

impl LinkModel {
    /// Builds a custom link model.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not strictly positive or either time is
    /// negative.
    pub fn new(
        name: &'static str,
        bandwidth_bytes_per_sec: f64,
        latency_secs: f64,
        per_message_overhead_secs: f64,
    ) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        assert!(latency_secs >= 0.0 && per_message_overhead_secs >= 0.0);
        Self {
            name,
            bandwidth_bytes_per_sec,
            latency_secs,
            per_message_overhead_secs,
        }
    }

    /// The paper's platform: Nallatech ACP module on a 1066 MHz front-side
    /// bus, measured at >700 MB/s FIFO bandwidth with ~1 µs latency.
    pub fn fsb() -> Self {
        Self::new("FSB (ACP)", 700.0e6, 1.0e-6, 0.5e-6)
    }

    /// A PCIe Gen2 x8 DMA engine, a common alternative FPGA attachment.
    pub fn pcie() -> Self {
        Self::new("PCIe Gen2 x8", 3.2e9, 2.0e-6, 2.0e-6)
    }

    /// A USB 2.0 bridge, the classic low-cost dev-board link.
    pub fn usb2() -> Self {
        Self::new("USB 2.0", 35.0e6, 125.0e-6, 50.0e-6)
    }

    /// Human-readable transport name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sustained bandwidth in bytes/second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.bandwidth_bytes_per_sec
    }

    /// One-way message latency in seconds.
    pub fn latency_secs(&self) -> f64 {
        self.latency_secs
    }

    /// Time to move one message of `bytes` payload, including latency and
    /// per-message overhead.
    pub fn message_time_secs(&self, bytes: u64) -> f64 {
        self.latency_secs
            + self.per_message_overhead_secs
            + bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// Effective throughput (bytes/second) when streaming messages of
    /// `batch_bytes` each, pipelined so that latency overlaps transfer but
    /// per-message overhead does not.
    ///
    /// This captures the paper's key co-simulation optimization: large
    /// pipelined transfers amortize overhead (§2 reports roughly an order
    /// of magnitude gain from batching).
    pub fn streaming_bytes_per_sec(&self, batch_bytes: u64) -> f64 {
        assert!(batch_bytes > 0, "batch size must be positive");
        let per_batch =
            self.per_message_overhead_secs + batch_bytes as f64 / self.bandwidth_bytes_per_sec;
        batch_bytes as f64 / per_batch
    }

    /// Effective throughput under a *lock-step* (cycle-synchronized)
    /// protocol, where every exchange of `batch_bytes` must complete a full
    /// round trip before the next begins — the SCE-MI-style alternative the
    /// paper contrasts with (§5).
    pub fn lockstep_bytes_per_sec(&self, batch_bytes: u64) -> f64 {
        assert!(batch_bytes > 0, "batch size must be positive");
        let per_round = 2.0 * self.latency_secs
            + 2.0 * self.per_message_overhead_secs
            + batch_bytes as f64 / self.bandwidth_bytes_per_sec;
        batch_bytes as f64 / per_round
    }
}

impl fmt::Display for LinkModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.0} MB/s, {:.1} us latency)",
            self.name,
            self.bandwidth_bytes_per_sec / 1e6,
            self.latency_secs * 1e6
        )
    }
}

/// Round-robin multiplexing of logical channels over one physical link,
/// modeling LEAP's service multiplexing: user modules each see a private
/// channel and are insulated from one another's traffic except through
/// bandwidth sharing.
#[derive(Debug, Clone)]
pub struct Multiplexer {
    link: LinkModel,
    channels: Vec<ChannelUse>,
}

#[derive(Debug, Clone, PartialEq)]
struct ChannelUse {
    name: String,
    offered_bytes_per_sec: f64,
}

impl Multiplexer {
    /// A multiplexer over the given physical link.
    pub fn new(link: LinkModel) -> Self {
        Self {
            link,
            channels: Vec::new(),
        }
    }

    /// Registers a logical channel offering `bytes_per_sec` of traffic.
    pub fn add_channel(&mut self, name: &str, offered_bytes_per_sec: f64) -> &mut Self {
        assert!(offered_bytes_per_sec >= 0.0);
        self.channels.push(ChannelUse {
            name: name.to_string(),
            offered_bytes_per_sec,
        });
        self
    }

    /// Total traffic offered by all channels, bytes/second.
    pub fn offered_load_bytes_per_sec(&self) -> f64 {
        self.channels.iter().map(|c| c.offered_bytes_per_sec).sum()
    }

    /// Link utilization in `[0, ...)`; above 1.0 the link is oversubscribed.
    pub fn utilization(&self) -> f64 {
        self.offered_load_bytes_per_sec() / self.link.bandwidth_bytes_per_sec()
    }

    /// The throughput each channel actually achieves, in registration
    /// order. Under oversubscription, capacity is divided by max-min
    /// fairness (round-robin arbitration gives each channel an equal share,
    /// and channels offering less than their share donate the remainder).
    pub fn achieved_bytes_per_sec(&self) -> Vec<(String, f64)> {
        let capacity = self.link.bandwidth_bytes_per_sec();
        let mut remaining_capacity = capacity;
        let mut unsated: Vec<usize> = (0..self.channels.len()).collect();
        let mut achieved = vec![0.0f64; self.channels.len()];
        // Max-min fairness via progressive filling.
        loop {
            if unsated.is_empty() || remaining_capacity <= 0.0 {
                break;
            }
            let share = remaining_capacity / unsated.len() as f64;
            let mut sated_this_round = Vec::new();
            for &i in &unsated {
                let want = self.channels[i].offered_bytes_per_sec - achieved[i];
                if want <= share {
                    achieved[i] += want;
                    remaining_capacity -= want;
                    sated_this_round.push(i);
                }
            }
            if sated_this_round.is_empty() {
                // Everyone wants at least the fair share: split evenly, done.
                for &i in &unsated {
                    achieved[i] += share;
                }
                break;
            }
            unsated.retain(|i| !sated_this_round.contains(i));
        }
        self.channels
            .iter()
            .zip(achieved)
            .map(|(c, a)| (c.name.clone(), a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsb_matches_paper_envelope() {
        let fsb = LinkModel::fsb();
        assert!(fsb.bandwidth_bytes_per_sec() >= 700e6);
        // The simulation's ~55 MB/s fits with huge headroom.
        assert!(55e6 / fsb.bandwidth_bytes_per_sec() < 0.1);
    }

    #[test]
    fn batching_amortizes_overhead() {
        let fsb = LinkModel::fsb();
        let small = fsb.streaming_bytes_per_sec(64);
        let large = fsb.streaming_bytes_per_sec(64 * 1024);
        assert!(
            large > 5.0 * small,
            "batched transfers should dominate: {small:.0} vs {large:.0}"
        );
    }

    #[test]
    fn decoupled_beats_lockstep_by_an_order_of_magnitude() {
        // The paper (§2) credits decoupling + large pipelined batches with
        // roughly 10x over precise hardware/software synchronization. The
        // honest comparison is decoupled large batches versus lock-step
        // fine-grained exchanges (a lock-step protocol cannot batch, that
        // is the point of gating the clock per §5).
        let fsb = LinkModel::fsb();
        let decoupled = fsb.streaming_bytes_per_sec(64 * 1024);
        let lockstep = fsb.lockstep_bytes_per_sec(256);
        let ratio = decoupled / lockstep;
        assert!(
            ratio > 8.0,
            "decoupling should win by ~an order of magnitude, got {ratio:.2}"
        );
        // Even at equal batch size, decoupling wins (no round-trip stalls).
        let same_batch = fsb.streaming_bytes_per_sec(4096) / fsb.lockstep_bytes_per_sec(4096);
        assert!(same_batch > 1.2, "got {same_batch:.2}");
    }

    #[test]
    fn message_time_includes_all_terms() {
        let link = LinkModel::new("t", 1e6, 1e-3, 1e-3);
        let t = link.message_time_secs(1000);
        assert!((t - (1e-3 + 1e-3 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn multiplexer_fair_share_under_oversubscription() {
        let link = LinkModel::new("t", 100.0, 0.0, 0.0);
        let mut mux = Multiplexer::new(link);
        mux.add_channel("greedy", 200.0)
            .add_channel("modest", 10.0)
            .add_channel("greedy2", 200.0);
        assert!(mux.utilization() > 1.0);
        let achieved = mux.achieved_bytes_per_sec();
        // modest gets its 10; the two greedy channels split the remaining 90.
        assert_eq!(achieved[1], ("modest".to_string(), 10.0));
        assert!((achieved[0].1 - 45.0).abs() < 1e-9);
        assert!((achieved[2].1 - 45.0).abs() < 1e-9);
    }

    #[test]
    fn multiplexer_undersubscribed_passes_through() {
        let link = LinkModel::fsb();
        let mut mux = Multiplexer::new(link);
        mux.add_channel("sim", 55e6);
        let achieved = mux.achieved_bytes_per_sec();
        assert!((achieved[0].1 - 55e6).abs() < 1.0);
        assert!(mux.utilization() < 0.1);
    }

    #[test]
    fn usb_is_much_slower_than_fsb() {
        assert!(
            LinkModel::usb2().streaming_bytes_per_sec(4096)
                < LinkModel::fsb().streaming_bytes_per_sec(4096) / 10.0
        );
    }
}
