//! Property-based tests: the latency-insensitive contract holds for
//! arbitrary clock ratios, FIFO capacities and visibility delays.

use proptest::prelude::*;

use crate::{Freq, LinkSpec, Module, Sink, Source, SystemBuilder};

struct Producer {
    out: Sink<u64>,
    next: u64,
    limit: u64,
    /// Produce only every `stride`-th tick, to exercise irregular offered load.
    stride: u64,
    ticks: u64,
}

impl Module for Producer {
    fn name(&self) -> &str {
        "producer"
    }
    fn tick(&mut self) {
        self.ticks += 1;
        if self.ticks % self.stride == 0 && self.next < self.limit && self.out.can_enq() {
            self.out.enq(self.next);
            self.next += 1;
        }
    }
    fn is_idle(&self) -> bool {
        self.next >= self.limit
    }
}

struct Consumer {
    inp: Source<u64>,
    got: Vec<u64>,
    /// Consume only every `stride`-th tick, to exercise backpressure.
    stride: u64,
    ticks: u64,
}

impl Module for Consumer {
    fn name(&self) -> &str {
        "consumer"
    }
    fn tick(&mut self) {
        self.ticks += 1;
        if self.ticks % self.stride == 0 {
            if let Some(v) = self.inp.deq() {
                self.got.push(v);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No tokens are lost, duplicated or reordered, for any clock ratio,
    /// capacity, delay, or producer/consumer duty cycle.
    #[test]
    fn tokens_conserved_across_any_configuration(
        prod_mhz in 1u64..200,
        cons_mhz in 1u64..200,
        capacity in 1usize..10,
        delay in 1u64..5,
        prod_stride in 1u64..4,
        cons_stride in 1u64..4,
        count in 1u64..200,
    ) {
        let mut b = SystemBuilder::new();
        let pclk = b.clock("prod", Freq::mhz(prod_mhz));
        let cclk = b.clock("cons", Freq::mhz(cons_mhz));
        let (tx, rx) = b.link::<u64>(&pclk, &cclk, LinkSpec::new(capacity).delay(delay));
        b.add_module(&pclk, Producer { out: tx, next: 0, limit: count, stride: prod_stride, ticks: 0 });
        let cid = b.add_module(&cclk, Consumer { inp: rx, got: vec![], stride: cons_stride, ticks: 0 });
        let mut sys = b.build();
        sys.run_until_quiescent(10_000_000);
        let got = &sys.module::<Consumer>(cid).got;
        prop_assert_eq!(got.len() as u64, count, "token count mismatch");
        prop_assert!(got.windows(2).all(|w| w[1] == w[0] + 1), "reordering detected");
    }

    /// Determinism: the same configuration produces the identical trace.
    #[test]
    fn runs_are_deterministic(
        mhz_a in 1u64..100,
        mhz_b in 1u64..100,
        count in 1u64..100,
    ) {
        let run = || {
            let mut b = SystemBuilder::new();
            let pclk = b.clock("p", Freq::mhz(mhz_a));
            let cclk = b.clock("c", Freq::mhz(mhz_b));
            let (tx, rx) = b.link::<u64>(&pclk, &cclk, LinkSpec::new(2));
            b.add_module(&pclk, Producer { out: tx, next: 0, limit: count, stride: 1, ticks: 0 });
            let cid = b.add_module(&cclk, Consumer { inp: rx, got: vec![], stride: 1, ticks: 0 });
            let mut sys = b.build();
            sys.run_until_quiescent(10_000_000);
            (sys.instants(), sys.module::<Consumer>(cid).got.clone())
        };
        prop_assert_eq!(run(), run());
    }

    /// Clock arithmetic: edge counts of two domains never drift from their
    /// exact frequency ratio by more than one edge.
    #[test]
    fn clock_ratio_exact(mhz_a in 1u64..500, mhz_b in 1u64..500, edges in 10u64..2000) {
        let mut b = SystemBuilder::new();
        let a = b.clock("a", Freq::mhz(mhz_a));
        let z = b.clock("z", Freq::mhz(mhz_b));
        let mut sys = b.build();
        sys.run_edges(&a, edges);
        // First edges of both domains coincide at t=0, so after `edges`
        // edges of `a`, elapsed time is (edges-1) a-periods and z has seen
        // floor(elapsed / z_period) + 1 edges.
        let expect = (edges as f64 - 1.0) * mhz_b as f64 / mhz_a as f64 + 1.0;
        let actual = z.edges() as f64;
        prop_assert!((actual - expect).abs() <= 1.0 + f64::EPSILON * expect,
            "expected ~{expect} edges, saw {actual}");
    }
}
