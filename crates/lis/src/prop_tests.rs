//! Grid-sampled property tests: the latency-insensitive contract holds for
//! arbitrary clock ratios, FIFO capacities and visibility delays.
//! (Deterministic sweep — the offline analog of a proptest suite.)

use crate::{Freq, LinkSpec, Module, Sink, Source, SystemBuilder};

struct Producer {
    out: Sink<u64>,
    next: u64,
    limit: u64,
    /// Produce only every `stride`-th tick, to exercise irregular offered load.
    stride: u64,
    ticks: u64,
}

impl Module for Producer {
    fn name(&self) -> &str {
        "producer"
    }
    fn tick(&mut self) {
        self.ticks += 1;
        if self.ticks % self.stride == 0 && self.next < self.limit && self.out.can_enq() {
            self.out.enq(self.next);
            self.next += 1;
        }
    }
    fn is_idle(&self) -> bool {
        self.next >= self.limit
    }
}

struct Consumer {
    inp: Source<u64>,
    got: Vec<u64>,
    /// Consume only every `stride`-th tick, to exercise backpressure.
    stride: u64,
    ticks: u64,
}

impl Module for Consumer {
    fn name(&self) -> &str {
        "consumer"
    }
    fn tick(&mut self) {
        self.ticks += 1;
        if self.ticks % self.stride == 0 {
            if let Some(v) = self.inp.deq() {
                self.got.push(v);
            }
        }
    }
}

/// No tokens are lost, duplicated or reordered, for any clock ratio,
/// capacity, delay, or producer/consumer duty cycle.
#[test]
fn tokens_conserved_across_any_configuration() {
    // A deliberately asymmetric sweep: co-prime clock pairs, minimal and
    // generous capacities, all stride combinations.
    let clock_pairs = [(1u64, 199u64), (199, 1), (35, 60), (97, 89), (7, 7)];
    let configs = [(1usize, 1u64), (2, 4), (9, 2)];
    for &(prod_mhz, cons_mhz) in &clock_pairs {
        for &(capacity, delay) in &configs {
            for prod_stride in [1u64, 3] {
                for cons_stride in [1u64, 3] {
                    let count = 157u64;
                    let mut b = SystemBuilder::new();
                    let pclk = b.clock("prod", Freq::mhz(prod_mhz));
                    let cclk = b.clock("cons", Freq::mhz(cons_mhz));
                    let (tx, rx) =
                        b.link::<u64>(&pclk, &cclk, LinkSpec::new(capacity).delay(delay));
                    b.add_module(
                        &pclk,
                        Producer {
                            out: tx,
                            next: 0,
                            limit: count,
                            stride: prod_stride,
                            ticks: 0,
                        },
                    );
                    let cid = b.add_module(
                        &cclk,
                        Consumer {
                            inp: rx,
                            got: vec![],
                            stride: cons_stride,
                            ticks: 0,
                        },
                    );
                    let mut sys = b.build();
                    sys.run_until_quiescent(10_000_000);
                    let got = &sys.module::<Consumer>(cid).got;
                    assert_eq!(
                        got.len() as u64,
                        count,
                        "token count mismatch at {prod_mhz}/{cons_mhz} cap {capacity}"
                    );
                    assert!(
                        got.windows(2).all(|w| w[1] == w[0] + 1),
                        "reordering detected"
                    );
                }
            }
        }
    }
}

/// Determinism: the same configuration produces the identical trace.
#[test]
fn runs_are_deterministic() {
    for (mhz_a, mhz_b, count) in [(13u64, 87u64, 61u64), (87, 13, 61), (50, 50, 99)] {
        let run = || {
            let mut b = SystemBuilder::new();
            let pclk = b.clock("p", Freq::mhz(mhz_a));
            let cclk = b.clock("c", Freq::mhz(mhz_b));
            let (tx, rx) = b.link::<u64>(&pclk, &cclk, LinkSpec::new(2));
            b.add_module(
                &pclk,
                Producer {
                    out: tx,
                    next: 0,
                    limit: count,
                    stride: 1,
                    ticks: 0,
                },
            );
            let cid = b.add_module(
                &cclk,
                Consumer {
                    inp: rx,
                    got: vec![],
                    stride: 1,
                    ticks: 0,
                },
            );
            let mut sys = b.build();
            sys.run_until_quiescent(10_000_000);
            (sys.instants(), sys.module::<Consumer>(cid).got.clone())
        };
        assert_eq!(run(), run());
    }
}

/// Clock arithmetic: edge counts of two domains never drift from their
/// exact frequency ratio by more than one edge.
#[test]
fn clock_ratio_exact() {
    for (mhz_a, mhz_b, edges) in [
        (1u64, 499u64, 100u64),
        (499, 1, 100),
        (35, 60, 1999),
        (123, 456, 777),
    ] {
        let mut b = SystemBuilder::new();
        let a = b.clock("a", Freq::mhz(mhz_a));
        let z = b.clock("z", Freq::mhz(mhz_b));
        let mut sys = b.build();
        sys.run_edges(&a, edges);
        // First edges of both domains coincide at t=0, so after `edges`
        // edges of `a`, elapsed time is (edges-1) a-periods and z has seen
        // floor(elapsed / z_period) + 1 edges.
        let expect = (edges as f64 - 1.0) * mhz_b as f64 / mhz_a as f64 + 1.0;
        let actual = z.edges() as f64;
        assert!(
            (actual - expect).abs() <= 1.0 + f64::EPSILON * expect,
            "expected ~{expect} edges, saw {actual}"
        );
    }
}
