//! Clock domains and exact multi-rate scheduling.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// A clock frequency.
///
/// Stored in kilohertz so that the engine can compute an exact integer
/// hyperperiod for any realistic set of FPGA clock frequencies (the paper's
/// platform mixes a 35 MHz baseband clock with a 60 MHz BER-unit clock).
///
/// # Example
///
/// ```
/// use wilis_lis::Freq;
/// assert_eq!(Freq::mhz(35).hz(), 35_000_000);
/// assert!(Freq::mhz(60) > Freq::mhz(35));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Freq(u64);

impl Freq {
    /// A frequency given in kilohertz.
    ///
    /// # Panics
    ///
    /// Panics if `khz` is zero: a clock that never ticks cannot schedule.
    pub fn khz(khz: u64) -> Self {
        assert!(khz > 0, "clock frequency must be positive");
        Self(khz)
    }

    /// A frequency given in megahertz.
    pub fn mhz(mhz: u64) -> Self {
        Self::khz(mhz * 1000)
    }

    /// This frequency in kilohertz (the engine's native unit).
    pub(crate) fn in_khz(self) -> u64 {
        self.0
    }

    /// This frequency in hertz.
    pub fn hz(self) -> u64 {
        self.0 * 1000
    }

    /// The clock period in seconds.
    pub fn period_secs(self) -> f64 {
        1.0 / (self.hz() as f64)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 1000 == 0 {
            write!(f, "{} MHz", self.0 / 1000)
        } else {
            write!(f, "{} kHz", self.0)
        }
    }
}

pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

pub(crate) fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Shared mutable state of one clock domain.
#[derive(Debug)]
pub(crate) struct ClockState {
    pub name: String,
    pub freq: Freq,
    /// Rising edges elapsed since simulation start.
    pub edges: Cell<u64>,
    /// Period of this clock in base time units (set by the scheduler once
    /// all domains are known).
    pub period_units: Cell<u64>,
}

/// Handle to a clock domain.
///
/// Handles are cheap to clone and let both user modules and the engine read
/// the domain's edge counter — the unit in which FIFO visibility delays and
/// pipeline latencies are expressed.
#[derive(Clone)]
pub struct ClockHandle {
    pub(crate) state: Rc<ClockState>,
    pub(crate) index: usize,
}

impl ClockHandle {
    /// The domain's name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The domain's frequency.
    pub fn freq(&self) -> Freq {
        self.state.freq
    }

    /// Rising edges elapsed in this domain since simulation start.
    pub fn edges(&self) -> u64 {
        self.state.edges.get()
    }

    /// Simulated wall-clock time elapsed in this domain, in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.edges() as f64 * self.freq().period_secs()
    }
}

impl fmt::Debug for ClockHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClockHandle({} @ {}, edge {})",
            self.state.name,
            self.state.freq,
            self.edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_constructors() {
        assert_eq!(Freq::mhz(35).hz(), 35_000_000);
        assert_eq!(Freq::khz(500).hz(), 500_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_freq_panics() {
        let _ = Freq::khz(0);
    }

    #[test]
    fn period() {
        let f = Freq::mhz(60);
        assert!((f.period_secs() - 1.0 / 60.0e6).abs() < 1e-18);
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(35_000, 60_000), 5_000);
        assert_eq!(lcm(35_000, 60_000), 420_000);
        assert_eq!(lcm(1, 7), 7);
    }

    #[test]
    fn display() {
        assert_eq!(Freq::mhz(35).to_string(), "35 MHz");
        assert_eq!(Freq::khz(1500).to_string(), "1500 kHz");
    }
}
