//! System assembly and the exact multi-rate scheduler.

use std::any::Any;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use crate::clock::{lcm, ClockHandle, ClockState};
use crate::fifo::{Fifo, LinkSpec, Sink, Source};
use crate::module::{Module, ModuleId};
use crate::Freq;

/// Object-safe probe into a link, type-erased so the scheduler can observe
/// every FIFO in the system regardless of element type.
trait LinkProbe {
    fn occupancy(&self) -> usize;
    fn label(&self) -> &str;
}

struct TypedProbe<T> {
    source: Source<T>,
    label: String,
}

impl<T> LinkProbe for TypedProbe<T> {
    fn occupancy(&self) -> usize {
        // `can_deq` is about visibility; for quiescence we need raw length,
        // which deq_count/enq_count difference gives us exactly.
        (self.source_len()) as usize
    }
    fn label(&self) -> &str {
        &self.label
    }
}

impl<T> TypedProbe<T> {
    fn source_len(&self) -> u64 {
        // enq_count is only on Sink; track via counts stored on Source side.
        self.source.pending_len()
    }
}

/// Module storage with `Any` access for post-simulation result extraction.
trait AnyModule: Module {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M: Module + 'static> AnyModule for M {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Domain {
    clock: Rc<ClockState>,
    modules: Vec<Box<dyn AnyModule>>,
    /// Absolute time (base units) of this domain's next rising edge.
    next_edge: u64,
}

/// Incrementally assembles a [`System`]: clock domains, modules, and links.
///
/// This plays the role of the paper's extended SoftConnections compiler
/// (§2): links are typed, carry the clock information of both endpoints,
/// and a clock-domain crossing is inserted automatically whenever the two
/// endpoints live in different domains.
pub struct SystemBuilder {
    domains: Vec<Domain>,
    probes: Vec<Box<dyn LinkProbe>>,
    named: BTreeMap<String, NamedConnection>,
}

struct NamedConnection {
    sink: Option<Box<dyn Any>>,
    source: Option<Box<dyn Any>>,
}

impl SystemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            domains: Vec::new(),
            probes: Vec::new(),
            named: BTreeMap::new(),
        }
    }

    /// Declares a clock domain running at `freq`.
    pub fn clock(&mut self, name: &str, freq: Freq) -> ClockHandle {
        let state = Rc::new(ClockState {
            name: name.to_string(),
            freq,
            edges: Cell::new(0),
            period_units: Cell::new(0),
        });
        let index = self.domains.len();
        self.domains.push(Domain {
            clock: Rc::clone(&state),
            modules: Vec::new(),
            next_edge: 0,
        });
        ClockHandle { state, index }
    }

    /// Creates a typed link from a module in domain `from` to a module in
    /// domain `to`, returning the producer and consumer ports.
    ///
    /// If the endpoints are in different domains the visibility delay is
    /// raised to at least 2 consumer edges, modeling the two-flop
    /// synchronizer a clock-domain crossing requires. Same-domain links use
    /// the spec as given.
    pub fn link<T: 'static>(
        &mut self,
        from: &ClockHandle,
        to: &ClockHandle,
        spec: LinkSpec,
    ) -> (Sink<T>, Source<T>) {
        let spec = if from.index != to.index && spec.visibility_delay() < 2 {
            spec.delay(2)
        } else {
            spec
        };
        let fifo = Fifo::new(spec, Rc::clone(&to.state));
        let (sink, source) = fifo.ports();
        let (probe_sink, probe_source) = fifo.ports();
        let _ = probe_sink; // the probe only observes
        self.probes.push(Box::new(TypedProbe {
            source: probe_source,
            label: format!("{}->{}", from.name(), to.name()),
        }));
        (sink, source)
    }

    /// Declares a *named* connection (SoftConnections style): the topology
    /// is described once, and modules fetch their port halves by name with
    /// [`SystemBuilder::take_sink`] / [`SystemBuilder::take_source`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is already declared.
    pub fn connection<T: 'static>(
        &mut self,
        name: &str,
        from: &ClockHandle,
        to: &ClockHandle,
        spec: LinkSpec,
    ) {
        assert!(
            !self.named.contains_key(name),
            "connection {name:?} declared twice"
        );
        let (sink, source) = self.link::<T>(from, to, spec);
        self.named.insert(
            name.to_string(),
            NamedConnection {
                sink: Some(Box::new(sink)),
                source: Some(Box::new(source)),
            },
        );
    }

    /// Claims the producer half of a named connection.
    ///
    /// # Panics
    ///
    /// Panics if the connection does not exist, was declared with a
    /// different element type, or its sink was already taken.
    pub fn take_sink<T: 'static>(&mut self, name: &str) -> Sink<T> {
        let conn = self
            .named
            .get_mut(name)
            .unwrap_or_else(|| panic!("no connection named {name:?}")); // lint: allow(panic-policy) — documented panicking API (`# Panics`): misnaming a connection is a programmer error
        let boxed = conn
            .sink
            .take()
            .unwrap_or_else(|| panic!("sink of {name:?} already taken")); // lint: allow(panic-policy) — documented panicking API (`# Panics`): double-claiming an endpoint is a programmer error
        *boxed
            .downcast::<Sink<T>>()
            // lint: allow(panic-policy) — documented panicking API (`# Panics`): a type mismatch is a programmer error
            .unwrap_or_else(|_| panic!("connection {name:?} has a different element type"))
    }

    /// Claims the consumer half of a named connection.
    ///
    /// # Panics
    ///
    /// Panics if the connection does not exist, was declared with a
    /// different element type, or its source was already taken.
    pub fn take_source<T: 'static>(&mut self, name: &str) -> Source<T> {
        let conn = self
            .named
            .get_mut(name)
            .unwrap_or_else(|| panic!("no connection named {name:?}")); // lint: allow(panic-policy) — documented panicking API (`# Panics`): misnaming a connection is a programmer error
        let boxed = conn
            .source
            .take()
            .unwrap_or_else(|| panic!("source of {name:?} already taken")); // lint: allow(panic-policy) — documented panicking API (`# Panics`): double-claiming an endpoint is a programmer error
        *boxed
            .downcast::<Source<T>>()
            // lint: allow(panic-policy) — documented panicking API (`# Panics`): a type mismatch is a programmer error
            .unwrap_or_else(|_| panic!("connection {name:?} has a different element type"))
    }

    /// Adds a module to a clock domain. Modules in a domain are ticked in
    /// the order they were added.
    pub fn add_module<M: Module + 'static>(&mut self, clk: &ClockHandle, module: M) -> ModuleId {
        let domain = &mut self.domains[clk.index];
        domain.modules.push(Box::new(module));
        ModuleId {
            domain: clk.index,
            slot: domain.modules.len() - 1,
        }
    }

    /// Finalizes the system, computing the exact multi-rate schedule.
    ///
    /// # Panics
    ///
    /// Panics if no clock domain was declared, or if a named connection has
    /// an unclaimed endpoint (a dangling SoftConnection is a build error on
    /// the real platform too).
    pub fn build(self) -> System {
        assert!(
            !self.domains.is_empty(),
            "a system needs at least one clock domain"
        );
        let dangling: Vec<&String> = self
            .named
            .iter()
            .filter(|(_, c)| c.sink.is_some() || c.source.is_some())
            .map(|(n, _)| n)
            .collect();
        assert!(
            dangling.is_empty(),
            "dangling named connections (unclaimed endpoints): {dangling:?}"
        );

        let base = self
            .domains
            .iter()
            .map(|d| d.clock.freq.in_khz())
            .fold(1, lcm);
        for d in &self.domains {
            d.clock.period_units.set(base / d.clock.freq.in_khz());
        }
        System {
            domains: self.domains,
            probes: self.probes,
            base_khz: base,
            now_units: 0,
            instants: 0,
        }
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SystemBuilder({} domains, {} links)",
            self.domains.len(),
            self.probes.len()
        )
    }
}

/// A built simulation: clock domains, their modules, and the links between
/// them, advanced by an exact integer-time multi-rate scheduler.
pub struct System {
    domains: Vec<Domain>,
    probes: Vec<Box<dyn LinkProbe>>,
    /// The base schedule rate: least common multiple of all domain
    /// frequencies, in kHz. One base unit of time is `1 / (base_khz * 1000)`
    /// seconds.
    base_khz: u64,
    now_units: u64,
    instants: u64,
}

impl System {
    /// Advances simulation to the next instant at which any clock has a
    /// rising edge, ticking every module in every domain with an edge there.
    ///
    /// Domains sharing an instant are processed in declaration order, and
    /// modules within a domain in insertion order, so runs are fully
    /// deterministic.
    pub fn step(&mut self) {
        let t = self
            .domains
            .iter()
            .map(|d| d.next_edge)
            .min()
            .expect("at least one domain"); // lint: allow(panic-policy) — build() rejects systems with zero clock domains
        for d in &mut self.domains {
            if d.next_edge == t {
                d.clock.edges.set(d.clock.edges.get() + 1);
                for m in &mut d.modules {
                    m.tick();
                }
                d.next_edge += d.clock.period_units.get();
            }
        }
        self.now_units = t;
        self.instants += 1;
    }

    /// Runs until `clk` has seen `edges` more rising edges.
    pub fn run_edges(&mut self, clk: &ClockHandle, edges: u64) {
        let target = clk.edges() + edges;
        while clk.edges() < target {
            self.step();
        }
    }

    /// Runs for `secs` of simulated time.
    pub fn run_for(&mut self, secs: f64) {
        let target = self.now_units + (secs * self.base_khz as f64 * 1000.0).round() as u64;
        while self.now_units < target {
            self.step();
        }
    }

    /// Runs until `pred` returns true, checking after every instant.
    ///
    /// Returns the number of instants executed.
    ///
    /// # Panics
    ///
    /// Panics if `pred` is still false after `max_instants` instants —
    /// surfacing deadlocks instead of spinning forever.
    pub fn run_until(&mut self, max_instants: u64, mut pred: impl FnMut(&System) -> bool) -> u64 {
        let mut n = 0;
        while !pred(self) {
            assert!(
                n < max_instants,
                "run_until: condition not reached within {max_instants} instants"
            );
            self.step();
            n += 1;
        }
        n
    }

    /// Runs until every module reports idle and every link is empty.
    ///
    /// # Panics
    ///
    /// Panics if the system is not quiescent after `max_instants` instants.
    pub fn run_until_quiescent(&mut self, max_instants: u64) {
        let mut n = 0;
        loop {
            // Two consecutive quiescent observations guard against modules
            // that toggle state on the observation edge itself.
            if self.is_quiescent() {
                self.step();
                if self.is_quiescent() {
                    return;
                }
            }
            assert!(
                n < max_instants,
                "run_until_quiescent: still active after {max_instants} instants; \
                 busiest link: {:?}",
                self.busiest_link()
            );
            self.step();
            n += 1;
        }
    }

    fn is_quiescent(&self) -> bool {
        self.probes.iter().all(|p| p.occupancy() == 0)
            && self
                .domains
                .iter()
                .all(|d| d.modules.iter().all(|m| m.is_idle()))
    }

    fn busiest_link(&self) -> Option<(&str, usize)> {
        self.probes
            .iter()
            .map(|p| (p.label(), p.occupancy()))
            .max_by_key(|&(_, occ)| occ)
    }

    /// Simulated time elapsed, in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.now_units as f64 / (self.base_khz as f64 * 1000.0)
    }

    /// Number of scheduler instants executed so far.
    pub fn instants(&self) -> u64 {
        self.instants
    }

    /// Borrows a module by id with its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale or `M` is not the module's actual type.
    pub fn module<M: Module + 'static>(&self, id: ModuleId) -> &M {
        self.domains[id.domain].modules[id.slot]
            .as_any()
            .downcast_ref::<M>()
            .expect("module type mismatch") // lint: allow(panic-policy) — documented panicking API (`# Panics`): a stale or mistyped id is a programmer error
    }

    /// Mutably borrows a module by id with its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale or `M` is not the module's actual type.
    pub fn module_mut<M: Module + 'static>(&mut self, id: ModuleId) -> &mut M {
        self.domains[id.domain].modules[id.slot]
            .as_any_mut()
            .downcast_mut::<M>()
            .expect("module type mismatch") // lint: allow(panic-policy) — documented panicking API (`# Panics`): a stale or mistyped id is a programmer error
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "System({} domains, {} links, t = {:.3e} s)",
            self.domains.len(),
            self.probes.len(),
            self.elapsed_secs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        out: Sink<u64>,
        n: u64,
        limit: u64,
    }
    impl Module for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn tick(&mut self) {
            if self.n < self.limit && self.out.can_enq() {
                self.out.enq(self.n);
                self.n += 1;
            }
        }
        fn is_idle(&self) -> bool {
            self.n >= self.limit
        }
    }

    struct Collector {
        inp: Source<u64>,
        got: Vec<u64>,
    }
    impl Module for Collector {
        fn name(&self) -> &str {
            "collector"
        }
        fn tick(&mut self) {
            if let Some(v) = self.inp.deq() {
                self.got.push(v);
            }
        }
    }

    #[test]
    fn same_domain_pipeline_delivers_in_order() {
        let mut b = SystemBuilder::new();
        let clk = b.clock("main", Freq::mhz(10));
        let (tx, rx) = b.link::<u64>(&clk, &clk, LinkSpec::new(2));
        b.add_module(
            &clk,
            Counter {
                out: tx,
                n: 0,
                limit: 50,
            },
        );
        let c = b.add_module(
            &clk,
            Collector {
                inp: rx,
                got: vec![],
            },
        );
        let mut sys = b.build();
        sys.run_until_quiescent(10_000);
        let got = &sys.module::<Collector>(c).got;
        assert_eq!(*got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn cross_domain_ratio_is_exact() {
        // 35 MHz and 60 MHz: hyperperiod 420 MHz base. In any window the
        // edge counts must maintain a 7:12 ratio exactly.
        let mut b = SystemBuilder::new();
        let bb = b.clock("baseband", Freq::mhz(35));
        let ber = b.clock("ber", Freq::mhz(60));
        let mut sys = b.build();
        sys.run_edges(&bb, 3500);
        let e_ber = ber.edges();
        // After 3500 edges of 35 MHz, exactly 6000 edges of 60 MHz have
        // occurred (3500/35 us * 60 per us), +/- 1 for instant alignment.
        assert!(
            (e_ber as i64 - 6000).abs() <= 1,
            "60 MHz domain saw {e_ber} edges"
        );
    }

    #[test]
    fn elapsed_time_is_exact() {
        let mut b = SystemBuilder::new();
        let clk = b.clock("c", Freq::mhz(35));
        let mut sys = b.build();
        sys.run_edges(&clk, 35_000_000);
        // 35e6 edges at 35 MHz = 1 second. First edge at t=0, so elapsed
        // time is (n-1) periods.
        let expect = (35_000_000f64 - 1.0) / 35e6;
        assert!((sys.elapsed_secs() - expect).abs() < 1e-12);
    }

    #[test]
    fn cross_domain_link_gets_sync_delay() {
        let mut b = SystemBuilder::new();
        let a = b.clock("a", Freq::mhz(10));
        let z = b.clock("z", Freq::mhz(20));
        // delay 1 requested, but CDC must raise it to 2.
        let (tx, rx) = b.link::<u8>(&a, &z, LinkSpec::new(4));
        b.add_module(
            &a,
            Counter2 {
                out: tx,
                fired: false,
            },
        );
        let c = b.add_module(
            &z,
            Latch {
                inp: rx,
                clk: z.clone(),
                at: None,
            },
        );
        let mut sys = b.build();
        sys.run_edges(&z, 10);
        let at = sys.module::<Latch>(c).at.expect("token arrived");
        // The token launches at the shared t=0 instant, before z's first
        // edge is processed; the two-flop synchronizer makes it visible two
        // z edges later, i.e. during z edge 2 at the earliest. Delivery at
        // edge 1 would mean the CDC delay was not applied.
        assert!(at >= 2, "CDC delivered at z edge {at}, too early");
    }

    struct Counter2 {
        out: Sink<u8>,
        fired: bool,
    }
    impl Module for Counter2 {
        fn name(&self) -> &str {
            "one-shot"
        }
        fn tick(&mut self) {
            if !self.fired && self.out.can_enq() {
                self.out.enq(42);
                self.fired = true;
            }
        }
    }

    struct Latch {
        inp: Source<u8>,
        clk: ClockHandle,
        at: Option<u64>,
    }
    impl Module for Latch {
        fn name(&self) -> &str {
            "latch"
        }
        fn tick(&mut self) {
            if self.at.is_none() && self.inp.deq().is_some() {
                self.at = Some(self.clk.edges());
            }
        }
    }

    #[test]
    fn named_connections_roundtrip() {
        let mut b = SystemBuilder::new();
        let clk = b.clock("main", Freq::mhz(1));
        b.connection::<u64>("pipe", &clk, &clk, LinkSpec::new(2));
        let tx = b.take_sink::<u64>("pipe");
        let rx = b.take_source::<u64>("pipe");
        b.add_module(
            &clk,
            Counter {
                out: tx,
                n: 0,
                limit: 3,
            },
        );
        let c = b.add_module(
            &clk,
            Collector {
                inp: rx,
                got: vec![],
            },
        );
        let mut sys = b.build();
        sys.run_until_quiescent(1000);
        assert_eq!(sys.module::<Collector>(c).got, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn unclaimed_named_connection_fails_build() {
        let mut b = SystemBuilder::new();
        let clk = b.clock("main", Freq::mhz(1));
        b.connection::<u64>("pipe", &clk, &clk, LinkSpec::new(2));
        let _ = b.take_sink::<u64>("pipe");
        // source never taken
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "different element type")]
    fn named_connection_type_mismatch_panics() {
        let mut b = SystemBuilder::new();
        let clk = b.clock("main", Freq::mhz(1));
        b.connection::<u64>("pipe", &clk, &clk, LinkSpec::new(2));
        let _ = b.take_sink::<u32>("pipe");
    }

    #[test]
    #[should_panic(expected = "not reached")]
    fn run_until_reports_deadlock() {
        let mut b = SystemBuilder::new();
        let _clk = b.clock("main", Freq::mhz(1));
        let mut sys = b.build();
        sys.run_until(10, |_| false);
    }

    #[test]
    fn module_downcast_roundtrip() {
        let mut b = SystemBuilder::new();
        let clk = b.clock("main", Freq::mhz(1));
        let (tx, rx) = b.link::<u64>(&clk, &clk, LinkSpec::new(2));
        let id = b.add_module(
            &clk,
            Counter {
                out: tx,
                n: 0,
                limit: 0,
            },
        );
        let cid = b.add_module(
            &clk,
            Collector {
                inp: rx,
                got: vec![],
            },
        );
        let mut sys = b.build();
        sys.step();
        assert_eq!(sys.module::<Counter>(id).n, 0);
        sys.module_mut::<Collector>(cid).got.push(9);
        assert_eq!(sys.module::<Collector>(cid).got, vec![9]);
    }
}
