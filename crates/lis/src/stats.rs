//! Simulation statistics: counters, throughput meters, histograms.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use wilis_lis::stats::Counter;
/// let mut bits = Counter::new("decoded-bits");
/// bits.add(48);
/// bits.inc();
/// assert_eq!(bits.value(), 49);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// A zeroed counter with a diagnostic name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            value: 0,
        }
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one event.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// Converts an event count and a simulated duration into a rate, the
/// measurement behind every "simulation speed" number in the paper's
/// Figure 2.
///
/// # Example
///
/// ```
/// use wilis_lis::stats::Throughput;
/// let t = Throughput::new(22_244_000, 1.0); // bits in one simulated second
/// assert!((t.per_sec() - 22_244_000.0).abs() < 1e-9);
/// assert!((t.mbits_per_sec() - 22.244).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    events: u64,
    secs: f64,
}

impl Throughput {
    /// A throughput measurement of `events` over `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not strictly positive.
    pub fn new(events: u64, secs: f64) -> Self {
        assert!(secs > 0.0, "throughput over a non-positive duration");
        Self { events, secs }
    }

    /// Events per second.
    pub fn per_sec(&self) -> f64 {
        self.events as f64 / self.secs
    }

    /// Events per second, in millions (reads as Mb/s when events are bits).
    pub fn mbits_per_sec(&self) -> f64 {
        self.per_sec() / 1e6
    }

    /// This throughput as a fraction of a reference rate (e.g. simulation
    /// speed relative to 802.11g line rate, the parenthesized percentages
    /// in Figure 2).
    pub fn fraction_of(&self, reference_per_sec: f64) -> f64 {
        self.per_sec() / reference_per_sec
    }
}

/// A fixed-bin histogram over `u64` sample values, used to bin decoder
/// confidence hints (0..=63) against bit-error outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// A histogram with bins `0..bins` plus an overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            bins: vec![0; bins],
            overflow: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, value: u64) {
        match self.bins.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bin `i`, or `None` past the end.
    pub fn bin(&self, i: usize) -> Option<u64> {
        self.bins.get(i).copied()
    }

    /// Number of in-range bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether no samples have been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Samples that fell past the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.overflow
    }

    /// Iterates `(bin_index, count)` over in-range bins.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins.iter().copied().enumerate()
    }
}

/// Streaming mean/variance accumulator (Welford), for error-bar style
/// summaries like the paper's Figure 6 scatter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0.0 with fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.add(10);
        c.inc();
        assert_eq!(c.value(), 11);
        assert_eq!(c.to_string(), "x = 11");
    }

    #[test]
    fn throughput_fractions() {
        let t = Throughput::new(2_033_000, 1.0);
        assert!((t.fraction_of(6e6) - 0.3388).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-positive duration")]
    fn throughput_zero_duration_panics() {
        let _ = Throughput::new(1, 0.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.bin(0), Some(1));
        assert_eq!(h.bin(1), Some(2));
        assert_eq!(h.bin(2), Some(0));
        assert_eq!(h.bin(3), Some(1));
        assert_eq!(h.bin(4), None);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
        assert!(!h.is_empty());
    }

    #[test]
    fn running_mean_and_std() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn running_empty_is_zero() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.std_dev(), 0.0);
    }
}
