//! Plug-n-play module registry (AWB analog).
//!
//! The paper (§2 "Plug-n-Play") exposes every pipeline stage through AWB so
//! users assemble wireless systems by *choosing an implementation per slot*
//! rather than editing source. [`Registry`] is the same idea in library
//! form: implementations of an interface register themselves under a name,
//! and a configuration maps slot → implementation name at build time.
//!
//! # Example
//!
//! ```
//! use wilis_lis::registry::{Params, Registry};
//!
//! trait Decoder { fn id(&self) -> &'static str; }
//! struct Viterbi;
//! impl Decoder for Viterbi { fn id(&self) -> &'static str { "viterbi" } }
//! struct Sova(u32);
//! impl Decoder for Sova { fn id(&self) -> &'static str { "sova" } }
//!
//! let mut reg: Registry<Box<dyn Decoder>> = Registry::new("decoder");
//! reg.register("viterbi", |_| Box::new(Viterbi));
//! reg.register("sova", |p| Box::new(Sova(p.get_u64("traceback").unwrap_or(64) as u32)));
//!
//! let mut params = Params::new();
//! params.set("traceback", "96");
//! let dec = reg.build("sova", &params)?;
//! assert_eq!(dec.id(), "sova");
//! assert_eq!(reg.names(), ["sova", "viterbi"]);
//! # Ok::<(), wilis_lis::registry::RegistryError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// String-keyed construction parameters, the moral equivalent of AWB's
/// per-module parameter boxes. `Hash` follows the ordered map, so equal
/// parameter sets hash equally — hosts can key caches and work-sharing
/// maps on a `Params` value directly.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Params {
    values: BTreeMap<String, String>,
}

impl Params {
    /// An empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) a parameter.
    pub fn set(&mut self, key: &str, value: &str) -> &mut Self {
        self.values.insert(key.to_string(), value.to_string());
        self
    }

    /// Looks up a raw string parameter.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Looks up and parses an unsigned integer parameter.
    ///
    /// Returns `None` both when absent and when unparsable; factories that
    /// must distinguish should use [`Params::get`].
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    /// Looks up and parses a float parameter.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }

    /// Looks up and parses a boolean parameter (`"true"` / `"false"`).
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key)?.parse().ok()
    }

    /// Parses a one-line `key=val,key=val` spec into a parameter set —
    /// the textual form hosts accept from environment variables and CLI
    /// flags (e.g. the fault-injection spec in `WILIS_FAULTS`). An empty
    /// or whitespace-only spec is an empty set; a token without `=`
    /// returns `None`.
    pub fn from_spec(spec: &str) -> Option<Self> {
        let mut params = Self::new();
        for tok in spec.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            let (key, value) = tok.split_once('=')?;
            params.set(key.trim(), value.trim());
        }
        Some(params)
    }

    /// Iterates `(key, value)` pairs in key order — the order `Ord` and
    /// `Hash` observe, so serializers that walk this iterator produce one
    /// canonical encoding per parameter set.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The number of parameters set.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Error returned when a registry lookup fails or a looked-up
/// configuration is rejected by a host's preflight validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// `requested` is not registered in `slot`.
    UnknownName {
        /// The registry slot consulted.
        slot: String,
        /// The name that failed to resolve.
        requested: String,
        /// Every name that would have resolved, sorted.
        available: Vec<String>,
    },
    /// Every name resolved, but the combination is invalid (e.g. a link
    /// policy that adapts on a signal its decoder does not produce).
    InvalidConfig {
        /// Human-readable description of the rejected configuration.
        message: String,
    },
}

impl RegistryError {
    /// Builds the rejection for a structurally invalid configuration.
    pub fn invalid_config(message: impl Into<String>) -> Self {
        RegistryError::InvalidConfig {
            message: message.into(),
        }
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownName {
                slot,
                requested,
                available,
            } => write!(
                f,
                "no implementation {requested:?} registered for slot {slot:?} (available: {})",
                available.join(", ")
            ),
            RegistryError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

type Factory<I> = Box<dyn Fn(&Params) -> I>;

/// A named slot with interchangeable implementations of interface `I`.
///
/// `I` is typically a boxed trait object (`Box<dyn SoftDecoder>`); the
/// factory closure receives the user's [`Params`].
pub struct Registry<I> {
    slot: String,
    factories: BTreeMap<String, Factory<I>>,
}

impl<I> Registry<I> {
    /// Creates a registry for the named slot (e.g. `"decoder"`).
    pub fn new(slot: &str) -> Self {
        Self {
            slot: slot.to_string(),
            factories: BTreeMap::new(),
        }
    }

    /// The slot name.
    pub fn slot(&self) -> &str {
        &self.slot
    }

    /// Registers an implementation under `name`, replacing any previous
    /// registration with the same name.
    pub fn register(&mut self, name: &str, factory: impl Fn(&Params) -> I + 'static) {
        self.factories.insert(name.to_string(), Box::new(factory));
    }

    /// Instantiates the implementation registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] (listing the available names) when `name`
    /// is not registered.
    pub fn build(&self, name: &str, params: &Params) -> Result<I, RegistryError> {
        match self.factories.get(name) {
            Some(f) => Ok(f(params)),
            None => Err(RegistryError::UnknownName {
                slot: self.slot.clone(),
                requested: name.to_string(),
                available: self.names(),
            }),
        }
    }

    /// The registered implementation names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Whether an implementation is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }
}

impl<I> fmt::Debug for Registry<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Registry({:?}: {})", self.slot, self.names().join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_typed_getters() {
        let mut p = Params::new();
        p.set("n", "64").set("snr", "6.5").set("on", "true");
        assert_eq!(p.get_u64("n"), Some(64));
        assert_eq!(p.get_f64("snr"), Some(6.5));
        assert_eq!(p.get_bool("on"), Some(true));
        assert_eq!(p.get_u64("missing"), None);
        assert_eq!(p.get_u64("snr"), None, "not an integer");
    }

    #[test]
    fn params_from_spec() {
        let p = Params::from_spec("seed=7, snr = 6.5 ,on=true").unwrap();
        assert_eq!(p.get_u64("seed"), Some(7));
        assert_eq!(p.get_f64("snr"), Some(6.5));
        assert_eq!(p.get_bool("on"), Some(true));
        assert!(Params::from_spec("").unwrap().is_empty());
        assert!(Params::from_spec("  ").unwrap().is_empty());
        assert_eq!(Params::from_spec("no-equals"), None);
    }

    #[test]
    fn build_and_error_paths() {
        let mut reg: Registry<u64> = Registry::new("width");
        reg.register("narrow", |_| 4);
        reg.register("wide", |p| p.get_u64("bits").unwrap_or(28));
        let p = Params::new();
        assert_eq!(reg.build("narrow", &p).unwrap(), 4);
        assert_eq!(reg.build("wide", &p).unwrap(), 28);
        let err = reg.build("huge", &p).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("huge") && msg.contains("narrow") && msg.contains("wide"));
    }

    #[test]
    fn register_replaces() {
        let mut reg: Registry<u8> = Registry::new("x");
        reg.register("a", |_| 1);
        reg.register("a", |_| 2);
        assert_eq!(reg.build("a", &Params::new()).unwrap(), 2);
        assert_eq!(reg.names(), vec!["a".to_string()]);
    }

    #[test]
    fn contains_and_slot() {
        let mut reg: Registry<u8> = Registry::new("dec");
        reg.register("sova", |_| 0);
        assert!(reg.contains("sova"));
        assert!(!reg.contains("bcjr"));
        assert_eq!(reg.slot(), "dec");
    }
}
