//! Latency-insensitive multi-clock dataflow simulation engine.
//!
//! This crate is the Rust analog of the platform stack the WiLIS paper
//! builds on — Bluespec-style latency-insensitive modules (§2
//! "Latency-Insensitivity"), SoftConnections-style typed links that carry
//! clock information and insert clock-domain crossings automatically (§2
//! "Automatic Multi-Clock Support"), an AWB-style plug-n-play module
//! registry (§2 "Plug-n-Play"), and a LEAP-style platform abstraction for
//! the host↔accelerator link (§2 "FPGA Virtualization").
//!
//! The engine is a deterministic, cycle-counted simulator:
//!
//! * A [`Module`] is a piece of hardware that is *ticked* once per rising
//!   edge of its clock domain. Modules never assume anything about the
//!   latency of their neighbours; they only test their FIFO ports.
//! * A `Fifo` (crate-internal) connects exactly one producer port ([`Sink`]) to one
//!   consumer port ([`Source`]). Elements become visible to the consumer a
//!   configurable number of consumer-clock edges after enqueue, which is how
//!   both registered FIFO outputs and two-flop clock-domain synchronizers
//!   are modeled.
//! * A [`SystemBuilder`] assembles clock domains, modules and links; the
//!   resulting [`System`] advances simulated time exactly, using an integer
//!   hyperperiod schedule so that e.g. a 35 MHz baseband and a 60 MHz BER
//!   unit interleave with zero drift.
//!
//! # Example: two modules in different clock domains
//!
//! ```
//! use wilis_lis::{Freq, LinkSpec, Module, Source, Sink, SystemBuilder};
//!
//! struct Producer { out: Sink<u32>, next: u32 }
//! impl Module for Producer {
//!     fn name(&self) -> &str { "producer" }
//!     fn tick(&mut self) {
//!         if self.out.can_enq() {
//!             self.out.enq(self.next);
//!             self.next += 1;
//!         }
//!     }
//! }
//!
//! struct Consumer { inp: Source<u32>, seen: Vec<u32> }
//! impl Module for Consumer {
//!     fn name(&self) -> &str { "consumer" }
//!     fn tick(&mut self) {
//!         if let Some(v) = self.inp.deq() { self.seen.push(v); }
//!     }
//! }
//!
//! let mut b = SystemBuilder::new();
//! let fast = b.clock("fast", Freq::mhz(60));
//! let slow = b.clock("slow", Freq::mhz(35));
//! let (tx, rx) = b.link::<u32>(&fast, &slow, LinkSpec::new(2));
//! b.add_module(&fast, Producer { out: tx, next: 0 });
//! let consumer = b.add_module(&slow, Consumer { inp: rx, seen: Vec::new() });
//! let mut sys = b.build();
//! sys.run_edges(&slow, 100);
//! let seen = &sys.module::<Consumer>(consumer).seen;
//! assert!(seen.len() > 90, "tokens flow across the clock boundary");
//! assert!(seen.windows(2).all(|w| w[1] == w[0] + 1), "in order, none lost");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod fifo;

mod module;
pub mod platform;
pub mod registry;
mod scheduler;
pub mod stats;

pub use clock::{ClockHandle, Freq};
pub use fifo::{LinkSpec, Sink, Source};
pub use module::{Module, ModuleId};
pub use scheduler::{System, SystemBuilder};

// Internal use by scheduler.

#[cfg(test)]
mod prop_tests;
