//! The latency-insensitive module abstraction.

use std::fmt;

/// A latency-insensitive hardware module.
///
/// A module is ticked once per rising edge of the clock domain it was added
/// to. The latency-insensitive contract (the property §2 of the paper builds
/// the whole platform on) is:
///
/// * a module may only communicate through its FIFO ports;
/// * on each tick it may consume inputs that are available and produce
///   outputs where space exists, and must do nothing otherwise;
/// * it must never *require* that data arrives or departs within any
///   particular number of cycles.
///
/// Modules obeying the contract can be moved between clock domains, have
/// their internal latency refined, or be swapped for alternative
/// implementations without changing the functional behaviour of the system —
/// exactly the modular-refinement property the paper exploits to swap
/// Viterbi, SOVA and BCJR decoders into one pipeline.
pub trait Module {
    /// A short diagnostic name.
    fn name(&self) -> &str;

    /// Advances the module by one clock edge in its domain.
    fn tick(&mut self);

    /// Whether the module has no internal work pending.
    ///
    /// Used by [`crate::System::run_until_quiescent`]; modules with internal
    /// pipeline state should report `false` while anything is in flight.
    /// The default is `true` (purely reactive module).
    fn is_idle(&self) -> bool {
        true
    }
}

/// Identifier of a module within a built [`crate::System`].
///
/// Returned by [`crate::SystemBuilder::add_module`] and used to get the
/// module back (e.g. to read results) after simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleId {
    pub(crate) domain: usize,
    pub(crate) slot: usize,
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "module {}.{}", self.domain, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Module for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn tick(&mut self) {}
    }

    #[test]
    fn default_idle_is_true() {
        assert!(Nop.is_idle());
    }

    #[test]
    fn module_id_display() {
        let id = ModuleId { domain: 1, slot: 3 };
        assert_eq!(id.to_string(), "module 1.3");
    }
}
