//! Bounded latency-insensitive FIFOs.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::clock::ClockState;

/// Configuration of a link between two modules.
///
/// `capacity` bounds the number of elements in flight (backpressure), and
/// `delay` is the number of *consumer-clock edges* after enqueue at which an
/// element becomes visible to the consumer:
///
/// * `delay = 1` models a FIFO with registered output — the standard
///   element in a latency-insensitive pipeline.
/// * `delay = 2` models the paper's two-element pipeline FIFOs, which "add
///   at most 2 cycles to the total latency" (§4.3.1), and is also the
///   default inserted for clock-domain crossings (a two-flop synchronizer).
///
/// # Example
///
/// ```
/// use wilis_lis::LinkSpec;
/// let spec = LinkSpec::new(2).delay(2);
/// assert_eq!(spec.capacity(), 2);
/// assert_eq!(spec.visibility_delay(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkSpec {
    capacity: usize,
    delay: u64,
}

impl LinkSpec {
    /// A link holding at most `capacity` elements, with the default
    /// one-edge visibility delay.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity FIFO can never carry
    /// a token and always indicates a composition bug.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "link capacity must be positive");
        Self { capacity, delay: 1 }
    }

    /// Sets the visibility delay in consumer-clock edges.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is zero: combinational (same-edge) forwarding
    /// would make the simulation sensitive to module tick order.
    pub fn delay(mut self, delay: u64) -> Self {
        assert!(delay > 0, "visibility delay must be at least one edge");
        self.delay = delay;
        self
    }

    /// The element capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The visibility delay in consumer edges.
    pub fn visibility_delay(&self) -> u64 {
        self.delay
    }
}

struct Entry<T> {
    value: T,
    /// Earliest consumer edge index at which this element may be dequeued.
    visible_at: u64,
}

/// Shared FIFO storage. One producer, one consumer.
pub(crate) struct FifoCore<T> {
    queue: VecDeque<Entry<T>>,
    spec: LinkSpec,
    consumer_clock: Rc<ClockState>,
    enq_count: u64,
    deq_count: u64,
    /// Running sum of occupancy samples, for utilization stats.
    occupancy_sum: u64,
    occupancy_samples: u64,
}

impl<T> FifoCore<T> {
    fn new(spec: LinkSpec, consumer_clock: Rc<ClockState>) -> Self {
        Self {
            queue: VecDeque::with_capacity(spec.capacity()),
            spec,
            consumer_clock,
            enq_count: 0,
            deq_count: 0,
            occupancy_sum: 0,
            occupancy_samples: 0,
        }
    }

    fn can_enq(&self) -> bool {
        self.queue.len() < self.spec.capacity()
    }

    fn enq(&mut self, value: T) {
        assert!(
            self.can_enq(),
            "enq on full FIFO (capacity {}): check can_enq() first",
            self.spec.capacity()
        );
        let now = self.consumer_clock.edges.get();
        self.queue.push_back(Entry {
            value,
            visible_at: now + self.spec.visibility_delay(),
        });
        self.enq_count += 1;
    }

    fn head_visible(&self) -> bool {
        self.queue
            .front()
            .is_some_and(|e| self.consumer_clock.edges.get() >= e.visible_at)
    }

    fn deq(&mut self) -> Option<T> {
        if self.head_visible() {
            self.deq_count += 1;
            Some(self.queue.pop_front().expect("head was visible").value) // lint: allow(panic-policy) — head_visible() was checked on the line above
        } else {
            None
        }
    }

    fn sample_occupancy(&mut self) {
        self.occupancy_sum += self.queue.len() as u64;
        self.occupancy_samples += 1;
    }
}

/// A FIFO link; the engine hands out the two port halves.
pub(crate) struct Fifo<T> {
    core: Rc<RefCell<FifoCore<T>>>,
}

impl<T> Fifo<T> {
    pub(crate) fn new(spec: LinkSpec, consumer_clock: Rc<ClockState>) -> Self {
        Self {
            core: Rc::new(RefCell::new(FifoCore::new(spec, consumer_clock))),
        }
    }

    pub(crate) fn ports(&self) -> (Sink<T>, Source<T>) {
        (
            Sink {
                core: Rc::clone(&self.core),
            },
            Source {
                core: Rc::clone(&self.core),
            },
        )
    }
}

/// Producer port of a link: the side a module *enqueues* into.
///
/// Named for the hardware convention: a module's output drives the sink end
/// of the connecting FIFO.
pub struct Sink<T> {
    core: Rc<RefCell<FifoCore<T>>>,
}

impl<T> Sink<T> {
    /// Whether an element can be enqueued this cycle (FIFO not full).
    pub fn can_enq(&self) -> bool {
        self.core.borrow().can_enq()
    }

    /// Enqueues an element.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full. Latency-insensitive modules must guard
    /// with [`Sink::can_enq`]; an unguarded enqueue is a protocol violation
    /// equivalent to dropping data on a full hardware FIFO.
    pub fn enq(&self, value: T) {
        self.core.borrow_mut().enq(value);
    }

    /// Total elements ever enqueued (for throughput accounting).
    pub fn enq_count(&self) -> u64 {
        self.core.borrow().enq_count
    }
}

impl<T> fmt::Debug for Sink<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.core.borrow();
        write!(
            f,
            "Sink(len {}/{}, enq {})",
            core.queue.len(),
            core.spec.capacity(),
            core.enq_count
        )
    }
}

/// Consumer port of a link: the side a module *dequeues* from.
pub struct Source<T> {
    core: Rc<RefCell<FifoCore<T>>>,
}

impl<T> Source<T> {
    /// Whether an element is available to dequeue this cycle.
    pub fn can_deq(&self) -> bool {
        self.core.borrow().head_visible()
    }

    /// Dequeues the head element if one is visible this cycle.
    pub fn deq(&self) -> Option<T> {
        self.core.borrow_mut().deq()
    }

    /// Total elements ever dequeued.
    pub fn deq_count(&self) -> u64 {
        self.core.borrow().deq_count
    }

    /// Number of elements currently buffered, visible to the consumer or
    /// still in their visibility-delay window.
    ///
    /// Exposed for quiescence detection and occupancy instrumentation.
    pub fn pending_len(&self) -> u64 {
        self.core.borrow().queue.len() as u64
    }

    /// Mean queue occupancy over the samples taken so far.
    pub fn mean_occupancy(&self) -> f64 {
        let core = self.core.borrow();
        if core.occupancy_samples == 0 {
            0.0
        } else {
            core.occupancy_sum as f64 / core.occupancy_samples as f64
        }
    }

    /// Records an occupancy sample (called by instrumentation code, e.g.
    /// once per consumer edge).
    pub fn sample_occupancy(&self) {
        self.core.borrow_mut().sample_occupancy();
    }
}

impl<T: Clone> Source<T> {
    /// Returns a copy of the head element without dequeuing it, if visible.
    pub fn peek(&self) -> Option<T> {
        let core = self.core.borrow();
        if core.head_visible() {
            core.queue.front().map(|e| e.value.clone())
        } else {
            None
        }
    }
}

impl<T> fmt::Debug for Source<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.core.borrow();
        write!(
            f,
            "Source(len {}/{}, deq {})",
            core.queue.len(),
            core.spec.capacity(),
            core.deq_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockState;
    use crate::Freq;
    use std::cell::Cell;

    fn test_clock() -> Rc<ClockState> {
        Rc::new(ClockState {
            name: "test".into(),
            freq: Freq::mhz(1),
            edges: Cell::new(0),
            period_units: Cell::new(1),
        })
    }

    #[test]
    fn element_invisible_until_delay_elapses() {
        let clk = test_clock();
        let fifo = Fifo::new(LinkSpec::new(4).delay(2), Rc::clone(&clk));
        let (tx, rx) = fifo.ports();
        tx.enq(7u32);
        assert!(!rx.can_deq(), "visible too early");
        clk.edges.set(1);
        assert!(!rx.can_deq(), "visible after 1 of 2 edges");
        clk.edges.set(2);
        assert_eq!(rx.peek(), Some(7));
        assert_eq!(rx.deq(), Some(7));
        assert_eq!(rx.deq(), None);
    }

    #[test]
    fn capacity_backpressure() {
        let clk = test_clock();
        let fifo = Fifo::new(LinkSpec::new(2), Rc::clone(&clk));
        let (tx, rx) = fifo.ports();
        assert!(tx.can_enq());
        tx.enq(1u8);
        tx.enq(2);
        assert!(!tx.can_enq(), "full at capacity");
        clk.edges.set(1);
        assert_eq!(rx.deq(), Some(1));
        assert!(tx.can_enq(), "space freed by deq");
    }

    #[test]
    #[should_panic(expected = "full FIFO")]
    fn unguarded_enq_panics() {
        let clk = test_clock();
        let fifo = Fifo::new(LinkSpec::new(1), clk);
        let (tx, _rx) = fifo.ports();
        tx.enq(1u8);
        tx.enq(2);
    }

    #[test]
    fn fifo_order_preserved() {
        let clk = test_clock();
        let fifo = Fifo::new(LinkSpec::new(8), Rc::clone(&clk));
        let (tx, rx) = fifo.ports();
        for i in 0..5u32 {
            tx.enq(i);
        }
        clk.edges.set(10);
        let out: Vec<u32> = std::iter::from_fn(|| rx.deq()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.deq_count(), 5);
        assert_eq!(tx.enq_count(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LinkSpec::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_delay_rejected() {
        let _ = LinkSpec::new(1).delay(0);
    }

    #[test]
    fn occupancy_stats() {
        let clk = test_clock();
        let fifo = Fifo::new(LinkSpec::new(4), Rc::clone(&clk));
        let (tx, rx) = fifo.ports();
        rx.sample_occupancy(); // 0
        tx.enq(1u8);
        tx.enq(2);
        rx.sample_occupancy(); // 2
        assert_eq!(rx.mean_occupancy(), 1.0);
    }
}
