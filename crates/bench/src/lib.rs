//! Shared helpers for the WiLIS benchmark harness.
//!
//! Every table and figure of the paper has a bench target in `benches/`:
//!
//! | Target | Regenerates |
//! |---|---|
//! | `fig2_sim_speed` | Figure 2 — simulation speed per 802.11g rate |
//! | `fig5_llr_ber` | Figure 5 — BER vs SoftPHY hints (BCJR and SOVA) |
//! | `fig6_pber` | Figure 6 — predicted vs actual per-packet BER |
//! | `fig7_softrate` | Figure 7 — SoftRate selection accuracy |
//! | `fig8_area` | Figure 8 — decoder synthesis results |
//! | `channel_throughput` | §3 — noise generation saturates the host |
//! | `sweep_grid` | scenario engine — serial vs parallel Figure 5 grid |
//! | `link_sweep` | link-layer sweeps — goodput per MAC policy |
//! | `sweep_service` | memoized store + stopping rule — `BENCH_service.json` |
//! | `harq_sweep` | HARQ soft-combining vs ARQ goodput — `BENCH_harq.json` |
//! | `cell_sweep` | contention cells — per-policy goodput, `BENCH_cell.json` |
//! | `perf_trellis` | compiled vs reference decode kernels — `BENCH_trellis.json` |
//! | `perf_batch` | lockstep batch decode vs scalar — `BENCH_batch.json` |
//! | `perf_phy` | planned vs reference OFDM front-end — `BENCH_phy.json` |
//! | `latency` | §4.3 — decoder pipeline latency formulas |
//! | `decoupling` | §2 — decoupled vs lock-step transfer throughput |
//! | `ablation_bitwidth` | §4.1 — demapper width 3..8 bits |
//! | `ablation_window` | §4.3/§4.4.3 — traceback/block length sweeps |
//!
//! Run them all with `cargo bench --workspace`; scale the Monte-Carlo
//! budgets with `WILIS_BITS=<bits>`.
//!
//! The targets are plain `harness = false` binaries timed with
//! [`harness`] — a deliberately small measurement loop, because this
//! repository builds offline with no external crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

/// Standard header printed by each figure bench.
pub fn banner(title: &str) {
    println!("\n==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// The Monte-Carlo budget for figure benches, honoring `WILIS_BITS`.
pub fn budget(default: u64) -> u64 {
    wilis::experiment::bits_budget(default)
}

#[cfg(test)]
mod tests {
    #[test]
    fn budget_positive() {
        assert!(super::budget(10) > 0);
    }
}
