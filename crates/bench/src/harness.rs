//! A minimal wall-clock measurement harness.
//!
//! The container this repository builds in has no network access, so the
//! bench targets cannot depend on criterion; this module provides the
//! small subset the figure benches need — warmup, repeated timing, simple
//! statistics, and machine-readable JSON lines for the perf trajectory.

use std::time::Instant;

/// One benchmark measurement: wall time per iteration over `iters` runs.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Timed iterations (after one warmup run).
    pub iters: u32,
    /// Mean seconds per iteration.
    pub mean_secs: f64,
    /// Fastest iteration, seconds.
    pub min_secs: f64,
    /// Slowest iteration, seconds.
    pub max_secs: f64,
}

impl Measurement {
    /// Elements per second given `elems` processed per iteration.
    pub fn throughput(&self, elems: u64) -> f64 {
        elems as f64 / self.mean_secs
    }

    /// One line of JSON (stable key order) for downstream tooling.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"mean_secs\":{:.9},\"min_secs\":{:.9},\"max_secs\":{:.9}}}",
            self.name, self.iters, self.mean_secs, self.min_secs, self.max_secs
        )
    }
}

/// Times `f` for `iters` iterations after one untimed warmup call.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) -> Measurement {
    assert!(iters > 0, "need at least one iteration");
    f(); // warmup
    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0, f64::max);
    Measurement {
        name: name.to_string(),
        iters,
        mean_secs: mean,
        min_secs: min,
        max_secs: max,
    }
}

/// Prints a measurement as an aligned human-readable row.
pub fn report(m: &Measurement) {
    println!(
        "{:<36} {:>10.3} ms/iter  (min {:.3}, max {:.3}, {} iters)",
        m.name,
        m.mean_secs * 1e3,
        m.min_secs * 1e3,
        m.max_secs * 1e3,
        m.iters
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let mut x = 0u64;
        let m = bench("spin", 3, || {
            for i in 0..10_000u64 {
                x = x.wrapping_add(i);
            }
        });
        std::hint::black_box(x);
        assert_eq!(m.iters, 3);
        assert!(m.mean_secs >= 0.0 && m.min_secs <= m.max_secs);
        let json = m.to_json();
        assert!(json.contains("\"name\":\"spin\""));
    }
}
