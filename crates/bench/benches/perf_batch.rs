//! Lockstep batch throughput: the packet-axis SIMD story.
//!
//! The scenario engine decodes same-rate packets in blocks of up to
//! [`MAX_BATCH_LANES`] lanes, with decoder metrics laid out
//! structure-of-arrays so the autovectorizer turns the per-lane add/
//! compare/select arithmetic into SIMD. This bench times that path
//! against the packet-at-a-time scalar kernels it replaces, on identical
//! inputs, at two levels:
//!
//! * **decode** — `decode_terminated_batch_into` over a full 8-lane
//!   lane-major block vs. eight scalar `decode_terminated_into` calls,
//!   per decoder (outputs asserted bit-identical lane for lane);
//! * **rx** — the whole batched receive pipeline `rx_batch_from`
//!   (OFDM demod, demap, deinterleave, depuncture, decode, descramble in
//!   lane-major lockstep) vs. eight scalar `rx_from` calls.
//!
//! Results go to stdout *and* `BENCH_batch.json` (override with
//! `WILIS_BENCH_OUT`). Schema:
//!
//! ```json
//! {
//!   "bench": "perf_batch",
//!   "batch_width": 8,
//!   "coded_bits_per_block": 8204,
//!   "payload_bits": 1704,
//!   "decoders": [
//!     {"decoder": "viterbi", "batch_mbps": 0.0, "scalar_mbps": 0.0,
//!      "speedup": 0.0, "batch_mean_secs": 0.0, "scalar_mean_secs": 0.0}
//!   ],
//!   "rx": [
//!     {"decoder": "viterbi", "batch_pps": 0.0, "scalar_pps": 0.0,
//!      "speedup": 0.0, "batch_mean_secs": 0.0, "scalar_mean_secs": 0.0}
//!   ]
//! }
//! ```

use wilis::channel::{AwgnChannel, Channel, SnrDb};
use wilis::fec::{
    hard_llr, BcjrDecoder, ConvCode, ConvEncoder, DecodeOutput, Llr, SoftDecoder, SovaDecoder,
    ViterbiDecoder, MAX_BATCH_LANES,
};
use wilis::fxp::rng::SmallRng;
use wilis::fxp::Cplx;
use wilis::phy::{PhyRate, PhyScratch, Receiver, RxResult, Transmitter};
use wilis_bench::harness::{bench, report, Measurement};
use wilis_bench::{banner, budget};

/// A reproducible noisy coded block at a Figure-5-like operating point
/// (same recipe as `perf_trellis`, one seed per lane).
fn noisy_block(code: &ConvCode, info_bits: usize, seed: u64) -> Vec<Llr> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data: Vec<u8> = (0..info_bits).map(|_| rng.gen_bit()).collect();
    ConvEncoder::new(code)
        .encode_terminated(&data)
        .iter()
        .map(|&b| {
            let l = hard_llr(b, 20);
            match rng.gen_i64(0, 12) {
                0 => -l / 2, // soft flip
                1 => 0,      // erasure
                _ => l,
            }
        })
        .collect()
}

struct Row {
    name: &'static str,
    batch: Measurement,
    scalar: Measurement,
    /// Work units per measurement: coded bits for decode, packets for rx.
    units: f64,
}

impl Row {
    fn batch_rate(&self) -> f64 {
        self.units / self.batch.mean_secs
    }
    fn scalar_rate(&self) -> f64 {
        self.units / self.scalar.mean_secs
    }
    fn speedup(&self) -> f64 {
        self.scalar.mean_secs / self.batch.mean_secs
    }
}

fn time_batch_decoder<D: SoftDecoder>(
    name: &'static str,
    dec: &mut D,
    soa: &[Llr],
    blocks: &[Vec<Llr>],
    reps: u32,
    iters: u32,
) -> Row {
    let lanes = blocks.len();
    let mut outs: Vec<DecodeOutput> = (0..lanes).map(|_| DecodeOutput::default()).collect();
    let batch = bench(&format!("{name}/batch"), iters, || {
        for _ in 0..reps {
            dec.decode_terminated_batch_into(soa, lanes, &mut outs);
        }
    });
    report(&batch);
    let mut scalar_outs: Vec<DecodeOutput> = (0..lanes).map(|_| DecodeOutput::default()).collect();
    let scalar = bench(&format!("{name}/scalar"), iters, || {
        for _ in 0..reps {
            for (block, out) in blocks.iter().zip(scalar_outs.iter_mut()) {
                dec.decode_terminated_into(block, out);
            }
        }
    });
    report(&scalar);
    assert_eq!(
        outs, scalar_outs,
        "{name}: batched and scalar decodes must stay bit-identical per lane"
    );
    Row {
        name,
        batch,
        scalar,
        units: (soa.len() as u64 * u64::from(reps)) as f64,
    }
}

fn time_batch_rx(
    name: &'static str,
    rx: &mut Receiver,
    lane_samples: &[Vec<Cplx>],
    payload_bits: usize,
    seeds: &[u8],
    reps: u32,
    iters: u32,
) -> Row {
    let lanes = lane_samples.len();
    let refs: Vec<&[Cplx]> = lane_samples.iter().map(|v| v.as_slice()).collect();
    let mut scratch = PhyScratch::new();
    let mut outs: Vec<RxResult> = (0..lanes).map(|_| RxResult::default()).collect();
    let batch = bench(&format!("{name}/rx_batch"), iters, || {
        for _ in 0..reps {
            rx.rx_batch_from(&refs, payload_bits, seeds, &mut scratch, &mut outs);
        }
    });
    report(&batch);
    let mut got = RxResult::default();
    let mut checked = false;
    let scalar = bench(&format!("{name}/rx_scalar"), iters, || {
        for _ in 0..reps {
            for l in 0..lanes {
                rx.rx_from(
                    &lane_samples[l],
                    payload_bits,
                    seeds[l],
                    &mut scratch,
                    &mut got,
                );
                if !checked {
                    assert_eq!(
                        got.payload, outs[l].payload,
                        "{name}: batched lane {l} payload diverged from scalar"
                    );
                    assert_eq!(
                        got.hints, outs[l].hints,
                        "{name}: batched lane {l} hints diverged from scalar"
                    );
                }
            }
            checked = true;
        }
    });
    report(&scalar);
    Row {
        name,
        batch,
        scalar,
        units: (lanes as u64 * u64::from(reps)) as f64,
    }
}

fn main() {
    let code = ConvCode::ieee80211();
    let info_bits = 4096usize;
    let lanes = MAX_BATCH_LANES;

    // One noisy block per lane, interlaced lane-major: soft bit `i` of
    // lane `l` at `soa[i * lanes + l]`.
    let blocks: Vec<Vec<Llr>> = (0..lanes)
        .map(|l| noisy_block(&code, info_bits, 0xBA7C + l as u64))
        .collect();
    let coded_bits_per_block = blocks[0].len();
    let mut soa = vec![0 as Llr; coded_bits_per_block * lanes];
    for (l, block) in blocks.iter().enumerate() {
        for (i, &v) in block.iter().enumerate() {
            soa[i * lanes + l] = v;
        }
    }

    let reps = (budget(4_000_000) / (coded_bits_per_block * lanes) as u64).max(1) as u32;
    let iters = if std::env::var("WILIS_FAST").is_ok() {
        1
    } else {
        5
    };
    banner(&format!(
        "perf_batch: {code}, {lanes} lanes x {coded_bits_per_block} coded bits x {reps} reps x {iters} iters"
    ));

    let mut viterbi = ViterbiDecoder::new(&code);
    let mut sova = SovaDecoder::new(&code, 64, 64);
    let mut bcjr = BcjrDecoder::new(&code, 64);
    let decode_rows = vec![
        time_batch_decoder("viterbi", &mut viterbi, &soa, &blocks, reps, iters),
        time_batch_decoder("sova", &mut sova, &soa, &blocks, reps, iters),
        time_batch_decoder("bcjr", &mut bcjr, &soa, &blocks, reps, iters),
    ];

    println!();
    for row in &decode_rows {
        println!(
            "{:<10} batch {:>9.2} Mb/s   scalar {:>9.2} Mb/s   speedup {:.2}x",
            row.name,
            row.batch_rate() / 1e6,
            row.scalar_rate() / 1e6,
            row.speedup()
        );
    }

    // Whole-pipeline receive: one transmitted-and-corrupted packet per
    // lane at a waterfall operating point, batched vs packet-at-a-time.
    let rate = PhyRate::Qam16Half;
    let payload_bits = 1704usize;
    let transmitter = Transmitter::new(rate);
    let mut tx_scratch = PhyScratch::new();
    let mut lane_samples: Vec<Vec<Cplx>> = Vec::new();
    let mut seeds: Vec<u8> = Vec::new();
    for l in 0..lanes {
        let mut rng = SmallRng::seed_from_u64(0xF00D + l as u64);
        let payload: Vec<u8> = (0..payload_bits).map(|_| rng.gen_bit()).collect();
        let seed = (l % 127 + 1) as u8;
        let mut samples = Vec::new();
        transmitter.tx_into(&payload, seed, &mut tx_scratch, &mut samples);
        AwgnChannel::new(SnrDb::new(7.0), 0x51ED + l as u64).apply(&mut samples);
        lane_samples.push(samples);
        seeds.push(seed);
    }
    let rx_reps = (budget(600_000) / (payload_bits * lanes) as u64).max(1) as u32;

    let mut rx_rows = Vec::new();
    for (name, mut rx) in [
        ("viterbi", Receiver::viterbi(rate)),
        ("sova", Receiver::sova(rate)),
        ("bcjr", Receiver::bcjr(rate)),
    ] {
        rx_rows.push(time_batch_rx(
            name,
            &mut rx,
            &lane_samples,
            payload_bits,
            &seeds,
            rx_reps,
            iters,
        ));
    }

    println!();
    for row in &rx_rows {
        println!(
            "rx/{:<7} batch {:>8.1} pkt/s   scalar {:>8.1} pkt/s   speedup {:.2}x",
            row.name,
            row.batch_rate(),
            row.scalar_rate(),
            row.speedup()
        );
    }

    let decode_objs: Vec<String> = decode_rows
        .iter()
        .map(|row| {
            format!(
                "{{\"decoder\":\"{}\",\"batch_mbps\":{:.3},\"scalar_mbps\":{:.3},\"speedup\":{:.3},\"batch_mean_secs\":{:.9},\"scalar_mean_secs\":{:.9}}}",
                row.name,
                row.batch_rate() / 1e6,
                row.scalar_rate() / 1e6,
                row.speedup(),
                row.batch.mean_secs,
                row.scalar.mean_secs
            )
        })
        .collect();
    let rx_objs: Vec<String> = rx_rows
        .iter()
        .map(|row| {
            format!(
                "{{\"decoder\":\"{}\",\"batch_pps\":{:.3},\"scalar_pps\":{:.3},\"speedup\":{:.3},\"batch_mean_secs\":{:.9},\"scalar_mean_secs\":{:.9}}}",
                row.name,
                row.batch_rate(),
                row.scalar_rate(),
                row.speedup(),
                row.batch.mean_secs,
                row.scalar.mean_secs
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"perf_batch\",\"batch_width\":{},\"coded_bits_per_block\":{},\"payload_bits\":{},\"decoders\":[{}],\"rx\":[{}]}}\n",
        lanes,
        coded_bits_per_block,
        payload_bits,
        decode_objs.join(","),
        rx_objs.join(",")
    );
    println!("\nJSON:\n{json}");
    let out_path = std::env::var("WILIS_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
