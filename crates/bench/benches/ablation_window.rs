//! §4.3 / §4.4.3 ablation: traceback and block lengths.
//!
//! The paper: "In our current implementation, we use a backward path
//! length of 64 for SOVA and a block length of 64 for BCJR. We find that
//! increasing these values provides no performance improvement." And for
//! BCJR's provisional initialization: "reasonable performance if block
//! size n is sufficiently large (larger than 32)." This sweep measures
//! decode BER, latency, and area across the design space.

use wilis::area::{synthesize, DecoderChoice, DecoderParams};
use wilis::channel::SnrDb;
use wilis::fec::pipeline::{bcjr_pipeline_latency, sova_pipeline_latency};
use wilis::fec::{BcjrDecoder, ConvCode, SovaDecoder};
use wilis::fxp::Cplx;
use wilis::phy::{Demapper, PhyRate, PhyScratch, Receiver, RxResult, SnrScaling, Transmitter};
use wilis::prelude::{AwgnChannel, Channel};
use wilis_bench::{banner, budget};

fn ber_with(rx: &mut Receiver, bits: u64) -> f64 {
    let tx = Transmitter::new(PhyRate::Qam16Half);
    let mut channel = AwgnChannel::new(SnrDb::new(7.0), 0xAB);
    let mut errors = 0u64;
    let mut total = 0u64;
    let packet = 1704usize;
    let mut scratch = PhyScratch::new();
    let mut samples: Vec<Cplx> = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    let mut got = RxResult::default();
    while total < bits {
        payload.clear();
        payload.extend((0..packet).map(|i| ((i * 7 + total as usize) % 2) as u8));
        let seed = (total / packet as u64 % 127 + 1) as u8;
        tx.tx_into(&payload, seed, &mut scratch, &mut samples);
        channel.apply(&mut samples);
        rx.rx_from(&samples, payload.len(), seed, &mut scratch, &mut got);
        errors += got.bit_errors(&payload) as u64;
        total += packet as u64;
    }
    errors as f64 / total as f64
}

fn main() {
    let bits = budget(80_000);
    let code = ConvCode::ieee80211();
    banner(&format!(
        "Ablation: window/block length (QAM-16 1/2 @ 7.0 dB, {bits} bits/point)"
    ));

    println!("SOVA traceback window (l = k):");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "l=k", "BER", "latency", "LUTs"
    );
    for w in [8usize, 16, 32, 64, 128] {
        let mut rx = Receiver::new(
            PhyRate::Qam16Half,
            Demapper::new(wilis::phy::Modulation::Qam16, 5, SnrScaling::Off),
            Box::new(SovaDecoder::new(&code, w, w)),
        );
        let ber = ber_with(&mut rx, bits);
        let params = DecoderParams {
            window: w,
            ..DecoderParams::paper_default()
        };
        println!(
            "{:>6} {:>12.3e} {:>12} {:>12}",
            w,
            ber,
            sova_pipeline_latency(w as u64, w as u64),
            synthesize(DecoderChoice::Sova, &params).total.luts
        );
    }

    println!("\nBCJR block length (n):");
    println!("{:>6} {:>12} {:>12} {:>12}", "n", "BER", "latency", "LUTs");
    for n in [8usize, 16, 32, 64, 128] {
        let mut rx = Receiver::new(
            PhyRate::Qam16Half,
            Demapper::new(wilis::phy::Modulation::Qam16, 5, SnrScaling::Off),
            Box::new(BcjrDecoder::new(&code, n)),
        );
        let ber = ber_with(&mut rx, bits);
        let params = DecoderParams {
            window: n,
            ..DecoderParams::paper_default()
        };
        println!(
            "{:>6} {:>12.3e} {:>12} {:>12}",
            n,
            ber,
            bcjr_pipeline_latency(n as u64),
            synthesize(DecoderChoice::Bcjr, &params).total.luts
        );
    }

    println!(
        "\nPaper reference: no decode improvement beyond 64; BCJR needs n > 32 for\n\
         the provisional 'uncertain' initialization to converge; latency and area\n\
         scale linearly with the window, which is the recovery lever for area."
    );
}
