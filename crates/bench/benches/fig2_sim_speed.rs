//! Figure 2: simulation speeds of the eight 802.11g rates.

use wilis::experiment::fig2;
use wilis_bench::banner;

fn main() {
    banner("Figure 2: simulation speed per rate (model + native measurement)");
    let packets = if std::env::var("WILIS_FAST").is_ok() {
        2
    } else {
        12
    };
    let rows = fig2::run(packets);
    print!("{}", fig2::render(&rows));
    println!(
        "\nPaper reference: BPSK 1/2 = 2.033 Mb/s (33.9%) ... QAM-64 3/4 = 22.244 Mb/s (41.3%).\n\
         The hybrid model reproduces the band (~34% of line rate, channel-bound) and\n\
         the ~55 MB/s link usage; the native column shows what a pure software\n\
         pipeline manages on this host - the gap is the paper's case for FPGAs."
    );
}
