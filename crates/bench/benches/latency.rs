//! §4.3: decoder pipeline latency measured on the LI engine.

use wilis::fec::pipeline::{bcjr_pipeline_latency, sova_pipeline_latency};
use wilis_bench::banner;

fn main() {
    banner("Decoder pipeline latency (measured on the latency-insensitive engine)");
    println!(
        "{:<26} {:>10} {:>10} {:>12}",
        "Configuration", "measured", "formula", "at 60 MHz"
    );
    for (l, k) in [(32u64, 32u64), (64, 64), (96, 96)] {
        let measured = sova_pipeline_latency(l, k);
        let us = measured as f64 / 60.0;
        println!(
            "{:<26} {:>10} {:>10} {:>9.2} us",
            format!("SOVA l={l} k={k}"),
            measured,
            l + k + 12,
            us
        );
        assert_eq!(measured, l + k + 12);
    }
    for n in [32u64, 64, 128] {
        let measured = bcjr_pipeline_latency(n);
        let us = measured as f64 / 60.0;
        println!(
            "{:<26} {:>10} {:>10} {:>9.2} us",
            format!("BCJR n={n}"),
            measured,
            2 * n + 7,
            us
        );
        assert_eq!(measured, 2 * n + 7);
    }
    println!(
        "\nPaper reference: SOVA l=k=64 -> 140 cycles (<=2.3 us at 60 MHz);\n\
         BCJR n=64 -> 135 cycles (2.2 us); both well inside the 25 us 802.11a/g bound."
    );
}
