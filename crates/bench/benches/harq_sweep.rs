//! HARQ soft-combining goodput: ARQ vs Chase combining vs incremental
//! redundancy across the low-SNR waterfall.
//!
//! This is the workload the HARQ dimension opens: the same stop-and-wait
//! session swept with and without a retained LLR plane. The bench times
//! each link policy's sweep through the scenario engine at a punctured
//! rate (QAM-16 3/4, so the IR schedule has fresh phases to cycle) and
//! records the figures the soft-combining comparison is about: goodput,
//! delivery rate, mean attempts per packet, the fraction of deliveries
//! that only a combined plane decoded, and the post-IR effective code
//! rate.
//!
//! Results go to stdout *and* to `BENCH_harq.json` (override the path
//! with `WILIS_BENCH_OUT`), extending the perf trajectory. Schema
//! (checked in CI by `tools/check_bench.py harq_sweep`, which also
//! asserts the dominance contract: Chase combining never loses goodput
//! to ARQ at any swept SNR, and incremental redundancy beats Chase at
//! the lowest — most lossy — point):
//!
//! ```json
//! {
//!   "bench": "harq_sweep",
//!   "rate": "qam16-3/4", "payload_bits": 0, "packets": 0,
//!   "snrs_db": [10.0],
//!   "links": [
//!     {"link": "arq", "mean_secs": 0.0,
//!      "points": [
//!        {"snr_db": 10.0, "goodput": 0.0, "delivery_rate": 0.0,
//!         "mean_attempts": 0.0, "recovered_fraction": 0.0,
//!         "mean_effective_rate": 0.0, "attempts_hist": [0]}
//!      ]}
//!   ]
//! }
//! ```

use wilis::phy::PhyRate;
use wilis::scenario::{render_link_table, ScenarioResult, SweepGrid, SweepRunner};
use wilis_bench::harness::{bench, report};
use wilis_bench::{banner, budget};

fn main() {
    let payload_bits = 710usize;
    // The QAM-16 3/4 waterfall: lossy at every point so each policy
    // actually retransmits, steep enough that combining decides packets.
    let snrs = [6.5, 7.5, 8.5, 9.5];
    // Four total attempts per packet for every policy: ARQ's retry
    // budget is phrased as retries-after-the-first.
    let links: [(&str, &str, &str); 3] = [
        ("arq", "max_retries", "3"),
        ("harq-cc", "attempts", "4"),
        ("harq-ir", "attempts", "4"),
    ];
    // Budget is payload bits per grid point.
    let packets = (budget(150_000) / payload_bits as u64).max(8) as u32;
    banner(&format!(
        "harq_sweep: {} links x {} SNRs x {packets} packets of {payload_bits} bits \
         @qam16-3/4 (WILIS_BITS to scale)",
        links.len(),
        snrs.len()
    ));

    let iters = if std::env::var("WILIS_FAST").is_ok() {
        1
    } else {
        3
    };
    let runner = SweepRunner::auto();
    let mut all_results: Vec<ScenarioResult> = Vec::new();
    let mut link_rows: Vec<String> = Vec::new();
    for (link, key, value) in links {
        let grid = SweepGrid::new()
            .rates(&[PhyRate::Qam16ThreeQuarters])
            .decoders(&["sova"])
            .links(&[link])
            .link_param(key, value)
            .snrs_db(&snrs)
            .packets(packets)
            .payload_bits(payload_bits);
        let scenarios = grid.scenarios();
        let mut results = Vec::new();
        let m = bench(&format!("harq_sweep/{link}"), iters, || {
            results = runner.run(&scenarios).unwrap();
        });
        report(&m);
        let mut points: Vec<String> = Vec::new();
        for (sc, r) in scenarios.iter().zip(&results) {
            let metrics = r.link.as_ref().expect("link metrics");
            let hist = metrics
                .attempts_hist
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",");
            points.push(format!(
                "{{\"snr_db\":{:.2},\"goodput\":{:.6},\"delivery_rate\":{:.6},\"mean_attempts\":{:.6},\"recovered_fraction\":{:.6},\"mean_effective_rate\":{:.6},\"attempts_hist\":[{hist}]}}",
                sc.snr_db,
                metrics.goodput(),
                metrics.delivery_rate(),
                metrics.mean_attempts(),
                metrics.recovered_fraction(),
                metrics.mean_effective_rate()
            ));
        }
        link_rows.push(format!(
            "{{\"link\":\"{link}\",\"mean_secs\":{:.9},\"points\":[{}]}}",
            m.mean_secs,
            points.join(",")
        ));
        all_results.extend(results);
    }

    println!("\n{}", render_link_table(&all_results));

    let snr_list = snrs
        .iter()
        .map(|s| format!("{s:.2}"))
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"bench\":\"harq_sweep\",\"rate\":\"qam16-3/4\",\"payload_bits\":{payload_bits},\"packets\":{packets},\"snrs_db\":[{snr_list}],\"links\":[{}]}}\n",
        link_rows.join(",")
    );
    println!("JSON:\n{json}");
    // Default to the workspace root (cargo runs bench binaries from the
    // package directory), so the trajectory file lands next to README.md.
    let out_path = std::env::var("WILIS_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_harq.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
