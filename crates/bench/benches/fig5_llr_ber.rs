//! Figure 5: BER vs SoftPHY hints for BCJR and SOVA.

use wilis::experiment::fig5;
use wilis::softphy::DecoderKind;
use wilis_bench::{banner, budget};

fn main() {
    let bits = budget(250_000);
    banner(&format!(
        "Figure 5: BER vs LLR hints ({bits} payload bits per curve; WILIS_BITS to scale)"
    ));
    for decoder in [DecoderKind::Bcjr, DecoderKind::Sova] {
        let curves = fig5::run(decoder, bits, 0xF15);
        print!("{}", fig5::render(decoder, &curves));
        // Summarize: the slope ordering is the figure's key content.
        println!("slopes (log10 BER per hint):");
        for c in &curves {
            match c.calibration.fit {
                Some(f) => println!("  {:<44} {:+.4}", c.label, f.slope),
                None => println!("  {:<44} (insufficient errors)", c.label),
            }
        }
        println!();
    }
    println!(
        "Paper reference: log-linear curves spanning 1e-1..1e-7 over hints 0..60;\n\
         slopes steepen with SNR; BCJR covers a wider usable range than SOVA.\n\
         (Paper budget: 1e12 bits on FPGA; raise WILIS_BITS to dig below ~1e-5.)"
    );
}
