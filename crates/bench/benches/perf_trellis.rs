//! Compiled-trellis decode throughput: the perf trajectory of the hottest
//! path in the codebase.
//!
//! Every figure of the paper is a Monte-Carlo sweep whose inner loop is a
//! trellis decode, so this bench times exactly that — coded-bit decode
//! throughput (Mbit/s) per decoder for both kernel generations:
//!
//! * **compiled** — the branchless `i32` butterfly kernels with bit-packed
//!   survivors (`wilis_fec::compiled`), the path every decode takes today;
//! * **reference** — the frozen pre-compiled `i64` kernels
//!   (`decode_terminated_reference_into`), the pre-PR baseline.
//!
//! Both run in the same binary on the same inputs (outputs are
//! bit-identical by contract), so the recorded speedup is an
//! apples-to-apples kernel comparison. A full scenario-grid timing
//! (packets/s through the engine, including the shared-channel job
//! fusion) rides along.
//!
//! Results go to stdout *and* to `BENCH_trellis.json` (override the path
//! with `WILIS_BENCH_OUT`), one JSON object per run — the file every
//! future PR re-emits so decode-throughput regressions are visible in the
//! repo history. Schema:
//!
//! ```json
//! {
//!   "bench": "perf_trellis",
//!   "code": "K=7 r=1/2 (0o133, 0o171)",
//!   "coded_bits_per_block": 8204,
//!   "decoders": [
//!     {"decoder": "viterbi", "compiled_mbps": 0.0, "reference_mbps": 0.0,
//!      "speedup": 0.0, "compiled_mean_secs": 0.0, "reference_mean_secs": 0.0}
//!   ],
//!   "grid": {"scenarios": 0, "packets_total": 0, "batch_width": 8,
//!            "packets_per_sec": 0.0, "mean_secs": 0.0}
//! }
//! ```

use wilis::fec::{
    hard_llr, BcjrDecoder, ConvCode, ConvEncoder, DecodeOutput, Llr, SoftDecoder, SovaDecoder,
    ViterbiDecoder,
};
use wilis::fxp::rng::SmallRng;
use wilis::phy::PhyRate;
use wilis::scenario::{SweepGrid, SweepRunner};
use wilis_bench::harness::{bench, report, Measurement};
use wilis_bench::{banner, budget};

/// A reproducible noisy coded block at a Figure-5-like operating point:
/// random payload, hard-decision LLRs at demapper scale, a sprinkling of
/// flips and erasures so the decoders do real work.
fn noisy_block(code: &ConvCode, info_bits: usize, seed: u64) -> Vec<Llr> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data: Vec<u8> = (0..info_bits).map(|_| rng.gen_bit()).collect();
    ConvEncoder::new(code)
        .encode_terminated(&data)
        .iter()
        .map(|&b| {
            let l = hard_llr(b, 20);
            match rng.gen_i64(0, 12) {
                0 => -l / 2, // soft flip
                1 => 0,      // erasure
                _ => l,
            }
        })
        .collect()
}

struct DecoderRow {
    name: &'static str,
    compiled: Measurement,
    reference: Measurement,
    coded_mbps_compiled: f64,
    coded_mbps_reference: f64,
}

impl DecoderRow {
    fn speedup(&self) -> f64 {
        self.coded_mbps_compiled / self.coded_mbps_reference
    }
}

fn time_decoder(
    name: &'static str,
    llrs: &[Llr],
    reps: u32,
    iters: u32,
    mut fast: impl FnMut(&[Llr], &mut DecodeOutput),
    mut slow: impl FnMut(&[Llr], &mut DecodeOutput),
) -> DecoderRow {
    let mut out = DecodeOutput::default();
    let compiled = bench(&format!("{name}/compiled"), iters, || {
        for _ in 0..reps {
            fast(llrs, &mut out);
        }
    });
    report(&compiled);
    let mut ref_out = DecodeOutput::default();
    let reference = bench(&format!("{name}/reference"), iters, || {
        for _ in 0..reps {
            slow(llrs, &mut ref_out);
        }
    });
    report(&reference);
    assert_eq!(
        out, ref_out,
        "{name}: compiled and reference kernels must stay bit-identical"
    );
    let coded_bits = (llrs.len() as u64) * u64::from(reps);
    DecoderRow {
        name,
        coded_mbps_compiled: coded_bits as f64 / compiled.mean_secs / 1e6,
        coded_mbps_reference: coded_bits as f64 / reference.mean_secs / 1e6,
        compiled,
        reference,
    }
}

fn main() {
    let code = ConvCode::ieee80211();
    let info_bits = 4096usize;
    let llrs = noisy_block(&code, info_bits, 0xBE9C);
    let coded_bits_per_block = llrs.len();

    // WILIS_BITS scales the per-measurement decode budget; WILIS_FAST
    // drops to a single timed iteration (the CI smoke configuration).
    let reps = (budget(4_000_000) / coded_bits_per_block as u64).max(1) as u32;
    let iters = if std::env::var("WILIS_FAST").is_ok() {
        1
    } else {
        5
    };
    banner(&format!(
        "perf_trellis: {code}, {coded_bits_per_block} coded bits/block x {reps} reps x {iters} iters"
    ));

    let mut viterbi = ViterbiDecoder::new(&code);
    let mut viterbi_ref = ViterbiDecoder::new(&code);
    let mut sova = SovaDecoder::new(&code, 64, 64);
    let mut sova_ref = SovaDecoder::new(&code, 64, 64);
    let mut bcjr = BcjrDecoder::new(&code, 64);
    let mut bcjr_ref = BcjrDecoder::new(&code, 64);
    let rows = vec![
        time_decoder(
            "viterbi",
            &llrs,
            reps,
            iters,
            |l, o| viterbi.decode_terminated_into(l, o),
            |l, o| viterbi_ref.decode_terminated_reference_into(l, o),
        ),
        time_decoder(
            "sova",
            &llrs,
            reps,
            iters,
            |l, o| sova.decode_terminated_into(l, o),
            |l, o| sova_ref.decode_terminated_reference_into(l, o),
        ),
        time_decoder(
            "bcjr",
            &llrs,
            reps,
            iters,
            |l, o| bcjr.decode_terminated_into(l, o),
            |l, o| bcjr_ref.decode_terminated_reference_into(l, o),
        ),
    ];

    println!();
    for row in &rows {
        println!(
            "{:<10} compiled {:>9.2} Mb/s   reference {:>9.2} Mb/s   speedup {:.2}x",
            row.name,
            row.coded_mbps_compiled,
            row.coded_mbps_reference,
            row.speedup()
        );
    }

    // Full-grid throughput through the scenario engine: every decoder and
    // a couple of non-adapting link policies, so the shared-channel job
    // fusion is on the measured path.
    let payload_bits = 1704usize;
    let packets = (budget(600_000) / (3 * payload_bits) as u64).max(2) as u32;
    let grid = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .decoders(&["viterbi", "sova", "bcjr"])
        .links(&["none", "arq"])
        .snrs_db(&[6.0, 8.0])
        .packets(packets)
        .payload_bits(payload_bits);
    let scenarios = grid.scenarios();
    let packets_total = scenarios.len() as u64 * u64::from(packets);
    let runner = SweepRunner::auto();
    let grid_m = bench("grid/packets", iters, || {
        let results = runner.run(&scenarios).unwrap();
        std::hint::black_box(&results);
    });
    report(&grid_m);
    let packets_per_sec = packets_total as f64 / grid_m.mean_secs;
    println!(
        "  -> {} scenarios, {} packets, {:.0} packets/s",
        scenarios.len(),
        packets_total,
        packets_per_sec
    );

    // Machine-readable trajectory: stdout JSON lines plus the
    // BENCH_trellis.json artifact this and every future PR records.
    let decoder_objs: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"decoder\":\"{}\",\"compiled_mbps\":{:.3},\"reference_mbps\":{:.3},\"speedup\":{:.3},\"compiled_mean_secs\":{:.9},\"reference_mean_secs\":{:.9}}}",
                row.name,
                row.coded_mbps_compiled,
                row.coded_mbps_reference,
                row.speedup(),
                row.compiled.mean_secs,
                row.reference.mean_secs
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"perf_trellis\",\"code\":\"{}\",\"coded_bits_per_block\":{},\"reps\":{},\"decoders\":[{}],\"grid\":{{\"scenarios\":{},\"packets_total\":{},\"batch_width\":{},\"packets_per_sec\":{:.3},\"mean_secs\":{:.9}}}}}\n",
        code,
        coded_bits_per_block,
        reps,
        decoder_objs.join(","),
        scenarios.len(),
        packets_total,
        wilis::fec::MAX_BATCH_LANES,
        packets_per_sec,
        grid_m.mean_secs
    );
    println!("\nJSON:\n{json}");
    // Default to the workspace root (cargo runs bench binaries from the
    // package directory), so the trajectory file lands next to README.md.
    let out_path = std::env::var("WILIS_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trellis.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
