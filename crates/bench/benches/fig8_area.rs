//! Figure 8: synthesis results for BCJR, SOVA and Viterbi.

use wilis::experiment::fig8;
use wilis_bench::banner;

fn main() {
    banner("Figure 8: synthesis results (calibrated structural area model)");
    print!("{}", fig8::render(&fig8::run()));
    println!(
        "\nPaper reference (Synplify Pro, Virtex-5 LX330T @ 60 MHz, storage forced\n\
         to registers): BCJR 32936/38420, SOVA 15114/15168, Viterbi 7569/4538.\n\
         BCJR is ~2x SOVA (three PMUs + reversal buffers); SOVA ~2x Viterbi."
    );
}
