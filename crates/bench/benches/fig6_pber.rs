//! Figure 6: predicted vs actual per-packet BER, plus the link-layer
//! payoff (ARQ vs PPR) on the same grid.

use wilis::experiment::fig6;
use wilis::softphy::DecoderKind;
use wilis_bench::{banner, budget};

fn main() {
    let packets_per_snr = (budget(700_000) / (1704 * 9)).max(4) as u32;
    banner(&format!(
        "Figure 6: predicted vs actual PBER (QAM-16 1/2, 1704-bit packets, {packets_per_snr} packets/SNR)"
    ));
    for decoder in [DecoderKind::Bcjr, DecoderKind::Sova] {
        let cfg = fig6::Fig6Config::paper(decoder, packets_per_snr);
        let result = fig6::run(&cfg);
        print!("{}", fig6::render(&cfg, &result));
        println!();
    }
    println!(
        "Paper reference: points cluster on the predicted=actual line, with slight\n\
         underestimation above 1e-1 (the constant-SNR adjustment, paper section 4.2).\n"
    );

    // What the hints buy: the same grid closed by the link layer.
    let cfg = fig6::Fig6Config::paper(DecoderKind::Bcjr, packets_per_snr);
    print!("{}", fig6::render_links(&fig6::run_links(&cfg)));
    println!(
        "\nPPR turns the per-bit confidence of this figure into goodput: corrupted\n\
         packets are repaired by retransmitting suspect chunks instead of the whole\n\
         packet (ARQ), so the retransmitted fraction collapses."
    );
}
