//! Figure 6: predicted vs actual per-packet BER.

use wilis::experiment::fig6;
use wilis::softphy::DecoderKind;
use wilis_bench::{banner, budget};

fn main() {
    let packets_per_snr = (budget(700_000) / (1704 * 9)).max(4) as u32;
    banner(&format!(
        "Figure 6: predicted vs actual PBER (QAM-16 1/2, 1704-bit packets, {packets_per_snr} packets/SNR)"
    ));
    for decoder in [DecoderKind::Bcjr, DecoderKind::Sova] {
        let cfg = fig6::Fig6Config::paper(decoder, packets_per_snr);
        let result = fig6::run(&cfg);
        print!("{}", fig6::render(&cfg, &result));
        println!();
    }
    println!(
        "Paper reference: points cluster on the predicted=actual line, with slight\n\
         underestimation above 1e-1 (the constant-SNR adjustment, paper section 4.2)."
    );
}
