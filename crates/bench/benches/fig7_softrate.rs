//! Figure 7: SoftRate selection accuracy under fading — both decoders'
//! trials run as grid points of one link-enabled sweep (the `"trace"`
//! channel walk plus the `"softrate"` policy with its oracle replay).

use wilis::experiment::fig7;
use wilis_bench::{banner, budget};

fn main() {
    let packets = (budget(1_000_000) / (800 * 9)).max(10) as u32;
    banner(&format!(
        "Figure 7: SoftRate under 20 Hz fading + 10 dB AWGN ({packets} packet slots)"
    ));
    let cfg = fig7::Fig7Config::paper(packets);
    let results = fig7::run_both(&cfg);
    print!("{}", fig7::render(&results));
    println!(
        "\nPaper reference: both implementations pick the optimal rate >80% of the\n\
         time; SOVA underselects ~4% more than BCJR; both overselect ~2%."
    );
}
