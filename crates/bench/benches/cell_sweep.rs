//! Contention-cell throughput: the multi-node workload the cell dimension
//! opens, timed per MAC policy.
//!
//! One saturated 4-node cell per stock contention policy — slotted ALOHA,
//! CSMA with binary exponential backoff, and the TDMA oracle — runs
//! through the scenario engine at a fixed operating point. The bench
//! times each cell (the whole cell is one fused worker job, so this is
//! the real per-cell cost a capacity planner would see) and records the
//! cell-level figures the MAC comparison is about: aggregate goodput,
//! collision and idle fractions, Jain fairness, and simulated packets per
//! second.
//!
//! Results go to stdout *and* to `BENCH_cell.json` (override the path
//! with `WILIS_BENCH_OUT`), extending the perf trajectory started by
//! `BENCH_trellis.json`. Schema (checked in CI by
//! `tools/check_bench.py cell_sweep`):
//!
//! ```json
//! {
//!   "bench": "cell_sweep",
//!   "nodes": 4, "slots": 0, "payload_bits": 0, "snr_db": 10.0,
//!   "policies": [
//!     {"policy": "aloha", "aggregate_goodput": 0.0,
//!      "collision_fraction": 0.0, "idle_fraction": 0.0,
//!      "jain_index": 0.0, "attempts": 0,
//!      "packets_per_sec": 0.0, "mean_secs": 0.0}
//!   ]
//! }
//! ```

use wilis::phy::PhyRate;
use wilis::scenario::{render_cell_table, ScenarioResult, SweepGrid, SweepRunner};
use wilis_bench::harness::{bench, report};
use wilis_bench::{banner, budget};

fn main() {
    let payload_bits = 600usize;
    let nodes = 4u32;
    let snr_db = 10.0;
    // Budget is total payload bits across the cell's slots.
    let slots = (budget(240_000) / payload_bits as u64).max(16) as u32;
    let policies = ["aloha", "csma", "tdma"];
    banner(&format!(
        "cell_sweep: {nodes}-node saturated cells x {slots} slots of {payload_bits} bits \
         @{snr_db}dB (WILIS_BITS to scale)"
    ));

    let iters = if std::env::var("WILIS_FAST").is_ok() {
        1
    } else {
        3
    };
    let runner = SweepRunner::auto();
    let mut all_results: Vec<ScenarioResult> = Vec::new();
    let mut rows: Vec<String> = Vec::new();
    for policy in policies {
        let grid = SweepGrid::new()
            .rates(&[PhyRate::Qam16Half])
            .decoders(&["viterbi"])
            .contentions(&[policy])
            .nodes(nodes)
            .snrs_db(&[snr_db])
            .packets(slots)
            .payload_bits(payload_bits);
        let scenarios = grid.scenarios();
        let mut results = Vec::new();
        let m = bench(&format!("cell_sweep/{policy}"), iters, || {
            results = runner.run(&scenarios).unwrap();
        });
        report(&m);
        let cell = results[0].cell.clone().expect("cell metrics");
        let packets_per_sec = cell.attempts() as f64 / m.mean_secs;
        rows.push(format!(
            "{{\"policy\":\"{}\",\"aggregate_goodput\":{:.6},\"collision_fraction\":{:.6},\"idle_fraction\":{:.6},\"jain_index\":{:.6},\"attempts\":{},\"packets_per_sec\":{:.3},\"mean_secs\":{:.9}}}",
            policy,
            cell.aggregate_goodput(),
            cell.collision_fraction(),
            cell.idle_fraction(),
            cell.jain_index(),
            cell.attempts(),
            packets_per_sec,
            m.mean_secs
        ));
        all_results.extend(results);
    }

    println!("\n{}", render_cell_table(&all_results));

    let json = format!(
        "{{\"bench\":\"cell_sweep\",\"nodes\":{},\"slots\":{},\"payload_bits\":{},\"snr_db\":{:.2},\"policies\":[{}]}}\n",
        nodes,
        slots,
        payload_bits,
        snr_db,
        rows.join(",")
    );
    println!("JSON:\n{json}");
    // Default to the workspace root (cargo runs bench binaries from the
    // package directory), so the trajectory file lands next to README.md.
    let out_path = std::env::var("WILIS_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cell.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
