//! §3: the software channel is the co-simulation bottleneck.
//!
//! Microbenchmarks of the pieces whose relative cost justifies the hybrid
//! split: Gaussian noise generation (the measured hot spot), parallel AWGN
//! application, and the baseband TX chain for scale.

use wilis::channel::parallel::apply_awgn_parallel;
use wilis::channel::{AwgnChannel, Channel, GaussianSource, SnrDb};
use wilis::fxp::Cplx;
use wilis::phy::{PhyRate, Transmitter};
use wilis_bench::banner;
use wilis_bench::harness::{bench, report};

fn main() {
    banner("Channel throughput (section 3: noise generation saturates the host)");
    let n = 65_536usize;
    let iters = if std::env::var("WILIS_FAST").is_ok() {
        3
    } else {
        20
    };

    let mut g = GaussianSource::new(1);
    let mut buf = vec![0.0f64; n];
    let m = bench("noise/gaussian_fill_64k", iters, || {
        g.fill(&mut buf);
        std::hint::black_box(buf[0]);
    });
    report(&m);
    println!("  -> {:.1} Msamples/s", m.throughput(n as u64) / 1e6);

    let mut ch = AwgnChannel::new(SnrDb::new(10.0), 2);
    let mut cbuf = vec![Cplx::ONE; n];
    let m = bench("awgn/serial_64k", iters, || {
        ch.apply(&mut cbuf);
        std::hint::black_box(cbuf[0]);
    });
    report(&m);
    let serial = m.mean_secs;

    for threads in [2usize, 4, 8] {
        let mut pbuf = vec![Cplx::ONE; n];
        let mut seed = 0u64;
        let m = bench(&format!("awgn/parallel_64k/t{threads}"), iters, || {
            seed += 1;
            apply_awgn_parallel(&mut pbuf, SnrDb::new(10.0), seed, threads);
            std::hint::black_box(pbuf[0]);
        });
        report(&m);
        println!("  -> speedup over serial: {:.2}x", serial / m.mean_secs);
    }

    let payload: Vec<u8> = (0..1704).map(|i| (i % 2) as u8).collect();
    let tx = Transmitter::new(PhyRate::Qam16Half);
    let m = bench("baseband/tx_qam16_1704b", iters, || {
        std::hint::black_box(tx.transmit(&payload, 0x5D).samples.len());
    });
    report(&m);
}
