//! §3: the software channel is the co-simulation bottleneck.
//!
//! Criterion microbenchmarks of the pieces whose relative cost justifies
//! the hybrid split: Gaussian noise generation (the measured hot spot),
//! parallel AWGN application, and the baseband TX chain for scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wilis::channel::parallel::apply_awgn_parallel;
use wilis::channel::{AwgnChannel, Channel, GaussianSource, SnrDb};
use wilis::fxp::Cplx;
use wilis::phy::{PhyRate, Transmitter};

fn noise_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_generation");
    let n = 65_536usize;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("gaussian_fill_64k", |b| {
        let mut g = GaussianSource::new(1);
        let mut buf = vec![0.0f64; n];
        b.iter(|| {
            g.fill(&mut buf);
            std::hint::black_box(buf[0]);
        });
    });
    group.finish();
}

fn awgn_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("awgn_apply");
    let n = 65_536usize;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("serial_64k", |b| {
        let mut ch = AwgnChannel::new(SnrDb::new(10.0), 2);
        let mut buf = vec![Cplx::ONE; n];
        b.iter(|| {
            ch.apply(&mut buf);
            std::hint::black_box(buf[0]);
        });
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel_64k", threads),
            &threads,
            |b, &threads| {
                let mut buf = vec![Cplx::ONE; n];
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    apply_awgn_parallel(&mut buf, SnrDb::new(10.0), seed, threads);
                    std::hint::black_box(buf[0]);
                });
            },
        );
    }
    group.finish();
}

fn baseband_tx(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseband");
    let payload: Vec<u8> = (0..1704).map(|i| (i % 2) as u8).collect();
    group.throughput(Throughput::Elements(payload.len() as u64));
    group.bench_function("tx_qam16_1704b", |b| {
        let tx = Transmitter::new(PhyRate::Qam16Half);
        b.iter(|| std::hint::black_box(tx.transmit(&payload, 0x5D).samples.len()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4));
    targets = noise_generation, awgn_application, baseband_tx
}
criterion_main!(benches);
