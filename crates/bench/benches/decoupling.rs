//! §2: decoupled latency-insensitive transfers vs lock-step emulation.

use wilis::lis::platform::LinkModel;
use wilis_bench::banner;

fn main() {
    banner("Decoupled vs lock-step host<->FPGA transfers (SCE-MI comparison, paper section 5)");
    let fsb = LinkModel::fsb();
    println!(
        "{:>10} {:>18} {:>18} {:>8}",
        "batch B", "decoupled MB/s", "lock-step MB/s", "ratio"
    );
    for batch in [64u64, 256, 1024, 4096, 16384, 65536] {
        let d = fsb.streaming_bytes_per_sec(batch);
        let l = fsb.lockstep_bytes_per_sec(batch);
        println!(
            "{:>10} {:>18.1} {:>18.1} {:>8.1}",
            batch,
            d / 1e6,
            l / 1e6,
            d / l
        );
    }
    let headline = fsb.streaming_bytes_per_sec(65536) / fsb.lockstep_bytes_per_sec(256);
    println!(
        "\nlarge decoupled batches vs fine-grained lock-step: {headline:.0}x\n\
         Paper reference: decoupling + batched pipelined transfers bought\n\
         \"approximately one order of magnitude\" of throughput (section 2)."
    );
    assert!(headline > 8.0);
}
