//! Link-layer sweep throughput: the (rate × SNR × link) grid through the
//! scenario engine, with JSON goodput lines for the perf trajectory.
//!
//! This is the "new workload" the link dimension opens: one grid call
//! answers "what does each MAC policy deliver across the waterfall?"
//! The bench times the sweep (the link layer rides the same worker pool
//! and determinism contract as the PHY axes) and emits one JSON line per
//! grid point with the link metrics downstream tooling tracks. The grid
//! runs through the memoizing [`SweepService`]: the timed section is the
//! cold path (fresh cache per iteration), followed by a warm re-run that
//! must serve every point from the store without simulating a packet.

use wilis::phy::PhyRate;
use wilis::scenario::{render_link_table, SweepGrid, SweepRunner};
use wilis::service::SweepService;
use wilis_bench::harness::{bench, report};
use wilis_bench::{banner, budget};

fn main() {
    let payload_bits = 1704usize;
    let snrs = [5.5, 6.0, 6.5, 7.0, 7.5, 8.0];
    let links = ["none", "arq", "ppr", "softrate"];
    // Budget is per grid point; softrate skips its 8x oracle here so the
    // four links cost comparably.
    let packets = (budget(150_000) / payload_bits as u64).max(4) as u32;
    let grid = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .links(&links)
        .link_param("oracle", "false")
        .snrs_db(&snrs)
        .packets(packets)
        .payload_bits(payload_bits);
    let scenarios = grid.scenarios();
    banner(&format!(
        "link_sweep: {} scenarios x {} packets of {} bits (WILIS_BITS to scale)",
        scenarios.len(),
        packets,
        payload_bits
    ));

    let iters = if std::env::var("WILIS_FAST").is_ok() {
        1
    } else {
        3
    };
    let mut results = Vec::new();
    let m = bench("link_sweep/grid", iters, || {
        let mut service = SweepService::new(SweepRunner::auto());
        results = service.run(&scenarios).unwrap();
    });
    report(&m);
    let bits = scenarios.len() as u64 * u64::from(packets) * payload_bits as u64;
    println!(
        "  -> {:.2} Mb/s simulated\n",
        bits as f64 / m.mean_secs / 1e6
    );

    // Warm path: one service populated once, then timed serving the full
    // grid from its store.
    let mut warm_service = SweepService::new(SweepRunner::auto());
    let reference = warm_service.run(&scenarios).unwrap();
    warm_service.reset_metrics();
    let warm = bench("link_sweep/warm", iters, || {
        let cached = warm_service.run(&scenarios).unwrap();
        assert_eq!(cached, reference, "warm link sweep diverged from cold");
    });
    report(&warm);
    assert_eq!(
        warm_service.metrics().packets_simulated,
        0,
        "warm link sweeps must be pure cache hits"
    );
    println!("  -> warm {}\n", warm_service.metrics().summary());

    print!("{}", render_link_table(&results));

    println!("\nJSON:");
    for (sc, r) in scenarios.iter().zip(&results) {
        let Some(link) = &r.link else { continue };
        println!(
            "{{\"bench\":\"link_sweep\",\"link\":\"{}\",\"snr_db\":{:.2},\"goodput\":{:.6},\"retransmit_fraction\":{:.6},\"delivery_rate\":{:.6},\"mean_secs\":{:.9}}}",
            sc.link,
            sc.snr_db,
            link.goodput(),
            link.retransmit_fraction(),
            link.delivery_rate(),
            m.mean_secs
        );
    }
}
