//! Sweep-service economics: what the memoized result store and the
//! confidence-driven stopping rule each buy on a representative grid.
//!
//! Two sections:
//!
//! * **cold vs warm** — the Figure-5-shaped grid through a fresh
//!   [`SweepService`] (every point simulated) versus a pre-populated one
//!   (every point served from the store). Warm results are asserted
//!   bit-identical to cold and must simulate zero packets.
//! * **fixed vs adaptive** — the same grid under a fixed packet budget
//!   versus a Wilson-interval [`StoppingRule`] that closes each point as
//!   soon as its BER estimate is resolved. Adaptive runs are asserted
//!   deterministic (two runs bit-identical) and thread-invariant
//!   (1 thread == auto threads), and must simulate no more packets than
//!   the fixed budget.
//!
//! Results go to stdout *and* `BENCH_service.json` (override with
//! `WILIS_BENCH_OUT`). Schema:
//!
//! ```json
//! {
//!   "bench": "sweep_service",
//!   "grid_points": 12,
//!   "packets_per_point": 58,
//!   "cold_mean_secs": 0.0,
//!   "warm_mean_secs": 0.0,
//!   "warm_speedup": 0.0,
//!   "warm_hits": 12,
//!   "warm_packets_saved": 696,
//!   "stopping": [
//!     {"mode": "fixed", "packets_simulated": 0, "mean_secs": 0.0},
//!     {"mode": "adaptive", "packets_simulated": 0, "mean_secs": 0.0}
//!   ]
//! }
//! ```

use wilis::phy::PhyRate;
use wilis::scenario::{StoppingRule, SweepGrid, SweepRunner};
use wilis::service::SweepService;
use wilis_bench::harness::{bench, report};
use wilis_bench::{banner, budget};

fn main() {
    let payload_bits = 1704usize;
    let packets = (budget(100_000) / payload_bits as u64).max(8) as u32;
    let grid = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half, PhyRate::QpskHalf])
        .decoders(&["sova", "bcjr"])
        .snrs_db(&[6.0, 7.0, 8.0])
        .packets(packets)
        .payload_bits(payload_bits);
    let scenarios = grid.scenarios();
    banner(&format!(
        "sweep_service: {} grid points x {} packets of {} bits (WILIS_BITS to scale)",
        scenarios.len(),
        packets,
        payload_bits
    ));

    let iters = if std::env::var("WILIS_FAST").is_ok() {
        1
    } else {
        3
    };

    // --- cold vs warm ---------------------------------------------------
    let mut reference = Vec::new();
    let cold = bench("sweep_service/cold", iters, || {
        let mut service = SweepService::new(SweepRunner::auto());
        reference = service.run(&scenarios).unwrap();
    });
    report(&cold);

    let mut warm_service = SweepService::new(SweepRunner::auto());
    warm_service.run(&scenarios).unwrap();
    warm_service.reset_metrics();
    let warm = bench("sweep_service/warm", iters, || {
        let cached = warm_service.run(&scenarios).unwrap();
        assert_eq!(cached, reference, "warm results diverged from cold");
    });
    report(&warm);
    let wm = warm_service.metrics();
    assert_eq!(wm.packets_simulated, 0, "warm runs must be pure cache hits");
    let warm_speedup = cold.mean_secs / warm.mean_secs;
    println!("  -> warm {} (speedup {warm_speedup:.1}x)", wm.summary());

    // Per-run hit/saved counts (metrics accumulated over warmup + iters).
    let runs = u64::from(iters) + 1;
    let warm_hits = wm.hits / runs;
    let warm_saved = wm.packets_saved / runs;

    // --- fixed vs adaptive stopping -------------------------------------
    // Target a 1e-3 BER half-width: at these SNRs the clean points close
    // after one chunk and only the noisy QAM-16 points spend real budget.
    let rule = StoppingRule::ber(1e-3).with_chunk(8);
    let mut stopping_rows = Vec::new();
    let mut fixed_packets = 0u64;
    let mut adaptive_packets = 0u64;
    for (mode, stopping) in [("fixed", None), ("adaptive", Some(rule))] {
        let mut last = 0u64;
        let mut last_results = Vec::new();
        let m = bench(&format!("sweep_service/{mode}"), iters, || {
            let mut service = SweepService::new(SweepRunner::auto());
            service.set_stopping(stopping);
            last_results = service.run(&scenarios).unwrap();
            last = service.metrics().packets_simulated;
        });
        report(&m);
        match mode {
            "fixed" => fixed_packets = last,
            _ => adaptive_packets = last,
        }
        if mode == "adaptive" {
            // Determinism: a second adaptive run and a single-thread run
            // must both reproduce the same stopped results bit for bit.
            let mut serial = SweepService::new(SweepRunner::new(1));
            serial.set_stopping(stopping);
            let serial_results = serial.run(&scenarios).unwrap();
            assert_eq!(
                serial_results, last_results,
                "adaptive stopping must be thread-invariant"
            );
        }
        println!("  -> {last} packets simulated per run");
        stopping_rows.push(format!(
            "{{\"mode\":\"{mode}\",\"packets_simulated\":{last},\"mean_secs\":{:.9}}}",
            m.mean_secs
        ));
    }
    assert!(
        adaptive_packets <= fixed_packets,
        "adaptive stopping simulated more packets ({adaptive_packets}) than the fixed budget ({fixed_packets})"
    );
    println!(
        "\nstopping saves {} of {} packets ({:.0}%)",
        fixed_packets - adaptive_packets,
        fixed_packets,
        100.0 * (fixed_packets - adaptive_packets) as f64 / fixed_packets as f64
    );

    let json = format!(
        "{{\"bench\":\"sweep_service\",\"grid_points\":{},\"packets_per_point\":{packets},\"cold_mean_secs\":{:.9},\"warm_mean_secs\":{:.9},\"warm_speedup\":{warm_speedup:.3},\"warm_hits\":{warm_hits},\"warm_packets_saved\":{warm_saved},\"stopping\":[{}]}}\n",
        scenarios.len(),
        cold.mean_secs,
        warm.mean_secs,
        stopping_rows.join(",")
    );
    println!("\nJSON:\n{json}");
    let out_path = std::env::var("WILIS_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
