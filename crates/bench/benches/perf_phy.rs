//! Planned-vs-reference PHY front-end throughput: the perf trajectory of
//! the float chain PR 5 compiled.
//!
//! With the trellis decoders compiled (`perf_trellis`), the OFDM
//! front-end (scramble → map → OFDM → demod → demap) owns a dominant
//! share of the remaining per-packet time, so this bench times exactly
//! that — both kernel generations in one binary on the same inputs:
//!
//! * **planned** — `FftPlan`/`OfdmPlan`-driven whole-packet streaming and
//!   the table/specialized map/demap kernels, the path every packet takes
//!   today;
//! * **reference** — the frozen interpreted per-symbol bodies
//!   (`*_into_reference`), the pre-PR baseline.
//!
//! Outputs are bit-identical by contract (asserted here before timing),
//! so the recorded speedup is an apples-to-apples kernel comparison. A
//! full scenario-grid timing spanning all four modulations rides along.
//!
//! Results go to stdout *and* to `BENCH_phy.json` (override the path with
//! `WILIS_BENCH_OUT`), one JSON object per run. Schema:
//!
//! ```json
//! {
//!   "bench": "perf_phy",
//!   "symbols": 256,
//!   "samples_per_symbol": 80,
//!   "ofdm": [
//!     {"op": "modulate", "planned_msps": 0.0, "reference_msps": 0.0,
//!      "speedup": 0.0, "planned_mean_secs": 0.0, "reference_mean_secs": 0.0}
//!   ],
//!   "modulations": [
//!     {"modulation": "bpsk",
//!      "map_planned_mbps": 0.0, "map_reference_mbps": 0.0, "map_speedup": 0.0,
//!      "demap_planned_mbps": 0.0, "demap_reference_mbps": 0.0, "demap_speedup": 0.0}
//!   ],
//!   "grid": {"scenarios": 0, "packets_total": 0, "packets_per_sec": 0.0,
//!            "mean_secs": 0.0}
//! }
//! ```

use wilis::fxp::rng::SmallRng;
use wilis::fxp::Cplx;
use wilis::phy::{
    Demapper, Mapper, Modulation, OfdmDemodulator, OfdmModulator, PhyRate, SnrScaling,
    DATA_CARRIERS, SYMBOL_LEN,
};
use wilis::scenario::{SweepGrid, SweepRunner};
use wilis_bench::harness::{bench, report, Measurement};
use wilis_bench::{banner, budget};

fn iters() -> u32 {
    if std::env::var("WILIS_FAST").is_ok() {
        1
    } else {
        5
    }
}

struct OfdmRow {
    op: &'static str,
    planned: Measurement,
    reference: Measurement,
    planned_msps: f64,
    reference_msps: f64,
}

impl OfdmRow {
    fn speedup(&self) -> f64 {
        self.planned_msps / self.reference_msps
    }
}

/// Times planned whole-packet modulation against the frozen per-symbol
/// reference on one multi-symbol frame of random carriers.
fn time_ofdm(n_sym: usize, reps: u32, rng: &mut SmallRng) -> (Vec<OfdmRow>, Vec<Cplx>) {
    let carriers: Vec<Cplx> = (0..n_sym * DATA_CARRIERS)
        .map(|_| {
            Cplx::new(
                rng.gen_i64(-1000, 1000) as f64 / 1000.0,
                rng.gen_i64(-1000, 1000) as f64 / 1000.0,
            )
        })
        .collect();
    let samples_per_frame = (n_sym * SYMBOL_LEN) as u64;

    // Bit-identity sanity before timing, mirroring perf_trellis.
    let mut planned_tx = OfdmModulator::new();
    let mut reference_tx = OfdmModulator::new();
    let mut samples = vec![Cplx::ZERO; n_sym * SYMBOL_LEN];
    let mut reference_samples = vec![Cplx::ZERO; n_sym * SYMBOL_LEN];
    planned_tx.modulate_packet_into(&carriers, &mut samples);
    for (s, data) in carriers.chunks_exact(DATA_CARRIERS).enumerate() {
        reference_tx.modulate_into_reference(
            data,
            &mut reference_samples[s * SYMBOL_LEN..(s + 1) * SYMBOL_LEN],
        );
    }
    assert_eq!(
        samples, reference_samples,
        "planned and reference modulators must stay bit-identical"
    );

    let planned_mod = bench("ofdm/modulate/planned", iters(), || {
        for _ in 0..reps {
            planned_tx.reset();
            planned_tx.modulate_packet_into(&carriers, &mut samples);
        }
        std::hint::black_box(&samples);
    });
    report(&planned_mod);
    let reference_mod = bench("ofdm/modulate/reference", iters(), || {
        for _ in 0..reps {
            reference_tx.reset();
            for (s, data) in carriers.chunks_exact(DATA_CARRIERS).enumerate() {
                reference_tx.modulate_into_reference(
                    data,
                    &mut reference_samples[s * SYMBOL_LEN..(s + 1) * SYMBOL_LEN],
                );
            }
        }
        std::hint::black_box(&reference_samples);
    });
    report(&reference_mod);

    let mut planned_rx = OfdmDemodulator::new();
    let mut reference_rx = OfdmDemodulator::new();
    let mut recovered = Vec::new();
    let mut reference_sym = Vec::new();
    planned_rx.demodulate_packet_into(&samples, &mut recovered);
    let mut reference_recovered = Vec::new();
    for sym in samples.chunks_exact(SYMBOL_LEN) {
        reference_rx.demodulate_into_reference(sym, &mut reference_sym);
        reference_recovered.extend_from_slice(&reference_sym);
    }
    assert_eq!(
        recovered, reference_recovered,
        "planned and reference demodulators must stay bit-identical"
    );

    let planned_demod = bench("ofdm/demodulate/planned", iters(), || {
        for _ in 0..reps {
            planned_rx.reset();
            planned_rx.demodulate_packet_into(&samples, &mut recovered);
        }
        std::hint::black_box(&recovered);
    });
    report(&planned_demod);
    let reference_demod = bench("ofdm/demodulate/reference", iters(), || {
        for _ in 0..reps {
            reference_rx.reset();
            for sym in samples.chunks_exact(SYMBOL_LEN) {
                reference_rx.demodulate_into_reference(sym, &mut reference_sym);
            }
        }
        std::hint::black_box(&reference_sym);
    });
    report(&reference_demod);

    let total_samples = samples_per_frame * u64::from(reps);
    let rows = vec![
        OfdmRow {
            op: "modulate",
            planned_msps: total_samples as f64 / planned_mod.mean_secs / 1e6,
            reference_msps: total_samples as f64 / reference_mod.mean_secs / 1e6,
            planned: planned_mod,
            reference: reference_mod,
        },
        OfdmRow {
            op: "demodulate",
            planned_msps: total_samples as f64 / planned_demod.mean_secs / 1e6,
            reference_msps: total_samples as f64 / reference_demod.mean_secs / 1e6,
            planned: planned_demod,
            reference: reference_demod,
        },
    ];
    (rows, samples)
}

struct MapRow {
    modulation: &'static str,
    map_planned_mbps: f64,
    map_reference_mbps: f64,
    demap_planned_mbps: f64,
    demap_reference_mbps: f64,
}

fn time_map_demap(modulation: Modulation, name: &'static str, rng: &mut SmallRng) -> MapRow {
    let bps = modulation.bits_per_symbol();
    let n_bits = DATA_CARRIERS * bps * 64; // 64 OFDM symbols of coded bits
    let reps = (budget(8_000_000) / n_bits as u64).max(1) as u32;
    let bits: Vec<u8> = (0..n_bits).map(|_| rng.gen_bit()).collect();
    let mapper = Mapper::new(modulation);
    let demapper = Demapper::new(modulation, 8, SnrScaling::Off);

    let mut points = Vec::new();
    let mut reference_points = Vec::new();
    mapper.map_into(&bits, &mut points);
    mapper.map_into_reference(&bits, &mut reference_points);
    assert_eq!(points, reference_points, "{name}: map kernels diverged");

    let map_planned = bench(&format!("map/{name}/planned"), iters(), || {
        for _ in 0..reps {
            mapper.map_into(&bits, &mut points);
        }
        std::hint::black_box(&points);
    });
    report(&map_planned);
    let map_reference = bench(&format!("map/{name}/reference"), iters(), || {
        for _ in 0..reps {
            mapper.map_into_reference(&bits, &mut reference_points);
        }
        std::hint::black_box(&reference_points);
    });
    report(&map_reference);

    // Noisy received points exercise the full piecewise LLR range.
    let symbols: Vec<Cplx> = points
        .iter()
        .map(|p| {
            *p + Cplx::new(
                rng.gen_i64(-300, 300) as f64 / 1000.0,
                rng.gen_i64(-300, 300) as f64 / 1000.0,
            )
        })
        .collect();
    let mut llrs = Vec::new();
    let mut reference_llrs = Vec::new();
    demapper.demap_into(&symbols, &mut llrs);
    demapper.demap_into_reference(&symbols, &mut reference_llrs);
    assert_eq!(llrs, reference_llrs, "{name}: demap kernels diverged");

    let demap_planned = bench(&format!("demap/{name}/planned"), iters(), || {
        for _ in 0..reps {
            demapper.demap_into(&symbols, &mut llrs);
        }
        std::hint::black_box(&llrs);
    });
    report(&demap_planned);
    let demap_reference = bench(&format!("demap/{name}/reference"), iters(), || {
        for _ in 0..reps {
            demapper.demap_into_reference(&symbols, &mut reference_llrs);
        }
        std::hint::black_box(&reference_llrs);
    });
    report(&demap_reference);

    let total_bits = (n_bits as u64) * u64::from(reps);
    MapRow {
        modulation: name,
        map_planned_mbps: total_bits as f64 / map_planned.mean_secs / 1e6,
        map_reference_mbps: total_bits as f64 / map_reference.mean_secs / 1e6,
        demap_planned_mbps: total_bits as f64 / demap_planned.mean_secs / 1e6,
        demap_reference_mbps: total_bits as f64 / demap_reference.mean_secs / 1e6,
    }
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_BE9C);
    let n_sym = 256usize;
    // WILIS_BITS scales the measurement budgets; WILIS_FAST drops to a
    // single timed iteration (the CI smoke configuration).
    let ofdm_reps = (budget(4_000_000) / (n_sym * SYMBOL_LEN) as u64).max(1) as u32;
    banner(&format!(
        "perf_phy: {n_sym} OFDM symbols/frame x {ofdm_reps} reps x {} iters",
        iters()
    ));

    let (ofdm_rows, _samples) = time_ofdm(n_sym, ofdm_reps, &mut rng);
    println!();
    for row in &ofdm_rows {
        println!(
            "ofdm {:<11} planned {:>9.2} Msamples/s   reference {:>9.2} Msamples/s   speedup {:.2}x",
            row.op, row.planned_msps, row.reference_msps, row.speedup()
        );
    }

    let map_rows: Vec<MapRow> = [
        (Modulation::Bpsk, "bpsk"),
        (Modulation::Qpsk, "qpsk"),
        (Modulation::Qam16, "qam16"),
        (Modulation::Qam64, "qam64"),
    ]
    .into_iter()
    .map(|(m, name)| time_map_demap(m, name, &mut rng))
    .collect();
    println!();
    for row in &map_rows {
        println!(
            "{:<6} map {:>8.2}/{:>8.2} Mb/s ({:.2}x)   demap {:>8.2}/{:>8.2} Mb/s ({:.2}x)",
            row.modulation,
            row.map_planned_mbps,
            row.map_reference_mbps,
            row.map_planned_mbps / row.map_reference_mbps,
            row.demap_planned_mbps,
            row.demap_reference_mbps,
            row.demap_planned_mbps / row.demap_reference_mbps,
        );
    }

    // End-to-end grid throughput spanning all four modulations, so the
    // planned front-end is on the measured path with everything else.
    let payload_bits = 1704usize;
    let packets = (budget(600_000) / (4 * payload_bits) as u64).max(2) as u32;
    let grid = SweepGrid::new()
        .rates(&[
            PhyRate::BpskHalf,
            PhyRate::QpskHalf,
            PhyRate::Qam16Half,
            PhyRate::Qam64ThreeQuarters,
        ])
        .decoders(&["viterbi"])
        .links(&["none"])
        .snrs_db(&[8.0, 14.0])
        .packets(packets)
        .payload_bits(payload_bits);
    let scenarios = grid.scenarios();
    let packets_total = scenarios.len() as u64 * u64::from(packets);
    let runner = SweepRunner::auto();
    let grid_m = bench("grid/packets", iters(), || {
        let results = runner.run(&scenarios).unwrap();
        std::hint::black_box(&results);
    });
    report(&grid_m);
    let packets_per_sec = packets_total as f64 / grid_m.mean_secs;
    println!(
        "  -> {} scenarios, {} packets, {:.0} packets/s",
        scenarios.len(),
        packets_total,
        packets_per_sec
    );

    // Machine-readable trajectory: the BENCH_phy.json artifact this and
    // every future PR records.
    let ofdm_objs: Vec<String> = ofdm_rows
        .iter()
        .map(|row| {
            format!(
                "{{\"op\":\"{}\",\"planned_msps\":{:.3},\"reference_msps\":{:.3},\"speedup\":{:.3},\"planned_mean_secs\":{:.9},\"reference_mean_secs\":{:.9}}}",
                row.op,
                row.planned_msps,
                row.reference_msps,
                row.speedup(),
                row.planned.mean_secs,
                row.reference.mean_secs
            )
        })
        .collect();
    let map_objs: Vec<String> = map_rows
        .iter()
        .map(|row| {
            format!(
                "{{\"modulation\":\"{}\",\"map_planned_mbps\":{:.3},\"map_reference_mbps\":{:.3},\"map_speedup\":{:.3},\"demap_planned_mbps\":{:.3},\"demap_reference_mbps\":{:.3},\"demap_speedup\":{:.3}}}",
                row.modulation,
                row.map_planned_mbps,
                row.map_reference_mbps,
                row.map_planned_mbps / row.map_reference_mbps,
                row.demap_planned_mbps,
                row.demap_reference_mbps,
                row.demap_planned_mbps / row.demap_reference_mbps,
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"perf_phy\",\"symbols\":{},\"samples_per_symbol\":{},\"ofdm\":[{}],\"modulations\":[{}],\"grid\":{{\"scenarios\":{},\"packets_total\":{},\"packets_per_sec\":{:.3},\"mean_secs\":{:.9}}}}}\n",
        n_sym,
        SYMBOL_LEN,
        ofdm_objs.join(","),
        map_objs.join(","),
        scenarios.len(),
        packets_total,
        packets_per_sec,
        grid_m.mean_secs
    );
    println!("\nJSON:\n{json}");
    // Default to the workspace root (cargo runs bench binaries from the
    // package directory), so the trajectory file lands next to README.md.
    let out_path = std::env::var("WILIS_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phy.json").to_string()
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
