//! Scenario-engine throughput: serial vs parallel wall time on the
//! Figure 5 grid, with JSON lines for the perf trajectory.
//!
//! The paper's co-simulation is throughput-bound by the software side
//! (§3); this bench tracks the reproduction's answer — the batched sweep
//! runner — and records the speedup the worker pool buys at each thread
//! count, plus the bit-identity check that makes the parallelism free of
//! semantic cost. A final section times the same grid through the
//! memoizing [`SweepService`], cold (empty cache) versus warm (every
//! point served from the result store).

use wilis::phy::PhyRate;
use wilis::scenario::{SweepGrid, SweepRunner};
use wilis::service::SweepService;
use wilis_bench::harness::{bench, report};
use wilis_bench::{banner, budget};

fn fig5_grid(packets: u32) -> SweepGrid {
    SweepGrid::new()
        .rates(&[PhyRate::Qam16Half, PhyRate::QpskHalf])
        .decoders(&["sova", "bcjr"])
        .snrs_db(&[6.0, 7.0, 8.0])
        .seeds(&[1, 2])
        .packets(packets)
        .payload_bits(1704)
}

fn main() {
    // Default budget: ~4.1M payload bits across the grid per measurement.
    let packets = (budget(100_000) / 1704).max(4) as u32;
    let grid = fig5_grid(packets);
    let scenarios = grid.scenarios();
    banner(&format!(
        "sweep_grid: {} scenarios x {} packets of 1704 bits (WILIS_BITS to scale)",
        scenarios.len(),
        packets
    ));

    let iters = if std::env::var("WILIS_FAST").is_ok() {
        1
    } else {
        3
    };
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let bits = scenarios.len() as u64 * u64::from(packets) * 1704;

    let serial_reference = SweepRunner::new(1).run(&scenarios).unwrap();
    let mut json = Vec::new();
    let mut serial_secs = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let runner = SweepRunner::new(threads);
        let m = bench(&format!("sweep_grid/t{threads}"), iters, || {
            let results = runner.run(&scenarios).unwrap();
            assert_eq!(results, serial_reference, "determinism violated");
        });
        report(&m);
        if threads == 1 {
            serial_secs = m.mean_secs;
        }
        let speedup = serial_secs / m.mean_secs;
        println!(
            "  -> {:.2} Mb/s simulated, speedup {speedup:.2}x{}",
            bits as f64 / m.mean_secs / 1e6,
            if threads > host {
                " (oversubscribed)"
            } else {
                ""
            }
        );
        json.push(format!(
            "{{\"bench\":\"sweep_grid\",\"threads\":{threads},\"mean_secs\":{:.9},\"bits\":{bits},\"speedup\":{speedup:.4}}}",
            m.mean_secs
        ));
    }
    // Service layer: the same grid behind the memoized result store.
    // Cold constructs a fresh service per iteration (every point is a
    // miss); warm reuses one pre-populated service (every point is a
    // hit and zero packets are simulated).
    let cold = bench("sweep_grid/service_cold", iters, || {
        let mut service = SweepService::new(SweepRunner::auto());
        let results = service.run(&scenarios).unwrap();
        assert_eq!(results, serial_reference, "cold service run diverged");
    });
    report(&cold);
    let mut warm_service = SweepService::new(SweepRunner::auto());
    warm_service.run(&scenarios).unwrap();
    warm_service.reset_metrics();
    let warm = bench("sweep_grid/service_warm", iters, || {
        let results = warm_service.run(&scenarios).unwrap();
        assert_eq!(results, serial_reference, "warm service run diverged");
    });
    report(&warm);
    assert_eq!(
        warm_service.metrics().packets_simulated,
        0,
        "warm service runs must be pure cache hits"
    );
    println!("  -> warm {}", warm_service.metrics().summary());
    json.push(format!(
        "{{\"bench\":\"sweep_grid\",\"service\":\"cold\",\"mean_secs\":{:.9},\"bits\":{bits}}}",
        cold.mean_secs
    ));
    json.push(format!(
        "{{\"bench\":\"sweep_grid\",\"service\":\"warm\",\"mean_secs\":{:.9},\"bits\":{bits}}}",
        warm.mean_secs
    ));

    println!("\nJSON:");
    for line in &json {
        println!("{line}");
    }
}
