//! §4.1 ablation: demapper soft-output width.
//!
//! The paper's headline approximation: dropping the SNR/modulation factors
//! lets the demapper emit 3-8 bit soft values instead of 23-28 bits,
//! shrinking the decoder "significantly" while preserving decode
//! performance. This sweep measures what each width costs in decode BER
//! and hint quality, alongside its area.

use wilis::area::{synthesize, DecoderChoice, DecoderParams};
use wilis::channel::SnrDb;
use wilis::phy::PhyRate;
use wilis::softphy::{calibrate_hints, CalibrationConfig, DecoderKind};
use wilis_bench::{banner, budget};

fn main() {
    let bits = budget(120_000);
    banner(&format!(
        "Ablation: demapper output width (QAM-16 1/2 @ 7.25 dB, BCJR, {bits} bits/point)"
    ));
    println!(
        "{:>6} {:>12} {:>14} {:>10} {:>12}",
        "width", "decode BER", "hint slope", "BMU LUTs", "decoder LUTs"
    );
    let mut previous_ber = None;
    for width in [3u32, 4, 5, 6, 8, 12, 23] {
        let cal = calibrate_hints(&CalibrationConfig {
            demapper_bits: width,
            ..CalibrationConfig::new(
                PhyRate::Qam16Half,
                DecoderKind::Bcjr,
                SnrDb::new(7.25),
                bits,
            )
        });
        let slope = cal
            .fit
            .map(|f| format!("{:+.4}", f.slope))
            .unwrap_or_else(|| "-".into());
        let params = DecoderParams {
            input_bits: width.min(28),
            metric_bits: (width + 4).min(28),
            ..DecoderParams::paper_default()
        };
        let area = synthesize(DecoderChoice::Bcjr, &params);
        let bmu = area
            .units
            .iter()
            .find(|u| u.name == "Branch Metric Unit")
            .unwrap();
        println!(
            "{:>6} {:>12.3e} {:>14} {:>10} {:>12}",
            width, cal.overall_ber, slope, bmu.area.luts, area.total.luts
        );
        previous_ber = Some(cal.overall_ber);
    }
    let _ = previous_ber;
    println!(
        "\nPaper reference: 3-8 bit inputs decode as well as the 23-28 bit exact\n\
         form (relative ordering preserved), while the area shrinks - but the\n\
         magnitude information that BER estimation needs degrades at the narrow end."
    );
}
