//! Rounding modes and bit-width reduction.
//!
//! Bit-width reduction is the approximation the paper leans on hardest: the
//! 802.11 demapper's "exact" soft outputs are 23–28 bits wide, but the
//! decoders in §4.1 run on 3–8 bit inputs. These helpers perform that
//! reduction the way hardware does — shift, round, saturate.

use crate::QFormat;

/// Rounding mode applied when discarding fractional precision.
///
/// Hardware truncation (`floor` on the raw two's-complement value) is the
/// cheapest and most common; round-to-nearest costs an adder but halves the
/// bias. Both appear in the decoder literature the paper builds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Round toward negative infinity (drop bits). Zero hardware cost.
    Truncate,
    /// Round to nearest, ties away from zero. One adder.
    #[default]
    Nearest,
}

/// Quantizes a real value to the raw integer of `fmt`, saturating.
///
/// # Example
///
/// ```
/// use wilis_fxp::{quantize_f64, QFormat, Rounding};
///
/// let q = QFormat::new(4, 3)?;
/// assert_eq!(quantize_f64(1.3, q, Rounding::Nearest), 10); // 1.25 in Q4.3
/// assert_eq!(quantize_f64(1.3, q, Rounding::Truncate), 10);
/// assert_eq!(quantize_f64(99.0, q, Rounding::Nearest), q.max_raw());
/// # Ok::<(), wilis_fxp::FormatError>(())
/// ```
pub fn quantize_f64(value: f64, fmt: QFormat, rounding: Rounding) -> i64 {
    let scaled = value / fmt.lsb();
    let raw = match rounding {
        Rounding::Truncate => scaled.floor(),
        Rounding::Nearest => scaled.round(),
    };
    // NaN maps to zero: hardware has no NaN, and a zero soft value is the
    // least-damaging "no confidence" interpretation.
    if raw.is_nan() {
        return 0;
    }
    if raw >= fmt.max_raw() as f64 {
        fmt.max_raw()
    } else if raw <= fmt.min_raw() as f64 {
        fmt.min_raw()
    } else {
        raw as i64
    }
}

/// Requantizes a raw value from format `from` into format `to`.
///
/// This models a port-width change between two hardware modules: fractional
/// bits are shifted (with rounding when precision is lost) and the result is
/// saturated into the destination range.
///
/// # Example
///
/// ```
/// use wilis_fxp::{requantize, QFormat, Rounding};
///
/// let wide = QFormat::new(20, 7)?;   // 28-bit "exact" demapper value
/// let narrow = QFormat::new(2, 1)?;  // 4-bit decoder input
/// // 5.5 in Q20.7 is raw 704; in Q2.1 it saturates to 3.5 (raw 7).
/// assert_eq!(requantize(704, wide, narrow, Rounding::Nearest), 7);
/// # Ok::<(), wilis_fxp::FormatError>(())
/// ```
pub fn requantize(raw: i64, from: QFormat, to: QFormat, rounding: Rounding) -> i64 {
    let shifted = match to.frac_bits() as i64 - from.frac_bits() as i64 {
        0 => raw,
        up if up > 0 => {
            // Gaining fractional bits: exact, barring overflow (saturated below).
            raw.checked_shl(up as u32)
                .unwrap_or(if raw >= 0 { i64::MAX } else { i64::MIN })
        }
        down => {
            let shift = (-down) as u32;
            match rounding {
                Rounding::Truncate => raw >> shift,
                Rounding::Nearest => {
                    let half = 1i64 << (shift - 1);
                    if raw >= 0 {
                        (raw + half) >> shift
                    } else {
                        -((-raw + half) >> shift)
                    }
                }
            }
        }
    };
    to.saturate_raw(shifted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32, f: u32) -> QFormat {
        QFormat::new(i, f).unwrap()
    }

    #[test]
    fn quantize_rounding_modes() {
        let fmt = q(4, 2); // lsb = 0.25
        assert_eq!(quantize_f64(1.10, fmt, Rounding::Truncate), 4); // 1.00
        assert_eq!(quantize_f64(1.10, fmt, Rounding::Nearest), 4);
        assert_eq!(quantize_f64(1.13, fmt, Rounding::Nearest), 5); // 1.25
        assert_eq!(quantize_f64(-1.13, fmt, Rounding::Nearest), -5);
        assert_eq!(quantize_f64(-1.10, fmt, Rounding::Truncate), -5); // floor
    }

    #[test]
    fn quantize_saturates() {
        let fmt = q(2, 0);
        assert_eq!(quantize_f64(100.0, fmt, Rounding::Nearest), 3);
        assert_eq!(quantize_f64(-100.0, fmt, Rounding::Nearest), -4);
    }

    #[test]
    fn quantize_nan_is_zero() {
        let fmt = q(4, 4);
        assert_eq!(quantize_f64(f64::NAN, fmt, Rounding::Nearest), 0);
    }

    #[test]
    fn quantize_infinities_saturate() {
        let fmt = q(4, 4);
        assert_eq!(
            quantize_f64(f64::INFINITY, fmt, Rounding::Nearest),
            fmt.max_raw()
        );
        assert_eq!(
            quantize_f64(f64::NEG_INFINITY, fmt, Rounding::Nearest),
            fmt.min_raw()
        );
    }

    #[test]
    fn requantize_same_format_is_identity() {
        let fmt = q(5, 3);
        for raw in [-100, -1, 0, 1, 100] {
            assert_eq!(requantize(raw, fmt, fmt, Rounding::Nearest), raw);
        }
    }

    #[test]
    fn requantize_widening_is_exact() {
        let from = q(4, 1);
        let to = q(8, 5);
        // 2.5 -> raw 5 in Q4.1 -> raw 80 in Q8.5
        assert_eq!(requantize(5, from, to, Rounding::Truncate), 80);
    }

    #[test]
    fn requantize_narrowing_rounds_and_saturates() {
        let from = q(10, 4);
        let to = q(2, 1);
        // 1.4375 = raw 23 in Q10.4 -> 1.5 = raw 3 in Q2.1 (nearest)
        assert_eq!(requantize(23, from, to, Rounding::Nearest), 3);
        // truncate: 1.4375 -> 1.0 -> wait: >> 3 of 23 = 2 (raw), i.e. 1.0
        assert_eq!(requantize(23, from, to, Rounding::Truncate), 2);
        // large value saturates to 3.5
        assert_eq!(
            requantize(10_000, from, to, Rounding::Nearest),
            to.max_raw()
        );
        assert_eq!(
            requantize(-10_000, from, to, Rounding::Nearest),
            to.min_raw()
        );
    }

    #[test]
    fn requantize_nearest_is_symmetric() {
        let from = q(10, 4);
        let to = q(10, 1);
        for raw in -200..=200 {
            let pos = requantize(raw, from, to, Rounding::Nearest);
            let neg = requantize(-raw, from, to, Rounding::Nearest);
            assert_eq!(pos, -neg, "asymmetry at raw={raw}");
        }
    }
}
