//! Property-based tests on the fixed-point substrate.

use proptest::prelude::*;

use crate::quantize::{quantize_f64, requantize, Rounding};
use crate::{CFixed, Fixed, QFormat};

fn arb_format() -> impl Strategy<Value = QFormat> {
    (1u32..20, 0u32..20).prop_map(|(i, f)| QFormat::new(i, f).unwrap())
}

fn arb_rounding() -> impl Strategy<Value = Rounding> {
    prop_oneof![Just(Rounding::Truncate), Just(Rounding::Nearest)]
}

proptest! {
    #[test]
    fn quantize_always_in_range(v in -1e12f64..1e12, fmt in arb_format(), r in arb_rounding()) {
        let raw = quantize_f64(v, fmt, r);
        prop_assert!(raw >= fmt.min_raw());
        prop_assert!(raw <= fmt.max_raw());
    }

    #[test]
    fn quantize_error_bounded_by_lsb(fmt in arb_format(), r in arb_rounding(), frac in -0.999f64..0.999) {
        // Pick a value comfortably inside the representable range.
        let v = fmt.max_f64() * frac * 0.5;
        let raw = quantize_f64(v, fmt, r);
        let back = raw as f64 * fmt.lsb();
        prop_assert!((back - v).abs() <= fmt.lsb() + 1e-12,
            "value {v} quantized to {back}, err {} > lsb {}", (back - v).abs(), fmt.lsb());
    }

    #[test]
    fn add_is_commutative(fmt in arb_format(), a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let x = Fixed::from_f64(a, fmt, Rounding::Nearest);
        let y = Fixed::from_f64(b, fmt, Rounding::Nearest);
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn mul_is_commutative(fmt in arb_format(), a in -1e4f64..1e4, b in -1e4f64..1e4) {
        let x = Fixed::from_f64(a, fmt, Rounding::Nearest);
        let y = Fixed::from_f64(b, fmt, Rounding::Nearest);
        prop_assert_eq!(x * y, y * x);
    }

    #[test]
    fn results_never_escape_format(fmt in arb_format(), a in -1e9f64..1e9, b in -1e9f64..1e9) {
        let x = Fixed::from_f64(a, fmt, Rounding::Nearest);
        let y = Fixed::from_f64(b, fmt, Rounding::Nearest);
        for v in [x + y, x - y, x * y, -x, x.abs()] {
            prop_assert!(v.raw() >= fmt.min_raw() && v.raw() <= fmt.max_raw());
        }
    }

    #[test]
    fn requantize_widen_then_narrow_is_identity(
        fmt in arb_format(), a in -1e4f64..1e4, r in arb_rounding()
    ) {
        // Widening preserves information, so narrowing back must recover it.
        let wide = QFormat::new(fmt.int_bits() + 8, fmt.frac_bits() + 8).unwrap();
        let x = Fixed::from_f64(a, fmt, Rounding::Nearest);
        let roundtrip = x.requantize(wide, r).requantize(fmt, r);
        prop_assert_eq!(roundtrip, x);
    }

    #[test]
    fn requantize_is_monotone(
        raw_a in -100_000i64..100_000,
        raw_b in -100_000i64..100_000,
        r in arb_rounding(),
    ) {
        let from = QFormat::new(20, 8).unwrap();
        let to = QFormat::new(4, 2).unwrap();
        let (a, b) = (requantize(raw_a, from, to, r), requantize(raw_b, from, to, r));
        if raw_a <= raw_b {
            prop_assert!(a <= b);
        } else {
            prop_assert!(a >= b);
        }
    }

    #[test]
    fn complex_mul_by_conjugate_is_real(fmt_f in 6u32..14, re in -3.0f64..3.0, im in -3.0f64..3.0) {
        let fmt = QFormat::new(8, fmt_f).unwrap();
        let a = CFixed::from_f64(re, im, fmt, Rounding::Nearest);
        let p = a * a.conj();
        // Imaginary part of a*conj(a) is exactly zero in exact arithmetic;
        // fixed point rounding may leave at most a couple of LSBs.
        prop_assert!(p.im().to_f64().abs() <= 2.0 * fmt.lsb());
        prop_assert!(p.re().to_f64() >= 0.0);
    }

    #[test]
    fn complex_add_matches_parts(fmt in arb_format(), a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let x = CFixed::from_f64(a, b, fmt, Rounding::Nearest);
        let y = CFixed::from_f64(b, a, fmt, Rounding::Nearest);
        let s = x + y;
        prop_assert_eq!(s.re(), x.re() + y.re());
        prop_assert_eq!(s.im(), x.im() + y.im());
    }
}
