//! Randomized property tests on the fixed-point substrate (deterministic,
//! self-seeded — the offline analog of a proptest suite).

use crate::quantize::{quantize_f64, requantize, Rounding};
use crate::rng::SmallRng;
use crate::{CFixed, Fixed, QFormat};

const CASES: u64 = 128;

fn formats(rng: &mut SmallRng) -> QFormat {
    let i = rng.gen_i64(1, 19) as u32;
    let f = rng.gen_i64(0, 19) as u32;
    QFormat::new(i, f).unwrap() // lint: allow(panic-policy) — test-only module (`#[cfg(test)] mod prop_tests` in lib.rs)
}

fn roundings(rng: &mut SmallRng) -> Rounding {
    if rng.gen_bool(0.5) {
        Rounding::Truncate
    } else {
        Rounding::Nearest
    }
}

#[test]
fn quantize_always_in_range() {
    let mut rng = SmallRng::seed_from_u64(0xF0A1);
    for _ in 0..CASES {
        let fmt = formats(&mut rng);
        let r = roundings(&mut rng);
        let v = rng.gen_range(-1e12..1e12);
        let raw = quantize_f64(v, fmt, r);
        assert!(raw >= fmt.min_raw());
        assert!(raw <= fmt.max_raw());
    }
}

#[test]
fn quantize_error_bounded_by_lsb() {
    let mut rng = SmallRng::seed_from_u64(0xF0A2);
    for _ in 0..CASES {
        let fmt = formats(&mut rng);
        let r = roundings(&mut rng);
        // Pick a value comfortably inside the representable range.
        let v = fmt.max_f64() * rng.gen_range(-0.999..0.999) * 0.5;
        let raw = quantize_f64(v, fmt, r);
        let back = raw as f64 * fmt.lsb();
        assert!(
            (back - v).abs() <= fmt.lsb() + 1e-12,
            "value {v} quantized to {back}, err {} > lsb {}",
            (back - v).abs(),
            fmt.lsb()
        );
    }
}

#[test]
fn add_and_mul_are_commutative() {
    let mut rng = SmallRng::seed_from_u64(0xF0A3);
    for _ in 0..CASES {
        let fmt = formats(&mut rng);
        let x = Fixed::from_f64(rng.gen_range(-1e4..1e4), fmt, Rounding::Nearest);
        let y = Fixed::from_f64(rng.gen_range(-1e4..1e4), fmt, Rounding::Nearest);
        assert_eq!(x + y, y + x);
        assert_eq!(x * y, y * x);
    }
}

#[test]
fn results_never_escape_format() {
    let mut rng = SmallRng::seed_from_u64(0xF0A4);
    for _ in 0..CASES {
        let fmt = formats(&mut rng);
        let x = Fixed::from_f64(rng.gen_range(-1e9..1e9), fmt, Rounding::Nearest);
        let y = Fixed::from_f64(rng.gen_range(-1e9..1e9), fmt, Rounding::Nearest);
        for v in [x + y, x - y, x * y, -x, x.abs()] {
            assert!(v.raw() >= fmt.min_raw() && v.raw() <= fmt.max_raw());
        }
    }
}

#[test]
fn requantize_widen_then_narrow_is_identity() {
    let mut rng = SmallRng::seed_from_u64(0xF0A5);
    for _ in 0..CASES {
        let fmt = formats(&mut rng);
        let r = roundings(&mut rng);
        // Widening preserves information, so narrowing back must recover it.
        let wide = QFormat::new(fmt.int_bits() + 8, fmt.frac_bits() + 8).unwrap();
        let x = Fixed::from_f64(rng.gen_range(-1e4..1e4), fmt, Rounding::Nearest);
        let roundtrip = x.requantize(wide, r).requantize(fmt, r);
        assert_eq!(roundtrip, x);
    }
}

#[test]
fn requantize_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0xF0A6);
    let from = QFormat::new(20, 8).unwrap();
    let to = QFormat::new(4, 2).unwrap();
    for _ in 0..CASES {
        let r = roundings(&mut rng);
        let raw_a = rng.gen_i64(-100_000, 100_000);
        let raw_b = rng.gen_i64(-100_000, 100_000);
        let (a, b) = (
            requantize(raw_a, from, to, r),
            requantize(raw_b, from, to, r),
        );
        if raw_a <= raw_b {
            assert!(a <= b);
        } else {
            assert!(a >= b);
        }
    }
}

#[test]
fn complex_mul_by_conjugate_is_real() {
    let mut rng = SmallRng::seed_from_u64(0xF0A7);
    for _ in 0..CASES {
        let fmt = QFormat::new(8, rng.gen_i64(6, 13) as u32).unwrap();
        let re = rng.gen_range(-3.0..3.0);
        let im = rng.gen_range(-3.0..3.0);
        let a = CFixed::from_f64(re, im, fmt, Rounding::Nearest);
        let p = a * a.conj();
        // Imaginary part of a*conj(a) is exactly zero in exact arithmetic;
        // fixed point rounding may leave at most a couple of LSBs.
        assert!(p.im().to_f64().abs() <= 2.0 * fmt.lsb());
        assert!(p.re().to_f64() >= 0.0);
    }
}

#[test]
fn complex_add_matches_parts() {
    let mut rng = SmallRng::seed_from_u64(0xF0A8);
    for _ in 0..CASES {
        let fmt = formats(&mut rng);
        let a = rng.gen_range(-100.0..100.0);
        let b = rng.gen_range(-100.0..100.0);
        let x = CFixed::from_f64(a, b, fmt, Rounding::Nearest);
        let y = CFixed::from_f64(b, a, fmt, Rounding::Nearest);
        let s = x + y;
        assert_eq!(s.re(), x.re() + y.re());
        assert_eq!(s.im(), x.im() + y.im());
    }
}
