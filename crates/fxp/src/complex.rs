//! Fixed-point complex numbers for baseband samples.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::quantize::Rounding;
use crate::{Fixed, QFormat};

/// A complex number with fixed-point real and imaginary parts.
///
/// Baseband samples in the modeled hardware travel as I/Q pairs in a shared
/// [`QFormat`]. Multiplication models the standard four-multiplier complex
/// multiplier with saturating accumulation.
///
/// # Example
///
/// ```
/// use wilis_fxp::{CFixed, QFormat, Rounding};
///
/// let fmt = QFormat::new(6, 8)?;
/// let a = CFixed::from_f64(1.0, 1.0, fmt, Rounding::Nearest);
/// let rotated = a * CFixed::from_f64(0.0, 1.0, fmt, Rounding::Nearest);
/// assert_eq!((rotated.re().to_f64(), rotated.im().to_f64()), (-1.0, 1.0));
/// # Ok::<(), wilis_fxp::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CFixed {
    re: Fixed,
    im: Fixed,
}

impl CFixed {
    /// Zero in the given format.
    pub fn zero(fmt: QFormat) -> Self {
        Self {
            re: Fixed::zero(fmt),
            im: Fixed::zero(fmt),
        }
    }

    /// Builds a complex value from two fixed-point parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts have different formats.
    pub fn new(re: Fixed, im: Fixed) -> Self {
        assert_eq!(
            re.format(),
            im.format(),
            "complex parts must share a format"
        );
        Self { re, im }
    }

    /// Quantizes a complex real-valued pair into `fmt`.
    pub fn from_f64(re: f64, im: f64, fmt: QFormat, rounding: Rounding) -> Self {
        Self {
            re: Fixed::from_f64(re, fmt, rounding),
            im: Fixed::from_f64(im, fmt, rounding),
        }
    }

    /// Real part.
    pub fn re(self) -> Fixed {
        self.re
    }

    /// Imaginary part.
    pub fn im(self) -> Fixed {
        self.im
    }

    /// The shared format of both parts.
    pub fn format(self) -> QFormat {
        self.re.format()
    }

    /// Converts to a floating-point `(re, im)` pair.
    pub fn to_f64(self) -> (f64, f64) {
        (self.re.to_f64(), self.im.to_f64())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²` as a saturating fixed value.
    pub fn norm_sq(self) -> Fixed {
        self.re * self.re + self.im * self.im
    }

    /// Reinterprets both parts in another format.
    pub fn requantize(self, to: QFormat, rounding: Rounding) -> Self {
        Self {
            re: self.re.requantize(to, rounding),
            im: self.im.requantize(to, rounding),
        }
    }
}

impl Add for CFixed {
    type Output = CFixed;

    /// Component-wise saturating addition.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for CFixed {
    type Output = CFixed;

    /// Component-wise saturating subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for CFixed {
    type Output = CFixed;

    /// Four-multiplier complex product with saturating accumulation.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for CFixed {
    type Output = CFixed;

    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Debug for CFixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CFixed({} {:+}i as {})",
            self.re.to_f64(),
            self.im.to_f64(),
            self.format()
        )
    }
}

impl fmt::Display for CFixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re.to_f64(), self.im.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32, f: u32) -> QFormat {
        QFormat::new(i, f).unwrap()
    }

    fn c(re: f64, im: f64, fmt: QFormat) -> CFixed {
        CFixed::from_f64(re, im, fmt, Rounding::Nearest)
    }

    #[test]
    fn add_and_sub() {
        let fmt = q(6, 4);
        let a = c(1.5, -0.5, fmt);
        let b = c(0.25, 2.0, fmt);
        assert_eq!((a + b).to_f64(), (1.75, 1.5));
        assert_eq!((a - b).to_f64(), (1.25, -2.5));
    }

    #[test]
    fn mul_matches_float_math() {
        let fmt = q(6, 10);
        let a = c(1.5, 2.0, fmt);
        let b = c(-0.5, 1.0, fmt);
        let p = a * b;
        // (1.5+2i)(-0.5+i) = -0.75 + 1.5i - 1i - 2 = -2.75 + 0.5i
        assert_eq!(p.to_f64(), (-2.75, 0.5));
    }

    #[test]
    fn conj_and_norm() {
        let fmt = q(6, 8);
        let a = c(3.0, -4.0, fmt);
        assert_eq!(a.conj().to_f64(), (3.0, 4.0));
        assert_eq!(a.norm_sq().to_f64(), 25.0);
    }

    #[test]
    fn rotation_by_j() {
        let fmt = q(6, 8);
        let a = c(1.0, 1.0, fmt);
        let j = c(0.0, 1.0, fmt);
        assert_eq!((a * j).to_f64(), (-1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "share a format")]
    fn mixed_part_formats_panic() {
        let _ = CFixed::new(Fixed::zero(q(4, 2)), Fixed::zero(q(4, 3)));
    }

    #[test]
    fn requantize_applies_to_both_parts() {
        let a = c(5.5, -5.5, q(20, 7));
        let n = a.requantize(q(2, 1), Rounding::Nearest);
        assert_eq!(n.to_f64(), (3.5, -4.0));
    }
}
