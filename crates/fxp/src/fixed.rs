//! Saturating fixed-point scalar.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::quantize::{quantize_f64, Rounding};
use crate::QFormat;

/// A fixed-point number: an integer raw value interpreted in a [`QFormat`].
///
/// All arithmetic saturates to the format's range rather than wrapping,
/// matching the clamped adders used in the decoder datapaths the paper
/// synthesizes. Binary operations require both operands to share a format —
/// mixing formats is a design error in the hardware being modeled, so it
/// panics in debug spirit rather than silently realigning.
///
/// # Example
///
/// ```
/// use wilis_fxp::{Fixed, QFormat, Rounding};
///
/// let fmt = QFormat::new(6, 2)?;
/// let x = Fixed::from_f64(3.25, fmt, Rounding::Nearest);
/// let y = x * x; // 10.5625 rounds to the format's 0.25 grid
/// assert_eq!(y.to_f64(), 10.5);
/// # Ok::<(), wilis_fxp::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fixed {
    raw: i64,
    fmt: QFormat,
}

impl Fixed {
    /// Zero in the given format.
    pub fn zero(fmt: QFormat) -> Self {
        Self { raw: 0, fmt }
    }

    /// The largest representable value in `fmt`.
    pub fn max_value(fmt: QFormat) -> Self {
        Self {
            raw: fmt.max_raw(),
            fmt,
        }
    }

    /// The smallest (most negative) representable value in `fmt`.
    pub fn min_value(fmt: QFormat) -> Self {
        Self {
            raw: fmt.min_raw(),
            fmt,
        }
    }

    /// Quantizes a real value into `fmt`, saturating out-of-range inputs.
    pub fn from_f64(value: f64, fmt: QFormat, rounding: Rounding) -> Self {
        Self {
            raw: quantize_f64(value, fmt, rounding),
            fmt,
        }
    }

    /// Builds a value from a raw integer, saturating it into `fmt`'s range.
    pub fn from_raw(raw: i64, fmt: QFormat) -> Self {
        Self {
            raw: fmt.saturate_raw(raw),
            fmt,
        }
    }

    /// The underlying raw integer.
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The format this value is interpreted in.
    pub fn format(self) -> QFormat {
        self.fmt
    }

    /// Converts back to a real number (exact: raw × lsb).
    pub fn to_f64(self) -> f64 {
        self.raw as f64 * self.fmt.lsb()
    }

    /// Reinterprets this value in another format, rounding and saturating.
    pub fn requantize(self, to: QFormat, rounding: Rounding) -> Self {
        Self {
            raw: crate::quantize::requantize(self.raw, self.fmt, to, rounding),
            fmt: to,
        }
    }

    /// Saturating absolute value (|min| saturates to max).
    pub fn abs(self) -> Self {
        Self {
            raw: self.fmt.saturate_raw(self.raw.saturating_abs()),
            fmt: self.fmt,
        }
    }

    /// Saturating add returning whether the result clipped.
    ///
    /// Exposed separately (C-INTERMEDIATE) so overflow-rate instrumentation
    /// in the experiment harness can count clip events.
    pub fn overflowing_add(self, rhs: Self) -> (Self, bool) {
        self.assert_same_format(rhs);
        let wide = self.raw + rhs.raw; // cannot overflow i64: formats <= 62 bits
        let sat = self.fmt.saturate_raw(wide);
        (
            Self {
                raw: sat,
                fmt: self.fmt,
            },
            sat != wide,
        )
    }

    /// Saturating multiply returning whether the result clipped.
    pub fn overflowing_mul(self, rhs: Self, rounding: Rounding) -> (Self, bool) {
        self.assert_same_format(rhs);
        let frac = self.fmt.frac_bits();
        let wide = i128::from(self.raw) * i128::from(rhs.raw);
        // Product has 2*frac fractional bits; drop `frac` of them.
        let rescaled = if frac == 0 {
            wide
        } else {
            match rounding {
                Rounding::Truncate => wide >> frac,
                Rounding::Nearest => {
                    let half = 1i128 << (frac - 1);
                    if wide >= 0 {
                        (wide + half) >> frac
                    } else {
                        -((-wide + half) >> frac)
                    }
                }
            }
        };
        let clamped = rescaled.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
        let sat = self.fmt.saturate_raw(clamped);
        (
            Self {
                raw: sat,
                fmt: self.fmt,
            },
            i128::from(sat) != rescaled,
        )
    }

    fn assert_same_format(self, rhs: Self) {
        assert_eq!(
            self.fmt, rhs.fmt,
            "fixed-point format mismatch: {} vs {} (requantize at the module boundary)",
            self.fmt, rhs.fmt
        );
    }
}

impl Add for Fixed {
    type Output = Fixed;

    /// Saturating addition.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    fn add(self, rhs: Self) -> Self {
        self.overflowing_add(rhs).0
    }
}

impl Sub for Fixed {
    type Output = Fixed;

    /// Saturating subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    fn sub(self, rhs: Self) -> Self {
        self.overflowing_add(-rhs).0
    }
}

impl Mul for Fixed {
    type Output = Fixed;

    /// Saturating multiplication with round-to-nearest rescaling.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    fn mul(self, rhs: Self) -> Self {
        self.overflowing_mul(rhs, Rounding::Nearest).0
    }
}

impl Div for Fixed {
    type Output = Fixed;

    /// Saturating division with truncation toward zero.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats or `rhs` is zero
    /// (hardware dividers guard the zero case upstream).
    fn div(self, rhs: Self) -> Self {
        self.assert_same_format(rhs);
        assert!(rhs.raw != 0, "fixed-point division by zero");
        let frac = self.fmt.frac_bits();
        let wide = (i128::from(self.raw) << frac) / i128::from(rhs.raw);
        let clamped = wide.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
        Self {
            raw: self.fmt.saturate_raw(clamped),
            fmt: self.fmt,
        }
    }
}

impl Neg for Fixed {
    type Output = Fixed;

    /// Saturating negation (`-min` saturates to `max`).
    fn neg(self) -> Self {
        Self {
            raw: self.fmt.saturate_raw(self.raw.saturating_neg()),
            fmt: self.fmt,
        }
    }
}

impl PartialOrd for Fixed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        (self.fmt == other.fmt).then(|| self.raw.cmp(&other.raw))
    }
}

impl fmt::Debug for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed({} as {})", self.to_f64(), self.fmt)
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32, f: u32) -> QFormat {
        QFormat::new(i, f).unwrap()
    }

    fn fx(v: f64, fmt: QFormat) -> Fixed {
        Fixed::from_f64(v, fmt, Rounding::Nearest)
    }

    #[test]
    fn add_sub_roundtrip() {
        let fmt = q(6, 2);
        let a = fx(3.25, fmt);
        let b = fx(1.5, fmt);
        assert_eq!((a + b).to_f64(), 4.75);
        assert_eq!((a - b).to_f64(), 1.75);
        assert_eq!((a + b - b).to_f64(), a.to_f64());
    }

    #[test]
    fn add_saturates_and_reports() {
        let fmt = q(3, 0);
        let (sum, clipped) = Fixed::max_value(fmt).overflowing_add(fx(1.0, fmt));
        assert!(clipped);
        assert_eq!(sum, Fixed::max_value(fmt));
        let (sum, clipped) = Fixed::min_value(fmt).overflowing_add(fx(-1.0, fmt));
        assert!(clipped);
        assert_eq!(sum, Fixed::min_value(fmt));
    }

    #[test]
    fn mul_rescales_fraction() {
        let fmt = q(6, 2);
        let a = fx(3.25, fmt);
        assert_eq!((a * a).to_f64(), 10.5); // 10.5625 -> nearest 0.25 grid
    }

    #[test]
    fn mul_saturates() {
        let fmt = q(3, 1);
        let big = Fixed::max_value(fmt);
        let (p, clipped) = big.overflowing_mul(big, Rounding::Nearest);
        assert!(clipped);
        assert_eq!(p, Fixed::max_value(fmt));
    }

    #[test]
    fn div_basics() {
        let fmt = q(8, 4);
        let a = fx(10.0, fmt);
        let b = fx(4.0, fmt);
        assert_eq!((a / b).to_f64(), 2.5);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let fmt = q(8, 4);
        let _ = fx(1.0, fmt) / Fixed::zero(fmt);
    }

    #[test]
    fn neg_saturates_min() {
        let fmt = q(3, 0);
        assert_eq!(-Fixed::min_value(fmt), Fixed::max_value(fmt));
        assert_eq!((-fx(2.0, fmt)).to_f64(), -2.0);
    }

    #[test]
    fn abs_saturates_min() {
        let fmt = q(3, 0);
        assert_eq!(Fixed::min_value(fmt).abs(), Fixed::max_value(fmt));
        assert_eq!(fx(-3.0, fmt).abs().to_f64(), 3.0);
    }

    #[test]
    #[should_panic(expected = "format mismatch")]
    fn mixed_format_panics() {
        let _ = fx(1.0, q(4, 2)) + fx(1.0, q(4, 3));
    }

    #[test]
    fn ordering_within_format_only() {
        let fmt = q(4, 2);
        assert!(fx(1.0, fmt) < fx(2.0, fmt));
        assert_eq!(fx(1.0, fmt).partial_cmp(&fx(1.0, q(4, 3))), None);
    }

    #[test]
    fn requantize_narrows() {
        let wide = q(20, 7);
        let narrow = q(2, 1);
        let v = fx(5.5, wide).requantize(narrow, Rounding::Nearest);
        assert_eq!(v.to_f64(), 3.5); // saturated
        assert_eq!(v.format(), narrow);
    }

    #[test]
    fn debug_display_nonempty() {
        let fmt = q(4, 2);
        let v = fx(1.25, fmt);
        assert_eq!(format!("{v}"), "1.25");
        assert!(format!("{v:?}").contains("Q4.2"));
    }
}
