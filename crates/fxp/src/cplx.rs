//! Floating-point complex numbers for the software side of the simulation.
//!
//! The co-simulation split in the paper keeps channel models in software
//! precisely because they are floating-point heavy (§1, §3). Baseband
//! samples cross the hardware/software boundary as complex I/Q pairs; this
//! is that type. The *hardware* models use [`crate::CFixed`] instead.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number over `f64`.
///
/// The arithmetic ops are `#[inline]`: they are the innermost operations
/// of every FFT butterfly in `wilis-phy`, and must stay inlinable across
/// the crate boundary even in builds without LTO.
///
/// # Example
///
/// ```
/// use wilis_fxp::Cplx;
///
/// let a = Cplx::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!((a * a.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real (in-phase) part.
    pub re: f64,
    /// Imaginary (quadrature) part.
    pub im: f64,
}

impl Cplx {
    /// Complex zero.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Cplx = Cplx { re: 0.0, im: 1.0 };

    /// Builds a complex number from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^(i theta)`: the unit phasor at angle `theta` radians.
    #[inline]
    pub fn from_polar(magnitude: f64, theta: f64) -> Self {
        Self {
            re: magnitude * theta.cos(),
            im: magnitude * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Cplx {
    type Output = Cplx;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Cplx {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Cplx {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Cplx {
    type Output = Cplx;
    /// Complex division.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when dividing by zero (produces non-finite
    /// parts in release, as IEEE arithmetic does).
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sq();
        debug_assert!(d > 0.0, "complex division by zero");
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Cplx {
    fn sum<I: Iterator<Item = Cplx>>(iter: I) -> Self {
        iter.fold(Cplx::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Cplx {
    #[inline]
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Cplx::new(1.5, -2.0);
        assert_eq!(a + Cplx::ZERO, a);
        assert_eq!(a * Cplx::ONE, a);
        assert_eq!(a - a, Cplx::ZERO);
        assert_eq!(-(-a), a);
        assert_eq!(a * Cplx::I, Cplx::new(2.0, 1.5));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Cplx::new(3.0, -1.0);
        let b = Cplx::new(0.5, 2.0);
        let q = (a * b) / b;
        assert!((q - a).norm() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let a = Cplx::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((a.norm() - 2.0).abs() < 1e-12);
        assert!((a.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Cplx = (0..4).map(|k| Cplx::new(k as f64, 1.0)).sum();
        assert_eq!(total, Cplx::new(6.0, 4.0));
    }

    #[test]
    fn conj_mul_is_norm_sq() {
        let a = Cplx::new(-2.5, 4.0);
        let p = a * a.conj();
        assert!((p.re - a.norm_sq()).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn from_real_and_scale() {
        let a: Cplx = 3.0.into();
        assert_eq!(a, Cplx::new(3.0, 0.0));
        assert_eq!(a.scale(2.0), Cplx::new(6.0, 0.0));
    }
}
