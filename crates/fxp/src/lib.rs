//! Fixed-point arithmetic substrate for hardware-faithful wireless DSP.
//!
//! The WiLIS paper's central methodological point (§1, §4.1) is that hardware
//! implementations of wireless algorithms are *approximations* of their
//! floating-point originals: fixed-point arithmetic, reduced bit widths,
//! saturation, and simplified operators all distort the values flowing into
//! downstream modules in ways that can only be characterized by simulating
//! the whole pipeline. This crate provides the arithmetic those hardware
//! models compute with.
//!
//! # Overview
//!
//! * [`QFormat`] — a signed Q-format descriptor (`Qm.n`: `m` integer bits,
//!   `n` fractional bits, plus sign). Formats are runtime values because the
//!   paper sweeps demapper output widths from 23–28 bits down to 3–8 bits.
//! * [`Fixed`] — a fixed-point scalar: an `i64` raw value interpreted in a
//!   [`QFormat`]. All arithmetic saturates, as hardware adders with clamp
//!   logic do.
//! * [`CFixed`] — a fixed-point complex number for baseband samples.
//! * [`quantize`] — rounding modes and standalone bit-width reduction
//!   helpers used at module boundaries (e.g. demapper → decoder).
//!
//! # Example
//!
//! ```
//! use wilis_fxp::{Fixed, QFormat, Rounding};
//!
//! // An 8-bit soft value: Q4.3 (1 sign + 4 integer + 3 fraction bits).
//! let fmt = QFormat::new(4, 3)?;
//! let a = Fixed::from_f64(1.25, fmt, Rounding::Nearest);
//! let b = Fixed::from_f64(2.5, fmt, Rounding::Nearest);
//! assert_eq!((a + b).to_f64(), 3.75);
//!
//! // Saturation instead of wrap-around, like a hardware clamp.
//! let max = Fixed::max_value(fmt);
//! assert_eq!((max + b).to_f64(), max.to_f64());
//! # Ok::<(), wilis_fxp::FormatError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod cplx;
mod fixed;
mod q;
pub mod quantize;
pub mod rng;

pub use complex::CFixed;
pub use cplx::Cplx;
pub use fixed::Fixed;
pub use q::{FormatError, QFormat};
pub use quantize::{quantize_f64, requantize, Rounding};

#[cfg(test)]
mod prop_tests;
