//! Deterministic pseudo-random number generation.
//!
//! Every Monte-Carlo experiment in this repository must be reproducible
//! from a single `u64` seed — the scenario engine's bit-identical-results
//! contract depends on it — so randomness comes from this self-contained
//! xoshiro256++ generator rather than an external crate. Streams are a
//! pure function of the seed; there is no global or thread-local state.

/// SplitMix64 step: the standard seeding mix for xoshiro-family state.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes a seed and a stream index into an independent sub-seed — the
/// chunk-seeding helper used by the parallel channel and the sweep runner
/// so that work item `i` draws from the same stream no matter which worker
/// executes it.
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut s = seed ^ index.wrapping_mul(0xd134_2543_de82_ef95);
    splitmix64(&mut s)
}

/// A small, fast, seedable PRNG (xoshiro256++).
///
/// Equal seeds give equal streams; the API mirrors the subset of `rand`
/// this repository needs.
///
/// # Example
///
/// ```
/// use wilis_fxp::rng::SmallRng;
///
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// A generator seeded from a single `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in the half-open interval `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or reversed.
    pub fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_f64() * (range.end - range.start)
    }

    /// Uniform integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "reversed range");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform random bit, as `0u8` or `1u8` (payload generation).
    pub fn gen_bit(&mut self) -> u8 {
        (self.next_u64() >> 63) as u8
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_uniform_moments() {
        let mut r = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "variance {var}");
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 15];
        for _ in 0..10_000 {
            let v = r.gen_i64(-7, 7);
            assert!((-7..=7).contains(&v));
            seen[(v + 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bits_are_balanced() {
        let mut r = SmallRng::seed_from_u64(5);
        let ones: u32 = (0..10_000).map(|_| u32::from(r.gen_bit())).sum();
        assert!((4500..5500).contains(&ones), "{ones} ones in 10k bits");
    }

    #[test]
    fn mix_seed_decorrelates_indices() {
        assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
        assert_eq!(mix_seed(7, 9), mix_seed(7, 9));
    }
}
