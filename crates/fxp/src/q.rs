//! Q-format descriptors.

use std::fmt;

/// Maximum total width (sign + integer + fraction) representable by the
/// backing `i64` raw value, leaving headroom for intermediate products.
pub(crate) const MAX_TOTAL_BITS: u32 = 62;

/// Error returned when constructing an invalid [`QFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FormatError {
    int_bits: u32,
    frac_bits: u32,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid Q format Q{}.{}: total width {} exceeds {} bits",
            self.int_bits,
            self.frac_bits,
            1 + self.int_bits + self.frac_bits,
            MAX_TOTAL_BITS
        )
    }
}

impl std::error::Error for FormatError {}

/// A signed fixed-point format `Qm.n`: one sign bit, `m` integer bits and
/// `n` fractional bits.
///
/// The representable range is `[-2^m, 2^m - 2^-n]` with resolution `2^-n`.
/// Formats are small `Copy` values; every [`crate::Fixed`] carries one so
/// that mixed-format arithmetic can be detected and module boundaries can
/// requantize explicitly, the way RTL port widths force the designer to.
///
/// # Example
///
/// ```
/// use wilis_fxp::QFormat;
///
/// let demapper_out = QFormat::new(4, 3)?; // 8-bit soft value
/// assert_eq!(demapper_out.total_bits(), 8);
/// assert_eq!(demapper_out.max_f64(), 15.875);
/// assert_eq!(demapper_out.min_f64(), -16.0);
/// # Ok::<(), wilis_fxp::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    int_bits: u32,
    frac_bits: u32,
}

impl QFormat {
    /// Creates a signed `Q(int_bits).(frac_bits)` format.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if `1 + int_bits + frac_bits` exceeds 62,
    /// the width budget of the `i64` backing store.
    pub fn new(int_bits: u32, frac_bits: u32) -> Result<Self, FormatError> {
        if 1 + int_bits + frac_bits > MAX_TOTAL_BITS {
            return Err(FormatError {
                int_bits,
                frac_bits,
            });
        }
        Ok(Self {
            int_bits,
            frac_bits,
        })
    }

    /// A pure-integer format with `bits` magnitude bits (no fraction).
    ///
    /// Decoder path metrics in the paper's hardware are plain saturating
    /// integers; this is their natural format.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] when `bits` exceeds the width budget.
    pub fn integer(bits: u32) -> Result<Self, FormatError> {
        Self::new(bits, 0)
    }

    /// Number of integer (magnitude) bits, excluding the sign bit.
    pub fn int_bits(self) -> u32 {
        self.int_bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Total storage width in bits: sign + integer + fraction.
    pub fn total_bits(self) -> u32 {
        1 + self.int_bits + self.frac_bits
    }

    /// Largest representable raw value: `2^(m+n) - 1`.
    pub fn max_raw(self) -> i64 {
        (1i64 << (self.int_bits + self.frac_bits)) - 1
    }

    /// Smallest representable raw value: `-2^(m+n)`.
    pub fn min_raw(self) -> i64 {
        -(1i64 << (self.int_bits + self.frac_bits))
    }

    /// Largest representable real value.
    pub fn max_f64(self) -> f64 {
        self.max_raw() as f64 * self.lsb()
    }

    /// Smallest (most negative) representable real value.
    pub fn min_f64(self) -> f64 {
        self.min_raw() as f64 * self.lsb()
    }

    /// Value of one least-significant bit: `2^-n`.
    pub fn lsb(self) -> f64 {
        (self.frac_bits as i32).wrapping_neg().exp2_int()
    }

    /// Clamps a raw value into this format's range, returning whether
    /// saturation occurred.
    pub(crate) fn saturate_raw(self, raw: i64) -> i64 {
        raw.clamp(self.min_raw(), self.max_raw())
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

/// Integer power-of-two helper avoiding `f64::powi` in hot paths.
trait Exp2Int {
    fn exp2_int(self) -> f64;
}

impl Exp2Int for i32 {
    fn exp2_int(self) -> f64 {
        // Exact for the exponent range a QFormat permits (|e| <= 62).
        if self >= 0 {
            (1u64 << self) as f64
        } else {
            1.0 / (1u64 << (-self)) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(QFormat::new(30, 31).is_ok());
        assert!(QFormat::new(31, 31).is_err());
        assert!(QFormat::new(61, 0).is_ok());
        assert!(QFormat::new(62, 0).is_err());
    }

    #[test]
    fn range_and_lsb() {
        let q = QFormat::new(4, 3).unwrap();
        assert_eq!(q.total_bits(), 8);
        assert_eq!(q.max_raw(), 127);
        assert_eq!(q.min_raw(), -128);
        assert_eq!(q.lsb(), 0.125);
        assert_eq!(q.max_f64(), 15.875);
        assert_eq!(q.min_f64(), -16.0);
    }

    #[test]
    fn integer_format() {
        let q = QFormat::integer(7).unwrap();
        assert_eq!(q.frac_bits(), 0);
        assert_eq!(q.lsb(), 1.0);
        assert_eq!(q.max_raw(), 127);
    }

    #[test]
    fn saturate_raw_clamps_both_ends() {
        let q = QFormat::new(3, 0).unwrap();
        assert_eq!(q.saturate_raw(100), 7);
        assert_eq!(q.saturate_raw(-100), -8);
        assert_eq!(q.saturate_raw(5), 5);
    }

    #[test]
    fn display_forms() {
        let q = QFormat::new(4, 3).unwrap();
        assert_eq!(q.to_string(), "Q4.3");
        let err = QFormat::new(40, 40).unwrap_err();
        assert!(err.to_string().contains("Q40.40"));
    }
}
