//! The hint→BER lookup table (second level of the paper's two-level
//! lookup) and the log-linear fit used to build it from measurements.

use wilis_fec::MAX_HINT;

use crate::scaling::ScalingFactors;

/// Floor applied to table entries: the paper needs predictions "accurate up
/// to the order of 10⁻⁷" (§4.2), so the table bottoms out below that.
pub const BER_FLOOR: f64 = 1e-9;
/// Ceiling: a hint of zero means a coin-flip bit.
pub const BER_CEIL: f64 = 0.5;

/// A `hint → BER` lookup table for one (modulation, decoder) pair.
///
/// # Example
///
/// ```
/// use wilis_softphy::{BerTable, ScalingFactors};
/// use wilis_phy::Modulation;
///
/// let t = BerTable::from_scaling(&ScalingFactors::with_constant_snr(Modulation::Qpsk, 0.5));
/// assert_eq!(t.lookup(0), 0.5);
/// assert!(t.lookup(30) < t.lookup(10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BerTable {
    entries: Vec<f64>,
}

impl BerTable {
    /// Builds the table analytically from equation 4 + 5:
    /// `BER(h) = 1 / (1 + exp(scale × h))`.
    pub fn from_scaling(factors: &ScalingFactors) -> Self {
        let entries = (0..=u32::from(MAX_HINT))
            .map(|h| {
                let llr = factors.true_llr(h as u16);
                (1.0 / (1.0 + llr.exp())).clamp(BER_FLOOR, BER_CEIL)
            })
            .collect();
        Self { entries }
    }

    /// Builds the table from a measured log-linear fit (the Figure 5
    /// procedure: simulate, bin by hint, fit, tabulate).
    pub fn from_fit(fit: &LogLinearFit) -> Self {
        let entries = (0..=u32::from(MAX_HINT))
            .map(|h| fit.ber_at(h as u16).clamp(BER_FLOOR, BER_CEIL))
            .collect();
        Self { entries }
    }

    /// The BER estimate for a hint.
    ///
    /// # Panics
    ///
    /// Panics if `hint` exceeds [`MAX_HINT`] — hints are 6-bit by
    /// construction ([`wilis_fec::DecodeOutput::hint`] clamps).
    pub fn lookup(&self, hint: u16) -> f64 {
        self.entries[usize::from(hint)]
    }

    /// All 64 entries, index = hint.
    pub fn entries(&self) -> &[f64] {
        &self.entries
    }
}

/// A least-squares fit of `log10(BER) = intercept + slope × hint`.
///
/// The paper's Figure 5 shows exactly this relationship ("Both BCJR and
/// SOVA are able to produce LLRs showing the log-linear relationship with
/// BERs as suggested by equation 4"), with slope varying by SNR, modulation
/// and decoder — which is what validates the three scaling factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLinearFit {
    /// `log10(BER)` at hint 0.
    pub intercept: f64,
    /// Change in `log10(BER)` per hint step (negative: more confidence,
    /// fewer errors).
    pub slope: f64,
}

impl LogLinearFit {
    /// Weighted least squares over `(hint, observed_ber, weight)` samples.
    ///
    /// Returns `None` with fewer than two usable samples or zero total
    /// weight. Samples with `observed_ber <= 0` are skipped (empty bins).
    pub fn fit(samples: &[(u16, f64, f64)]) -> Option<Self> {
        let usable: Vec<(f64, f64, f64)> = samples
            .iter()
            .filter(|&&(_, ber, w)| ber > 0.0 && w > 0.0)
            .map(|&(h, ber, w)| (f64::from(h), ber.log10(), w))
            .collect();
        if usable.len() < 2 {
            return None;
        }
        let sw: f64 = usable.iter().map(|&(_, _, w)| w).sum();
        let mx = usable.iter().map(|&(x, _, w)| w * x).sum::<f64>() / sw;
        let my = usable.iter().map(|&(_, y, w)| w * y).sum::<f64>() / sw;
        let sxx: f64 = usable
            .iter()
            .map(|&(x, _, w)| w * (x - mx) * (x - mx))
            .sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = usable
            .iter()
            .map(|&(x, y, w)| w * (x - mx) * (y - my))
            .sum();
        let slope = sxy / sxx;
        Some(Self {
            intercept: my - slope * mx,
            slope,
        })
    }

    /// The fitted BER at a hint value.
    pub fn ber_at(&self, hint: u16) -> f64 {
        10f64.powf(self.intercept + self.slope * f64::from(hint))
    }

    /// The implied `S_dec × S_mod × Es/N0` product: from equations 4 and 5,
    /// for `LLR_true >> 1`, `log10 BER ≈ −LLR_true × log10(e)`, so the
    /// combined scale is `−slope / log10(e)` per hint step.
    pub fn implied_combined_scale(&self) -> f64 {
        -self.slope / std::f64::consts::LOG10_E
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wilis_phy::Modulation;

    #[test]
    fn analytic_table_is_monotone_decreasing() {
        let t = BerTable::from_scaling(&ScalingFactors::with_constant_snr(Modulation::Qam16, 0.5));
        for w in t.entries().windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(t.lookup(0), BER_CEIL);
    }

    #[test]
    fn table_reaches_below_1e7() {
        // §4.2: predictions must be usable down to ~1e-7 (QAM-16 with the
        // calibrated BCJR scale, the Figure 5/6 configuration).
        let t = BerTable::from_scaling(&ScalingFactors::with_constant_snr(Modulation::Qam16, 0.49));
        assert!(t.lookup(63) < 1e-7, "floor entry {}", t.lookup(63));
    }

    #[test]
    fn fit_recovers_known_line() {
        // Synthesize samples from log10(ber) = -0.5 - 0.1 h.
        let samples: Vec<(u16, f64, f64)> = (0..40)
            .map(|h| (h as u16, 10f64.powf(-0.5 - 0.1 * h as f64), 1.0))
            .collect();
        let fit = LogLinearFit::fit(&samples).unwrap();
        assert!((fit.intercept + 0.5).abs() < 1e-9);
        assert!((fit.slope + 0.1).abs() < 1e-9);
        assert!((fit.ber_at(10) - 10f64.powf(-1.5)).abs() < 1e-10);
    }

    #[test]
    fn fit_ignores_empty_bins() {
        let samples = vec![
            (0u16, 0.1, 100.0),
            (10, 0.0, 0.0), // empty bin
            (20, 0.001, 100.0),
        ];
        let fit = LogLinearFit::fit(&samples).unwrap();
        assert!((fit.slope + 0.1).abs() < 1e-9);
    }

    #[test]
    fn fit_requires_two_points() {
        assert!(LogLinearFit::fit(&[(5, 0.1, 1.0)]).is_none());
        assert!(LogLinearFit::fit(&[]).is_none());
        // Two samples at the same hint: no slope.
        assert!(LogLinearFit::fit(&[(5, 0.1, 1.0), (5, 0.2, 1.0)]).is_none());
    }

    #[test]
    fn table_from_fit_clamps() {
        let fit = LogLinearFit {
            intercept: 0.5, // > 0.5 BER at hint 0 — must clamp to ceiling
            slope: -0.5,
        };
        let t = BerTable::from_fit(&fit);
        assert_eq!(t.lookup(0), BER_CEIL);
        assert_eq!(t.lookup(63), BER_FLOOR);
    }

    #[test]
    fn implied_scale_positive_for_falling_curve() {
        let fit = LogLinearFit {
            intercept: -0.3,
            slope: -0.12,
        };
        assert!(fit.implied_combined_scale() > 0.0);
    }
}
